//! Workspace facade crate.
//!
//! Re-exports every crate of the reproduction so the `examples/` and
//! `tests/` directories at the repository root can exercise the full stack.

pub use mpas_core as core;
pub use mpas_geom as geom;
pub use mpas_hybrid as hybrid;
pub use mpas_mesh as mesh;
pub use mpas_msg as msg;
pub use mpas_patterns as patterns;
pub use mpas_sched as sched;
pub use mpas_swe as swe;
pub use mpas_telemetry as telemetry;
