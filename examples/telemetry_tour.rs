//! Telemetry tour: record one instrumented step, print the metrics
//! snapshot, and write a combined modeled-vs-measured Chrome trace.
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```
//!
//! Open the emitted `target/telemetry_tour.json` at `ui.perfetto.dev` (or
//! `chrome://tracing`): track group "modeled" holds the scheduler's
//! predicted substep timeline on its cpu/mic rows, "measured" the spans
//! actually recorded while the step ran.

use mpas_repro::core::{halo_probe, Executor, Simulation};
use mpas_repro::hybrid::Platform;
use mpas_repro::swe::TestCase;
use mpas_repro::telemetry::Recorder;

fn main() {
    // A live recorder shared by every layer of the stack: the simulation
    // driver, the hybrid executor's kernels, the scheduler, and the halo
    // exchanger all clone this handle.
    let rec = Recorder::new();

    let mut sim = Simulation::builder()
        .mesh_level(4) // 2 562 cells — runs anywhere
        .test_case(TestCase::Case5)
        .executor(Executor::Hybrid {
            cpu_threads: 2,
            acc_threads: 2,
        })
        .recorder(rec.clone())
        .build();

    println!(
        "mesh: {} cells, dt = {:.0} s, one instrumented RK-4 step...",
        sim.mesh.n_cells(),
        sim.dt()
    );
    sim.run_steps(1);

    // One halo-exchange round on a 4-way partition so the snapshot also
    // carries measured communication volumes next to the analytic model.
    halo_probe(&sim.mesh, 4, &rec);

    // --- Metrics snapshot --------------------------------------------
    let snap = rec.snapshot();
    println!("\ncounters:");
    for (name, v) in &snap.counters {
        println!("  {name:<40} {v}");
    }
    println!("gauges:");
    for (name, v) in &snap.gauges {
        println!("  {name:<40} {v:.6e}");
    }
    println!("histograms (count / p50 / p95 / max, seconds):");
    for (name, h) in &snap.histograms {
        println!(
            "  {name:<40} {:>4}  {:.3e}  {:.3e}  {:.3e}",
            h.count, h.p50, h.p95, h.max
        );
    }

    // --- Combined trace ----------------------------------------------
    // The modeled schedule comes from the active scheduling policy on the
    // paper's Table-II node; the measured side from the recorder's spans.
    let schedule = sim.modeled_schedule(&Platform::paper_node());
    let json = mpas_repro::hybrid::to_combined_trace(&schedule, &rec);
    let path = "target/telemetry_tour.json";
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(path, &json).expect("write trace");
    println!(
        "\nwrote {path}: {} measured spans + {}-node modeled schedule",
        rec.spans().len(),
        schedule.nodes.len()
    );
}
