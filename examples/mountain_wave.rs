//! Williamson test case 5 — zonal flow over an isolated mountain — the
//! scenario behind the paper's Fig. 5 correctness validation.
//!
//! Runs the serial reference and the two-pool hybrid executor side by side
//! and reports the total-height field statistics plus their difference.
//!
//! ```text
//! cargo run --release --example mountain_wave -- [days] [level]
//! ```

use mpas_repro::hybrid::{HybridModel, Platform};
use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let days: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let level: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("generating level-{level} mesh...");
    let mesh = Arc::new(mpas_repro::mesh::generate(level, 0));
    let cfg = ModelConfig::default();
    let tc = TestCase::Case5;

    let mut serial = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
    let mut hybrid = HybridModel::new(mesh.clone(), cfg, tc, None, 2, 2, &Platform::paper_node());
    let steps = serial.steps_for_days(days);
    println!(
        "running {steps} steps (dt = {:.0} s, {} cells) twice...",
        serial.dt,
        mesh.n_cells()
    );

    let mass0 = serial.total_mass();
    let energy0 = serial.total_energy();
    serial.run_steps(steps);
    hybrid.run_steps(steps);

    let th = serial.total_height();
    let b = tc.topography(&mesh);
    let th_hybrid: Vec<f64> = hybrid
        .state()
        .h
        .iter()
        .zip(&b)
        .map(|(&h, &b)| h + b)
        .collect();

    let min = th.iter().cloned().fold(f64::MAX, f64::min);
    let max = th.iter().cloned().fold(f64::MIN, f64::max);
    println!("day {days}: total height h+b in [{min:.1}, {max:.1}] m");
    println!(
        "mass drift {:+.2e}, energy drift {:+.2e}",
        (serial.total_mass() - mass0) / mass0,
        (serial.total_energy() - energy0) / energy0
    );

    let maxdiff = th
        .iter()
        .zip(&th_hybrid)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("serial vs hybrid max |Δ(h+b)| = {maxdiff:.3e} m");
    assert_eq!(
        maxdiff, 0.0,
        "hybrid executor diverged from the serial code"
    );
    println!("OK: hybrid implementation matches the original bit-for-bit.");
}
