//! Williamson test case 6 — a wavenumber-4 Rossby–Haurwitz wave — with
//! conservation monitoring: total mass is conserved to machine precision
//! by the TRiSK scheme and total energy / potential enstrophy drift only
//! through time-truncation error.
//!
//! ```text
//! cargo run --release --example rossby_haurwitz -- [hours] [level]
//! ```

use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let hours: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12.0);
    let level: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let mesh = Arc::new(mpas_repro::mesh::generate(level, 0));
    let mut m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case6, None);
    let steps = ((hours * 3600.0) / m.dt).ceil() as usize;
    println!(
        "Rossby–Haurwitz wave on {} cells, dt = {:.0} s, {steps} steps",
        mesh.n_cells(),
        m.dt
    );

    let mass0 = m.total_mass();
    let energy0 = m.total_energy();
    let enstrophy0 = m.potential_enstrophy();
    let report_every = (steps / 6).max(1);
    for s in 1..=steps {
        m.step();
        if s % report_every == 0 || s == steps {
            println!(
                "t = {:6.1} h  mass {:+.2e}  energy {:+.2e}  enstrophy {:+.2e}",
                m.time / 3600.0,
                (m.total_mass() - mass0) / mass0,
                (m.total_energy() - energy0) / energy0,
                (m.potential_enstrophy() - enstrophy0) / enstrophy0,
            );
        }
    }

    let zonal_max = m.recon.zonal.iter().cloned().fold(f64::MIN, f64::max);
    println!("max reconstructed zonal wind: {zonal_max:.1} m/s");
    assert!(((m.total_mass() - mass0) / mass0).abs() < 1e-12);
    println!("OK: mass conserved to machine precision.");
}
