//! Trace-analysis tour: run a small distributed job under the recorder,
//! then walk the whole PR-5 analysis chain — per-rank blame, critical-path
//! extraction, measured-vs-modeled diff, invariant monitors, and a
//! statistical regression gate round-tripped through JSON.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use mpas_repro::core::{run_distributed_recorded, DistributedConfig};
use mpas_repro::hybrid::Platform;
use mpas_repro::patterns::dataflow::MeshCounts;
use mpas_repro::swe::{ModelConfig, TestCase};
use mpas_repro::telemetry::analysis::{check_invariants, default_invariants, record_blame, Trace};
use mpas_repro::telemetry::gate::{median_mad, Baseline, BaselineEntry, Direction, Severity};
use mpas_repro::telemetry::Recorder;

fn main() {
    // --- 1. An instrumented distributed run --------------------------
    let mesh = mpas_repro::mesh::generate(4, 0); // 2 562 cells
    let n_ranks = 4;
    let n_steps = 4;
    let dt = ModelConfig::suggested_dt(&mesh);
    let tc = TestCase::Case5;
    let rec = Recorder::new();
    println!(
        "running williamson-5 on {} cells, {n_ranks} ranks, {n_steps} steps...",
        mesh.n_cells()
    );
    let init = tc.initial_state(&mesh);
    let mass0: f64 = init.h.iter().zip(&mesh.area_cell).map(|(h, a)| h * a).sum();
    let fin = run_distributed_recorded(
        &mesh,
        DistributedConfig {
            n_ranks,
            halo_layers: 3,
            model: ModelConfig::default(),
            test_case: tc,
            dt,
            n_steps,
        },
        &rec,
    );
    let mass1: f64 = fin.h.iter().zip(&mesh.area_cell).map(|(h, a)| h * a).sum();

    // --- 2. Per-rank blame + critical path ---------------------------
    let trace = Trace::from_recorder(&rec);
    let blame = trace.blame();
    let cp = trace.critical_path();
    println!("\n{}", blame.render());
    println!("{}", cp.render());

    // --- 3. Measured vs modeled --------------------------------------
    // Each rank runs the serial kernel chain on ~1/n_ranks of the mesh,
    // so the comparator is the calibrated serial policy on per-rank
    // counts (coefficients are per-pattern, so a cheap level-3 fit is
    // enough). DESIGN.md §10 documents the ×12 agreement band.
    let steps: Vec<f64> = trace.per_step_makespans();
    let (med_step, mad_step) = median_mad(&steps);
    let r = n_ranks as f64;
    let mc = MeshCounts {
        n_cells: mesh.n_cells() as f64 / r,
        n_edges: mesh.n_edges() as f64 / r,
        n_vertices: mesh.n_vertices() as f64 / r,
    };
    let cal = mpas_repro::hybrid::calibrate_host(3, 2);
    let policy = mpas_repro::sched::resolve("serial").expect("serial policy");
    let modeled = cal.modeled_time_per_step(&mc, &Platform::paper_node(), policy.as_ref());
    println!(
        "measured {:.3e} s/step (median of {n_steps}), modeled {:.3e} s/step, ratio x{:.2}",
        med_step,
        modeled,
        med_step / modeled
    );

    // --- 4. Invariant monitors ---------------------------------------
    // The default monitors watch mass conservation and solution blow-up.
    // A healthy run trips nothing; flip the drift gauge to see an alert.
    rec.set_gauge("core.sim.mass_drift", (mass1 - mass0) / mass0);
    rec.set_gauge("core.sim.h_err_l2", 0.0);
    let alerts = check_invariants(&rec, &default_invariants());
    println!("invariant alerts: {}", alerts.len());

    // --- 5. Statistical regression gate ------------------------------
    // Publish the blame gauges, fit a baseline from this run, round-trip
    // it through JSON exactly as `swe_run --gate-write` / `--gate` do,
    // and evaluate the run against its own baseline (necessarily green).
    record_blame(&rec, &blame, Some(&cp));
    let baseline = Baseline {
        name: "trace-analysis-example".to_string(),
        entries: vec![
            BaselineEntry {
                metric: "analysis.blame.max_wait_frac".to_string(),
                median: blame.max_wait_frac(),
                mad: 0.0,
                count: 1,
                k: 4.0,
                floor: 0.25,
                direction: Direction::Above,
                severity: Severity::Warn,
                abs: false,
            },
            BaselineEntry {
                metric: "analysis.blame.makespan_s".to_string(),
                median: med_step * n_steps as f64,
                mad: mad_step * n_steps as f64,
                count: n_steps,
                k: 5.0,
                floor: 0.5 * med_step * n_steps as f64,
                direction: Direction::Above,
                severity: Severity::Fail,
                abs: false,
            },
        ],
    };
    let path = "target/trace_analysis_baseline.json";
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(path, baseline.to_json()).expect("write baseline");
    let reparsed = Baseline::parse(&std::fs::read_to_string(path).expect("read baseline"))
        .expect("baseline parses");
    let outcome = reparsed.evaluate(&rec.snapshot());
    println!("\nwrote {path}; gating this run against it:");
    println!("{}", outcome.render());
    assert!(!outcome.failed(), "a run cannot fail its own baseline");
}
