//! Compare every registered scheduling policy on one real time step.
//!
//! Runs Williamson test case 5 for one RK-4 step through the `Simulation`
//! facade (so the state is genuine, not synthetic), then schedules the
//! step's data-flow diagram under each policy in the `mpas-sched` registry
//! and prints a makespan / speedup / imbalance table for the mesh actually
//! integrated.
//!
//! ```text
//! cargo run --release --example policy_comparison -- [mesh_level]
//! ```

use mpas_repro::hybrid::{time_per_step, Platform};
use mpas_repro::patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use mpas_repro::sched::{registered, SchedulerPolicy, TaskDag};
use mpas_repro::swe::TestCase;

fn main() {
    let level: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let mut sim = mpas_repro::core::Simulation::builder()
        .mesh_level(level)
        .test_case(TestCase::Case5)
        .build();
    sim.run_steps(1);
    println!(
        "{}: level-{level} mesh, {} cells, one RK-4 step integrated (mass drift {:+.1e})\n",
        sim.test_case.name(),
        sim.mesh.n_cells(),
        sim.mass_drift()
    );

    let mc = MeshCounts {
        n_cells: sim.mesh.n_cells() as f64,
        n_edges: sim.mesh.n_edges() as f64,
        n_vertices: sim.mesh.n_vertices() as f64,
    };
    let platform = Platform::paper_node();
    let graph = DataflowGraph::for_substep(RkPhase::Intermediate);
    let dag = TaskDag::from_dataflow(&graph, &mc, &platform);

    let serial_step = {
        let serial = mpas_repro::sched::resolve("serial").unwrap();
        time_per_step(&mc, &platform, &serial)
    };

    println!(
        "{:<40} {:>12} {:>9} {:>6}",
        "policy", "time/step", "speedup", "imb"
    );
    for policy in registered() {
        let substep = policy.schedule(&dag, &platform);
        let step = time_per_step(&mc, &platform, &policy);
        println!(
            "{:<40} {:>9.3} ms {:>8.2}x {:>5.0}%",
            policy.name(),
            step * 1e3,
            serial_step / step,
            substep.imbalance() * 100.0
        );
    }
    println!(
        "\ntime/step: modeled RK-4 step (3 intermediate + 1 final substep) on \
         the Table-II node; imb: intermediate-substep busy-time imbalance"
    );
}
