//! Multi-process execution over the in-process message-passing runtime:
//! partition the sphere with recursive coordinate bisection, run each rank
//! on its own local mesh with three halo layers, exchange halos every RK
//! substep, and verify the gathered result is bit-for-bit identical to the
//! single-process run.
//!
//! ```text
//! cargo run --release --example distributed_run -- [n_ranks] [steps] [level]
//! ```

use mpas_repro::core::{run_distributed, DistributedConfig};
use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_ranks: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let level: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);

    let mesh = Arc::new(mpas_repro::mesh::generate(level, 0));
    let dt = ModelConfig::suggested_dt(&mesh);
    let tc = TestCase::Case5;
    println!(
        "{} cells across {n_ranks} ranks, {steps} steps of {dt:.0} s",
        mesh.n_cells()
    );

    let t0 = std::time::Instant::now();
    let dist = run_distributed(
        &mesh,
        DistributedConfig {
            n_ranks,
            halo_layers: 3,
            model: ModelConfig::default(),
            test_case: tc,
            dt,
            n_steps: steps,
        },
    );
    println!("distributed run: {:.2?}", t0.elapsed());

    let t1 = std::time::Instant::now();
    let mut serial = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), tc, Some(dt));
    serial.run_steps(steps);
    println!("serial run:      {:.2?}", t1.elapsed());

    let diff = serial.state.max_abs_diff(&dist);
    println!("max |Δ| between serial and {n_ranks}-rank run: {diff:e}");
    assert_eq!(diff, 0.0, "distributed result diverged");
    println!("OK: bit-for-bit identical across rank counts.");
}
