//! Quickstart: build a global shallow-water simulation on a quasi-uniform
//! spherical Voronoi mesh and run it for a day.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpas_repro::core::{Executor, Simulation};
use mpas_repro::swe::TestCase;

fn main() {
    // Level 4 = 2 562 cells (~480 km): small enough to run anywhere.
    let mut sim = Simulation::builder()
        .mesh_level(4)
        .test_case(TestCase::Case2 { alpha: 0.0 })
        .executor(Executor::Threaded { threads: 2 })
        .build();

    println!(
        "mesh: {} cells / {} edges / {} vertices, dt = {:.0} s",
        sim.mesh.n_cells(),
        sim.mesh.n_edges(),
        sim.mesh.n_vertices(),
        sim.dt()
    );

    let steps_per_day = (86_400.0 / sim.dt()).ceil() as usize;
    for day in 1..=1 {
        sim.run_steps(steps_per_day);
        let norms = sim.h_error_norms();
        println!(
            "day {day}: mass drift {:+.2e}, steady-state error {norms}",
            sim.mass_drift()
        );
    }

    // Williamson case 2 is a steady state: after a day the thickness field
    // should still match the analytic solution to discretization accuracy.
    let norms = sim.h_error_norms();
    assert!(norms.l2 < 1e-2, "steady state lost: {norms}");
    println!("OK: steady geostrophic flow preserved.");
}
