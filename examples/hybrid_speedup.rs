//! The paper's headline experiment in miniature: schedule one RK substep's
//! data-flow diagram onto the simulated Xeon + Xeon Phi node under the
//! kernel-level (Fig. 2) and pattern-driven (Fig. 4 (b)) policies, and print
//! the per-pattern placements, device utilization and speedups.
//!
//! ```text
//! cargo run --release --example hybrid_speedup -- [n_cells]
//! ```

use mpas_repro::hybrid::sched::{schedule_substep, Placement, Policy};
use mpas_repro::hybrid::Platform;
use mpas_repro::patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};

fn main() {
    let n_cells: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(655_362);
    let mc = MeshCounts::icosahedral(n_cells);
    let platform = Platform::paper_node();
    let graph = DataflowGraph::for_substep(RkPhase::Intermediate);

    let serial = schedule_substep(&graph, &mc, &platform, Policy::Serial);
    let kernel = schedule_substep(&graph, &mc, &platform, Policy::KernelLevel);
    let pattern = schedule_substep(&graph, &mc, &platform, Policy::PatternDriven);

    println!("mesh: {n_cells} cells; one intermediate RK substep\n");
    println!("pattern-driven placements:");
    for ns in &pattern.nodes {
        let place = match ns.placement {
            Placement::Cpu => "CPU".to_string(),
            Placement::Acc => "MIC".to_string(),
            Placement::Split(f) => format!("split {:.0}% MIC", f * 100.0),
        };
        println!(
            "  {:3}  [{:9.3} ms .. {:9.3} ms]  {place}",
            ns.name,
            ns.start * 1e3,
            ns.finish * 1e3
        );
    }

    let report = |name: &str, s: &mpas_repro::hybrid::Schedule| {
        println!(
            "{name:15} makespan {:8.3} ms  speedup {:5.2}x  cpu busy {:6.3} ms  mic busy {:6.3} ms  imbalance {:3.0}%",
            s.makespan * 1e3,
            serial.makespan / s.makespan,
            s.cpu_busy * 1e3,
            s.acc_busy * 1e3,
            s.imbalance() * 100.0
        );
    };
    println!();
    report("serial", &serial);
    report("kernel-level", &kernel);
    report("pattern-driven", &pattern);
    println!(
        "\npattern-driven advantage over kernel-level: {:.0}%",
        (kernel.makespan / pattern.makespan - 1.0) * 100.0
    );
    println!("(paper: 38% at the 15-km mesh; 8.35x vs 6.05x overall)");
}
