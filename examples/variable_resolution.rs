//! Variable-resolution SCVT meshes — MPAS's defining feature (Ringler et
//! al. 2011, cited in the paper). A density bump over the TC5 mountain
//! refines the mesh locally; the same kernels run unchanged, and the
//! pattern-driven machinery is resolution-agnostic.
//!
//! ```text
//! cargo run --release --example variable_resolution -- [lloyd_sweeps]
//! ```

use mpas_repro::mesh::{bump_density, generate_variable, MeshQuality};
use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

fn main() {
    let sweeps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    // Refine around the TC5 mountain at (lon = 3π/2, lat = π/6).
    let center = mpas_geom::LonLat::new(1.5 * std::f64::consts::PI, std::f64::consts::PI / 6.0)
        .to_unit_vector();
    let density = bump_density(center, 0.5, 6.0);

    println!("relaxing a level-4 mesh with {sweeps} density-weighted Lloyd sweeps...");
    let mesh = Arc::new(generate_variable(4, sweeps, density));
    println!("quality: {}", MeshQuality::of(&mesh));

    // Report the local spacing contrast.
    let spacing = |near: bool| -> f64 {
        let mut acc = (0.0, 0usize);
        for e in 0..mesh.n_edges() {
            let d = mpas_geom::arc_length(mesh.x_edge[e], center);
            if (d < 0.35) == near && (near || d > 1.8) {
                acc.0 += mesh.dc_edge[e];
                acc.1 += 1;
            }
        }
        acc.0 / acc.1 as f64 / 1000.0
    };
    println!(
        "mean cell spacing: {:.0} km near the mountain vs {:.0} km far away",
        spacing(true),
        spacing(false)
    );

    // The model runs unmodified on the multiresolution mesh.
    let mut m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case5, None);
    let mass0 = m.total_mass();
    m.run_steps(m.steps_for_days(0.25));
    println!(
        "0.25 days: max Courant {:.2}, mass drift {:+.1e}",
        m.max_courant(),
        (m.total_mass() - mass0) / mass0
    );
    assert!(m.max_courant() < 1.0, "unstable step size");
    assert!(((m.total_mass() - mass0) / mass0).abs() < 1e-12);
    println!("OK: multiresolution run conserved mass at a stable Courant number.");
}
