/root/repo/target/debug/examples/distributed_run-2ae1ca1dd235b979.d: examples/distributed_run.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_run-2ae1ca1dd235b979.rmeta: examples/distributed_run.rs Cargo.toml

examples/distributed_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
