/root/repo/target/debug/examples/policy_comparison-b345d21a9b488e53.d: examples/policy_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_comparison-b345d21a9b488e53.rmeta: examples/policy_comparison.rs Cargo.toml

examples/policy_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
