/root/repo/target/debug/examples/rossby_haurwitz-4c663a38ddd46f11.d: examples/rossby_haurwitz.rs

/root/repo/target/debug/examples/rossby_haurwitz-4c663a38ddd46f11: examples/rossby_haurwitz.rs

examples/rossby_haurwitz.rs:
