/root/repo/target/debug/examples/mountain_wave-fe44e70c42574bae.d: examples/mountain_wave.rs Cargo.toml

/root/repo/target/debug/examples/libmountain_wave-fe44e70c42574bae.rmeta: examples/mountain_wave.rs Cargo.toml

examples/mountain_wave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
