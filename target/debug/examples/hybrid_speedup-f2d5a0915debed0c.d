/root/repo/target/debug/examples/hybrid_speedup-f2d5a0915debed0c.d: examples/hybrid_speedup.rs

/root/repo/target/debug/examples/hybrid_speedup-f2d5a0915debed0c: examples/hybrid_speedup.rs

examples/hybrid_speedup.rs:
