/root/repo/target/debug/examples/quickstart-ace6080f6ada7812.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ace6080f6ada7812.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
