/root/repo/target/debug/examples/variable_resolution-26329c156804f1bb.d: examples/variable_resolution.rs Cargo.toml

/root/repo/target/debug/examples/libvariable_resolution-26329c156804f1bb.rmeta: examples/variable_resolution.rs Cargo.toml

examples/variable_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
