/root/repo/target/debug/examples/telemetry_tour-ec074f195d658ff2.d: examples/telemetry_tour.rs Cargo.toml

/root/repo/target/debug/examples/libtelemetry_tour-ec074f195d658ff2.rmeta: examples/telemetry_tour.rs Cargo.toml

examples/telemetry_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
