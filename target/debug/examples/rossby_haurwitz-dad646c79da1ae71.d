/root/repo/target/debug/examples/rossby_haurwitz-dad646c79da1ae71.d: examples/rossby_haurwitz.rs Cargo.toml

/root/repo/target/debug/examples/librossby_haurwitz-dad646c79da1ae71.rmeta: examples/rossby_haurwitz.rs Cargo.toml

examples/rossby_haurwitz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
