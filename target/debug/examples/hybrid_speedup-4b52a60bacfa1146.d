/root/repo/target/debug/examples/hybrid_speedup-4b52a60bacfa1146.d: examples/hybrid_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libhybrid_speedup-4b52a60bacfa1146.rmeta: examples/hybrid_speedup.rs Cargo.toml

examples/hybrid_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
