/root/repo/target/debug/deps/crossbeam_channel-08953c329e3e62bb.d: /tmp/polyfill/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-08953c329e3e62bb.rlib: /tmp/polyfill/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-08953c329e3e62bb.rmeta: /tmp/polyfill/crossbeam-channel/src/lib.rs

/tmp/polyfill/crossbeam-channel/src/lib.rs:
