/root/repo/target/debug/deps/mpas_msg-c057d366e9a248ac.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-c057d366e9a248ac.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
