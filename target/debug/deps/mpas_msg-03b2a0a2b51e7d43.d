/root/repo/target/debug/deps/mpas_msg-03b2a0a2b51e7d43.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_msg-03b2a0a2b51e7d43.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs Cargo.toml

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
