/root/repo/target/debug/deps/mpas_swe-17eec06ceeaa1290.d: crates/swe/src/lib.rs crates/swe/src/checkpoint.rs crates/swe/src/config.rs crates/swe/src/kernels/mod.rs crates/swe/src/kernels/ops.rs crates/swe/src/kernels/scatter.rs crates/swe/src/model.rs crates/swe/src/norms.rs crates/swe/src/reconstruct.rs crates/swe/src/rk4.rs crates/swe/src/state.rs crates/swe/src/testcases.rs crates/swe/src/timeseries.rs

/root/repo/target/debug/deps/libmpas_swe-17eec06ceeaa1290.rmeta: crates/swe/src/lib.rs crates/swe/src/checkpoint.rs crates/swe/src/config.rs crates/swe/src/kernels/mod.rs crates/swe/src/kernels/ops.rs crates/swe/src/kernels/scatter.rs crates/swe/src/model.rs crates/swe/src/norms.rs crates/swe/src/reconstruct.rs crates/swe/src/rk4.rs crates/swe/src/state.rs crates/swe/src/testcases.rs crates/swe/src/timeseries.rs

crates/swe/src/lib.rs:
crates/swe/src/checkpoint.rs:
crates/swe/src/config.rs:
crates/swe/src/kernels/mod.rs:
crates/swe/src/kernels/ops.rs:
crates/swe/src/kernels/scatter.rs:
crates/swe/src/model.rs:
crates/swe/src/norms.rs:
crates/swe/src/reconstruct.rs:
crates/swe/src/rk4.rs:
crates/swe/src/state.rs:
crates/swe/src/testcases.rs:
crates/swe/src/timeseries.rs:
