/root/repo/target/debug/deps/mpas_telemetry-a1f0f8ab1de03333.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/debug/deps/libmpas_telemetry-a1f0f8ab1de03333.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
