/root/repo/target/debug/deps/serde-eb1549837cdf3a51.d: /tmp/polyfill/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-eb1549837cdf3a51.rmeta: /tmp/polyfill/serde/src/lib.rs

/tmp/polyfill/serde/src/lib.rs:
