/root/repo/target/debug/deps/mpas_hybrid-13238443e9b1a4d6.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/libmpas_hybrid-13238443e9b1a4d6.rlib: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/libmpas_hybrid-13238443e9b1a4d6.rmeta: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
