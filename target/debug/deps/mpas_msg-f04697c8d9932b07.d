/root/repo/target/debug/deps/mpas_msg-f04697c8d9932b07.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/mpas_msg-f04697c8d9932b07: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
