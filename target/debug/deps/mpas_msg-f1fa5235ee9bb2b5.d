/root/repo/target/debug/deps/mpas_msg-f1fa5235ee9bb2b5.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-f1fa5235ee9bb2b5.rlib: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-f1fa5235ee9bb2b5.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
