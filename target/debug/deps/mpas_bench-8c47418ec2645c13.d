/root/repo/target/debug/deps/mpas_bench-8c47418ec2645c13.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/mpas_bench-8c47418ec2645c13: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
