/root/repo/target/debug/deps/mpas_patterns-861fccb934e8ab2b.d: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_patterns-861fccb934e8ab2b.rmeta: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs Cargo.toml

crates/patterns/src/lib.rs:
crates/patterns/src/codegen.rs:
crates/patterns/src/dataflow.rs:
crates/patterns/src/export.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/profile.rs:
crates/patterns/src/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
