/root/repo/target/debug/deps/mpas_repro-bfc3af75827d9ed4.d: src/lib.rs

/root/repo/target/debug/deps/libmpas_repro-bfc3af75827d9ed4.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpas_repro-bfc3af75827d9ed4.rmeta: src/lib.rs

src/lib.rs:
