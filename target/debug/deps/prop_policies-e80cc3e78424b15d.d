/root/repo/target/debug/deps/prop_policies-e80cc3e78424b15d.d: crates/sched/tests/prop_policies.rs

/root/repo/target/debug/deps/prop_policies-e80cc3e78424b15d: crates/sched/tests/prop_policies.rs

crates/sched/tests/prop_policies.rs:
