/root/repo/target/debug/deps/telemetry_overhead-f64b2abd86a97065.d: crates/bench/tests/telemetry_overhead.rs

/root/repo/target/debug/deps/telemetry_overhead-f64b2abd86a97065: crates/bench/tests/telemetry_overhead.rs

crates/bench/tests/telemetry_overhead.rs:
