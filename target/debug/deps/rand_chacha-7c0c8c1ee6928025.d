/root/repo/target/debug/deps/rand_chacha-7c0c8c1ee6928025.d: /tmp/polyfill/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-7c0c8c1ee6928025.rlib: /tmp/polyfill/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-7c0c8c1ee6928025.rmeta: /tmp/polyfill/rand_chacha/src/lib.rs

/tmp/polyfill/rand_chacha/src/lib.rs:
