/root/repo/target/debug/deps/mpas_mesh-d9888758d0673252.d: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_mesh-d9888758d0673252.rmeta: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/density.rs:
crates/mesh/src/icosahedron.rs:
crates/mesh/src/io.rs:
crates/mesh/src/lloyd.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
crates/mesh/src/quality.rs:
crates/mesh/src/sfc.rs:
crates/mesh/src/submesh.rs:
crates/mesh/src/voronoi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
