/root/repo/target/debug/deps/parking_lot-3bce967d0663e058.d: /tmp/polyfill/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3bce967d0663e058.rmeta: /tmp/polyfill/parking_lot/src/lib.rs

/tmp/polyfill/parking_lot/src/lib.rs:
