/root/repo/target/debug/deps/criterion-9fa6274b9d97a011.d: /tmp/polyfill/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9fa6274b9d97a011.rmeta: /tmp/polyfill/criterion/src/lib.rs

/tmp/polyfill/criterion/src/lib.rs:
