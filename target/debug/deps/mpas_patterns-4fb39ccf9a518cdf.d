/root/repo/target/debug/deps/mpas_patterns-4fb39ccf9a518cdf.d: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/debug/deps/libmpas_patterns-4fb39ccf9a518cdf.rlib: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/debug/deps/libmpas_patterns-4fb39ccf9a518cdf.rmeta: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

crates/patterns/src/lib.rs:
crates/patterns/src/codegen.rs:
crates/patterns/src/dataflow.rs:
crates/patterns/src/export.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/profile.rs:
crates/patterns/src/reduction.rs:
