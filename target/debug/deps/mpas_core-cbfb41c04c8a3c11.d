/root/repo/target/debug/deps/mpas_core-cbfb41c04c8a3c11.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/mpas_core-cbfb41c04c8a3c11: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
