/root/repo/target/debug/deps/mpas_repro-d099baa6c2c0573e.d: src/lib.rs

/root/repo/target/debug/deps/libmpas_repro-d099baa6c2c0573e.rmeta: src/lib.rs

src/lib.rs:
