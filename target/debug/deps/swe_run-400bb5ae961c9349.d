/root/repo/target/debug/deps/swe_run-400bb5ae961c9349.d: crates/bench/src/bin/swe_run.rs

/root/repo/target/debug/deps/swe_run-400bb5ae961c9349: crates/bench/src/bin/swe_run.rs

crates/bench/src/bin/swe_run.rs:
