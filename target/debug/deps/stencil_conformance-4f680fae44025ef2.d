/root/repo/target/debug/deps/stencil_conformance-4f680fae44025ef2.d: tests/stencil_conformance.rs

/root/repo/target/debug/deps/stencil_conformance-4f680fae44025ef2: tests/stencil_conformance.rs

tests/stencil_conformance.rs:
