/root/repo/target/debug/deps/figures-9aa89812b41feec2.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-9aa89812b41feec2.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
