/root/repo/target/debug/deps/mpas_patterns-80d948f365b0cc8c.d: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/debug/deps/libmpas_patterns-80d948f365b0cc8c.rlib: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/debug/deps/libmpas_patterns-80d948f365b0cc8c.rmeta: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

crates/patterns/src/lib.rs:
crates/patterns/src/codegen.rs:
crates/patterns/src/dataflow.rs:
crates/patterns/src/export.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/profile.rs:
crates/patterns/src/reduction.rs:
