/root/repo/target/debug/deps/rand-d301b9c4604f8184.d: /tmp/polyfill/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d301b9c4604f8184.rlib: /tmp/polyfill/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d301b9c4604f8184.rmeta: /tmp/polyfill/rand/src/lib.rs

/tmp/polyfill/rand/src/lib.rs:
