/root/repo/target/debug/deps/mpas_hybrid-675a6e45c38a161d.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/mpas_hybrid-675a6e45c38a161d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
