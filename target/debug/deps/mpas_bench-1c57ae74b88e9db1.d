/root/repo/target/debug/deps/mpas_bench-1c57ae74b88e9db1.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-1c57ae74b88e9db1.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-1c57ae74b88e9db1.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
