/root/repo/target/debug/deps/parking_lot-af9146c30246d1e0.d: /tmp/polyfill/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-af9146c30246d1e0.rlib: /tmp/polyfill/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-af9146c30246d1e0.rmeta: /tmp/polyfill/parking_lot/src/lib.rs

/tmp/polyfill/parking_lot/src/lib.rs:
