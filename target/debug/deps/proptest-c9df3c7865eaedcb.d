/root/repo/target/debug/deps/proptest-c9df3c7865eaedcb.d: /tmp/polyfill/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c9df3c7865eaedcb.rlib: /tmp/polyfill/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c9df3c7865eaedcb.rmeta: /tmp/polyfill/proptest/src/lib.rs

/tmp/polyfill/proptest/src/lib.rs:
