/root/repo/target/debug/deps/telemetry_integration-294c12a9cc057579.d: tests/telemetry_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_integration-294c12a9cc057579.rmeta: tests/telemetry_integration.rs Cargo.toml

tests/telemetry_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
