/root/repo/target/debug/deps/mpas_msg-8928bcbd0136d3f0.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-8928bcbd0136d3f0.rlib: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-8928bcbd0136d3f0.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
