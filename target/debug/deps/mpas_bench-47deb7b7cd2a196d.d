/root/repo/target/debug/deps/mpas_bench-47deb7b7cd2a196d.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-47deb7b7cd2a196d.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-47deb7b7cd2a196d.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
