/root/repo/target/debug/deps/mpas_sched-96df355e2eaafa1a.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

/root/repo/target/debug/deps/libmpas_sched-96df355e2eaafa1a.rlib: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

/root/repo/target/debug/deps/libmpas_sched-96df355e2eaafa1a.rmeta: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
crates/sched/src/telemetry.rs:
