/root/repo/target/debug/deps/serde-40aa352dac7ec332.d: /tmp/polyfill/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-40aa352dac7ec332.rlib: /tmp/polyfill/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-40aa352dac7ec332.rmeta: /tmp/polyfill/serde/src/lib.rs

/tmp/polyfill/serde/src/lib.rs:
