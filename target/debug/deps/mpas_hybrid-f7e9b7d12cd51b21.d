/root/repo/target/debug/deps/mpas_hybrid-f7e9b7d12cd51b21.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/libmpas_hybrid-f7e9b7d12cd51b21.rlib: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/libmpas_hybrid-f7e9b7d12cd51b21.rmeta: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
