/root/repo/target/debug/deps/mpas_sched-1fa3e2f7284eb02e.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs

/root/repo/target/debug/deps/libmpas_sched-1fa3e2f7284eb02e.rlib: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs

/root/repo/target/debug/deps/libmpas_sched-1fa3e2f7284eb02e.rmeta: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
