/root/repo/target/debug/deps/prop_cross_crate-4be59b7b84fcba42.d: tests/prop_cross_crate.rs

/root/repo/target/debug/deps/prop_cross_crate-4be59b7b84fcba42: tests/prop_cross_crate.rs

tests/prop_cross_crate.rs:
