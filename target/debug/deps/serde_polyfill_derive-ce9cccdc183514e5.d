/root/repo/target/debug/deps/serde_polyfill_derive-ce9cccdc183514e5.d: /tmp/polyfill/serde_polyfill_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_polyfill_derive-ce9cccdc183514e5.so: /tmp/polyfill/serde_polyfill_derive/src/lib.rs

/tmp/polyfill/serde_polyfill_derive/src/lib.rs:
