/root/repo/target/debug/deps/mpas_mesh-63c12339384560e6.d: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs

/root/repo/target/debug/deps/libmpas_mesh-63c12339384560e6.rlib: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs

/root/repo/target/debug/deps/libmpas_mesh-63c12339384560e6.rmeta: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs

crates/mesh/src/lib.rs:
crates/mesh/src/density.rs:
crates/mesh/src/icosahedron.rs:
crates/mesh/src/io.rs:
crates/mesh/src/lloyd.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
crates/mesh/src/quality.rs:
crates/mesh/src/sfc.rs:
crates/mesh/src/submesh.rs:
crates/mesh/src/voronoi.rs:
