/root/repo/target/debug/deps/mpas_geom-6b1e140f2af4059f.d: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/debug/deps/libmpas_geom-6b1e140f2af4059f.rlib: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/debug/deps/libmpas_geom-6b1e140f2af4059f.rmeta: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

crates/geom/src/lib.rs:
crates/geom/src/constants.rs:
crates/geom/src/lonlat.rs:
crates/geom/src/rotation.rs:
crates/geom/src/sphere.rs:
crates/geom/src/vec3.rs:
