/root/repo/target/debug/deps/mpas_core-69aef640486c9be7.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-69aef640486c9be7.rlib: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-69aef640486c9be7.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
