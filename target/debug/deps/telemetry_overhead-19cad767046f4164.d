/root/repo/target/debug/deps/telemetry_overhead-19cad767046f4164.d: crates/bench/tests/telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_overhead-19cad767046f4164.rmeta: crates/bench/tests/telemetry_overhead.rs Cargo.toml

crates/bench/tests/telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
