/root/repo/target/debug/deps/swe_run-76f431b34fb576fd.d: crates/bench/src/bin/swe_run.rs

/root/repo/target/debug/deps/swe_run-76f431b34fb576fd: crates/bench/src/bin/swe_run.rs

crates/bench/src/bin/swe_run.rs:
