/root/repo/target/debug/deps/rayon-59cc09f8bd43c09f.d: /tmp/polyfill/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-59cc09f8bd43c09f.rlib: /tmp/polyfill/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-59cc09f8bd43c09f.rmeta: /tmp/polyfill/rayon/src/lib.rs

/tmp/polyfill/rayon/src/lib.rs:
