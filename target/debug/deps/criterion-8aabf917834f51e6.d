/root/repo/target/debug/deps/criterion-8aabf917834f51e6.d: /tmp/polyfill/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8aabf917834f51e6.rlib: /tmp/polyfill/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8aabf917834f51e6.rmeta: /tmp/polyfill/criterion/src/lib.rs

/tmp/polyfill/criterion/src/lib.rs:
