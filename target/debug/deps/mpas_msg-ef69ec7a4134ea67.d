/root/repo/target/debug/deps/mpas_msg-ef69ec7a4134ea67.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-ef69ec7a4134ea67.rlib: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-ef69ec7a4134ea67.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
