/root/repo/target/debug/deps/swe_run-84c00c5a48e20f52.d: crates/bench/src/bin/swe_run.rs

/root/repo/target/debug/deps/libswe_run-84c00c5a48e20f52.rmeta: crates/bench/src/bin/swe_run.rs

crates/bench/src/bin/swe_run.rs:
