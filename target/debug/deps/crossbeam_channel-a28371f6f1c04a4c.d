/root/repo/target/debug/deps/crossbeam_channel-a28371f6f1c04a4c.d: /tmp/polyfill/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-a28371f6f1c04a4c.rmeta: /tmp/polyfill/crossbeam-channel/src/lib.rs

/tmp/polyfill/crossbeam-channel/src/lib.rs:
