/root/repo/target/debug/deps/mpas_geom-e657966d20501a27.d: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/debug/deps/libmpas_geom-e657966d20501a27.rlib: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/debug/deps/libmpas_geom-e657966d20501a27.rmeta: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

crates/geom/src/lib.rs:
crates/geom/src/constants.rs:
crates/geom/src/lonlat.rs:
crates/geom/src/rotation.rs:
crates/geom/src/sphere.rs:
crates/geom/src/vec3.rs:
