/root/repo/target/debug/deps/rayon-754b39a30d8ae5ed.d: /tmp/polyfill/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-754b39a30d8ae5ed.rmeta: /tmp/polyfill/rayon/src/lib.rs

/tmp/polyfill/rayon/src/lib.rs:
