/root/repo/target/debug/deps/mpas_geom-62413941da07d915.d: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_geom-62413941da07d915.rmeta: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/constants.rs:
crates/geom/src/lonlat.rs:
crates/geom/src/rotation.rs:
crates/geom/src/sphere.rs:
crates/geom/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
