/root/repo/target/debug/deps/mpas_geom-dcb7092315e26e75.d: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/debug/deps/libmpas_geom-dcb7092315e26e75.rmeta: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

crates/geom/src/lib.rs:
crates/geom/src/constants.rs:
crates/geom/src/lonlat.rs:
crates/geom/src/rotation.rs:
crates/geom/src/sphere.rs:
crates/geom/src/vec3.rs:
