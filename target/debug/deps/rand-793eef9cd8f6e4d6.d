/root/repo/target/debug/deps/rand-793eef9cd8f6e4d6.d: /tmp/polyfill/rand/src/lib.rs

/root/repo/target/debug/deps/librand-793eef9cd8f6e4d6.rmeta: /tmp/polyfill/rand/src/lib.rs

/tmp/polyfill/rand/src/lib.rs:
