/root/repo/target/debug/deps/swe_run-e4a9ad15cb73dd86.d: crates/bench/src/bin/swe_run.rs

/root/repo/target/debug/deps/swe_run-e4a9ad15cb73dd86: crates/bench/src/bin/swe_run.rs

crates/bench/src/bin/swe_run.rs:
