/root/repo/target/debug/deps/mpas_core-f648b29f9b42ff06.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-f648b29f9b42ff06.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
