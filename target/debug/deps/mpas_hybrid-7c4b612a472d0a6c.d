/root/repo/target/debug/deps/mpas_hybrid-7c4b612a472d0a6c.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/libmpas_hybrid-7c4b612a472d0a6c.rmeta: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
