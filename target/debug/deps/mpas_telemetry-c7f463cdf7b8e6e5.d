/root/repo/target/debug/deps/mpas_telemetry-c7f463cdf7b8e6e5.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_telemetry-c7f463cdf7b8e6e5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
