/root/repo/target/debug/deps/mpas_sched-3135b6507bb93f39.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

/root/repo/target/debug/deps/mpas_sched-3135b6507bb93f39: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
crates/sched/src/telemetry.rs:
