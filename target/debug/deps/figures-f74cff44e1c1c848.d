/root/repo/target/debug/deps/figures-f74cff44e1c1c848.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-f74cff44e1c1c848: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
