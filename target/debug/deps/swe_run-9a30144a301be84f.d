/root/repo/target/debug/deps/swe_run-9a30144a301be84f.d: crates/bench/src/bin/swe_run.rs Cargo.toml

/root/repo/target/debug/deps/libswe_run-9a30144a301be84f.rmeta: crates/bench/src/bin/swe_run.rs Cargo.toml

crates/bench/src/bin/swe_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
