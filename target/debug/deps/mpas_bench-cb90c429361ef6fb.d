/root/repo/target/debug/deps/mpas_bench-cb90c429361ef6fb.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-cb90c429361ef6fb.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
