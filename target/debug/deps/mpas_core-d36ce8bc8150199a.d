/root/repo/target/debug/deps/mpas_core-d36ce8bc8150199a.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-d36ce8bc8150199a.rlib: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-d36ce8bc8150199a.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
