/root/repo/target/debug/deps/mpas_sched-612e5f5aa97b2098.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_sched-612e5f5aa97b2098.rmeta: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
crates/sched/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
