/root/repo/target/debug/deps/advection_case1-1dc7dee5f8b74a6d.d: tests/advection_case1.rs

/root/repo/target/debug/deps/advection_case1-1dc7dee5f8b74a6d: tests/advection_case1.rs

tests/advection_case1.rs:
