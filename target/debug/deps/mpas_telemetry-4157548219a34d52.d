/root/repo/target/debug/deps/mpas_telemetry-4157548219a34d52.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_telemetry-4157548219a34d52.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
