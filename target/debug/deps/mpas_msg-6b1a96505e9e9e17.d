/root/repo/target/debug/deps/mpas_msg-6b1a96505e9e9e17.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_msg-6b1a96505e9e9e17.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs Cargo.toml

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
