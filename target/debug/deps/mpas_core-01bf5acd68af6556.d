/root/repo/target/debug/deps/mpas_core-01bf5acd68af6556.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_core-01bf5acd68af6556.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
