/root/repo/target/debug/deps/rand_chacha-2687b75bd9d89360.d: /tmp/polyfill/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-2687b75bd9d89360.rmeta: /tmp/polyfill/rand_chacha/src/lib.rs

/tmp/polyfill/rand_chacha/src/lib.rs:
