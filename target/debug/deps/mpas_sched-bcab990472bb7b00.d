/root/repo/target/debug/deps/mpas_sched-bcab990472bb7b00.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs

/root/repo/target/debug/deps/libmpas_sched-bcab990472bb7b00.rmeta: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
