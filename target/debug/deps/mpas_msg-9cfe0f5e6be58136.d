/root/repo/target/debug/deps/mpas_msg-9cfe0f5e6be58136.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/debug/deps/libmpas_msg-9cfe0f5e6be58136.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
