/root/repo/target/debug/deps/mpas_bench-76074fe2b4ea2999.d: crates/bench/src/lib.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_bench-76074fe2b4ea2999.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
