/root/repo/target/debug/deps/mpas_bench-b97eff80270b3ee7.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-b97eff80270b3ee7.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libmpas_bench-b97eff80270b3ee7.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
