/root/repo/target/debug/deps/mpas_sched-85976d68b67ab697.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

/root/repo/target/debug/deps/libmpas_sched-85976d68b67ab697.rmeta: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
crates/sched/src/telemetry.rs:
