/root/repo/target/debug/deps/crossbeam-3dfa84f4b63a56d9.d: /tmp/polyfill/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-3dfa84f4b63a56d9.rmeta: /tmp/polyfill/crossbeam/src/lib.rs

/tmp/polyfill/crossbeam/src/lib.rs:
