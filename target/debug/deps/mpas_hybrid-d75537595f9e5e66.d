/root/repo/target/debug/deps/mpas_hybrid-d75537595f9e5e66.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/debug/deps/libmpas_hybrid-d75537595f9e5e66.rmeta: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
