/root/repo/target/debug/deps/mpas_core-3a8dfd38356a21d1.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-3a8dfd38356a21d1.rlib: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/debug/deps/libmpas_core-3a8dfd38356a21d1.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
