/root/repo/target/debug/deps/proptest-820d759184434282.d: /tmp/polyfill/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-820d759184434282.rmeta: /tmp/polyfill/proptest/src/lib.rs

/tmp/polyfill/proptest/src/lib.rs:
