/root/repo/target/debug/deps/mpas_repro-7dd59e33aa32fa60.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_repro-7dd59e33aa32fa60.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
