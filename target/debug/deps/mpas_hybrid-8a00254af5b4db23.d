/root/repo/target/debug/deps/mpas_hybrid-8a00254af5b4db23.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmpas_hybrid-8a00254af5b4db23.rmeta: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs Cargo.toml

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
