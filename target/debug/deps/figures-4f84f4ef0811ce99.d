/root/repo/target/debug/deps/figures-4f84f4ef0811ce99.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-4f84f4ef0811ce99.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
