/root/repo/target/debug/deps/mpas_telemetry-7f7749a9f411ba20.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/debug/deps/libmpas_telemetry-7f7749a9f411ba20.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/debug/deps/libmpas_telemetry-7f7749a9f411ba20.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
