/root/repo/target/debug/deps/figures-83b0315a04505142.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-83b0315a04505142: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
