/root/repo/target/debug/deps/mpas_telemetry-c9aa0832aa7ba42f.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/debug/deps/libmpas_telemetry-c9aa0832aa7ba42f.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/debug/deps/libmpas_telemetry-c9aa0832aa7ba42f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
