/root/repo/target/debug/deps/crossbeam-1f6661cc3e832e3b.d: /tmp/polyfill/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1f6661cc3e832e3b.rlib: /tmp/polyfill/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1f6661cc3e832e3b.rmeta: /tmp/polyfill/crossbeam/src/lib.rs

/tmp/polyfill/crossbeam/src/lib.rs:
