/root/repo/target/debug/deps/figures-2190e0ebe156ddc2.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-2190e0ebe156ddc2: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
