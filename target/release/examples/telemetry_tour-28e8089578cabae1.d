/root/repo/target/release/examples/telemetry_tour-28e8089578cabae1.d: examples/telemetry_tour.rs

/root/repo/target/release/examples/telemetry_tour-28e8089578cabae1: examples/telemetry_tour.rs

examples/telemetry_tour.rs:
