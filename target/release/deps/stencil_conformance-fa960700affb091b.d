/root/repo/target/release/deps/stencil_conformance-fa960700affb091b.d: tests/stencil_conformance.rs

/root/repo/target/release/deps/stencil_conformance-fa960700affb091b: tests/stencil_conformance.rs

tests/stencil_conformance.rs:
