/root/repo/target/release/deps/mpas_msg-420880c1a5616863.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/release/deps/mpas_msg-420880c1a5616863: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
