/root/repo/target/release/deps/rayon-437e9c3885527b68.d: /tmp/polyfill/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-437e9c3885527b68.rlib: /tmp/polyfill/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-437e9c3885527b68.rmeta: /tmp/polyfill/rayon/src/lib.rs

/tmp/polyfill/rayon/src/lib.rs:
