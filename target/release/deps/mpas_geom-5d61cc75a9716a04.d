/root/repo/target/release/deps/mpas_geom-5d61cc75a9716a04.d: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/release/deps/mpas_geom-5d61cc75a9716a04: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

crates/geom/src/lib.rs:
crates/geom/src/constants.rs:
crates/geom/src/lonlat.rs:
crates/geom/src/rotation.rs:
crates/geom/src/sphere.rs:
crates/geom/src/vec3.rs:
