/root/repo/target/release/deps/mpas_repro-393a30a2913499eb.d: src/lib.rs

/root/repo/target/release/deps/libmpas_repro-393a30a2913499eb.rlib: src/lib.rs

/root/repo/target/release/deps/libmpas_repro-393a30a2913499eb.rmeta: src/lib.rs

src/lib.rs:
