/root/repo/target/release/deps/hyperviscosity-a73c3cdac7c73b58.d: tests/hyperviscosity.rs

/root/repo/target/release/deps/hyperviscosity-a73c3cdac7c73b58: tests/hyperviscosity.rs

tests/hyperviscosity.rs:
