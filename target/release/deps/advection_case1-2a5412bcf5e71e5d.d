/root/repo/target/release/deps/advection_case1-2a5412bcf5e71e5d.d: tests/advection_case1.rs

/root/repo/target/release/deps/advection_case1-2a5412bcf5e71e5d: tests/advection_case1.rs

tests/advection_case1.rs:
