/root/repo/target/release/deps/mpas_bench-92759a9d7bae9265.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libmpas_bench-92759a9d7bae9265.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libmpas_bench-92759a9d7bae9265.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
