/root/repo/target/release/deps/mpas_hybrid-01995ef46979d815.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/release/deps/mpas_hybrid-01995ef46979d815: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
