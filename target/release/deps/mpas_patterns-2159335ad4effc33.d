/root/repo/target/release/deps/mpas_patterns-2159335ad4effc33.d: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/release/deps/mpas_patterns-2159335ad4effc33: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

crates/patterns/src/lib.rs:
crates/patterns/src/codegen.rs:
crates/patterns/src/dataflow.rs:
crates/patterns/src/export.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/profile.rs:
crates/patterns/src/reduction.rs:
