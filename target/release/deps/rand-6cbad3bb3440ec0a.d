/root/repo/target/release/deps/rand-6cbad3bb3440ec0a.d: /tmp/polyfill/rand/src/lib.rs

/root/repo/target/release/deps/librand-6cbad3bb3440ec0a.rlib: /tmp/polyfill/rand/src/lib.rs

/root/repo/target/release/deps/librand-6cbad3bb3440ec0a.rmeta: /tmp/polyfill/rand/src/lib.rs

/tmp/polyfill/rand/src/lib.rs:
