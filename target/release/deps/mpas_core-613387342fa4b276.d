/root/repo/target/release/deps/mpas_core-613387342fa4b276.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/release/deps/mpas_core-613387342fa4b276: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
