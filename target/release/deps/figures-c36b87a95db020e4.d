/root/repo/target/release/deps/figures-c36b87a95db020e4.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-c36b87a95db020e4: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
