/root/repo/target/release/deps/criterion-e9ebefe21edf0213.d: /tmp/polyfill/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e9ebefe21edf0213.rlib: /tmp/polyfill/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e9ebefe21edf0213.rmeta: /tmp/polyfill/criterion/src/lib.rs

/tmp/polyfill/criterion/src/lib.rs:
