/root/repo/target/release/deps/mpas_geom-c9ecf714a71c8d25.d: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/release/deps/libmpas_geom-c9ecf714a71c8d25.rlib: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

/root/repo/target/release/deps/libmpas_geom-c9ecf714a71c8d25.rmeta: crates/geom/src/lib.rs crates/geom/src/constants.rs crates/geom/src/lonlat.rs crates/geom/src/rotation.rs crates/geom/src/sphere.rs crates/geom/src/vec3.rs

crates/geom/src/lib.rs:
crates/geom/src/constants.rs:
crates/geom/src/lonlat.rs:
crates/geom/src/rotation.rs:
crates/geom/src/sphere.rs:
crates/geom/src/vec3.rs:
