/root/repo/target/release/deps/serde_polyfill_derive-5ec4d6a640444553.d: /tmp/polyfill/serde_polyfill_derive/src/lib.rs

/root/repo/target/release/deps/libserde_polyfill_derive-5ec4d6a640444553.so: /tmp/polyfill/serde_polyfill_derive/src/lib.rs

/tmp/polyfill/serde_polyfill_derive/src/lib.rs:
