/root/repo/target/release/deps/mpas_telemetry-7885f471f3355d3e.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/release/deps/mpas_telemetry-7885f471f3355d3e: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
