/root/repo/target/release/deps/telemetry_integration-61f9abf2b29da3cc.d: tests/telemetry_integration.rs

/root/repo/target/release/deps/telemetry_integration-61f9abf2b29da3cc: tests/telemetry_integration.rs

tests/telemetry_integration.rs:
