/root/repo/target/release/deps/mpas_patterns-3d1a3702465f3f45.d: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/release/deps/libmpas_patterns-3d1a3702465f3f45.rlib: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

/root/repo/target/release/deps/libmpas_patterns-3d1a3702465f3f45.rmeta: crates/patterns/src/lib.rs crates/patterns/src/codegen.rs crates/patterns/src/dataflow.rs crates/patterns/src/export.rs crates/patterns/src/pattern.rs crates/patterns/src/profile.rs crates/patterns/src/reduction.rs

crates/patterns/src/lib.rs:
crates/patterns/src/codegen.rs:
crates/patterns/src/dataflow.rs:
crates/patterns/src/export.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/profile.rs:
crates/patterns/src/reduction.rs:
