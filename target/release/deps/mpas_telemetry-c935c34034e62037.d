/root/repo/target/release/deps/mpas_telemetry-c935c34034e62037.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/release/deps/libmpas_telemetry-c935c34034e62037.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

/root/repo/target/release/deps/libmpas_telemetry-c935c34034e62037.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
