/root/repo/target/release/deps/rand_chacha-b4daeadd767a9ee8.d: /tmp/polyfill/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-b4daeadd767a9ee8.rlib: /tmp/polyfill/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-b4daeadd767a9ee8.rmeta: /tmp/polyfill/rand_chacha/src/lib.rs

/tmp/polyfill/rand_chacha/src/lib.rs:
