/root/repo/target/release/deps/mpas_mesh-9199587fbab08ac0.d: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs

/root/repo/target/release/deps/libmpas_mesh-9199587fbab08ac0.rlib: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs

/root/repo/target/release/deps/libmpas_mesh-9199587fbab08ac0.rmeta: crates/mesh/src/lib.rs crates/mesh/src/density.rs crates/mesh/src/icosahedron.rs crates/mesh/src/io.rs crates/mesh/src/lloyd.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs crates/mesh/src/quality.rs crates/mesh/src/sfc.rs crates/mesh/src/submesh.rs crates/mesh/src/voronoi.rs

crates/mesh/src/lib.rs:
crates/mesh/src/density.rs:
crates/mesh/src/icosahedron.rs:
crates/mesh/src/io.rs:
crates/mesh/src/lloyd.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
crates/mesh/src/quality.rs:
crates/mesh/src/sfc.rs:
crates/mesh/src/submesh.rs:
crates/mesh/src/voronoi.rs:
