/root/repo/target/release/deps/mpas_bench-4bb04c0d4f495506.d: crates/bench/src/lib.rs crates/bench/src/render.rs

/root/repo/target/release/deps/mpas_bench-4bb04c0d4f495506: crates/bench/src/lib.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
