/root/repo/target/release/deps/crossbeam-f9aabcbecd9645b5.d: /tmp/polyfill/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f9aabcbecd9645b5.rlib: /tmp/polyfill/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f9aabcbecd9645b5.rmeta: /tmp/polyfill/crossbeam/src/lib.rs

/tmp/polyfill/crossbeam/src/lib.rs:
