/root/repo/target/release/deps/swe_run-0bf7fa0e8a7aa9d2.d: crates/bench/src/bin/swe_run.rs

/root/repo/target/release/deps/swe_run-0bf7fa0e8a7aa9d2: crates/bench/src/bin/swe_run.rs

crates/bench/src/bin/swe_run.rs:
