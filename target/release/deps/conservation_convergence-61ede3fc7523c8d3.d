/root/repo/target/release/deps/conservation_convergence-61ede3fc7523c8d3.d: tests/conservation_convergence.rs

/root/repo/target/release/deps/conservation_convergence-61ede3fc7523c8d3: tests/conservation_convergence.rs

tests/conservation_convergence.rs:
