/root/repo/target/release/deps/serde-467d2b936b2d5a2d.d: /tmp/polyfill/serde/src/lib.rs

/root/repo/target/release/deps/libserde-467d2b936b2d5a2d.rlib: /tmp/polyfill/serde/src/lib.rs

/root/repo/target/release/deps/libserde-467d2b936b2d5a2d.rmeta: /tmp/polyfill/serde/src/lib.rs

/tmp/polyfill/serde/src/lib.rs:
