/root/repo/target/release/deps/proptest-1021cc35abd2d3be.d: /tmp/polyfill/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1021cc35abd2d3be.rlib: /tmp/polyfill/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1021cc35abd2d3be.rmeta: /tmp/polyfill/proptest/src/lib.rs

/tmp/polyfill/proptest/src/lib.rs:
