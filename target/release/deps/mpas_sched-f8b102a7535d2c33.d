/root/repo/target/release/deps/mpas_sched-f8b102a7535d2c33.d: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

/root/repo/target/release/deps/libmpas_sched-f8b102a7535d2c33.rlib: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

/root/repo/target/release/deps/libmpas_sched-f8b102a7535d2c33.rmeta: crates/sched/src/lib.rs crates/sched/src/dag.rs crates/sched/src/list.rs crates/sched/src/paper.rs crates/sched/src/platform.rs crates/sched/src/policy.rs crates/sched/src/schedule.rs crates/sched/src/telemetry.rs

crates/sched/src/lib.rs:
crates/sched/src/dag.rs:
crates/sched/src/list.rs:
crates/sched/src/paper.rs:
crates/sched/src/platform.rs:
crates/sched/src/policy.rs:
crates/sched/src/schedule.rs:
crates/sched/src/telemetry.rs:
