/root/repo/target/release/deps/crossbeam_channel-ca01074d3405e48b.d: /tmp/polyfill/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-ca01074d3405e48b.rlib: /tmp/polyfill/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-ca01074d3405e48b.rmeta: /tmp/polyfill/crossbeam-channel/src/lib.rs

/tmp/polyfill/crossbeam-channel/src/lib.rs:
