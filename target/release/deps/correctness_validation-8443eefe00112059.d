/root/repo/target/release/deps/correctness_validation-8443eefe00112059.d: tests/correctness_validation.rs

/root/repo/target/release/deps/correctness_validation-8443eefe00112059: tests/correctness_validation.rs

tests/correctness_validation.rs:
