/root/repo/target/release/deps/parking_lot-fe76314b66fbd4fd.d: /tmp/polyfill/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-fe76314b66fbd4fd.rlib: /tmp/polyfill/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-fe76314b66fbd4fd.rmeta: /tmp/polyfill/parking_lot/src/lib.rs

/tmp/polyfill/parking_lot/src/lib.rs:
