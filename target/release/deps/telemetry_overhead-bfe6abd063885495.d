/root/repo/target/release/deps/telemetry_overhead-bfe6abd063885495.d: crates/bench/tests/telemetry_overhead.rs

/root/repo/target/release/deps/telemetry_overhead-bfe6abd063885495: crates/bench/tests/telemetry_overhead.rs

crates/bench/tests/telemetry_overhead.rs:
