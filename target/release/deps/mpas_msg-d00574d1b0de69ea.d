/root/repo/target/release/deps/mpas_msg-d00574d1b0de69ea.d: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/release/deps/libmpas_msg-d00574d1b0de69ea.rlib: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

/root/repo/target/release/deps/libmpas_msg-d00574d1b0de69ea.rmeta: crates/msg/src/lib.rs crates/msg/src/comm.rs crates/msg/src/cost.rs crates/msg/src/halo.rs

crates/msg/src/lib.rs:
crates/msg/src/comm.rs:
crates/msg/src/cost.rs:
crates/msg/src/halo.rs:
