/root/repo/target/release/deps/mpas_core-32de7c1a49d98d35.d: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/release/deps/libmpas_core-32de7c1a49d98d35.rlib: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

/root/repo/target/release/deps/libmpas_core-32de7c1a49d98d35.rmeta: crates/core/src/lib.rs crates/core/src/distributed.rs crates/core/src/simulation.rs

crates/core/src/lib.rs:
crates/core/src/distributed.rs:
crates/core/src/simulation.rs:
