/root/repo/target/release/deps/paper_scale_smoke-b60eda244e707d69.d: tests/paper_scale_smoke.rs

/root/repo/target/release/deps/paper_scale_smoke-b60eda244e707d69: tests/paper_scale_smoke.rs

tests/paper_scale_smoke.rs:
