/root/repo/target/release/deps/experiment_shapes-b16d5ea158474d05.d: tests/experiment_shapes.rs

/root/repo/target/release/deps/experiment_shapes-b16d5ea158474d05: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
