/root/repo/target/release/deps/mpas_hybrid-e98ddf1680b53b7e.d: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/release/deps/libmpas_hybrid-e98ddf1680b53b7e.rlib: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

/root/repo/target/release/deps/libmpas_hybrid-e98ddf1680b53b7e.rmeta: crates/hybrid/src/lib.rs crates/hybrid/src/ablation.rs crates/hybrid/src/calibrate.rs crates/hybrid/src/device.rs crates/hybrid/src/ladder.rs crates/hybrid/src/parallel.rs crates/hybrid/src/sched.rs crates/hybrid/src/sim.rs crates/hybrid/src/trace.rs

crates/hybrid/src/lib.rs:
crates/hybrid/src/ablation.rs:
crates/hybrid/src/calibrate.rs:
crates/hybrid/src/device.rs:
crates/hybrid/src/ladder.rs:
crates/hybrid/src/parallel.rs:
crates/hybrid/src/sched.rs:
crates/hybrid/src/sim.rs:
crates/hybrid/src/trace.rs:
