//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for a
//! loopback job API: request-line + headers + `Content-Length` body in,
//! one `Connection: close` response out. No keep-alive, no chunked
//! encoding, no TLS; tenants that need more put a real proxy in front.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request bodies (a job spec is ~200 bytes; a
/// multi-megabyte body is a client bug or abuse, not a bigger job).
const MAX_BODY: usize = 1 << 20;

/// A parsed request.
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string after `?` (empty when none was sent).
    pub query: String,
    /// Decoded body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The value of query parameter `key`, if present (`?a=1&b=2` style;
    /// no percent-decoding — values here are metric prefixes and small
    /// integers, never arbitrary text).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one request off `stream`.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts.next().ok_or_else(|| bad("missing request target"))?;
    let method = method.to_ascii_uppercase();
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    let path = path.to_string();
    let query = query.to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not utf-8"))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Write a complete JSON response and flush.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Start a streaming NDJSON response: status line + headers, no
/// `Content-Length` — the body is delimited by connection close (we never
/// send keep-alive, so every client already reads to EOF). The caller
/// writes one JSON line per interval and flushes after each.
pub fn write_stream_head(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// One-line JSON error payload.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", mpas_telemetry::json_escape(msg))
}

/// Blocking one-shot client: send `method path` with a JSON `body` to
/// `addr`, return `(status, body)`. The counterpart of [`read_request`] /
/// [`write_response`], used by the load generator and the tests.
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    Ok((status, body.to_string()))
}

/// Blocking streaming client: `GET path` against `addr` and read body
/// lines as they arrive, up to `max_lines` (0 = until the server closes).
/// Returns the non-empty body lines; errors if the response is not a 200.
/// The counterpart of [`write_stream_head`], used by `swe_load`'s stream
/// observer and the live-telemetry tests.
pub fn stream_lines(
    addr: std::net::SocketAddr,
    path: &str,
    max_lines: usize,
) -> io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    if status != 200 {
        return Err(bad(&format!("stream request returned {status}")));
    }
    // Skip headers.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        if header.trim_end().is_empty() {
            break;
        }
    }
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break; // server closed the stream
        }
        let line = line.trim_end();
        if !line.is_empty() {
            lines.push(line.to_string());
        }
        if max_lines > 0 && lines.len() >= max_lines {
            break;
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &str) -> io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (server, _) = listener.accept().unwrap();
        let req = read_request(&server);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"level\":3}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"level\":3}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert!(req.body.is_empty());
    }

    #[test]
    fn splits_and_parses_query_strings() {
        let req =
            round_trip("GET /metrics?prefix=server.&interval_ms=50 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("prefix"), Some("server."));
        assert_eq!(req.query_param("interval_ms"), Some("50"));
        assert_eq!(req.query_param("count"), None);
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(round_trip(&raw).is_err());
    }
}
