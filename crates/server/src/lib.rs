#![warn(missing_docs)]
//! `mpas-server` — a multi-tenant ensemble simulation service.
//!
//! Long-running job server over the whole reproduction stack: tenants POST
//! simulation jobs (case, mesh level, steps, executor, scheduling policy)
//! to an HTTP/1.1+JSON API and poll for status and results. The expensive
//! immutable artifacts — meshes and fused-coefficient tables — are built
//! once per key in a shared [`cache::ArtifactCache`] and handed to every
//! concurrent tenant as `Arc`s, so an N-member ensemble on one grid pays
//! one mesh build. Placement onto the bounded worker pool is
//! scheduler-driven: each job is priced by the configured `mpas-sched`
//! policy's modeled time-per-step and placed on the worker with the
//! smallest modeled backlog ([`dispatch`]).
//!
//! Everything is hand-rolled on `std::net` — the repo's no-new-heavy-deps
//! rule extends to serving. JSON in/out goes through `mpas-telemetry`'s
//! dependency-free parser and string building.
//!
//! API surface (see DESIGN.md §11 for the lifecycle state machine):
//!
//! | route                  | verb | purpose                                 |
//! |------------------------|------|-----------------------------------------|
//! | `/jobs`                | POST | submit a job (202, 429 on full queue)   |
//! | `/jobs/{id}`           | GET  | lifecycle status + progress             |
//! | `/jobs/{id}/result`    | GET  | result document (409 until finished)    |
//! | `/jobs/{id}/cancel`    | POST | cooperative cancellation                |
//! | `/jobs/{id}/telemetry` | GET  | live windowed snapshot, valid mid-run   |
//! | `/jobs/{id}/flight`    | GET  | flight-recorder slice as a Chrome trace |
//! | `/healthz`             | GET  | liveness + drain state                  |
//! | `/metrics`             | GET  | snapshot as JSON (`?prefix=` filters)   |
//! | `/metrics/stream`      | GET  | chunked NDJSON snapshot stream          |
//! | `/shutdown`            | POST | request graceful drain                  |
//!
//! The three live routes (telemetry/flight/stream) are the server half of
//! the DESIGN.md §13 observability plane: each executing job records
//! through a scoped recorder (`job{id}.` namespace) with a rolling window
//! on its step time, so mid-run queries see per-job windowed summaries
//! and per-job flight traces with no cross-tenant leakage.

pub mod cache;
pub mod dispatch;
pub mod http;
pub mod job;
pub mod registry;
pub mod server;

pub use cache::{config_digest, ArtifactCache, CoeffsKey, MeshKey};
pub use dispatch::{mesh_counts_for_level, modeled_job_cost, Dispatcher, QueuedJob, SubmitError};
pub use job::JobRequest;
pub use registry::{JobEntry, JobState, Registry};
pub use server::{Server, ServerConfig, ServerHandle};
