//! Bounded worker pool with scheduler-driven placement.
//!
//! Each worker owns a FIFO queue; a submitted job is placed on the worker
//! with the smallest *modeled* backlog, where a job's cost is the
//! `mpas-sched` policy's modeled seconds-per-step on the Table-II node
//! (`mpas_hybrid::time_per_step` on analytic mesh counts — no mesh build
//! needed at admission time) times its step count. Placement is therefore
//! earliest-finish-time over the pool, priced by the same roofline model
//! the rest of the stack uses, not round-robin.
//!
//! The total number of *queued* jobs is capped; `submit` refuses beyond
//! the cap so the HTTP layer can answer 429 instead of buffering without
//! bound. `drain()` stops intake, lets every queued job finish, and joins
//! the workers — the graceful-shutdown path.

use mpas_hybrid::Platform;
use mpas_patterns::dataflow::MeshCounts;
use mpas_telemetry::{names, Recorder};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of queued work: the registered job id plus its modeled cost.
pub struct QueuedJob {
    /// Registry id.
    pub id: u64,
    /// Modeled seconds of compute (see [`modeled_job_cost`]).
    pub cost_s: f64,
    /// Submission stamp on the recorder's clock ([`Recorder::now_s`]);
    /// the worker records the queued→pickup delta against
    /// [`names::SERVER_QUEUE_WAIT_SECONDS`] so queue pressure shows up in
    /// the live rolling windows, not just as a depth gauge.
    pub submitted_s: f64,
}

/// Analytic mesh counts for a level-`level` icosahedral mesh
/// (`10·4^L + 2` cells, `30·4^L` edges, `20·4^L` vertices) — exact for
/// the generator's meshes, and available without building one.
pub fn mesh_counts_for_level(level: u32) -> MeshCounts {
    let f = 4f64.powi(level as i32);
    MeshCounts {
        n_cells: 10.0 * f + 2.0,
        n_edges: 30.0 * f,
        n_vertices: 20.0 * f,
    }
}

/// Modeled seconds a job occupies a worker: the policy's modeled
/// time-per-step on this level's counts, times the step count. Falls back
/// to a count-proportional estimate if the policy name fails to resolve
/// (submission validation makes that unreachable in practice).
pub fn modeled_job_cost(level: u32, steps: usize, policy: &str) -> f64 {
    let mc = mesh_counts_for_level(level);
    let per_step = mpas_sched::resolve(policy)
        .map(|p| mpas_hybrid::time_per_step(&mc, &Platform::paper_node(), p))
        .unwrap_or(mc.n_edges * 1e-8);
    per_step * steps as f64
}

struct PoolState {
    queues: Vec<VecDeque<QueuedJob>>,
    /// Modeled seconds of work queued or running per worker.
    backlog: Vec<f64>,
    queued: usize,
    draining: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    rec: Recorder,
}

/// The dispatcher: owns the queues and the worker threads.
pub struct Dispatcher {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    capacity: usize,
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue cap is reached; retry later (HTTP 429).
    Full,
    /// The pool is draining; no new work is accepted (HTTP 503).
    Draining,
}

impl Dispatcher {
    /// Start `n_workers` workers, admitting at most `capacity` queued jobs.
    /// Each worker runs `work(worker_index, job)` for every job placed on
    /// it, inside a `rank{w}`-tracked span so the PR 5 blame engine can
    /// ingest server traces unchanged.
    pub fn start(
        n_workers: usize,
        capacity: usize,
        rec: Recorder,
        work: impl Fn(usize, QueuedJob) + Send + Sync + 'static,
    ) -> Self {
        let n_workers = n_workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queues: (0..n_workers).map(|_| VecDeque::new()).collect(),
                backlog: vec![0.0; n_workers],
                queued: 0,
                draining: false,
            }),
            work_ready: Condvar::new(),
            rec,
        });
        let work = Arc::new(work);
        let workers = (0..n_workers)
            .map(|w| {
                let shared = shared.clone();
                let work = work.clone();
                std::thread::Builder::new()
                    .name(format!("mpas-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared, &*work))
                    .expect("spawn worker")
            })
            .collect();
        Dispatcher {
            shared,
            workers: Mutex::new(workers),
            capacity: capacity.max(1),
        }
    }

    /// Place a job on the least-loaded worker (by modeled backlog).
    /// Returns the worker index, or why the job was refused.
    pub fn submit(&self, job: QueuedJob) -> Result<usize, SubmitError> {
        let mut st = self.shared.state.lock().expect("pool poisoned");
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queued >= self.capacity {
            self.shared.rec.add(names::SERVER_JOBS_REJECTED, 1);
            return Err(SubmitError::Full);
        }
        let w = (0..st.backlog.len())
            .min_by(|&a, &b| st.backlog[a].total_cmp(&st.backlog[b]))
            .expect("at least one worker");
        st.backlog[w] += job.cost_s;
        st.queues[w].push_back(job);
        st.queued += 1;
        self.shared.rec.add(names::SERVER_JOBS_SUBMITTED, 1);
        self.shared
            .rec
            .set_gauge(names::SERVER_QUEUE_DEPTH, st.queued as f64);
        drop(st);
        self.shared.work_ready.notify_all();
        Ok(w)
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool poisoned").queued
    }

    /// Stop intake, run every queued job to completion, join the workers.
    /// Idempotent; later calls return immediately.
    pub fn drain(&self) {
        {
            let mut st = self.shared.state.lock().expect("pool poisoned");
            st.draining = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("workers poisoned")
            .drain(..)
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    }
}

fn worker_loop(w: usize, shared: &Shared, work: &(impl Fn(usize, QueuedJob) + ?Sized)) {
    let track = format!("rank{w}");
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = st.queues[w].pop_front() {
                    st.queued -= 1;
                    shared
                        .rec
                        .set_gauge(names::SERVER_QUEUE_DEPTH, st.queued as f64);
                    break Some(job);
                }
                if st.draining {
                    break None;
                }
                st = shared.work_ready.wait(st).expect("pool poisoned");
            }
        };
        let Some(job) = job else { return };
        let cost = job.cost_s;
        shared.rec.record(
            names::SERVER_QUEUE_WAIT_SECONDS,
            (shared.rec.now_s() - job.submitted_s).max(0.0),
        );
        {
            let _span = shared.rec.span(&track, &format!("server.job{}", job.id));
            work(w, job);
        }
        let mut st = shared.state.lock().expect("pool poisoned");
        st.backlog[w] = (st.backlog[w] - cost).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn qj(id: u64, cost_s: f64) -> QueuedJob {
        QueuedJob {
            id,
            cost_s,
            submitted_s: 0.0,
        }
    }

    #[test]
    fn placement_spreads_equal_jobs_across_workers() {
        let d = Dispatcher::start(3, 16, Recorder::noop(), |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        let mut placed = Vec::new();
        for id in 0..3 {
            placed.push(d.submit(qj(id, 1.0)).unwrap());
        }
        placed.sort_unstable();
        assert_eq!(placed, vec![0, 1, 2]);
        d.drain();
    }

    #[test]
    fn cheap_jobs_pack_behind_the_light_worker() {
        // Worker 0 gets a heavy job; subsequent light jobs must avoid it.
        let d = Dispatcher::start(2, 16, Recorder::noop(), |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        assert_eq!(d.submit(qj(0, 100.0)).unwrap(), 0);
        assert_eq!(d.submit(qj(1, 1.0)).unwrap(), 1);
        assert_eq!(d.submit(qj(2, 1.0)).unwrap(), 1);
        d.drain();
    }

    #[test]
    fn capacity_is_enforced_and_drain_runs_everything() {
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate2 = gate.clone();
        let d = Dispatcher::start(1, 2, Recorder::noop(), move |_, _| {
            let (lock, cv) = &*gate2;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            done2.fetch_add(1, Ordering::SeqCst);
        });
        // First job is picked up by the worker (blocked on the gate), two
        // more fill the queue; the fourth must be refused.
        d.submit(qj(0, 1.0)).unwrap();
        while d.queued() > 0 {
            std::thread::yield_now();
        }
        for id in 1..3 {
            d.submit(qj(id, 1.0)).unwrap();
        }
        assert_eq!(d.submit(qj(3, 1.0)).unwrap_err(), SubmitError::Full);
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        d.drain();
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert_eq!(d.submit(qj(4, 1.0)).unwrap_err(), SubmitError::Draining);
    }

    #[test]
    fn modeled_cost_scales_with_level_and_steps() {
        let small = modeled_job_cost(3, 10, "pattern-driven");
        let big = modeled_job_cost(5, 10, "pattern-driven");
        let longer = modeled_job_cost(3, 20, "pattern-driven");
        assert!(small > 0.0);
        assert!(big > 4.0 * small, "level-5 job must model >= 16x the work");
        assert!((longer / small - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_counts_match_the_generator() {
        for level in [1u32, 3] {
            let mesh = mpas_mesh::generate(level, 0);
            let mc = mesh_counts_for_level(level);
            assert_eq!(mc.n_cells as usize, mesh.n_cells());
            assert_eq!(mc.n_edges as usize, mesh.n_edges());
            assert_eq!(mc.n_vertices as usize, mesh.n_vertices());
        }
    }
}
