//! Keyed build-once caches for the expensive immutable artifacts tenants
//! share: meshes (keyed by level/lloyd/reorder) and fused-coefficient
//! tables (keyed by mesh key + a digest of the numerical config).
//!
//! Concurrency contract: the first request for a key builds while holding
//! only that key's slot lock, so concurrent first requests for the *same*
//! key block and then all receive the one built `Arc`, while requests for
//! *different* keys build in parallel. The cache-miss counters therefore
//! count actual constructions — the concurrency test pins the mesh miss
//! counter to exactly 1 for N identical tenants.

use mpas_mesh::{Mesh, Reordering};
use mpas_swe::{KernelBackend, KernelCoeffs, ModelConfig};
use mpas_telemetry::digest::Fnv1a;
use mpas_telemetry::{names, Recorder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identity of a shared mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshKey {
    /// Icosahedral subdivision level.
    pub level: u32,
    /// Lloyd relaxation sweeps.
    pub lloyd: u32,
    /// Cell/edge/vertex numbering.
    pub reorder: Reordering,
}

/// Identity of a shared coefficient table: the mesh it was built for plus
/// the numerical options that shaped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoeffsKey {
    /// The mesh the table was built on.
    pub mesh: MeshKey,
    /// FNV-1a digest of every [`ModelConfig`] field (see [`config_digest`]).
    pub config: u64,
}

/// FNV-1a over the bit patterns of every `ModelConfig` field, so any
/// config change — including ones that do not affect coefficient values
/// today — gets its own cache entry rather than a silently stale table.
pub fn config_digest(config: &ModelConfig) -> u64 {
    let backend_i = KernelBackend::ALL
        .iter()
        .position(|b| *b == config.kernel_backend)
        .expect("backend listed in ALL") as u64;
    let mut d = Fnv1a::new();
    for w in [
        config.gravity.to_bits(),
        config.apvm_factor.to_bits(),
        config.del2_viscosity.to_bits(),
        config.del4_viscosity.to_bits(),
        config.high_order_h_edge as u64,
        config.advection_only as u64,
        backend_i,
        config.n_tracers as u64,
        config.n_layers as u64,
    ] {
        d.write_u64(w);
    }
    d.finish()
}

type Slot<T> = Arc<Mutex<Option<Arc<T>>>>;

/// The shared-artifact cache. Cheap to clone a handle to via `Arc`.
pub struct ArtifactCache {
    meshes: Mutex<HashMap<MeshKey, Slot<Mesh>>>,
    coeffs: Mutex<HashMap<CoeffsKey, Slot<KernelCoeffs>>>,
    rec: Recorder,
}

impl ArtifactCache {
    /// An empty cache recording hit/miss/build-time telemetry into `rec`.
    pub fn new(rec: Recorder) -> Self {
        ArtifactCache {
            meshes: Mutex::new(HashMap::new()),
            coeffs: Mutex::new(HashMap::new()),
            rec,
        }
    }

    fn slot<K: Copy + Eq + std::hash::Hash, T>(
        map: &Mutex<HashMap<K, Slot<T>>>,
        key: K,
    ) -> Slot<T> {
        map.lock()
            .expect("cache map poisoned")
            .entry(key)
            .or_default()
            .clone()
    }

    fn get_or_build<K, T>(
        &self,
        map: &Mutex<HashMap<K, Slot<T>>>,
        key: K,
        miss_metric: &str,
        build_ms_metric: &str,
        build: impl FnOnce() -> T,
    ) -> Arc<T>
    where
        K: Copy + Eq + std::hash::Hash,
    {
        let slot = Self::slot(map, key);
        let mut guard = slot.lock().expect("cache slot poisoned");
        if let Some(ready) = guard.as_ref() {
            self.rec.add(names::SERVER_CACHE_HIT, 1);
            return ready.clone();
        }
        let t0 = Instant::now();
        let built = Arc::new(build());
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        *guard = Some(built.clone());
        self.rec.add(names::SERVER_CACHE_MISS, 1);
        self.rec.add(miss_metric, 1);
        self.rec.set_gauge(build_ms_metric, build_ms);
        built
    }

    /// The shared mesh for `key`, building it on first use.
    pub fn mesh(&self, key: MeshKey) -> Arc<Mesh> {
        self.get_or_build(
            &self.meshes,
            key,
            names::SERVER_CACHE_MESH_MISS,
            names::MESH_BUILD_MS,
            || {
                let mesh = mpas_core::build_mesh(key.level, key.lloyd, key.reorder);
                Arc::try_unwrap(mesh).unwrap_or_else(|arc| (*arc).clone())
            },
        )
    }

    /// The shared coefficient table for `mesh` under `config`, building it
    /// on first use. `key` must be the key `mesh` was obtained with.
    pub fn kernel_coeffs(
        &self,
        key: MeshKey,
        mesh: &Arc<Mesh>,
        config: &ModelConfig,
    ) -> Arc<KernelCoeffs> {
        let ck = CoeffsKey {
            mesh: key,
            config: config_digest(config),
        };
        self.get_or_build(
            &self.coeffs,
            ck,
            names::SERVER_CACHE_COEFFS_MISS,
            names::COEFFS_BUILD_MS,
            || KernelCoeffs::build(mesh, config),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(level: u32) -> MeshKey {
        MeshKey {
            level,
            lloyd: 0,
            reorder: Reordering::None,
        }
    }

    #[test]
    fn same_key_returns_the_same_arc_and_counts_one_miss() {
        let rec = Recorder::new();
        let cache = ArtifactCache::new(rec.clone());
        let a = cache.mesh(key(2));
        let b = cache.mesh(key(2));
        assert!(Arc::ptr_eq(&a, &b));
        let snap = rec.snapshot();
        assert_eq!(snap.counter(names::SERVER_CACHE_MESH_MISS), Some(1));
        assert_eq!(snap.counter(names::SERVER_CACHE_HIT), Some(1));
        assert!(snap.gauge(names::MESH_BUILD_MS).unwrap() > 0.0);
    }

    #[test]
    fn concurrent_first_requests_build_exactly_once() {
        let rec = Recorder::new();
        let cache = Arc::new(ArtifactCache::new(rec.clone()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || cache.mesh(key(3)))
            })
            .collect();
        let meshes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for m in &meshes[1..] {
            assert!(Arc::ptr_eq(&meshes[0], m));
        }
        assert_eq!(
            rec.snapshot().counter(names::SERVER_CACHE_MESH_MISS),
            Some(1)
        );
    }

    #[test]
    fn coeffs_key_separates_configs_on_one_mesh() {
        let rec = Recorder::new();
        let cache = ArtifactCache::new(rec.clone());
        let mk = key(2);
        let mesh = cache.mesh(mk);
        let base = ModelConfig::default();
        let viscous = ModelConfig {
            del2_viscosity: 1e4,
            ..Default::default()
        };
        let a = cache.kernel_coeffs(mk, &mesh, &base);
        let b = cache.kernel_coeffs(mk, &mesh, &base);
        let c = cache.kernel_coeffs(mk, &mesh, &viscous);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(
            rec.snapshot().counter(names::SERVER_CACHE_COEFFS_MISS),
            Some(2)
        );
    }

    #[test]
    fn config_digest_is_field_sensitive() {
        let base = ModelConfig::default();
        let tweaked = ModelConfig {
            apvm_factor: base.apvm_factor + 0.125,
            ..base
        };
        let again = ModelConfig {
            apvm_factor: base.apvm_factor + 0.125,
            ..base
        };
        assert_ne!(config_digest(&base), config_digest(&tweaked));
        assert_eq!(config_digest(&tweaked), config_digest(&again));
        // The kernel tier and the layer count key the cache too.
        for backend in KernelBackend::ALL {
            if backend == base.kernel_backend {
                continue;
            }
            let other = ModelConfig {
                kernel_backend: backend,
                ..base
            };
            assert_ne!(config_digest(&base), config_digest(&other));
        }
        let layered = ModelConfig {
            kernel_backend: KernelBackend::Simd,
            n_layers: 4,
            ..base
        };
        let flat_simd = ModelConfig {
            kernel_backend: KernelBackend::Simd,
            ..base
        };
        assert_ne!(config_digest(&layered), config_digest(&flat_simd));
    }
}
