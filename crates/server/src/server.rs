//! The service itself: TCP accept loop, request routing, job handlers,
//! and the graceful-drain shutdown protocol.

use crate::cache::ArtifactCache;
use crate::dispatch::{modeled_job_cost, Dispatcher, QueuedJob, SubmitError};
use crate::http::{error_body, read_request, write_response, write_stream_head, Request};
use crate::job::JobRequest;
use crate::registry::{JobState, Registry};
use mpas_core::{JobError, JobProgress};
use mpas_telemetry::analysis::LiveBlame;
use mpas_telemetry::diagnose::{diagnose, DiagnoseConfig};
use mpas_telemetry::store::{Agg, HistoryStore, MetricQuery, RunFilter, RunManifest};
use mpas_telemetry::{flight, names, Recorder};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back off
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum jobs waiting in queues before submissions get 429.
    pub queue_capacity: usize,
    /// Telemetry history directory. When set, every completed job's
    /// scoped metrics are flushed into a [`HistoryStore`] there and the
    /// `/history/*` + `/jobs/{id}/diagnosis` routes come alive; `None`
    /// disables persistence (the routes 404).
    pub history_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            history_dir: None,
        }
    }
}

struct Inner {
    cache: ArtifactCache,
    registry: Registry,
    rec: Recorder,
    draining: AtomicBool,
    /// Incremental blame over the worker `rank{w}` spans: each live
    /// endpoint hit advances the cursor and republishes the
    /// `analysis.blame.*` gauges, so attribution is queryable mid-run
    /// instead of only from a post-mortem trace.
    live: Mutex<LiveBlame>,
    /// Cross-run telemetry persistence (None without `--history-dir`).
    history: Option<HistoryStore>,
}

/// A running server. Dropping the handle does NOT stop the service; call
/// [`ServerHandle::shutdown`] for the drain protocol.
pub struct Server {
    inner: Arc<Inner>,
    dispatcher: Arc<Dispatcher>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

/// Alias kept short in signatures.
pub type ServerHandle = Server;

impl Server {
    /// Bind, spawn the worker pool and the accept loop, and return.
    pub fn start(config: ServerConfig, rec: Recorder) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        // Live windows over the serving-path metrics: queue pressure and
        // live-endpoint latency over the last 30 s, queryable via
        // `/metrics` and streamed by `/metrics/stream`.
        rec.rolling_window(names::SERVER_QUEUE_WAIT_SECONDS, 30.0);
        rec.rolling_window(names::SERVER_LIVE_SECONDS, 30.0);

        let history = match &config.history_dir {
            Some(dir) => Some(HistoryStore::open(dir)?),
            None => None,
        };
        let inner = Arc::new(Inner {
            cache: ArtifactCache::new(rec.clone()),
            registry: Registry::new(),
            rec: rec.clone(),
            draining: AtomicBool::new(false),
            live: Mutex::new(LiveBlame::matching("server.job")),
            history,
        });

        let worker_inner = inner.clone();
        let dispatcher = Arc::new(Dispatcher::start(
            config.workers,
            config.queue_capacity,
            rec.clone(),
            move |_w, job| execute_job(&worker_inner, job),
        ));

        let accept_inner = inner.clone();
        let accept_dispatcher = dispatcher.clone();
        let accept_thread = std::thread::Builder::new()
            .name("mpas-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_inner, &accept_dispatcher))
            .expect("spawn accept loop");

        Ok(Server {
            inner,
            dispatcher,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (use this for port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting connections and submissions, run
    /// every queued job to completion, join workers and the accept loop.
    /// No accepted job is lost or run twice. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.dispatcher.drain();
        if let Some(h) = self.accept_thread.take() {
            h.join().expect("accept loop panicked");
        }
    }

    /// Whether a drain has been requested (locally or via `POST
    /// /shutdown`). The process owning the handle should call
    /// [`Server::shutdown`] when this turns true.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// The telemetry sink (same one handed to [`Server::start`]).
    pub fn recorder(&self) -> &Recorder {
        &self.inner.rec
    }

    /// Direct registry access for tests and embedding.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The history store, when the server was started with one.
    pub fn history(&self) -> Option<&HistoryStore> {
        self.inner.history.as_ref()
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<Inner>, dispatcher: &Arc<Dispatcher>) {
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = inner.clone();
                let dispatcher = dispatcher.clone();
                // Thread-per-connection: handlers are short (submission
                // parsing or a registry lookup); the heavy work lives on
                // the worker pool.
                let _ = std::thread::Builder::new()
                    .name("mpas-conn".to_string())
                    .spawn(move || {
                        let _ = stream.set_nodelay(true);
                        handle_connection(stream, &inner, &dispatcher);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>, dispatcher: &Arc<Dispatcher>) {
    let req = match read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    // The stream endpoint owns the socket for its lifetime (one NDJSON
    // line per interval until the client hangs up or the server drains),
    // so it bypasses the one-shot route()/write_response path.
    if req.method == "GET" && req.path == "/metrics/stream" {
        stream_metrics(stream, &req, inner);
        return;
    }
    let (status, body) = route(&req, inner, dispatcher);
    let _ = write_response(&mut stream, status, &body);
}

/// `GET /metrics/stream`: NDJSON, one snapshot line per `interval_ms`
/// (default 250, clamped to 10..=5000) for `count` lines (default 0 =
/// until the client disconnects or the server drains). `prefix=` filters
/// the metric sections the same way `/metrics?prefix=` does.
fn stream_metrics(mut stream: TcpStream, req: &Request, inner: &Arc<Inner>) {
    let interval_ms: u64 = req
        .query_param("interval_ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(250)
        .clamp(10, 5000);
    let count: usize = req
        .query_param("count")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let prefix = req.query_param("prefix").map(str::to_string);
    if write_stream_head(&mut stream).is_err() {
        return;
    }
    let mut seq = 0usize;
    loop {
        let line = {
            let _t = inner.rec.time(names::SERVER_LIVE_SECONDS);
            if let Ok(mut live) = inner.live.lock() {
                live.update(&inner.rec);
            }
            let mut snap = inner.rec.snapshot();
            if let Some(p) = &prefix {
                snap = snap.filtered(p);
            }
            let draining = inner.draining.load(Ordering::SeqCst);
            format!(
                "{{\"seq\": {seq}, \"ts_s\": {:.6}, \"active_jobs\": {}, \
                 \"draining\": {draining}, \"metrics\": {}}}\n",
                inner.rec.now_s(),
                inner.registry.active(),
                snap.to_json().trim_end(),
            )
        };
        if stream.write_all(line.as_bytes()).is_err() || stream.flush().is_err() {
            return; // client hung up
        }
        seq += 1;
        if count > 0 && seq >= count {
            return;
        }
        if inner.draining.load(Ordering::SeqCst) {
            return; // last line already carried draining=true
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

fn route(req: &Request, inner: &Arc<Inner>, dispatcher: &Arc<Dispatcher>) -> (u16, String) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let draining = inner.draining.load(Ordering::SeqCst);
            (
                200,
                format!(
                    "{{\"ok\": true, \"draining\": {draining}, \"active_jobs\": {}}}\n",
                    inner.registry.active()
                ),
            )
        }
        ("GET", ["metrics"]) => {
            let snap = match req.query_param("prefix") {
                Some(p) => inner.rec.snapshot().filtered(p),
                None => inner.rec.snapshot(),
            };
            (200, snap.to_json())
        }
        ("POST", ["jobs"]) => submit_job(&req.body, inner, dispatcher),
        ("GET", ["jobs", id, "telemetry"]) => with_id(id, |id| job_telemetry(id, inner)),
        ("GET", ["jobs", id, "flight"]) => with_id(id, |id| job_flight(id, inner)),
        ("GET", ["jobs", id, "diagnosis"]) => with_id(id, |id| job_diagnosis(id, req, inner)),
        ("GET", ["history", "runs"]) => history_runs(inner),
        ("GET", ["history", "query"]) => history_query(req, inner),
        ("GET", ["jobs", id]) => with_id(id, |id| job_status(id, inner)),
        ("GET", ["jobs", id, "result"]) => with_id(id, |id| job_result(id, inner)),
        ("POST", ["jobs", id, "cancel"]) => with_id(id, |id| cancel_job(id, inner)),
        ("POST", ["shutdown"]) => {
            // Acknowledge, then stop intake; the owner of the Server
            // handle performs the blocking drain.
            inner.draining.store(true, Ordering::SeqCst);
            (200, "{\"ok\": true, \"draining\": true}\n".to_string())
        }
        (_, ["jobs", ..])
        | (_, ["healthz"])
        | (_, ["metrics", ..])
        | (_, ["history", ..])
        | (_, ["shutdown"]) => (405, error_body("method not allowed")),
        _ => (404, error_body("no such route")),
    }
}

fn with_id(raw: &str, f: impl FnOnce(u64) -> (u16, String)) -> (u16, String) {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => (400, error_body("job id must be an integer")),
    }
}

fn submit_job(body: &str, inner: &Arc<Inner>, dispatcher: &Arc<Dispatcher>) -> (u16, String) {
    if inner.draining.load(Ordering::SeqCst) {
        return (503, error_body("server is draining"));
    }
    let request = match JobRequest::parse(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e)),
    };
    let cost_s = modeled_job_cost(request.level, request.steps, &request.policy);
    // Reserve the id first so the queue entry can carry it; placement
    // fills the worker index in afterwards.
    let (id, _cancel) = inner.registry.insert(request, usize::MAX);
    match dispatcher.submit(QueuedJob {
        id,
        cost_s,
        submitted_s: inner.rec.now_s(),
    }) {
        Ok(worker) => {
            inner.registry.with(id, |e| e.worker = worker);
            (
                202,
                format!(
                    "{{\"id\": {id}, \"status\": \"queued\", \"worker\": {worker}, \
                     \"modeled_cost_s\": {cost_s:e}}}\n"
                ),
            )
        }
        Err(refusal) => {
            // Withdraw the registration: the job never entered a queue.
            inner
                .registry
                .set_state(id, JobState::Failed("rejected".to_string()));
            match refusal {
                SubmitError::Full => (429, error_body("queue full, retry later")),
                SubmitError::Draining => (503, error_body("server is draining")),
            }
        }
    }
}

fn job_status(id: u64, inner: &Arc<Inner>) -> (u16, String) {
    let doc = inner.registry.with(id, |e| {
        let progress = match &e.state {
            JobState::Running { step, total } => format!(", \"step\": {step}, \"total\": {total}"),
            _ => String::new(),
        };
        let ttfs = e
            .ttfs_ms
            .map(|t| format!(", \"ttfs_ms\": {t:.3}"))
            .unwrap_or_default();
        format!(
            "{{\"id\": {id}, \"status\": \"{}\", \"worker\": {}{progress}{ttfs}, \
             \"request\": {}}}\n",
            e.state.label(),
            e.worker,
            e.request.to_json(),
        )
    });
    match doc {
        Some(body) => (200, body),
        None => (404, error_body("unknown job id")),
    }
}

fn job_result(id: u64, inner: &Arc<Inner>) -> (u16, String) {
    let state = inner.registry.with(id, |e| (e.state.clone(), e.ttfs_ms));
    match state {
        None => (404, error_body("unknown job id")),
        Some((JobState::Completed(r), ttfs_ms)) => (
            200,
            format!(
                "{{\"id\": {id}, \"status\": \"completed\", \"n_cells\": {}, \
                 \"steps\": {}, \"dt\": {:e}, \"run_secs\": {:e}, \
                 \"ttfs_ms\": {:.3}, \"mass_drift\": {:e}, \"h_err_l2\": {:e}, \
                 \"state_hash\": \"{:016x}\"}}\n",
                r.n_cells,
                r.steps_done,
                r.dt,
                r.run_secs,
                ttfs_ms.unwrap_or(r.ttfs_secs * 1e3),
                r.mass_drift,
                r.h_err_l2,
                r.state_hash,
            ),
        ),
        Some((JobState::Failed(msg), _)) => (
            200,
            format!(
                "{{\"id\": {id}, \"status\": \"failed\", \"error\": \"{}\"}}\n",
                mpas_telemetry::json_escape(&msg)
            ),
        ),
        Some((JobState::Cancelled { steps_done }, _)) => (
            200,
            format!("{{\"id\": {id}, \"status\": \"cancelled\", \"steps_done\": {steps_done}}}\n"),
        ),
        Some((other, _)) => (
            409,
            format!(
                "{{\"id\": {id}, \"status\": \"{}\", \"error\": \"not finished\"}}\n",
                other.label()
            ),
        ),
    }
}

/// `GET /jobs/{id}/telemetry`: live windowed snapshot of the job's own
/// namespace (`job{id}.*`), served while the job is still running — no
/// waiting for the post-mortem export.
fn job_telemetry(id: u64, inner: &Arc<Inner>) -> (u16, String) {
    let _t = inner.rec.time(names::SERVER_LIVE_SECONDS);
    let Some((label, step, scope)) = inner.registry.with(id, |e| {
        let step = match &e.state {
            JobState::Running { step, .. } => Some(*step),
            _ => None,
        };
        (e.state.label(), step, e.scope.clone())
    }) else {
        return (404, error_body("unknown job id"));
    };
    if let Ok(mut live) = inner.live.lock() {
        live.update(&inner.rec);
    }
    let snap = inner.rec.snapshot().filtered(&format!("{scope}."));
    let step_field = step.map(|s| format!(", \"step\": {s}")).unwrap_or_default();
    (
        200,
        format!(
            "{{\"id\": {id}, \"status\": \"{label}\", \"scope\": \"{scope}\"{step_field}, \
             \"metrics\": {}}}\n",
            snap.to_json().trim_end(),
        ),
    )
}

/// `GET /jobs/{id}/flight`: the flight-recorder events in the job's
/// namespace, exported as a self-contained Chrome trace — openable in
/// `chrome://tracing` / Perfetto even while the job is still running.
fn job_flight(id: u64, inner: &Arc<Inner>) -> (u16, String) {
    let _t = inner.rec.time(names::SERVER_LIVE_SECONDS);
    let Some(scope) = inner.registry.with(id, |e| e.scope.clone()) else {
        return (404, error_body("unknown job id"));
    };
    let events = flight::filter_prefix(&inner.rec.flight_events(), &format!("{scope}."));
    (200, flight::to_chrome_trace(&events))
}

/// `GET /history/runs`: manifests of every recorded run, oldest first.
fn history_runs(inner: &Arc<Inner>) -> (u16, String) {
    let Some(store) = &inner.history else {
        return (
            404,
            error_body("history not configured (start with --history-dir)"),
        );
    };
    match store.runs() {
        Ok(runs) => {
            let docs: Vec<String> = runs.iter().map(|m| m.to_json()).collect();
            (200, format!("{{\"runs\": [{}]}}\n", docs.join(", ")))
        }
        Err(e) => (503, error_body(&e.to_string())),
    }
}

/// `GET /history/query`: the store's [`MetricQuery`] over HTTP.
/// Parameters: `prefix` (metric-name prefix), `agg`
/// (count/sum/mean/p50/p95/max/min, default p50), `run` (exact run id),
/// `last` (most recent N runs), any manifest axis as `key=value`
/// (case/level/lloyd/backend/layers/policy/executor/ranks/steps/git),
/// and `start`+`end` for a raw-sample index range. Each answer row says
/// which ladder level produced it.
fn history_query(req: &Request, inner: &Arc<Inner>) -> (u16, String) {
    let Some(store) = &inner.history else {
        return (
            404,
            error_body("history not configured (start with --history-dir)"),
        );
    };
    let agg = match req.query_param("agg") {
        None => Agg::P50,
        Some(a) => match Agg::parse(a) {
            Some(a) => a,
            None => {
                return (
                    400,
                    error_body("agg must be count/sum/mean/p50/p95/max/min"),
                )
            }
        },
    };
    let mut run_filter = RunFilter::default();
    if let Some(r) = req.query_param("run") {
        run_filter.run_ids.push(r.to_string());
    }
    if let Some(n) = req.query_param("last") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => run_filter.last_n = Some(n),
            _ => return (400, error_body("last must be an integer >= 1")),
        }
    }
    for key in [
        "case", "level", "lloyd", "backend", "layers", "policy", "executor", "ranks", "steps",
        "git",
    ] {
        if let Some(v) = req.query_param(key) {
            run_filter.keys.push((key.to_string(), v.to_string()));
        }
    }
    let range = match (req.query_param("start"), req.query_param("end")) {
        (None, None) => None,
        (s, e) => {
            let parse = |v: Option<&str>, d: usize| v.map_or(Ok(d), str::parse::<usize>);
            match (parse(s, 0), parse(e, usize::MAX)) {
                (Ok(a), Ok(b)) if a < b => Some((a, b)),
                _ => return (400, error_body("start/end must form a valid sample range")),
            }
        }
    };
    let query = MetricQuery {
        name_prefix: req.query_param("prefix").unwrap_or("").to_string(),
        run_filter,
        range,
        agg,
    };
    match store.query(&query) {
        Ok(rows) => {
            let docs: Vec<String> = rows
                .iter()
                .map(|r| {
                    format!(
                        "{{\"run\": \"{}\", \"metric\": \"{}\", \"value\": {}, \"level\": \"{}\"}}",
                        mpas_telemetry::json_escape(&r.run_id),
                        mpas_telemetry::json_escape(&r.metric),
                        if r.value.is_finite() {
                            format!("{}", r.value)
                        } else {
                            "null".to_string()
                        },
                        r.level,
                    )
                })
                .collect();
            (
                200,
                format!(
                    "{{\"agg\": \"{}\", \"rows\": [\n  {}\n]}}\n",
                    agg.as_str(),
                    docs.join(",\n  ")
                ),
            )
        }
        Err(e) => (503, error_body(&e.to_string())),
    }
}

/// `GET /jobs/{id}/diagnosis`: the cross-run attribution report for a
/// completed job's recorded history run, against the most recent
/// matching baselines (`?against=N`, default 5).
fn job_diagnosis(id: u64, req: &Request, inner: &Arc<Inner>) -> (u16, String) {
    let Some(store) = &inner.history else {
        return (
            404,
            error_body("history not configured (start with --history-dir)"),
        );
    };
    let Some(history_run) = inner.registry.with(id, |e| e.history_run.clone()) else {
        return (404, error_body("unknown job id"));
    };
    let Some(run_id) = history_run else {
        return (
            409,
            error_body("job has no recorded history run (not completed yet?)"),
        );
    };
    let last_n = match req.query_param("against") {
        None => 5,
        Some(n) => match n.trim_start_matches("last=").parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return (
                    400,
                    error_body("against must be an integer >= 1 (or last=N)"),
                )
            }
        },
    };
    match diagnose(
        store,
        &run_id,
        &DiagnoseConfig {
            last_n,
            ..DiagnoseConfig::default()
        },
    ) {
        Ok(report) => (200, report.to_json()),
        Err(e) => (503, error_body(&e.to_string())),
    }
}

fn cancel_job(id: u64, inner: &Arc<Inner>) -> (u16, String) {
    match inner.registry.cancel(id) {
        Some(label) => {
            inner.rec.add(names::SERVER_JOBS_CANCELLED, 1);
            (
                200,
                format!("{{\"id\": {id}, \"status\": \"{label}\", \"cancel\": true}}\n"),
            )
        }
        None => (404, error_body("unknown job id")),
    }
}

/// Worker-side job execution: resolve shared artifacts through the cache,
/// run, and advance the registry state machine.
fn execute_job(inner: &Arc<Inner>, job: QueuedJob) {
    let id = job.id;
    let Some((request, cancel, scope)) = inner.registry.with(id, |e| {
        (e.request.clone(), e.cancel.clone(), e.scope.clone())
    }) else {
        return;
    };
    if cancel.load(Ordering::Relaxed) {
        inner
            .registry
            .set_state(id, JobState::Cancelled { steps_done: 0 });
        return;
    }
    let total = request.steps;
    inner
        .registry
        .set_state(id, JobState::Running { step: 0, total });

    let key = request.mesh_key();
    let mesh = inner.cache.mesh(key);
    let spec = request.spec();
    // The scalar tier gathers from the mesh directly; the fused and simd
    // tiers both read the shared coefficient table.
    let coeffs = if spec.backend != mpas_swe::KernelBackend::Scalar {
        Some(inner.cache.kernel_coeffs(key, &mesh, &spec.config()))
    } else {
        None
    };

    // Run the simulation under a scoped view of the shared recorder:
    // every metric, span track, and flight event it emits lands in the
    // job's own `job{id}.` namespace (what `/jobs/{id}/telemetry` and
    // `/jobs/{id}/flight` filter by) while still aggregating into the
    // global snapshot. A rolling window on the per-step histogram makes
    // the job's recent step-time p50/p95 queryable mid-run.
    let jrec = inner.rec.scoped(&scope);
    jrec.rolling_window("core.sim.step_seconds", 30.0);
    // Per-job flight-ring sizing: grow-only, because every worker shares
    // the one ring — a deep-ring job must not lose a neighbour's events.
    if let Some(cap) = request.flight_capacity {
        inner.rec.ensure_flight_capacity(cap);
    }

    let registry = &inner.registry;
    let outcome = mpas_core::run_job(&spec, mesh, coeffs, &jrec, &cancel, |p: JobProgress| {
        registry.note_first_step(id);
        registry.set_state(
            id,
            JobState::Running {
                step: p.step,
                total: p.total,
            },
        );
    });
    match outcome {
        Ok(result) => {
            inner.rec.add(names::SERVER_JOBS_COMPLETED, 1);
            inner.registry.set_state(id, JobState::Completed(result));
            flush_history(inner, id, &request, &scope);
        }
        Err(JobError::Cancelled { steps_done }) => {
            inner
                .registry
                .set_state(id, JobState::Cancelled { steps_done });
        }
        Err(JobError::Invalid(msg)) => {
            inner.rec.add(names::SERVER_JOBS_FAILED, 1);
            inner.registry.set_state(id, JobState::Failed(msg));
        }
    }
}

/// Post-completion history flush: persist the job's scoped telemetry
/// slice under scope-stripped names, so a server job's run rows are
/// directly comparable with `swe_run --history-dir` rows. Runs on the
/// worker thread *after* the job finished — nothing here touches the
/// solver hot path — and a store failure is logged, never fatal to the
/// already-completed job.
fn flush_history(inner: &Arc<Inner>, id: u64, request: &JobRequest, scope: &str) {
    let Some(store) = &inner.history else {
        return;
    };
    let manifest = RunManifest::new(
        &request.case,
        request.level,
        request.lloyd,
        request.backend.name(),
        request.layers,
        &request.policy,
        &request.executor,
        0,
        request.steps,
    );
    match store.record_recorder(&manifest, &inner.rec, &format!("{scope}.")) {
        Ok(m) => {
            inner.rec.add(names::SERVER_HISTORY_RECORDED, 1);
            inner
                .registry
                .with(id, |e| e.history_run = Some(m.run_id.clone()));
        }
        Err(e) => {
            eprintln!("mpas-server: history flush for job {id} failed: {e}");
        }
    }
}
