//! The wire-level job spec: what a tenant POSTs to `/jobs`, validated and
//! translated into the mesh-cache key and the `mpas-core` runner spec.

use crate::cache::MeshKey;
use mpas_core::{Executor, JobSpec};
use mpas_mesh::Reordering;
use mpas_swe::KernelBackend;
use mpas_telemetry::export::{parse_json, JsonValue};
use mpas_telemetry::json_escape;

/// A validated job submission. Every field has a default, so `{}` is a
/// legal body (one day of case 5 on a level-4 mesh, serial, fused).
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Scenario label: a Williamson digit (`"1"`..`"6"`) or a catalog name
    /// (`"williamson-N"`, `"galewsky"`, `"tracer-case5"`).
    pub case: String,
    /// Case-2 flow-orientation angle, radians.
    pub alpha: f64,
    /// Icosahedral subdivision level.
    pub level: u32,
    /// Lloyd relaxation sweeps.
    pub lloyd: u32,
    /// RK-4 steps to run.
    pub steps: usize,
    /// Executor spec (`serial`, `threaded:N`, `hybrid:N:M`).
    pub executor: String,
    /// Scheduler-policy registry name.
    pub policy: String,
    /// Mesh numbering.
    pub reorder: Reordering,
    /// Kernel tier (`scalar`, `fused` or `simd`). The legacy boolean
    /// `"fused"` body field still parses: `false` maps to scalar, `true`
    /// to fused, and an explicit `"backend"` wins over it.
    pub backend: KernelBackend,
    /// Vertical layers (k > 1 requires `backend: simd` + serial executor).
    pub layers: usize,
    /// Progress/cancellation cadence in steps (0 = end only).
    pub progress_every: usize,
    /// Requested flight-recorder ring capacity (events). `None` leaves
    /// the server's ring alone; a value grows the shared ring to at
    /// least this size before the job runs (grow-only, since workers
    /// share one ring). Deliberately absent from [`JobRequest::mesh_key`]
    /// and [`JobRequest::spec`], so it can never leak into an artifact
    /// cache digest.
    pub flight_capacity: Option<usize>,
}

impl Default for JobRequest {
    fn default() -> Self {
        JobRequest {
            case: "5".to_string(),
            alpha: 0.0,
            level: 4,
            lloyd: 0,
            steps: 10,
            executor: "serial".to_string(),
            policy: "pattern-driven".to_string(),
            reorder: Reordering::None,
            backend: KernelBackend::Fused,
            layers: 1,
            progress_every: 1,
            flight_capacity: None,
        }
    }
}

fn get_u32(obj: &JsonValue, key: &str, default: u32) -> Result<u32, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|x| *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as u32)
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

fn get_str(obj: &JsonValue, key: &str, default: &str) -> Result<String, String> {
    match obj.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("{key} must be a string")),
    }
}

impl JobRequest {
    /// Parse and validate a JSON submission body.
    pub fn parse(body: &str) -> Result<JobRequest, String> {
        let body = if body.trim().is_empty() { "{}" } else { body };
        let v = parse_json(body).map_err(|at| format!("bad JSON at byte {at}"))?;
        if v.as_obj().is_none() {
            return Err("body must be a JSON object".to_string());
        }
        let d = JobRequest::default();
        let req = JobRequest {
            case: get_str(&v, "case", &d.case)?,
            alpha: match v.get("alpha") {
                None => d.alpha,
                Some(a) => a
                    .as_f64()
                    .ok_or_else(|| "alpha must be a number".to_string())?,
            },
            level: get_u32(&v, "level", d.level)?,
            lloyd: get_u32(&v, "lloyd", d.lloyd)?,
            steps: get_u32(&v, "steps", d.steps as u32)? as usize,
            executor: get_str(&v, "executor", &d.executor)?,
            policy: get_str(&v, "policy", &d.policy)?,
            reorder: {
                let name = get_str(&v, "reorder", "none")?;
                Reordering::parse(&name)
                    .ok_or_else(|| format!("unknown reorder {name} (none, sfc or bfs)"))?
            },
            backend: match v.get("backend") {
                Some(b) => {
                    let name = b
                        .as_str()
                        .ok_or_else(|| "backend must be a string".to_string())?;
                    KernelBackend::parse(name)
                        .ok_or_else(|| format!("unknown backend {name} (scalar, fused or simd)"))?
                }
                // Back-compat: the boolean `fused` field selects between
                // the two pre-simd tiers when no `backend` is given.
                None => match v.get("fused") {
                    None => d.backend,
                    Some(b) => {
                        if b.as_bool()
                            .ok_or_else(|| "fused must be a boolean".to_string())?
                        {
                            KernelBackend::Fused
                        } else {
                            KernelBackend::Scalar
                        }
                    }
                },
            },
            layers: get_u32(&v, "layers", d.layers as u32)? as usize,
            progress_every: get_u32(&v, "progress_every", d.progress_every as u32)? as usize,
            flight_capacity: match v.get("flight_capacity") {
                None => None,
                Some(c) => Some(
                    c.as_f64()
                        .filter(|x| *x >= 1.0 && x.fract() == 0.0)
                        .map(|x| x as usize)
                        .ok_or_else(|| "flight_capacity must be an integer >= 1".to_string())?,
                ),
            },
        };
        // Fail fast at submission time, not on a worker.
        mpas_core::parse_case(&req.case, req.alpha)?;
        mpas_core::parse_executor(&req.executor)?;
        let _policy = mpas_sched::resolve(&req.policy)?;
        if req.steps == 0 {
            return Err("steps must be >= 1".to_string());
        }
        if req.level > 7 {
            return Err("level must be <= 7".to_string());
        }
        if req.layers == 0 {
            return Err("layers must be >= 1".to_string());
        }
        if req.layers > 1 {
            if req.backend != KernelBackend::Simd {
                return Err("layers > 1 requires backend simd".to_string());
            }
            if req.executor != "serial" {
                return Err("layers > 1 requires the serial executor".to_string());
            }
        }
        Ok(req)
    }

    /// The mesh-cache key this job shares.
    pub fn mesh_key(&self) -> MeshKey {
        MeshKey {
            level: self.level,
            lloyd: self.lloyd,
            reorder: self.reorder,
        }
    }

    /// The executor (already validated in [`JobRequest::parse`]).
    pub fn executor(&self) -> Executor {
        mpas_core::parse_executor(&self.executor).expect("validated at parse time")
    }

    /// The `mpas-core` runner spec for this request.
    pub fn spec(&self) -> JobSpec {
        let mut spec = JobSpec::new(
            mpas_core::parse_case(&self.case, self.alpha).expect("validated at parse time"),
            self.steps,
        );
        spec.executor = self.executor();
        spec.policy = self.policy.clone();
        spec.backend = self.backend;
        spec.layers = self.layers;
        spec.progress_every = self.progress_every;
        // Catalog switches (tracers, advection-only) ride on the label.
        let mut cfg = spec.config();
        mpas_core::apply_case_config(&self.case, &mut cfg);
        spec.n_tracers = cfg.n_tracers;
        spec.advection_only = cfg.advection_only;
        spec
    }

    /// The request echoed back as JSON (inside status documents). The
    /// optional `flight_capacity` appears only when set, so defaulted
    /// requests echo byte-identically to before it existed.
    pub fn to_json(&self) -> String {
        let flight = self
            .flight_capacity
            .map(|c| format!(", \"flight_capacity\": {c}"))
            .unwrap_or_default();
        format!(
            "{{\"case\": \"{}\", \"alpha\": {}, \"level\": {}, \"lloyd\": {}, \
             \"steps\": {}, \"executor\": \"{}\", \"policy\": \"{}\", \
             \"reorder\": \"{}\", \"backend\": \"{}\", \"layers\": {}, \
             \"progress_every\": {}{flight}}}",
            json_escape(&self.case),
            self.alpha,
            self.level,
            self.lloyd,
            self.steps,
            json_escape(&self.executor),
            json_escape(&self.policy),
            self.reorder.name(),
            self.backend.name(),
            self.layers,
            self.progress_every,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_body_yields_defaults() {
        let req = JobRequest::parse("").unwrap();
        assert_eq!(req.case, "5");
        assert_eq!(req.level, 4);
        assert_eq!(req.steps, 10);
        assert_eq!(req.backend, KernelBackend::Fused);
        assert_eq!(req.layers, 1);
    }

    #[test]
    fn full_body_round_trips_through_to_json() {
        let body = "{\"case\": \"6\", \"level\": 3, \"steps\": 7, \
                    \"executor\": \"threaded:2\", \"policy\": \"heft\", \
                    \"reorder\": \"sfc\", \"backend\": \"scalar\", \"progress_every\": 2}";
        let req = JobRequest::parse(body).unwrap();
        assert_eq!(req.level, 3);
        assert_eq!(req.reorder, Reordering::Sfc);
        assert_eq!(req.backend, KernelBackend::Scalar);
        let echoed = JobRequest::parse(&req.to_json()).unwrap();
        assert_eq!(echoed.to_json(), req.to_json());
    }

    #[test]
    fn legacy_fused_bool_still_selects_the_backend() {
        let req = JobRequest::parse("{\"fused\": false}").unwrap();
        assert_eq!(req.backend, KernelBackend::Scalar);
        let req = JobRequest::parse("{\"fused\": true}").unwrap();
        assert_eq!(req.backend, KernelBackend::Fused);
        // An explicit backend wins over the legacy boolean.
        let req = JobRequest::parse("{\"fused\": false, \"backend\": \"simd\"}").unwrap();
        assert_eq!(req.backend, KernelBackend::Simd);
    }

    #[test]
    fn layered_jobs_are_validated_and_translate_to_the_spec() {
        let req =
            JobRequest::parse("{\"backend\": \"simd\", \"layers\": 4, \"steps\": 2}").unwrap();
        assert_eq!(req.layers, 4);
        let spec = req.spec();
        assert_eq!(spec.backend, KernelBackend::Simd);
        assert_eq!(spec.layers, 4);
        // Layered constraints are rejected at submission time.
        assert!(JobRequest::parse("{\"layers\": 4}").is_err());
        assert!(JobRequest::parse(
            "{\"backend\": \"simd\", \"layers\": 4, \"executor\": \"threaded:2\"}"
        )
        .is_err());
        assert!(JobRequest::parse("{\"layers\": 0}").is_err());
        assert!(JobRequest::parse("{\"backend\": \"avx\"}").is_err());
    }

    #[test]
    fn flight_capacity_is_optional_validated_and_cache_inert() {
        let req = JobRequest::parse("{}").unwrap();
        assert_eq!(req.flight_capacity, None);
        assert!(!req.to_json().contains("flight_capacity"));

        let req = JobRequest::parse("{\"flight_capacity\": 16384}").unwrap();
        assert_eq!(req.flight_capacity, Some(16384));
        let echoed = JobRequest::parse(&req.to_json()).unwrap();
        assert_eq!(echoed.flight_capacity, Some(16384));
        assert_eq!(echoed.to_json(), req.to_json());

        assert!(JobRequest::parse("{\"flight_capacity\": 0}").is_err());
        assert!(JobRequest::parse("{\"flight_capacity\": 1.5}").is_err());
        assert!(JobRequest::parse("{\"flight_capacity\": \"big\"}").is_err());

        // The ring size must not perturb any cache identity.
        let plain = JobRequest::parse("{}").unwrap();
        assert_eq!(req.mesh_key(), plain.mesh_key());
    }

    #[test]
    fn catalog_cases_are_accepted() {
        for case in [
            "1",
            "3",
            "4",
            "williamson-1",
            "williamson-6",
            "galewsky",
            "tracer-case5",
        ] {
            let req = JobRequest::parse(&format!("{{\"case\": \"{case}\"}}")).unwrap();
            assert_eq!(req.case, case);
            let _ = req.spec();
        }
        let spec = JobRequest::parse("{\"case\": \"tracer-case5\"}")
            .unwrap()
            .spec();
        assert_eq!(spec.n_tracers, 2);
        let spec = JobRequest::parse("{\"case\": \"williamson-1\"}")
            .unwrap()
            .spec();
        assert!(spec.advection_only);
    }

    #[test]
    fn invalid_fields_are_rejected_at_submission() {
        assert!(JobRequest::parse("{\"case\": \"7\"}").is_err());
        assert!(JobRequest::parse("{\"executor\": \"cuda\"}").is_err());
        assert!(JobRequest::parse("{\"policy\": \"fifo\"}").is_err());
        assert!(JobRequest::parse("{\"steps\": 0}").is_err());
        assert!(JobRequest::parse("{\"level\": 9}").is_err());
        assert!(JobRequest::parse("{\"fused\": \"yes\"}").is_err());
        assert!(JobRequest::parse("{\"backend\": 1}").is_err());
        assert!(JobRequest::parse("not json").is_err());
        assert!(JobRequest::parse("[1,2]").is_err());
    }

    #[test]
    fn spec_translation_preserves_the_request() {
        let req = JobRequest::parse("{\"steps\": 3, \"executor\": \"hybrid:2:1\"}").unwrap();
        let spec = req.spec();
        assert_eq!(spec.steps, 3);
        assert_eq!(
            spec.executor,
            Executor::Hybrid {
                cpu_threads: 2,
                acc_threads: 1
            }
        );
        assert_eq!(req.mesh_key().level, 4);
    }
}
