//! The job registry: every submitted job's lifecycle, status, and result.
//!
//! Lifecycle state machine (DESIGN.md §11):
//!
//! ```text
//! queued ──▶ running ──▶ completed
//!   │           │
//!   │           ├──▶ cancelled   (flag observed between progress chunks)
//!   │           └──▶ failed      (invalid spec)
//!   └──▶ cancelled               (flag observed before the run started)
//! ```
//!
//! Cancellation is cooperative: `cancel()` sets the job's shared flag and
//! the owning worker advances the state the next time it looks. States
//! only move forward; a completed job cannot be cancelled.

use crate::job::JobRequest;
use mpas_core::JobResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Accepted, waiting in a worker queue.
    Queued,
    /// A worker is executing it; `step`/`total` track progress.
    Running {
        /// Steps completed so far.
        step: usize,
        /// Steps requested.
        total: usize,
    },
    /// Finished; the result is available.
    Completed(JobResult),
    /// Cancelled before or during the run.
    Cancelled {
        /// Steps completed before the flag was observed.
        steps_done: usize,
    },
    /// Rejected by the runner (bad policy name etc.).
    Failed(String),
}

impl JobState {
    /// The status label reported over the API.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Completed(_) => "completed",
            JobState::Cancelled { .. } => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed(_) | JobState::Cancelled { .. } | JobState::Failed(_)
        )
    }
}

/// One registered job.
pub struct JobEntry {
    /// The request as submitted.
    pub request: JobRequest,
    /// Current lifecycle state.
    pub state: JobState,
    /// Cooperative-cancellation flag shared with the worker.
    pub cancel: Arc<AtomicBool>,
    /// Submission instant (queueing delay + TTFS measurements hang off it).
    pub submitted: Instant,
    /// Worker index the dispatcher placed the job on.
    pub worker: usize,
    /// Server-side milliseconds from submission to the end of the first
    /// step (the SLO'd time-to-first-step); `None` until the first
    /// progress report.
    pub ttfs_ms: Option<f64>,
    /// Telemetry namespace for this job (`job{id}`) — the prefix its
    /// scoped recorder puts on every metric/span it emits, and the filter
    /// the live `/jobs/{id}/telemetry` and `/jobs/{id}/flight` endpoints
    /// select by.
    pub scope: String,
    /// History-store run id assigned when the job's telemetry was
    /// flushed post-completion (`None` until then, or when the server
    /// runs without `--history-dir`); what `GET /jobs/{id}/diagnosis`
    /// resolves through.
    pub history_run: Option<String>,
}

/// Thread-safe id-keyed job table.
#[derive(Default)]
pub struct Registry {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    next_id: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a freshly accepted job as queued on `worker`; returns its id.
    pub fn insert(&self, request: JobRequest, worker: usize) -> (u64, Arc<AtomicBool>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let cancel = Arc::new(AtomicBool::new(false));
        let entry = JobEntry {
            request,
            state: JobState::Queued,
            cancel: cancel.clone(),
            submitted: Instant::now(),
            worker,
            ttfs_ms: None,
            scope: format!("job{id}"),
            history_run: None,
        };
        self.jobs
            .lock()
            .expect("registry poisoned")
            .insert(id, entry);
        (id, cancel)
    }

    /// Run `f` on the entry for `id`, if it exists.
    pub fn with<R>(&self, id: u64, f: impl FnOnce(&mut JobEntry) -> R) -> Option<R> {
        self.jobs
            .lock()
            .expect("registry poisoned")
            .get_mut(&id)
            .map(f)
    }

    /// Advance the state of `id` (no-op on terminal states).
    pub fn set_state(&self, id: u64, state: JobState) {
        self.with(id, |e| {
            if !e.state.is_terminal() {
                e.state = state;
            }
        });
    }

    /// Record the server-side TTFS once (first progress report wins).
    pub fn note_first_step(&self, id: u64) {
        self.with(id, |e| {
            if e.ttfs_ms.is_none() {
                e.ttfs_ms = Some(e.submitted.elapsed().as_secs_f64() * 1e3);
            }
        });
    }

    /// Request cancellation. Returns the status label after the request,
    /// or `None` for an unknown id. Queued/running jobs get their flag
    /// set; the worker moves them to `cancelled` at its next check.
    pub fn cancel(&self, id: u64) -> Option<&'static str> {
        self.with(id, |e| {
            if !e.state.is_terminal() {
                e.cancel.store(true, Ordering::Relaxed);
            }
            e.state.label()
        })
    }

    /// Ids currently registered (test/diagnostic helper).
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("registry poisoned").len()
    }

    /// Whether no jobs have been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of jobs in non-terminal states.
    pub fn active(&self) -> usize {
        self.jobs
            .lock()
            .expect("registry poisoned")
            .values()
            .filter(|e| !e.state.is_terminal())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> JobRequest {
        JobRequest::parse("{}").unwrap()
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let reg = Registry::new();
        let (a, _) = reg.insert(request(), 0);
        let (b, _) = reg.insert(request(), 1);
        assert!(b > a);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.active(), 2);
    }

    #[test]
    fn terminal_states_are_sticky() {
        let reg = Registry::new();
        let (id, _) = reg.insert(request(), 0);
        reg.set_state(id, JobState::Cancelled { steps_done: 0 });
        reg.set_state(id, JobState::Running { step: 1, total: 2 });
        assert_eq!(reg.with(id, |e| e.state.label()), Some("cancelled"));
        assert_eq!(reg.active(), 0);
    }

    #[test]
    fn cancel_sets_the_shared_flag() {
        let reg = Registry::new();
        let (id, flag) = reg.insert(request(), 0);
        assert_eq!(reg.cancel(id), Some("queued"));
        assert!(flag.load(Ordering::Relaxed));
        assert_eq!(reg.cancel(9999), None);
    }

    #[test]
    fn ttfs_is_recorded_once() {
        let reg = Registry::new();
        let (id, _) = reg.insert(request(), 0);
        reg.note_first_step(id);
        let first = reg.with(id, |e| e.ttfs_ms).flatten().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        reg.note_first_step(id);
        assert_eq!(reg.with(id, |e| e.ttfs_ms).flatten().unwrap(), first);
    }
}
