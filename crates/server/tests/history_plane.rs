//! The server's cross-run history plane over real loopback HTTP: the
//! post-completion flush into the telemetry history store, the
//! `/history/*` query routes, the per-job `/jobs/{id}/diagnosis` report,
//! the stream/snapshot `?prefix=` filter parity, and the job-schema
//! flight-recorder capacity knob (which must grow the shared ring
//! without perturbing the artifact cache).

use mpas_server::http::stream_lines;
use mpas_server::{Server, ServerConfig};
use mpas_telemetry::export::{parse_json, validate_json, JsonValue};
use mpas_telemetry::{names, Recorder, DEFAULT_FLIGHT_CAPACITY};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mpas-history-plane-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, payload)
}

fn http_json(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let (status, payload) = http(addr, method, path, body);
    (status, parse_json(&payload).unwrap_or(JsonValue::Null))
}

fn submit(addr: SocketAddr, body: &str) -> f64 {
    let (status, doc) = http_json(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "submit: {doc:?}");
    doc.get("id").and_then(|v| v.as_f64()).expect("job id")
}

fn wait_completed(addr: SocketAddr, id: f64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, doc) = http_json(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        let state = doc.get("status").and_then(|s| s.as_str()).unwrap();
        if state == "completed" {
            return;
        }
        assert!(
            state == "queued" || state == "running",
            "job {id} ended {state}"
        );
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The history flush runs on the worker thread *after* the registry
/// flips to completed, so poll the diagnosis route past its 409 window.
fn wait_diagnosis(addr: SocketAddr, id: f64, query: &str) -> (u16, String) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, payload) = http(addr, "GET", &format!("/jobs/{id}/diagnosis{query}"), "");
        if status != 409 {
            return (status, payload);
        }
        assert!(Instant::now() < deadline, "job {id} never flushed history");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn history_routes_flush_query_and_diagnose_completed_jobs() {
    let dir = tmp("routes");
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            history_dir: Some(dir.clone()),
            ..Default::default()
        },
        rec.clone(),
    )
    .expect("start server");
    let addr = server.addr();

    // Two identical jobs: the second diagnoses against the first.
    let body = "{\"level\": 3, \"steps\": 4, \"progress_every\": 1}";
    let first = submit(addr, body);
    wait_completed(addr, first);
    let second = submit(addr, body);
    wait_completed(addr, second);

    // The first job's report exists but has no baseline yet.
    let (status, payload) = wait_diagnosis(addr, first, "");
    assert_eq!(status, 200, "{payload}");
    validate_json(&payload).unwrap_or_else(|at| panic!("diagnosis invalid at byte {at}"));
    let doc = parse_json(&payload).unwrap();
    assert_eq!(doc.get("failed").and_then(|v| v.as_bool()), Some(false));

    // The second job's report compares against the first run; identical
    // in-process runs must not fail.
    let (status, payload) = wait_diagnosis(addr, second, "?against=last=3");
    assert_eq!(status, 200, "{payload}");
    let doc = parse_json(&payload).unwrap();
    assert_eq!(doc.get("failed").and_then(|v| v.as_bool()), Some(false));
    let baselines = doc
        .get("baselines")
        .and_then(|b| b.as_arr().map(|a| a.len()));
    assert_eq!(baselines, Some(1), "second run sees exactly one baseline");

    // Both flushes are visible as committed runs...
    let (status, payload) = http(addr, "GET", "/history/runs", "");
    assert_eq!(status, 200);
    validate_json(&payload).unwrap_or_else(|at| panic!("runs invalid at byte {at}"));
    let doc = parse_json(&payload).unwrap();
    let runs = doc.get("runs").and_then(|r| r.as_arr().map(|a| a.len()));
    assert_eq!(runs, Some(2));
    assert_eq!(
        rec.snapshot().counter(names::SERVER_HISTORY_RECORDED),
        Some(2)
    );

    // ...and queryable under scope-stripped names, answered from the
    // summary ladder level.
    let (status, payload) = http(
        addr,
        "GET",
        "/history/query?prefix=core.sim.step_seconds&agg=p95&level=3",
        "",
    );
    assert_eq!(status, 200, "{payload}");
    let doc = parse_json(&payload).unwrap();
    assert_eq!(doc.get("agg").and_then(|a| a.as_str()), Some("p95"));
    let rows = doc.get("rows").and_then(|r| r.as_arr()).expect("rows");
    assert_eq!(rows.len(), 2, "one step-histogram row per run");
    for row in rows {
        assert_eq!(row.get("level").and_then(|l| l.as_str()), Some("summary"));
        assert!(row.get("value").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    // Parameter validation and the unknown-job path.
    let (status, _) = http(addr, "GET", "/history/query?agg=bogus", "");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", "/history/query?last=0", "");
    assert_eq!(status, 400);
    let (status, _) = http(addr, "GET", "/jobs/999/diagnosis", "");
    assert_eq!(status, 404);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn history_routes_answer_404_when_no_store_is_configured() {
    let rec = Recorder::new();
    let mut server = Server::start(ServerConfig::default(), rec).expect("start server");
    let addr = server.addr();
    for path in ["/history/runs", "/history/query"] {
        let (status, payload) = http(addr, "GET", path, "");
        assert_eq!(status, 404, "{path}");
        assert!(payload.contains("--history-dir"), "{path}: {payload}");
    }
    // Diagnosis needs the store before it can even resolve the job.
    let (status, payload) = http(addr, "GET", "/jobs/1/diagnosis", "");
    assert_eq!(status, 404);
    assert!(payload.contains("--history-dir"), "{payload}");
    server.shutdown();
}

#[test]
fn metrics_stream_honors_the_same_prefix_filter_as_the_snapshot() {
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..Default::default()
        },
        rec,
    )
    .expect("start server");
    let addr = server.addr();

    // Run one job so both server.* and job-scoped metrics exist.
    let id = submit(addr, "{\"level\": 3, \"steps\": 2, \"progress_every\": 1}");
    wait_completed(addr, id);

    // The filtered snapshot is the reference behavior...
    let (status, snapshot) = http(addr, "GET", "/metrics?prefix=server.", "");
    assert_eq!(status, 200);
    assert!(snapshot.contains("server.jobs.submitted"));
    assert!(!snapshot.contains(&format!("job{id}.")));

    // ...and the stream must apply the identical filter per line.
    let lines = stream_lines(
        addr,
        "/metrics/stream?interval_ms=20&count=2&prefix=server.",
        2,
    )
    .expect("stream");
    assert!(lines.len() >= 2, "got {} stream lines", lines.len());
    for line in &lines {
        validate_json(line).unwrap_or_else(|at| panic!("stream line invalid at byte {at}"));
        assert!(
            line.contains("server.jobs.submitted"),
            "filtered stream line lost server metrics: {line}"
        );
        assert!(
            !line.contains(&format!("job{id}.")),
            "prefix=server. leaked job scope into the stream: {line}"
        );
    }

    // An unfiltered stream line does carry the job scope — the filter
    // above subtracted it, not the recorder.
    let lines = stream_lines(addr, "/metrics/stream?interval_ms=20&count=1", 1).expect("stream");
    assert!(lines[0].contains(&format!("job{id}.")));
    server.shutdown();
}

#[test]
fn job_schema_flight_capacity_grows_the_ring_and_stays_cache_inert() {
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..Default::default()
        },
        rec.clone(),
    )
    .expect("start server");
    let addr = server.addr();
    assert_eq!(rec.flight_capacity(), DEFAULT_FLIGHT_CAPACITY);

    // Warm the artifact cache with a plain job.
    let body = "{\"level\": 3, \"steps\": 2, \"progress_every\": 1}";
    let id = submit(addr, body);
    wait_completed(addr, id);
    let misses = rec
        .snapshot()
        .counter(names::SERVER_CACHE_MISS)
        .unwrap_or(0);
    assert!(misses > 0, "first job must build its artifacts");

    // Same shape plus a larger ring: the ring grows, and the artifacts
    // are reused — flight_capacity is not part of the cache identity.
    let want = DEFAULT_FLIGHT_CAPACITY + 2048;
    let body = format!(
        "{{\"level\": 3, \"steps\": 2, \"progress_every\": 1, \"flight_capacity\": {want}}}"
    );
    let id = submit(addr, &body);
    wait_completed(addr, id);
    assert_eq!(rec.flight_capacity(), want);
    assert!(rec.snapshot().counter(names::SERVER_CACHE_HIT).unwrap_or(0) > 0);
    assert_eq!(
        rec.snapshot()
            .counter(names::SERVER_CACHE_MISS)
            .unwrap_or(0),
        misses,
        "flight_capacity changed the cache identity"
    );

    // A smaller request never shrinks the shared ring (grow-only).
    let body = "{\"level\": 3, \"steps\": 2, \"progress_every\": 1, \"flight_capacity\": 8}";
    let id = submit(addr, body);
    wait_completed(addr, id);
    assert_eq!(rec.flight_capacity(), want);

    // Schema validation: a zero capacity is rejected up front.
    let (status, payload) = http(
        addr,
        "POST",
        "/jobs",
        "{\"level\": 3, \"steps\": 2, \"flight_capacity\": 0}",
    );
    assert_eq!(status, 400, "{payload}");
    server.shutdown();
}
