//! Live observability plane over real loopback HTTP (DESIGN.md §13): the
//! telemetry/flight/stream endpoints must answer with valid documents
//! *while a job is still running*, and scoped per-job namespaces must not
//! leak into each other.

use mpas_server::http::stream_lines;
use mpas_server::{Server, ServerConfig};
use mpas_telemetry::export::{parse_json, validate_json, validate_ndjson, JsonValue};
use mpas_telemetry::{names, Recorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, payload)
}

fn http_json(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let (status, payload) = http(addr, method, path, body);
    (status, parse_json(&payload).unwrap_or(JsonValue::Null))
}

fn wait_running(addr: SocketAddr, id: f64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, doc) = http_json(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        if doc.get("status").and_then(|s| s.as_str()) == Some("running") {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_terminal(addr: SocketAddr, id: f64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, doc) = http_json(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        let state = doc
            .get("status")
            .and_then(|s| s.as_str())
            .unwrap()
            .to_string();
        if state == "completed" || state == "failed" || state == "cancelled" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn live_endpoints_answer_while_a_level6_job_is_running() {
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..Default::default()
        },
        rec.clone(),
    )
    .expect("start server");
    let addr = server.addr();

    // A long level-6 job; progress_every=1 keeps its progress gauge and
    // cancellation checks fresh every step.
    let body = "{\"level\": 6, \"steps\": 2000, \"progress_every\": 1}";
    let (status, doc) = http_json(addr, "POST", "/jobs", body);
    assert_eq!(status, 202);
    let id = doc.get("id").and_then(|v| v.as_f64()).expect("job id");
    wait_running(addr, id);

    // 1. Live windowed snapshot for the running job: valid JSON, correct
    //    scope, restricted to the job's namespace.
    let (status, payload) = http(addr, "GET", &format!("/jobs/{id}/telemetry"), "");
    assert_eq!(status, 200, "telemetry while running: {payload}");
    validate_json(&payload).unwrap_or_else(|at| panic!("telemetry invalid at byte {at}"));
    let doc = parse_json(&payload).expect("telemetry JSON");
    assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("running"));
    assert_eq!(
        doc.get("scope").and_then(|s| s.as_str()),
        Some(format!("job{id}").as_str())
    );
    assert!(doc.get("step").is_some(), "running job reports its step");
    assert!(doc.get("metrics").is_some());

    // 2. The metrics stream: NDJSON, one self-contained snapshot line per
    //    interval, all while the job is still running.
    let lines = stream_lines(addr, "/metrics/stream?interval_ms=20&count=3", 3).expect("stream");
    assert!(lines.len() >= 3, "got {} stream lines", lines.len());
    let joined = lines.join("\n");
    let n = validate_ndjson(&joined)
        .unwrap_or_else(|(line, at)| panic!("stream line {line} invalid at byte {at}"));
    assert_eq!(n, lines.len());
    for (i, line) in lines.iter().enumerate() {
        let doc = parse_json(line).expect("stream line JSON");
        assert_eq!(doc.get("seq").and_then(|v| v.as_f64()), Some(i as f64));
        assert!(doc.get("metrics").is_some());
    }

    // 3. The job's flight dump is a valid, self-contained Chrome trace
    //    mid-run.
    let (status, trace) = http(addr, "GET", &format!("/jobs/{id}/flight"), "");
    assert_eq!(status, 200);
    validate_json(&trace).unwrap_or_else(|at| panic!("flight trace invalid at byte {at}"));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"flight-recorder\""));

    // Confirm the job was still running through all three probes, then
    // wind it down.
    let (_, doc) = http_json(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("running"));
    let (status, _) = http_json(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    assert_eq!(status, 200);
    assert_eq!(wait_terminal(addr, id), "cancelled");

    // The live endpoints timed themselves into the latency window.
    assert!(rec.windowed(names::SERVER_LIVE_SECONDS).map(|w| w.count) >= Some(4));
    server.shutdown();
}

#[test]
fn unknown_job_telemetry_and_flight_answer_404() {
    let rec = Recorder::new();
    let mut server = Server::start(ServerConfig::default(), rec).expect("start server");
    let addr = server.addr();
    let (status, _) = http(addr, "GET", "/jobs/999/telemetry", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/jobs/999/flight", "");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn concurrent_jobs_keep_isolated_telemetry_namespaces() {
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            ..Default::default()
        },
        rec.clone(),
    )
    .expect("start server");
    let addr = server.addr();

    // Two jobs running at once on separate workers.
    let body = "{\"level\": 4, \"steps\": 60, \"progress_every\": 1}";
    let mut ids = Vec::new();
    for _ in 0..2 {
        let (status, doc) = http_json(addr, "POST", "/jobs", body);
        assert_eq!(status, 202);
        ids.push(doc.get("id").and_then(|v| v.as_f64()).expect("job id"));
    }
    for &id in &ids {
        assert_eq!(wait_terminal(addr, id), "completed");
    }

    // Each job's namespace holds its own metrics and nothing of the
    // other's — checked through the public prefix filter.
    for &id in &ids {
        let other: f64 = ids.iter().copied().find(|&o| o != id).unwrap();
        let (status, payload) = http(addr, "GET", &format!("/metrics?prefix=job{id}."), "");
        assert_eq!(status, 200);
        validate_json(&payload).unwrap_or_else(|at| panic!("metrics invalid at byte {at}"));
        assert!(
            payload.contains(&format!("job{id}.core.sim.step_seconds")),
            "job{id} namespace missing its own step histogram"
        );
        assert!(
            !payload.contains(&format!("job{other}.")),
            "job{id} view leaked job{other} metrics"
        );
    }
    // And each job's flight dump only carries its own events.
    for &id in &ids {
        let other: f64 = ids.iter().copied().find(|&o| o != id).unwrap();
        let (status, trace) = http(addr, "GET", &format!("/jobs/{id}/flight"), "");
        assert_eq!(status, 200);
        assert!(trace.contains(&format!("job{id}.")));
        assert!(!trace.contains(&format!("job{other}.")));
    }
    server.shutdown();
}
