//! End-to-end service tests over real loopback HTTP: N concurrent tenants
//! submitting identical jobs share one mesh build and get bitwise-identical
//! results; a full queue answers 429; a drain loses no job.

use mpas_server::{Server, ServerConfig};
use mpas_telemetry::export::{parse_json, JsonValue};
use mpas_telemetry::{names, Recorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = parse_json(payload).unwrap_or(JsonValue::Null);
    (status, json)
}

fn wait_terminal(addr: SocketAddr, id: f64, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, doc) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "status poll for job {id}");
        let state = doc
            .get("status")
            .and_then(|s| s.as_str())
            .unwrap()
            .to_string();
        if state == "completed" || state == "failed" || state == "cancelled" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_identical_jobs_share_one_mesh_and_agree_bitwise() {
    const TENANTS: usize = 32;
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            ..Default::default()
        },
        rec.clone(),
    )
    .expect("start server");
    let addr = server.addr();

    // 32 tenants race identical level-5 submissions through real sockets.
    let body = "{\"level\": 5, \"steps\": 2, \"case\": \"5\"}";
    let handles: Vec<_> = (0..TENANTS)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, doc) = http(addr, "POST", "/jobs", body);
                assert_eq!(status, 202);
                doc.get("id").and_then(|v| v.as_f64()).expect("job id")
            })
        })
        .collect();
    let ids: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut hashes = Vec::new();
    for &id in &ids {
        assert_eq!(
            wait_terminal(addr, id, Duration::from_secs(120)),
            "completed"
        );
        let (status, doc) = http(addr, "GET", &format!("/jobs/{id}/result"), "");
        assert_eq!(status, 200);
        let hash = doc
            .get("state_hash")
            .and_then(|v| v.as_str())
            .expect("state hash")
            .to_string();
        assert!(doc.get("ttfs_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        hashes.push(hash);
    }
    // Bitwise-identical results across every tenant.
    assert!(
        hashes.windows(2).all(|w| w[0] == w[1]),
        "tenant results diverged: {hashes:?}"
    );

    // The shared mesh (and coefficient table) must have been built once.
    let snap = rec.snapshot();
    assert_eq!(snap.counter(names::SERVER_CACHE_MESH_MISS), Some(1));
    assert_eq!(snap.counter(names::SERVER_CACHE_COEFFS_MISS), Some(1));
    assert_eq!(
        snap.counter(names::SERVER_CACHE_HIT),
        Some(2 * TENANTS as u64 - 2)
    );
    assert!(snap.gauge(names::MESH_BUILD_MS).unwrap() > 0.0);
    assert!(snap.gauge(names::COEFFS_BUILD_MS).unwrap() > 0.0);
    assert_eq!(
        snap.counter(names::SERVER_JOBS_COMPLETED),
        Some(TENANTS as u64)
    );

    // Clean drain: nothing active, nothing lost, no double counting.
    server.shutdown();
    assert_eq!(server.registry().active(), 0);
    assert_eq!(server.registry().len(), TENANTS);
}

#[test]
fn full_queue_answers_429_and_drain_completes_accepted_jobs() {
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        },
        rec.clone(),
    )
    .expect("start server");
    let addr = server.addr();

    // A slow job occupies the single worker; progress_every=1 keeps its
    // cancellation checks frequent.
    let slow = "{\"level\": 4, \"steps\": 400, \"progress_every\": 1}";
    let quick = "{\"level\": 3, \"steps\": 2}";
    let (status, doc) = http(addr, "POST", "/jobs", slow);
    assert_eq!(status, 202);
    let slow_id = doc.get("id").and_then(|v| v.as_f64()).unwrap();

    // Wait until the worker picked it up, then fill the queue exactly.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, d) = http(addr, "GET", &format!("/jobs/{slow_id}"), "");
        if d.get("status").and_then(|s| s.as_str()) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "slow job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut queued_ids = Vec::new();
    for _ in 0..2 {
        let (status, doc) = http(addr, "POST", "/jobs", quick);
        assert_eq!(status, 202);
        queued_ids.push(doc.get("id").and_then(|v| v.as_f64()).unwrap());
    }

    // Queue is at capacity: the next submission bounces with 429.
    let (status, doc) = http(addr, "POST", "/jobs", quick);
    assert_eq!(status, 429);
    assert!(doc.get("error").is_some());
    let snap = rec.snapshot();
    assert_eq!(snap.gauge(names::SERVER_QUEUE_DEPTH), Some(2.0));
    assert_eq!(snap.counter(names::SERVER_JOBS_REJECTED), Some(1));

    // Cancel the slow job; the queued quick jobs then run and complete.
    let (status, _) = http(addr, "POST", &format!("/jobs/{slow_id}/cancel"), "");
    assert_eq!(status, 200);
    assert_eq!(
        wait_terminal(addr, slow_id, Duration::from_secs(60)),
        "cancelled"
    );
    for &id in &queued_ids {
        assert_eq!(
            wait_terminal(addr, id, Duration::from_secs(60)),
            "completed"
        );
    }

    // Shutdown endpoint flips the drain flag; the handle drains cleanly.
    let (status, doc) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(doc.get("draining").and_then(|v| v.as_bool()), Some(true));
    assert!(server.draining());
    server.shutdown();
    assert_eq!(server.registry().active(), 0);
}
