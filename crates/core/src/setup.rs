//! Shared case/mesh/executor setup.
//!
//! The CLI (`swe_run`), the job server (`swe_serve`), and the tests all
//! translate the same external spellings — case numbers, `threaded:4`-style
//! executor specs, reorder names — into model inputs. This module is the
//! single home for those translations so a new spelling (or a new validity
//! rule) lands everywhere at once.

use crate::simulation::Executor;
use mpas_mesh::{Mesh, Reordering};
use mpas_swe::{ModelConfig, TestCase};
use std::sync::Arc;

/// Parse a scenario label into its test case: a bare Williamson digit
/// (`"1"`..`"6"`), a catalog name (`"williamson-N"`, `"galewsky"`,
/// `"tracer-case5"`). `alpha` is the flow-orientation angle used by cases
/// 1 and 2.
pub fn parse_case(case: &str, alpha: f64) -> Result<TestCase, String> {
    match case {
        "1" | "williamson-1" => Ok(TestCase::Case1 { alpha }),
        "2" | "williamson-2" => Ok(TestCase::Case2 { alpha }),
        "3" | "williamson-3" => Ok(TestCase::Case3),
        "4" | "williamson-4" => Ok(TestCase::Case4),
        "5" | "williamson-5" | "tracer-case5" => Ok(TestCase::Case5),
        "6" | "williamson-6" => Ok(TestCase::Case6),
        "galewsky" => Ok(TestCase::Galewsky),
        other => Err(format!(
            "unsupported case {other} (1-6, williamson-1..6, galewsky or tracer-case5)"
        )),
    }
}

/// Fold the catalog's per-scenario config switches into `config`: case 1
/// holds the wind fixed (`advection_only`), the tracer scenario carries
/// passive tracers. Labels outside the catalog leave `config` untouched.
pub fn apply_case_config(case: &str, config: &mut ModelConfig) {
    if let Some(sc) = mpas_swe::validation::scenario(case) {
        config.advection_only = sc.advection_only;
        config.n_tracers = sc.n_tracers;
    }
}

/// Parse an executor spec: `serial`, `threaded:N` or `hybrid:N:M`
/// (thread counts default to 2 when omitted).
pub fn parse_executor(spec: &str) -> Result<Executor, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts[0] {
        "serial" => Ok(Executor::Serial),
        "threaded" => Ok(Executor::Threaded {
            threads: parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(2),
        }),
        "hybrid" => Ok(Executor::Hybrid {
            cpu_threads: parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(2),
            acc_threads: parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(2),
        }),
        other => Err(format!(
            "unknown executor {other} (serial, threaded:N or hybrid:N:M)"
        )),
    }
}

/// Renumber `mesh` if a reordering is requested ([`Reordering::None`] is
/// free: the input `Arc` is returned untouched).
pub fn apply_reorder(mesh: Arc<Mesh>, reorder: Reordering) -> Arc<Mesh> {
    if reorder == Reordering::None {
        return mesh;
    }
    let perm = reorder.permutation(&mesh);
    Arc::new(mesh.reordered(&perm))
}

/// Generate a level-`level` icosahedral mesh with `lloyd` relaxation
/// sweeps, renumbered per `reorder`. This is the canonical mesh
/// constructor behind [`crate::SimulationBuilder::build`] and the server's
/// shared-mesh cache.
pub fn build_mesh(level: u32, lloyd: u32, reorder: Reordering) -> Arc<Mesh> {
    apply_reorder(Arc::new(mpas_mesh::generate(level, lloyd)), reorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_labels_round_trip() {
        assert_eq!(parse_case("5", 0.0).unwrap(), TestCase::Case5);
        assert_eq!(parse_case("6", 0.0).unwrap(), TestCase::Case6);
        assert_eq!(
            parse_case("2", 0.25).unwrap(),
            TestCase::Case2 { alpha: 0.25 }
        );
        assert_eq!(
            parse_case("1", 0.1).unwrap(),
            TestCase::Case1 { alpha: 0.1 }
        );
        assert_eq!(parse_case("williamson-3", 0.0).unwrap(), TestCase::Case3);
        assert_eq!(parse_case("williamson-4", 0.0).unwrap(), TestCase::Case4);
        assert_eq!(parse_case("galewsky", 0.0).unwrap(), TestCase::Galewsky);
        assert_eq!(parse_case("tracer-case5", 0.0).unwrap(), TestCase::Case5);
        assert!(parse_case("7", 0.0).is_err());
    }

    #[test]
    fn catalog_config_switches_apply() {
        let mut cfg = ModelConfig::default();
        apply_case_config("williamson-1", &mut cfg);
        assert!(cfg.advection_only);
        assert_eq!(cfg.n_tracers, 0);
        let mut cfg = ModelConfig::default();
        apply_case_config("tracer-case5", &mut cfg);
        assert!(!cfg.advection_only);
        assert_eq!(cfg.n_tracers, 2);
        let mut cfg = ModelConfig::default();
        apply_case_config("not-a-case", &mut cfg);
        assert_eq!(cfg, ModelConfig::default());
    }

    #[test]
    fn executor_specs_parse_with_defaults() {
        assert_eq!(parse_executor("serial").unwrap(), Executor::Serial);
        assert_eq!(
            parse_executor("threaded:6").unwrap(),
            Executor::Threaded { threads: 6 }
        );
        assert_eq!(
            parse_executor("threaded").unwrap(),
            Executor::Threaded { threads: 2 }
        );
        assert_eq!(
            parse_executor("hybrid:3:1").unwrap(),
            Executor::Hybrid {
                cpu_threads: 3,
                acc_threads: 1
            }
        );
        assert!(parse_executor("cuda").is_err());
    }

    #[test]
    fn build_mesh_matches_inline_generate_and_reorder() {
        let direct = {
            let mesh = Arc::new(mpas_mesh::generate(2, 0));
            let perm = Reordering::Sfc.permutation(&mesh);
            Arc::new(mesh.reordered(&perm))
        };
        let via_setup = build_mesh(2, 0, Reordering::Sfc);
        assert_eq!(direct.n_cells(), via_setup.n_cells());
        assert_eq!(direct.x_cell, via_setup.x_cell);
    }

    #[test]
    fn apply_reorder_none_is_identity() {
        let mesh = build_mesh(1, 0, Reordering::None);
        let same = apply_reorder(mesh.clone(), Reordering::None);
        assert!(Arc::ptr_eq(&mesh, &same));
    }
}
