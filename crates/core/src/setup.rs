//! Shared case/mesh/executor setup.
//!
//! The CLI (`swe_run`), the job server (`swe_serve`), and the tests all
//! translate the same external spellings — case numbers, `threaded:4`-style
//! executor specs, reorder names — into model inputs. This module is the
//! single home for those translations so a new spelling (or a new validity
//! rule) lands everywhere at once.

use crate::simulation::Executor;
use mpas_mesh::{Mesh, Reordering};
use mpas_swe::TestCase;
use std::sync::Arc;

/// Parse a Williamson case label (`"2"`, `"5"` or `"6"`); `alpha` is the
/// flow-orientation angle used by case 2.
pub fn parse_case(case: &str, alpha: f64) -> Result<TestCase, String> {
    match case {
        "2" => Ok(TestCase::Case2 { alpha }),
        "5" => Ok(TestCase::Case5),
        "6" => Ok(TestCase::Case6),
        other => Err(format!("unsupported case {other} (2, 5 or 6)")),
    }
}

/// Parse an executor spec: `serial`, `threaded:N` or `hybrid:N:M`
/// (thread counts default to 2 when omitted).
pub fn parse_executor(spec: &str) -> Result<Executor, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts[0] {
        "serial" => Ok(Executor::Serial),
        "threaded" => Ok(Executor::Threaded {
            threads: parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(2),
        }),
        "hybrid" => Ok(Executor::Hybrid {
            cpu_threads: parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(2),
            acc_threads: parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(2),
        }),
        other => Err(format!(
            "unknown executor {other} (serial, threaded:N or hybrid:N:M)"
        )),
    }
}

/// Renumber `mesh` if a reordering is requested ([`Reordering::None`] is
/// free: the input `Arc` is returned untouched).
pub fn apply_reorder(mesh: Arc<Mesh>, reorder: Reordering) -> Arc<Mesh> {
    if reorder == Reordering::None {
        return mesh;
    }
    let perm = reorder.permutation(&mesh);
    Arc::new(mesh.reordered(&perm))
}

/// Generate a level-`level` icosahedral mesh with `lloyd` relaxation
/// sweeps, renumbered per `reorder`. This is the canonical mesh
/// constructor behind [`crate::SimulationBuilder::build`] and the server's
/// shared-mesh cache.
pub fn build_mesh(level: u32, lloyd: u32, reorder: Reordering) -> Arc<Mesh> {
    apply_reorder(Arc::new(mpas_mesh::generate(level, lloyd)), reorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_labels_round_trip() {
        assert_eq!(parse_case("5", 0.0).unwrap(), TestCase::Case5);
        assert_eq!(parse_case("6", 0.0).unwrap(), TestCase::Case6);
        assert_eq!(
            parse_case("2", 0.25).unwrap(),
            TestCase::Case2 { alpha: 0.25 }
        );
        assert!(parse_case("1", 0.0).is_err());
    }

    #[test]
    fn executor_specs_parse_with_defaults() {
        assert_eq!(parse_executor("serial").unwrap(), Executor::Serial);
        assert_eq!(
            parse_executor("threaded:6").unwrap(),
            Executor::Threaded { threads: 6 }
        );
        assert_eq!(
            parse_executor("threaded").unwrap(),
            Executor::Threaded { threads: 2 }
        );
        assert_eq!(
            parse_executor("hybrid:3:1").unwrap(),
            Executor::Hybrid {
                cpu_threads: 3,
                acc_threads: 1
            }
        );
        assert!(parse_executor("cuda").is_err());
    }

    #[test]
    fn build_mesh_matches_inline_generate_and_reorder() {
        let direct = {
            let mesh = Arc::new(mpas_mesh::generate(2, 0));
            let perm = Reordering::Sfc.permutation(&mesh);
            Arc::new(mesh.reordered(&perm))
        };
        let via_setup = build_mesh(2, 0, Reordering::Sfc);
        assert_eq!(direct.n_cells(), via_setup.n_cells());
        assert_eq!(direct.x_cell, via_setup.x_cell);
    }

    #[test]
    fn apply_reorder_none_is_identity() {
        let mesh = build_mesh(1, 0, Reordering::None);
        let same = apply_reorder(mesh.clone(), Reordering::None);
        assert!(Arc::ptr_eq(&mesh, &same));
    }
}
