#![warn(missing_docs)]
//! High-level simulation API tying the whole reproduction together.
//!
//! Downstream users configure a [`Simulation`] (mesh resolution, Williamson
//! test case, executor) and run it; the crate wires up mesh generation,
//! the shallow-water core, the threaded/hybrid executors of `mpas-hybrid`,
//! and the multi-rank distributed driver over `mpas-msg`.
//!
//! ```no_run
//! use mpas_core::{Executor, Simulation};
//! use mpas_swe::TestCase;
//!
//! let mut sim = Simulation::builder()
//!     .mesh_level(4)
//!     .test_case(TestCase::Case5)
//!     .executor(Executor::Threaded { threads: 4 })
//!     .build();
//! sim.run_steps(10);
//! println!("mass drift: {:e}", sim.mass_drift());
//! ```

pub mod distributed;
pub mod runner;
pub mod setup;
pub mod simulation;

pub use distributed::{halo_probe, run_distributed, run_distributed_recorded, DistributedConfig};
pub use runner::{run_job, state_hash, JobError, JobProgress, JobResult, JobSpec};
pub use setup::{apply_case_config, apply_reorder, build_mesh, parse_case, parse_executor};
pub use simulation::{Executor, Simulation, SimulationBuilder};
