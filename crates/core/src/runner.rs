//! Cancellable job runner: one simulation run as a unit of service work.
//!
//! `mpas-server` (and anything else that runs simulations on behalf of a
//! caller) needs more than [`crate::Simulation::run_steps`]: cooperative
//! cancellation, periodic progress callbacks, a time-to-first-step
//! measurement, and a digest of the final state so identical jobs can be
//! checked for bitwise-identical results without shipping whole fields.
//! [`run_job`] packages exactly that on top of the builder, reusing a
//! pre-built shared mesh and (optionally) a shared coefficient table.

use crate::simulation::{Executor, Simulation};
use mpas_mesh::Mesh;
use mpas_swe::{KernelBackend, KernelCoeffs, ModelConfig, State, TestCase};
use mpas_telemetry::digest::Fnv1a;
use mpas_telemetry::Recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Everything that defines one simulation job (the mesh itself is handed
/// in separately so the caller controls sharing).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Williamson scenario.
    pub test_case: TestCase,
    /// RK-4 steps to run.
    pub steps: usize,
    /// Execution engine.
    pub executor: Executor,
    /// Scheduler-policy registry name (modeled placement; see
    /// [`crate::SimulationBuilder::sched_policy`]).
    pub policy: String,
    /// Kernel tier to run (scalar, fused, or simd).
    pub backend: KernelBackend,
    /// Vertical layers to carry (k > 1 requires the simd backend and the
    /// serial executor; see [`crate::SimulationBuilder`]).
    pub layers: usize,
    /// Explicit dt in seconds (`None` picks the stable default).
    pub dt: Option<f64>,
    /// Passive tracers carried by the run (the catalog's tracer scenarios;
    /// see [`crate::setup::apply_case_config`]).
    pub n_tracers: usize,
    /// Hold the wind fixed (Williamson case 1).
    pub advection_only: bool,
    /// Invoke the progress callback every this many steps (0 = only on
    /// completion). Cancellation is checked at the same cadence.
    pub progress_every: usize,
}

impl JobSpec {
    /// A level-agnostic default: case 5, serial, fused, 10 steps.
    pub fn new(test_case: TestCase, steps: usize) -> Self {
        JobSpec {
            test_case,
            steps,
            executor: Executor::Serial,
            policy: "pattern-driven".to_string(),
            backend: KernelBackend::Fused,
            layers: 1,
            dt: None,
            n_tracers: 0,
            advection_only: false,
            progress_every: 0,
        }
    }

    /// The model config this spec implies.
    pub fn config(&self) -> ModelConfig {
        ModelConfig {
            kernel_backend: self.backend,
            n_layers: self.layers.max(1),
            n_tracers: self.n_tracers,
            advection_only: self.advection_only,
            ..Default::default()
        }
    }
}

/// Periodic progress report passed to the callback of [`run_job`].
#[derive(Debug, Clone, Copy)]
pub struct JobProgress {
    /// Steps completed so far.
    pub step: usize,
    /// Total steps requested.
    pub total: usize,
    /// Relative mass drift so far.
    pub mass_drift: f64,
}

/// What a completed job hands back.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Cells in the mesh the job ran on.
    pub n_cells: usize,
    /// Steps actually run (equals the request for completed jobs).
    pub steps_done: usize,
    /// Time-step size used, seconds.
    pub dt: f64,
    /// Wall-clock seconds from model build to last step.
    pub run_secs: f64,
    /// Wall-clock seconds from entry to the end of the first step — the
    /// serving-latency quantity (TTFS) the SLO gate watches.
    pub ttfs_secs: f64,
    /// Relative mass drift over the run.
    pub mass_drift: f64,
    /// l2 thickness error vs the analytic reference.
    pub h_err_l2: f64,
    /// FNV-1a digest of the final state bits (see [`state_hash`]; all `k`
    /// layers for layered jobs).
    pub state_hash: u64,
}

/// Why a job did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The cancel flag was set; `steps_done` steps had run by then.
    Cancelled {
        /// Steps completed before cancellation was observed.
        steps_done: usize,
    },
    /// The spec could not be run (bad policy name, zero steps, ...).
    Invalid(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled { steps_done } => {
                write!(f, "cancelled after {steps_done} steps")
            }
            JobError::Invalid(msg) => write!(f, "invalid job: {msg}"),
        }
    }
}

/// FNV-1a over the raw bit patterns of the prognostic fields, in index
/// order (`h`, then `u`, then each tracer-mass field). Bitwise-stable
/// across executors by construction — the repo's executors agree bitwise —
/// so equal hashes across tenants is the cheap proxy for "identical
/// results". Built on the shared [`Fnv1a`] digest, the same primitive
/// the server's cache keys and the layered
/// [`mpas_swe::LayeredState::state_hash`] (which folds in all `k` layers)
/// use.
pub fn state_hash(state: &State) -> u64 {
    let mut d = Fnv1a::new();
    d.write_f64_slice(&state.h);
    d.write_f64_slice(&state.u);
    for t in &state.tracers {
        d.write_f64_slice(t);
    }
    d.finish()
}

/// Run `spec` on a pre-built `mesh`, optionally reusing a shared
/// coefficient table (which must have been built for this mesh and
/// `spec.config()`). The cancel flag is polled every progress chunk;
/// `progress` fires after each chunk with the running mass drift.
pub fn run_job(
    spec: &JobSpec,
    mesh: Arc<Mesh>,
    shared_coeffs: Option<Arc<KernelCoeffs>>,
    rec: &Recorder,
    cancel: &AtomicBool,
    mut progress: impl FnMut(JobProgress),
) -> Result<JobResult, JobError> {
    if spec.steps == 0 {
        return Err(JobError::Invalid("steps must be >= 1".to_string()));
    }
    mpas_sched::resolve(&spec.policy).map_err(JobError::Invalid)?;
    if cancel.load(Ordering::Relaxed) {
        return Err(JobError::Cancelled { steps_done: 0 });
    }

    let t0 = Instant::now();
    let mut builder = Simulation::builder()
        .mesh(mesh)
        .test_case(spec.test_case)
        .executor(spec.executor)
        .config(spec.config())
        .sched_policy(&spec.policy)
        .recorder(rec.clone());
    if let Some(dt) = spec.dt {
        builder = builder.dt(dt);
    }
    if let Some(kc) = shared_coeffs {
        builder = builder.kernel_coeffs(kc);
    }
    let mut sim = builder.build();

    // First step alone: its latency is the TTFS the serving SLO watches
    // (model build + one step = what a tenant waits before any output).
    sim.run_steps(1);
    let ttfs_secs = t0.elapsed().as_secs_f64();
    let mut done = 1usize;

    let chunk = if spec.progress_every == 0 {
        spec.steps
    } else {
        spec.progress_every
    };
    loop {
        progress(JobProgress {
            step: done,
            total: spec.steps,
            mass_drift: sim.mass_drift(),
        });
        if done >= spec.steps {
            break;
        }
        if cancel.load(Ordering::Relaxed) {
            return Err(JobError::Cancelled { steps_done: done });
        }
        let n = chunk.min(spec.steps - done);
        sim.run_steps(n);
        done += n;
    }

    Ok(JobResult {
        n_cells: sim.mesh.n_cells(),
        steps_done: done,
        dt: sim.dt(),
        run_secs: t0.elapsed().as_secs_f64(),
        ttfs_secs,
        mass_drift: sim.mass_drift(),
        h_err_l2: sim.h_error_norms().l2,
        state_hash: sim.state_digest(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use mpas_mesh::Reordering;

    fn spec(steps: usize) -> JobSpec {
        JobSpec::new(TestCase::Case5, steps)
    }

    #[test]
    fn run_job_matches_plain_simulation_bitwise() {
        let mesh = setup::build_mesh(3, 0, Reordering::None);
        let cancel = AtomicBool::new(false);
        let out = run_job(
            &spec(4),
            mesh.clone(),
            None,
            &Recorder::noop(),
            &cancel,
            |_| {},
        )
        .unwrap();
        let mut sim = Simulation::builder()
            .mesh(mesh)
            .test_case(TestCase::Case5)
            .build();
        sim.run_steps(4);
        assert_eq!(out.state_hash, state_hash(sim.state()));
        assert_eq!(out.steps_done, 4);
        assert!(out.ttfs_secs > 0.0 && out.ttfs_secs <= out.run_secs);
    }

    #[test]
    fn shared_coeffs_do_not_change_the_bits() {
        let mesh = setup::build_mesh(3, 0, Reordering::None);
        let s = spec(3);
        let kc = Arc::new(KernelCoeffs::build(&mesh, &s.config()));
        let cancel = AtomicBool::new(false);
        let a = run_job(
            &s,
            mesh.clone(),
            Some(kc),
            &Recorder::noop(),
            &cancel,
            |_| {},
        )
        .unwrap();
        let b = run_job(&s, mesh, None, &Recorder::noop(), &cancel, |_| {}).unwrap();
        assert_eq!(a.state_hash, b.state_hash);
        assert_eq!(a.mass_drift, b.mass_drift);
    }

    #[test]
    fn progress_fires_per_chunk_and_cancel_stops_the_run() {
        let mesh = setup::build_mesh(2, 0, Reordering::None);
        let mut s = spec(6);
        s.progress_every = 2;
        let cancel = AtomicBool::new(false);
        let mut seen = Vec::new();
        run_job(&s, mesh.clone(), None, &Recorder::noop(), &cancel, |p| {
            seen.push(p.step)
        })
        .unwrap();
        // First step runs alone (TTFS), then 2-step chunks: 1, 3, 5, 6.
        assert_eq!(seen, vec![1, 3, 5, 6]);

        // Cancel as soon as the first progress report lands.
        let err = run_job(&s, mesh, None, &Recorder::noop(), &cancel, |_| {
            cancel.store(true, Ordering::Relaxed)
        })
        .unwrap_err();
        assert_eq!(err, JobError::Cancelled { steps_done: 1 });
    }

    #[test]
    fn invalid_specs_are_rejected_up_front() {
        let mesh = setup::build_mesh(1, 0, Reordering::None);
        let cancel = AtomicBool::new(false);
        let err = run_job(
            &spec(0),
            mesh.clone(),
            None,
            &Recorder::noop(),
            &cancel,
            |_| {},
        );
        assert!(matches!(err, Err(JobError::Invalid(_))));
        let mut s = spec(1);
        s.policy = "fifo".to_string();
        let err = run_job(&s, mesh, None, &Recorder::noop(), &cancel, |_| {});
        assert!(matches!(err, Err(JobError::Invalid(_))));
    }

    #[test]
    fn state_hash_distinguishes_single_bit_flips() {
        let mut st = State {
            h: vec![1.0, 2.0],
            u: vec![3.0],
            tracers: vec![vec![4.0, 5.0]],
        };
        let h0 = state_hash(&st);
        st.u[0] = f64::from_bits(st.u[0].to_bits() ^ 1);
        let h1 = state_hash(&st);
        assert_ne!(h0, h1);
        // Tracer bits are part of the digest too.
        st.tracers[0][1] = f64::from_bits(st.tracers[0][1].to_bits() ^ 1);
        assert_ne!(h1, state_hash(&st));
    }
}
