//! Multi-rank distributed execution of the shallow-water model.
//!
//! Each rank owns a partition of the mesh (RCB, three halo layers), runs
//! the full RK-4 kernel sequence on its [`mpas_mesh::LocalMesh`], and
//! exchanges the prognostic halo once per substep — the communication
//! structure of the paper's Fig. 2/Fig. 4 flowcharts. Because every owned
//! output is computed with exactly the serial loop structure, the gathered
//! global result is **bit-for-bit identical** to the single-rank run
//! (asserted by the integration tests), which is a stronger property than
//! the paper's "consistent within machine precision".

use mpas_mesh::{extract_local_mesh, Mesh, MeshPartition};
use mpas_msg::comm::{run_ranks, RankCtx};
use mpas_msg::halo::{FieldKind, HaloExchanger};
use mpas_swe::coeffs::KernelCoeffs;
use mpas_swe::config::ModelConfig;
use mpas_swe::kernels;
use mpas_swe::reconstruct::ReconstructCoeffs;
use mpas_swe::rk4::{RK_SUBSTEP, RK_WEIGHTS};
use mpas_swe::state::{Diagnostics, Reconstruction, State, Tendencies};
use mpas_swe::testcases::TestCase;
use mpas_telemetry::analysis::STEP_SPAN;
use mpas_telemetry::Recorder;

/// Parameters of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    /// Number of ranks (threads) to run.
    pub n_ranks: usize,
    /// Halo depth; 3 is the minimum that keeps owned outputs exact across
    /// the TRiSK stencil chain.
    pub halo_layers: usize,
    /// Numerical options, shared by every rank.
    pub model: ModelConfig,
    /// Initial condition / forcing scenario.
    pub test_case: TestCase,
    /// Time step (must be supplied explicitly so every rank agrees).
    pub dt: f64,
    /// Number of RK-4 steps to advance.
    pub n_steps: usize,
}

/// Run the model on `n_ranks` ranks and gather the global prognostic state
/// on return.
pub fn run_distributed(mesh: &Mesh, cfg: DistributedConfig) -> State {
    run_distributed_recorded(mesh, cfg, &Recorder::noop())
}

/// [`run_distributed`] with telemetry: every rank's communicator and halo
/// exchanger report into `rec` (`msg.comm.*` / `msg.halo.*`), which is
/// shared across ranks — counters aggregate over the whole job.
pub fn run_distributed_recorded(mesh: &Mesh, cfg: DistributedConfig, rec: &Recorder) -> State {
    assert!(
        cfg.halo_layers >= 3,
        "TRiSK stencils need at least 3 halo layers"
    );
    let part = MeshPartition::build(mesh, cfg.n_ranks, cfg.halo_layers);
    let locals: Vec<_> = part
        .ranks
        .iter()
        .map(|rl| (extract_local_mesh(mesh, rl), rl.clone()))
        .collect();

    let results = run_ranks(cfg.n_ranks, |mut ctx| {
        ctx.set_recorder(rec.clone());
        let (lm, rl) = &locals[ctx.rank];
        rank_main(&mut ctx, lm, rl.clone(), &cfg, rec)
    });

    // Assemble the global state from each rank's owned entries.
    let mut h = vec![0.0; mesh.n_cells()];
    let mut u = vec![0.0; mesh.n_edges()];
    let mut tracers = vec![vec![0.0; mesh.n_cells()]; cfg.model.n_tracers];
    for (rank, (lh, lu, ltr)) in results.into_iter().enumerate() {
        let lm = &locals[rank].0;
        for (l, &g) in lm.cell_l2g[..lm.n_owned_cells].iter().enumerate() {
            h[g as usize] = lh[l];
            for (k, lt) in ltr.iter().enumerate() {
                tracers[k][g as usize] = lt[l];
            }
        }
        for (l, &g) in lm.edge_l2g[..lm.n_owned_edges].iter().enumerate() {
            u[g as usize] = lu[l];
        }
    }
    State { h, u, tracers }
}

/// One rank's full time loop. Returns its owned (h, u, tracer) slices.
fn rank_main(
    ctx: &mut RankCtx,
    lm: &mpas_mesh::LocalMesh,
    rl: mpas_mesh::RankLocal,
    cfg: &DistributedConfig,
    rec: &Recorder,
) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let mesh = &lm.mesh;
    let mcfg = &cfg.model;
    let tc = cfg.test_case;
    let dt = cfg.dt;

    let mut state = tc.initial_state_with_tracers(mesh, mcfg.n_tracers);
    let b = tc.topography(mesh);
    let f_vertex = tc.coriolis_vertex(mesh);
    let coeffs = ReconstructCoeffs::build(mesh);
    let kc = KernelCoeffs::build(mesh, mcfg);
    let backend = mcfg.kernel_backend;
    // Case-4 forcing, computed from the rank's own local mesh: the
    // background state is sampled analytically (exact on halos too) and
    // three halo layers make every owned tendency entry equal the serial
    // one, so the owned forcing entries are bitwise the serial forcing.
    let forcing = tc.needs_forcing().then(|| {
        mpas_swe::model::compute_equilibrium_forcing(mesh, mcfg, &kc, &tc, &b, &f_vertex, dt)
    });
    // Same branch the single-address-space executors take: per-entity the
    // local coefficients equal the global ones, so owned outputs stay
    // bit-for-bit identical to the serial run on either path.
    let solve_diag = |h: &[f64], u: &[f64], diag: &mut Diagnostics| {
        kernels::compute_solve_diagnostics_backend(
            backend, mesh, mcfg, &kc, h, u, &f_vertex, dt, diag,
        );
    };
    let mut diag = Diagnostics::zeros(mesh);
    let mut tend = Tendencies::zeros_with_tracers(mesh, mcfg.n_tracers);
    let mut provis = State::zeros_with_tracers(mesh, mcfg.n_tracers);
    let mut acc = State::zeros_with_tracers(mesh, mcfg.n_tracers);
    let mut recon = Reconstruction::zeros(mesh);
    let mut hx = HaloExchanger::new(rl).with_recorder(rec.clone());

    let n_owned_cells = lm.n_owned_cells;
    let n_owned_edges = lm.n_owned_edges;

    solve_diag(&state.h, &state.u, &mut diag);

    for step in 0..cfg.n_steps {
        // Rank-tagged per-step window: the unit the trace analyzer
        // decomposes into compute/copy/wait/barrier blame. The begin/end
        // events give downstream tools the step index without parsing
        // span order.
        let _step_span = rec.span_timed(ctx.track(), STEP_SPAN, "core.rank.step_seconds");
        if rec.is_enabled() {
            rec.event(
                "core.step",
                &[
                    ("rank", ctx.rank.to_string()),
                    ("step", step.to_string()),
                    ("phase", "begin".to_string()),
                ],
            );
        }
        acc.copy_from(&state);
        provis.copy_from(&state);
        for stage in 0..4 {
            kernels::compute_tend_backend(
                backend, mesh, mcfg, &kc, &provis.h, &provis.u, &b, &diag, &mut tend,
            );
            if !provis.tracers.is_empty() {
                kernels::compute_tend_tracers_backend(
                    backend,
                    mesh,
                    &kc,
                    &provis.h,
                    &provis.u,
                    &diag,
                    &provis.tracers,
                    &mut tend,
                );
            }
            if let Some(f) = &forcing {
                kernels::apply_forcing(mesh, f, &mut tend);
            }
            kernels::enforce_boundary_edge(mesh, &mut tend);
            if stage < 3 {
                // Owned region only; halos come from the owners.
                update_owned(
                    &state,
                    &tend,
                    RK_SUBSTEP[stage] * dt,
                    &mut provis,
                    n_owned_cells,
                    n_owned_edges,
                );
                let ncl = hx.local().n_cells();
                hx.exchange_state(ctx, &mut provis.h[..ncl], &mut provis.u);
                for tr in provis.tracers.iter_mut() {
                    hx.exchange(ctx, FieldKind::Cell, &mut tr[..ncl]);
                }
                solve_diag(&provis.h, &provis.u, &mut diag);
                accumulate_owned(
                    &tend,
                    RK_WEIGHTS[stage] * dt,
                    &mut acc,
                    n_owned_cells,
                    n_owned_edges,
                );
            } else {
                accumulate_owned(
                    &tend,
                    RK_WEIGHTS[stage] * dt,
                    &mut acc,
                    n_owned_cells,
                    n_owned_edges,
                );
                state.h[..n_owned_cells].copy_from_slice(&acc.h[..n_owned_cells]);
                state.u[..n_owned_edges].copy_from_slice(&acc.u[..n_owned_edges]);
                for (tr, atr) in state.tracers.iter_mut().zip(&acc.tracers) {
                    tr[..n_owned_cells].copy_from_slice(&atr[..n_owned_cells]);
                }
                let ncl = hx.local().n_cells();
                hx.exchange_state(ctx, &mut state.h[..ncl], &mut state.u);
                for tr in state.tracers.iter_mut() {
                    hx.exchange(ctx, FieldKind::Cell, &mut tr[..ncl]);
                }
                solve_diag(&state.h, &state.u, &mut diag);
                kernels::mpas_reconstruct(mesh, &coeffs, &state.u, &mut recon);
            }
        }
        if rec.is_enabled() {
            rec.event(
                "core.step",
                &[
                    ("rank", ctx.rank.to_string()),
                    ("step", step.to_string()),
                    ("phase", "end".to_string()),
                ],
            );
        }
    }

    (
        state.h[..n_owned_cells].to_vec(),
        state.u[..n_owned_edges].to_vec(),
        state
            .tracers
            .iter()
            .map(|tr| tr[..n_owned_cells].to_vec())
            .collect(),
    )
}

/// Partition `mesh` across `n_ranks` (3 halo layers), run one real packed
/// halo exchange under `rec`, and return the exact per-substep halo bytes
/// implied by the partition's send lists (summed over all ranks, one
/// direction, 8 bytes per `f64`).
///
/// Also sets two gauges on `rec` so a metrics snapshot can compare the
/// measurement against the analytic √n estimate the scaling model uses:
/// `msg.halo.exact_bytes_per_substep` (this function's return value) and
/// `msg.halo.modeled_bytes_per_substep`
/// ([`mpas_hybrid::sim::halo_bytes_per_substep`] summed over ranks).
pub fn halo_probe(mesh: &Mesh, n_ranks: usize, rec: &Recorder) -> u64 {
    let part = MeshPartition::build(mesh, n_ranks, 3);
    let exact: u64 = part
        .ranks
        .iter()
        .flat_map(|p| p.send_cells.iter().chain(p.send_edges.iter()))
        .map(|(_, list)| (list.len() * 8) as u64)
        .sum();
    let parts = part.ranks;
    run_ranks(n_ranks, |mut ctx| {
        ctx.set_recorder(rec.clone());
        let mut hx = HaloExchanger::new(parts[ctx.rank].clone()).with_recorder(rec.clone());
        let mut cells = vec![0.0; hx.local().n_cells()];
        let mut edges = vec![0.0; hx.local().edges.len()];
        hx.exchange_state(&mut ctx, &mut cells, &mut edges);
    });
    rec.set_gauge("msg.halo.exact_bytes_per_substep", exact as f64);
    rec.set_gauge(
        "msg.halo.modeled_bytes_per_substep",
        n_ranks as f64
            * mpas_hybrid::sim::halo_bytes_per_substep(mesh.n_cells() as f64 / n_ranks as f64),
    );
    exact
}

fn update_owned(base: &State, tend: &Tendencies, coef: f64, out: &mut State, nc: usize, ne: usize) {
    for i in 0..nc {
        out.h[i] = base.h[i] + coef * tend.tend_h[i];
    }
    for e in 0..ne {
        out.u[e] = base.u[e] + coef * tend.tend_u[e];
    }
    for (k, tr) in out.tracers.iter_mut().enumerate() {
        for (i, t) in tr.iter_mut().enumerate().take(nc) {
            *t = base.tracers[k][i] + coef * tend.tend_tracers[k][i];
        }
    }
}

fn accumulate_owned(tend: &Tendencies, weight: f64, acc: &mut State, nc: usize, ne: usize) {
    for i in 0..nc {
        acc.h[i] += weight * tend.tend_h[i];
    }
    for e in 0..ne {
        acc.u[e] += weight * tend.tend_u[e];
    }
    for (k, tr) in acc.tracers.iter_mut().enumerate() {
        for (i, t) in tr.iter_mut().enumerate().take(nc) {
            *t += weight * tend.tend_tracers[k][i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn serial_reference(mesh: &Arc<Mesh>, tc: TestCase, dt: f64, steps: usize) -> State {
        let mut m =
            mpas_swe::ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), tc, Some(dt));
        m.run_steps(steps);
        m.state.clone()
    }

    #[test]
    fn four_ranks_match_serial_bitwise() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let dt = ModelConfig::suggested_dt(&mesh);
        let tc = TestCase::Case5;
        let serial = serial_reference(&mesh, tc, dt, 3);
        let dist = run_distributed(
            &mesh,
            DistributedConfig {
                n_ranks: 4,
                halo_layers: 3,
                model: ModelConfig::default(),
                test_case: tc,
                dt,
                n_steps: 3,
            },
        );
        assert_eq!(serial.max_abs_diff(&dist), 0.0, "distributed != serial");
    }

    #[test]
    fn rank_count_does_not_change_results() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let dt = ModelConfig::suggested_dt(&mesh);
        let tc = TestCase::Case6;
        let base = DistributedConfig {
            n_ranks: 2,
            halo_layers: 3,
            model: ModelConfig::default(),
            test_case: tc,
            dt,
            n_steps: 2,
        };
        let two = run_distributed(&mesh, base);
        let five = run_distributed(&mesh, DistributedConfig { n_ranks: 5, ..base });
        assert_eq!(two.max_abs_diff(&five), 0.0);
    }

    #[test]
    fn recorded_run_yields_analyzable_trace() {
        use mpas_telemetry::analysis::Trace;
        use mpas_telemetry::Recorder;
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let dt = ModelConfig::suggested_dt(&mesh);
        let rec = Recorder::new();
        let n_steps = 2;
        run_distributed_recorded(
            &mesh,
            DistributedConfig {
                n_ranks: 3,
                halo_layers: 3,
                model: ModelConfig::default(),
                test_case: TestCase::Case5,
                dt,
                n_steps,
            },
            &rec,
        );
        let t = Trace::from_recorder(&rec);
        assert_eq!(t.active_ranks(), 3);
        assert_eq!(t.per_step_makespans().len(), n_steps);
        for tl in &t.ranks {
            assert_eq!(tl.steps.len(), n_steps, "rank {} step spans", tl.rank);
            assert!(!tl.waits.is_empty(), "rank {} recorded no waits", tl.rank);
            assert!(!tl.copies.is_empty(), "rank {} recorded no copies", tl.rank);
        }
        let blame = t.blame();
        for r in &blame.ranks {
            let s = r.compute_frac() + r.wait_frac() + r.copy_frac() + r.barrier_frac();
            assert!((s - 1.0).abs() < 1e-9, "rank {} fractions sum {s}", r.rank);
        }
        // 4 substeps/step, each with one packed exchange per rank; the
        // analyzer must match every recv back to a send.
        assert_eq!(t.sends.len(), t.recvs.len());
        let cp = t.critical_path();
        assert!(cp.path_s() > 0.0);
        assert!(cp.path_s() <= cp.makespan_s + 1e-12);
        // The begin/end step events carry rank/step indices.
        let evs = rec.events();
        assert_eq!(
            evs.iter()
                .filter(|e| e.name == "core.step"
                    && e.args.iter().any(|(k, v)| k == "phase" && v == "begin"))
                .count(),
            3 * n_steps
        );
    }

    #[test]
    #[should_panic(expected = "halo layers")]
    fn shallow_halo_is_rejected() {
        let mesh = mpas_mesh::generate(2, 0);
        run_distributed(
            &mesh,
            DistributedConfig {
                n_ranks: 2,
                halo_layers: 2,
                model: ModelConfig::default(),
                test_case: TestCase::Case5,
                dt: 100.0,
                n_steps: 1,
            },
        );
    }
}
