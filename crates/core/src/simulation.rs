//! The user-facing `Simulation` facade.

use mpas_hybrid::{HybridModel, ParallelModel, Platform, Schedule};
use mpas_mesh::{Mesh, Reordering};
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use mpas_sched::SchedulerPolicy;
use mpas_swe::coeffs::KernelCoeffs;
use mpas_swe::config::ModelConfig;
use mpas_swe::norms::ErrorNorms;
use mpas_swe::state::State;
use mpas_swe::testcases::TestCase;
use mpas_swe::{KernelBackend, LayeredModel, ShallowWaterModel};
use mpas_telemetry::Recorder;
use std::sync::Arc;

/// Which execution engine advances the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Executor {
    /// The reference single-threaded code ("original CPU code").
    Serial,
    /// The rayon/OpenMP-analog threaded executor.
    Threaded {
        /// Worker threads in the pool.
        threads: usize,
    },
    /// The two-pool pattern-driven hybrid executor of Fig. 4 (b).
    Hybrid {
        /// Workers in the host pool.
        cpu_threads: usize,
        /// Workers in the simulated-accelerator pool.
        acc_threads: usize,
    },
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    mesh_level: u32,
    lloyd_iters: u32,
    mesh: Option<Arc<Mesh>>,
    kernel_coeffs: Option<Arc<KernelCoeffs>>,
    test_case: TestCase,
    config: ModelConfig,
    dt: Option<f64>,
    executor: Executor,
    reorder: Reordering,
    sched_policy: String,
    recorder: Recorder,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            mesh_level: 3,
            lloyd_iters: 0,
            mesh: None,
            kernel_coeffs: None,
            test_case: TestCase::Case5,
            config: ModelConfig::default(),
            dt: None,
            executor: Executor::Serial,
            reorder: Reordering::None,
            sched_policy: "pattern-driven".to_string(),
            recorder: Recorder::noop(),
        }
    }
}

impl SimulationBuilder {
    /// Icosahedral subdivision level (6..=9 match the paper's Table III).
    pub fn mesh_level(mut self, level: u32) -> Self {
        self.mesh_level = level;
        self
    }

    /// Lloyd relaxation sweeps applied to the mesh.
    pub fn lloyd_iters(mut self, iters: u32) -> Self {
        self.lloyd_iters = iters;
        self
    }

    /// Use a pre-built mesh instead of generating one.
    pub fn mesh(mut self, mesh: Arc<Mesh>) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Reuse an already-built fused-coefficient table instead of building
    /// one. It must have been built for the final mesh (after any
    /// [`SimulationBuilder::reorder`]) and the configured [`ModelConfig`];
    /// the multi-tenant server uses this to share one table across
    /// concurrent simulations on the same cached mesh.
    pub fn kernel_coeffs(mut self, coeffs: Arc<KernelCoeffs>) -> Self {
        self.kernel_coeffs = Some(coeffs);
        self
    }

    /// Williamson test case (2, 5 or 6).
    pub fn test_case(mut self, tc: TestCase) -> Self {
        self.test_case = tc;
        self
    }

    /// Numerical options.
    pub fn config(mut self, config: ModelConfig) -> Self {
        self.config = config;
        self
    }

    /// Explicit time step (seconds); default picks a stable CFL value.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Execution engine.
    pub fn executor(mut self, e: Executor) -> Self {
        self.executor = e;
        self
    }

    /// Renumber the mesh for gather locality before the model is built
    /// (Morton/SFC or Cuthill–McKee BFS cell order with first-touch edge
    /// and vertex numbering). Test-case initializers are position-based,
    /// so results are independent of the ordering; only memory-access
    /// locality changes. Default: construction order.
    pub fn reorder(mut self, r: Reordering) -> Self {
        self.reorder = r;
        self
    }

    /// Scheduling policy for the modeled makespans
    /// ([`Simulation::modeled_time_per_step`]), by registry name — any of
    /// [`mpas_sched::registered_names`], e.g. `"heft"` or
    /// `"lookahead[depth=3]"`. Default: `"pattern-driven"` (the paper's).
    pub fn sched_policy(mut self, spec: &str) -> Self {
        self.sched_policy = spec.to_string();
        self
    }

    /// Route telemetry (per-step `core.sim.*` metrics, the engine's
    /// kernel-level timers, scheduler decision events) into `rec`. The
    /// default no-op recorder costs one branch per hook.
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Build the simulation (generates the mesh if none was supplied).
    pub fn build(self) -> Simulation {
        let mesh = match self.mesh {
            Some(m) => crate::setup::apply_reorder(m, self.reorder),
            None => crate::setup::build_mesh(self.mesh_level, self.lloyd_iters, self.reorder),
        };
        if self.config.n_layers > 1 {
            assert_eq!(
                self.config.kernel_backend,
                KernelBackend::Simd,
                "n_layers > 1 requires the simd kernel backend"
            );
            assert_eq!(
                self.executor,
                Executor::Serial,
                "n_layers > 1 requires the serial executor"
            );
            let engine = Engine::Layered(
                LayeredModel::new_shared(
                    mesh.clone(),
                    self.config,
                    self.test_case,
                    self.dt,
                    self.kernel_coeffs,
                )
                .with_recorder(self.recorder.clone()),
            );
            let policy = mpas_sched::resolve(&self.sched_policy)
                .unwrap_or_else(|e| panic!("invalid sched_policy {:?}: {e}", self.sched_policy));
            let mut sim = Simulation {
                mesh,
                engine,
                test_case: self.test_case,
                config: self.config,
                initial_mass: 0.0,
                initial_tracer_mass: Vec::new(),
                policy,
                recorder: self.recorder,
            };
            sim.initial_mass = sim.total_mass();
            sim.initial_tracer_mass = (0..sim.config.n_tracers)
                .map(|k| sim.total_tracer(k))
                .collect();
            return sim;
        }
        let engine = match self.executor {
            Executor::Serial => Engine::Serial(
                ShallowWaterModel::new_shared(
                    mesh.clone(),
                    self.config,
                    self.test_case,
                    self.dt,
                    self.kernel_coeffs,
                )
                .with_recorder(self.recorder.clone()),
            ),
            Executor::Threaded { threads } => Engine::Threaded(
                ParallelModel::new_shared(
                    mesh.clone(),
                    self.config,
                    self.test_case,
                    self.dt,
                    threads,
                    self.kernel_coeffs,
                )
                .with_recorder(self.recorder.clone()),
            ),
            Executor::Hybrid {
                cpu_threads,
                acc_threads,
            } => Engine::Hybrid(
                HybridModel::new_shared(
                    mesh.clone(),
                    self.config,
                    self.test_case,
                    self.dt,
                    cpu_threads,
                    acc_threads,
                    &Platform::paper_node(),
                    self.kernel_coeffs,
                )
                .with_recorder(self.recorder.clone()),
            ),
        };
        let policy = mpas_sched::resolve(&self.sched_policy)
            .unwrap_or_else(|e| panic!("invalid sched_policy {:?}: {e}", self.sched_policy));
        let initial_mass = match &engine {
            Engine::Serial(m) => Some(m.total_mass()),
            _ => None,
        };
        let mut sim = Simulation {
            mesh,
            engine,
            test_case: self.test_case,
            config: self.config,
            initial_mass: 0.0,
            initial_tracer_mass: Vec::new(),
            policy,
            recorder: self.recorder,
        };
        sim.initial_mass = initial_mass.unwrap_or_else(|| sim.total_mass());
        sim.initial_tracer_mass = (0..sim.config.n_tracers)
            .map(|k| sim.total_tracer(k))
            .collect();
        sim
    }
}

// One engine lives per simulation, so the variant-size spread is noise.
#[allow(clippy::large_enum_variant)]
enum Engine {
    Serial(ShallowWaterModel),
    Threaded(ParallelModel),
    Hybrid(HybridModel),
    /// k-layer serial simd engine; facade views read its cached layer 0.
    Layered(LayeredModel),
}

/// A configured shallow-water simulation.
pub struct Simulation {
    /// The mesh being integrated.
    pub mesh: Arc<Mesh>,
    engine: Engine,
    /// The configured scenario.
    pub test_case: TestCase,
    /// The numerical options the engine was built with.
    pub config: ModelConfig,
    initial_mass: f64,
    initial_tracer_mass: Vec<f64>,
    policy: Box<dyn SchedulerPolicy>,
    recorder: Recorder,
}

impl Simulation {
    /// Start building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Advance `n` RK-4 steps. With a live recorder, each step is wrapped
    /// in a `core.step` span and lands a `core.sim.step_seconds` sample
    /// plus `core.sim.mass_drift` / `core.sim.h_err_l2` gauges.
    pub fn run_steps(&mut self, n: usize) {
        if !self.recorder.is_enabled() {
            return self.step_engine(n);
        }
        for _ in 0..n {
            {
                let _span =
                    self.recorder
                        .span_timed("measured", "core.step", "core.sim.step_seconds");
                self.step_engine(1);
            }
            self.recorder.add("core.sim.steps", 1);
            self.recorder
                .set_gauge("core.sim.mass_drift", self.mass_drift());
            self.recorder
                .set_gauge("core.sim.h_err_l2", self.h_error_norms().l2);
            self.recorder
                .set_gauge("core.sim.max_courant", self.max_courant());
            if let Some(d) = self.tracer_mass_drift() {
                self.recorder.set_gauge("core.sim.tracer_mass_drift", d);
            }
        }
    }

    fn step_engine(&mut self, n: usize) {
        match &mut self.engine {
            Engine::Serial(m) => m.run_steps(n),
            Engine::Threaded(m) => m.run_steps(n),
            Engine::Hybrid(m) => m.run_steps(n),
            Engine::Layered(m) => m.run_steps(n),
        }
    }

    /// The telemetry sink configured at build time.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The prognostic state (layer 0 for layered runs — the validated
    /// lane; use [`Simulation::state_digest`] to cover every layer).
    pub fn state(&self) -> &State {
        match &self.engine {
            Engine::Serial(m) => &m.state,
            Engine::Threaded(m) => &m.state,
            Engine::Hybrid(m) => m.state(),
            Engine::Layered(m) => m.layer0(),
        }
    }

    /// FNV-1a digest of the full prognostic state: all `k` layers of every
    /// field for layered runs, the flat fields otherwise. Single-layer
    /// layered digests equal [`crate::runner::state_hash`] of the flat
    /// state bit for bit (k = 1 lane-interleaving is the identity).
    pub fn state_digest(&self) -> u64 {
        match &self.engine {
            Engine::Layered(m) => m.state_hash(),
            _ => crate::runner::state_hash(self.state()),
        }
    }

    /// Number of vertical layers carried (1 for the flat engines).
    pub fn n_layers(&self) -> usize {
        match &self.engine {
            Engine::Layered(m) => m.n_layers(),
            _ => 1,
        }
    }

    /// Time step in seconds.
    pub fn dt(&self) -> f64 {
        match &self.engine {
            Engine::Serial(m) => m.dt,
            Engine::Threaded(m) => m.dt,
            Engine::Hybrid(m) => m.dt(),
            Engine::Layered(m) => m.dt,
        }
    }

    /// Model time in seconds.
    pub fn time(&self) -> f64 {
        match &self.engine {
            Engine::Serial(m) => m.time,
            Engine::Threaded(m) => m.time,
            Engine::Hybrid(m) => m.time(),
            Engine::Layered(m) => m.time,
        }
    }

    /// Maximum Courant number over edges at the current state, using the
    /// external gravity-wave speed `|u| + sqrt(g h_edge)` — the stability
    /// quantity the CFL invariant monitors.
    pub fn max_courant(&self) -> f64 {
        let diag = match &self.engine {
            Engine::Serial(m) => &m.diag,
            Engine::Threaded(m) => &m.diag,
            Engine::Hybrid(m) => m.diag(),
            Engine::Layered(m) => m.layer0_diag(),
        };
        let (u, g, dt) = (&self.state().u, self.config.gravity, self.dt());
        (0..self.mesh.n_edges())
            .map(|e| {
                let c = u[e].abs() + (g * diag.h_edge[e].max(0.0)).sqrt();
                c * dt / self.mesh.dc_edge[e]
            })
            .fold(0.0f64, f64::max)
    }

    /// Total mass of tracer `k` (`∫ h·q dA`, conserved to rounding).
    pub fn total_tracer(&self, k: usize) -> f64 {
        let tr = &self.state().tracers[k];
        (0..self.mesh.n_cells())
            .map(|i| tr[i] * self.mesh.area_cell[i])
            .sum()
    }

    /// Largest relative tracer-mass drift since initialization across the
    /// configured tracers, or `None` when the run carries no tracers.
    pub fn tracer_mass_drift(&self) -> Option<f64> {
        if self.initial_tracer_mass.is_empty() {
            return None;
        }
        Some(
            self.initial_tracer_mass
                .iter()
                .enumerate()
                .map(|(k, &m0)| ((self.total_tracer(k) - m0) / m0).abs())
                .fold(0.0f64, f64::max),
        )
    }

    /// Total fluid mass (exactly conserved).
    pub fn total_mass(&self) -> f64 {
        let h = &self.state().h;
        (0..self.mesh.n_cells())
            .map(|i| h[i] * self.mesh.area_cell[i])
            .sum()
    }

    /// Relative mass drift since initialization.
    pub fn mass_drift(&self) -> f64 {
        (self.total_mass() - self.initial_mass) / self.initial_mass
    }

    /// Thickness error norms against the test case's reference solution at
    /// the current model time (the analytic field for steady cases and the
    /// rigidly advected bell of case 1; the initial field otherwise) —
    /// the same quantity [`mpas_swe::ShallowWaterModel::h_error_norms`]
    /// reports, so facade and serial-model norms agree bitwise.
    pub fn h_error_norms(&self) -> ErrorNorms {
        let time = self.time();
        let reference: Vec<f64> = (0..self.mesh.n_cells())
            .map(|i| {
                self.test_case
                    .reference_thickness_at(self.mesh.x_cell[i], time)
            })
            .collect();
        ErrorNorms::compute(&self.state().h, &reference, &self.mesh.area_cell)
    }

    /// The configured scheduling policy.
    pub fn sched_policy(&self) -> &dyn SchedulerPolicy {
        &*self.policy
    }

    /// Modeled wall-clock time of one RK-4 step on `platform` under the
    /// configured scheduling policy (the Fig. 7 quantity, for this mesh).
    pub fn modeled_time_per_step(&self, platform: &Platform) -> f64 {
        let mc = MeshCounts {
            n_cells: self.mesh.n_cells() as f64,
            n_edges: self.mesh.n_edges() as f64,
            n_vertices: self.mesh.n_vertices() as f64,
        };
        mpas_hybrid::time_per_step(&mc, platform, &self.policy)
    }

    /// The modeled schedule of one intermediate RK substep on `platform`
    /// under the configured policy. With a live recorder, the decisions are
    /// also recorded as `sched.decision` events and `sched.*` gauges.
    pub fn modeled_schedule(&self, platform: &Platform) -> Schedule {
        let mc = MeshCounts {
            n_cells: self.mesh.n_cells() as f64,
            n_edges: self.mesh.n_edges() as f64,
            n_vertices: self.mesh.n_vertices() as f64,
        };
        let graph = DataflowGraph::for_substep(RkPhase::Intermediate);
        let schedule = mpas_hybrid::schedule_substep(&graph, &mc, platform, &self.policy);
        mpas_sched::record_schedule(&self.recorder, &self.policy.name(), &schedule);
        schedule
    }

    /// Total height field `h + b` (the paper's Fig. 5 quantity).
    pub fn total_height(&self) -> Vec<f64> {
        let b: Vec<f64> = (0..self.mesh.n_cells())
            .map(|i| self.test_case.topography_at(self.mesh.x_cell[i]))
            .collect();
        self.state()
            .h
            .iter()
            .zip(&b)
            .map(|(&h, &b)| h + b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_produce_runnable_simulation() {
        let mut sim = Simulation::builder().mesh_level(2).build();
        sim.run_steps(2);
        assert!(sim.mass_drift().abs() < 1e-13);
    }

    #[test]
    fn executors_agree_bitwise() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mk = |e: Executor| {
            Simulation::builder()
                .mesh(mesh.clone())
                .test_case(TestCase::Case5)
                .executor(e)
                .build()
        };
        let mut serial = mk(Executor::Serial);
        let mut threaded = mk(Executor::Threaded { threads: 3 });
        let mut hybrid = mk(Executor::Hybrid {
            cpu_threads: 2,
            acc_threads: 2,
        });
        serial.run_steps(3);
        threaded.run_steps(3);
        hybrid.run_steps(3);
        assert_eq!(serial.state().max_abs_diff(threaded.state()), 0.0);
        assert_eq!(serial.state().max_abs_diff(hybrid.state()), 0.0);
    }

    #[test]
    fn explicit_dt_is_respected_by_every_executor() {
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        for e in [
            Executor::Serial,
            Executor::Threaded { threads: 2 },
            Executor::Hybrid {
                cpu_threads: 1,
                acc_threads: 1,
            },
        ] {
            let sim = Simulation::builder()
                .mesh(mesh.clone())
                .dt(123.0)
                .executor(e)
                .build();
            assert_eq!(sim.dt(), 123.0, "{e:?}");
        }
    }

    #[test]
    fn sched_policy_threads_through_the_facade() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mk = |spec: &str| {
            Simulation::builder()
                .mesh(mesh.clone())
                .sched_policy(spec)
                .build()
        };
        let platform = Platform::paper_node();
        let default = Simulation::builder().mesh(mesh.clone()).build();
        assert_eq!(default.sched_policy().name(), "pattern-driven");
        let serial = mk("serial").modeled_time_per_step(&platform);
        for spec in ["heft", "cpop", "lookahead[depth=2]", "pattern-driven"] {
            let sim = mk(spec);
            assert_eq!(sim.sched_policy().name(), spec);
            let t = sim.modeled_time_per_step(&platform);
            assert!(t > 0.0 && t <= serial, "{spec}: {t} vs serial {serial}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid sched_policy")]
    fn bad_sched_policy_name_panics_with_context() {
        let _ = Simulation::builder()
            .mesh_level(1)
            .sched_policy("fifo")
            .build();
    }

    #[test]
    fn recorder_collects_per_step_metrics_and_decisions() {
        let rec = Recorder::new();
        let mut sim = Simulation::builder()
            .mesh_level(2)
            .executor(Executor::Threaded { threads: 2 })
            .recorder(rec.clone())
            .build();
        sim.run_steps(3);
        let schedule = sim.modeled_schedule(&Platform::paper_node());
        let snap = rec.snapshot();
        assert_eq!(snap.counter("core.sim.steps"), Some(3));
        let h = snap.histogram("core.sim.step_seconds").expect("step timer");
        assert_eq!(h.count, 3);
        assert!(snap.gauge("core.sim.mass_drift").unwrap().abs() < 1e-12);
        assert!(snap.gauge("sched.makespan_seconds").unwrap() > 0.0);
        // Kernel timers from the threaded engine: 4 RK stages x 3 steps.
        let b1 = snap.histogram("hybrid.kernel.B1.seconds").expect("B1");
        assert_eq!(b1.count, 12);
        // One decision event per scheduled DAG node.
        let decisions = rec
            .events()
            .iter()
            .filter(|e| e.name == "sched.decision")
            .count();
        assert_eq!(decisions, schedule.nodes.len());
        // Telemetry must not perturb the numerics.
        let mut plain = Simulation::builder()
            .mesh_level(2)
            .executor(Executor::Threaded { threads: 2 })
            .build();
        plain.run_steps(3);
        assert_eq!(sim.state().max_abs_diff(plain.state()), 0.0);
    }

    #[test]
    fn case2_norms_accessible_through_facade() {
        let mut sim = Simulation::builder()
            .mesh_level(3)
            .test_case(TestCase::Case2 { alpha: 0.0 })
            .build();
        sim.run_steps(5);
        let n = sim.h_error_norms();
        assert!(n.l2 < 1e-2, "l2 {}", n.l2);
    }
}
