//! Cross-executor equivalence matrix over the full scenario catalog.
//!
//! The repo's central numerical contract is that every executor computes
//! bitwise-identical prognostic fields — the pattern kernels are free
//! functions over explicit index ranges, and the executors differ only in
//! which pool computes which range. This test drives that contract
//! through *every* catalog scenario (all six Williamson cases, Galewsky,
//! and the tracer variant) on all four engines: serial, threaded, hybrid,
//! and the 4-rank distributed driver. The FNV digest covers `h`, `u`, and
//! every tracer-mass field, so a single flipped mantissa bit anywhere
//! fails the matrix.

use mpas_core::{build_mesh, run_distributed, state_hash, DistributedConfig, Executor, Simulation};
use mpas_mesh::{Mesh, Reordering};
use mpas_swe::validation::CATALOG;
use mpas_swe::{ModelConfig, Scenario};
use std::sync::Arc;

const STEPS: usize = 5;

fn run_engine(mesh: &Arc<Mesh>, sc: &Scenario, dt: f64, executor: Executor) -> u64 {
    let mut sim = Simulation::builder()
        .mesh(mesh.clone())
        .test_case(sc.test_case)
        .config(sc.config())
        .executor(executor)
        .dt(dt)
        .build();
    sim.run_steps(STEPS);
    state_hash(sim.state())
}

#[test]
fn every_catalog_case_is_bitwise_identical_across_executors() {
    let mesh = build_mesh(3, 0, Reordering::None);
    let dt = ModelConfig::suggested_dt(&mesh);
    for sc in &CATALOG {
        let serial = run_engine(&mesh, sc, dt, Executor::Serial);
        let threaded = run_engine(&mesh, sc, dt, Executor::Threaded { threads: 4 });
        let hybrid = run_engine(
            &mesh,
            sc,
            dt,
            Executor::Hybrid {
                cpu_threads: 2,
                acc_threads: 2,
            },
        );
        assert_eq!(
            serial, threaded,
            "{}: threaded differs from serial",
            sc.name
        );
        assert_eq!(serial, hybrid, "{}: hybrid differs from serial", sc.name);

        let dist = run_distributed(
            &mesh,
            DistributedConfig {
                n_ranks: 4,
                halo_layers: 3,
                model: sc.config(),
                test_case: sc.test_case,
                dt,
                n_steps: STEPS,
            },
        );
        assert_eq!(
            serial,
            state_hash(&dist),
            "{}: distributed differs from serial",
            sc.name
        );
    }
}
