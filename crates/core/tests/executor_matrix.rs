//! Cross-executor equivalence matrix over the full scenario catalog.
//!
//! The repo's central numerical contract is that every executor computes
//! bitwise-identical prognostic fields — the pattern kernels are free
//! functions over explicit index ranges, and the executors differ only in
//! which pool computes which range. This test drives that contract
//! through *every* catalog scenario (all six Williamson cases, Galewsky,
//! and the tracer variant) on all four engines: serial, threaded, hybrid,
//! and the 4-rank distributed driver — and through every kernel tier
//! (scalar, fused, simd), since the backend switch must be invisible to
//! the executors. The FNV digest covers `h`, `u`, and every tracer-mass
//! field, so a single flipped mantissa bit anywhere fails the matrix.

use mpas_core::{build_mesh, run_distributed, state_hash, DistributedConfig, Executor, Simulation};
use mpas_mesh::{Mesh, Reordering};
use mpas_swe::validation::CATALOG;
use mpas_swe::{KernelBackend, ModelConfig};
use std::sync::Arc;

const STEPS: usize = 5;

fn run_engine(
    mesh: &Arc<Mesh>,
    config: ModelConfig,
    tc: mpas_swe::TestCase,
    dt: f64,
    executor: Executor,
) -> u64 {
    let mut sim = Simulation::builder()
        .mesh(mesh.clone())
        .test_case(tc)
        .config(config)
        .executor(executor)
        .dt(dt)
        .build();
    sim.run_steps(STEPS);
    state_hash(sim.state())
}

#[test]
fn every_catalog_case_is_bitwise_identical_across_executors() {
    let mesh = build_mesh(3, 0, Reordering::None);
    let dt = ModelConfig::suggested_dt(&mesh);
    for sc in &CATALOG {
        for backend in KernelBackend::ALL {
            let config = ModelConfig {
                kernel_backend: backend,
                ..sc.config()
            };
            let tag = format!("{} ({})", sc.name, backend.name());
            let serial = run_engine(&mesh, config, sc.test_case, dt, Executor::Serial);
            let threaded = run_engine(
                &mesh,
                config,
                sc.test_case,
                dt,
                Executor::Threaded { threads: 4 },
            );
            let hybrid = run_engine(
                &mesh,
                config,
                sc.test_case,
                dt,
                Executor::Hybrid {
                    cpu_threads: 2,
                    acc_threads: 2,
                },
            );
            assert_eq!(serial, threaded, "{tag}: threaded differs from serial");
            assert_eq!(serial, hybrid, "{tag}: hybrid differs from serial");

            let dist = run_distributed(
                &mesh,
                DistributedConfig {
                    n_ranks: 4,
                    halo_layers: 3,
                    model: config,
                    test_case: sc.test_case,
                    dt,
                    n_steps: STEPS,
                },
            );
            assert_eq!(
                serial,
                state_hash(&dist),
                "{tag}: distributed differs from serial"
            );
        }
    }
}

/// The layered facade: a k-layer simd `Simulation` exposes its layer-0
/// fields through the same `state()` accessor, and layer 0 must be
/// bitwise identical to the flat fused serial run — the lane-replay
/// contract of DESIGN.md §14 surfaced at the service-facing API.
#[test]
fn layered_facade_layer0_matches_flat_runs_bitwise() {
    let mesh = build_mesh(3, 0, Reordering::None);
    let dt = ModelConfig::suggested_dt(&mesh);
    let tc = mpas_swe::TestCase::Case5;
    let flat = run_engine(&mesh, ModelConfig::default(), tc, dt, Executor::Serial);

    let mut sim = Simulation::builder()
        .mesh(mesh.clone())
        .test_case(tc)
        .config(ModelConfig {
            kernel_backend: KernelBackend::Simd,
            n_layers: 4,
            ..Default::default()
        })
        .executor(Executor::Serial)
        .dt(dt)
        .build();
    assert_eq!(sim.n_layers(), 4);
    sim.run_steps(STEPS);
    assert_eq!(
        state_hash(sim.state()),
        flat,
        "layer 0 of the layered facade diverged from the flat fused run"
    );
    // The full-state digest folds all k lanes, so it must differ from the
    // single-layer digest (deeper layers carry perturbed thickness).
    assert_ne!(sim.state_digest(), flat);
}
