//! End-to-end root-cause attribution through real process boundaries:
//! two `swe-run` invocations flush into one `--history-dir`, the second
//! with `MPAS_SIMD_FORCE_SCALAR=1` pinning the SIMD tier to its scalar
//! fallback. `swe-diag` must then exit 1 with a top-ranked FAIL finding
//! that attributes the regression to the kernel-backend dimension via
//! `kernel.simd_speedup_serial` — the acceptance scenario of the
//! history plane (level 6, k=4, the paper's Table-I configuration).
//!
//! The forced-scalar run produces a bitwise-identical trajectory (the
//! scalar fallback is the reference the SIMD tier is verified against),
//! so conservation and validation metrics stay put: the *only*
//! fail-severity signal available to the diagnoser is the vanished
//! speedup, which is exactly what the attribution must find.

use std::path::PathBuf;
use std::process::Command;

fn swe_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swe_run"))
}

fn swe_diag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swe_diag"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swe_history_diag_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_into(history: &PathBuf, forced_scalar: bool) {
    let mut cmd = swe_run();
    cmd.args(["--level", "6", "--layers", "4", "--backend", "simd"])
        .args(["--days", "0.01", "--reorder", "sfc"])
        .args(["--history-dir", history.to_str().unwrap()]);
    if forced_scalar {
        cmd.env("MPAS_SIMD_FORCE_SCALAR", "1");
    }
    let out = cmd.output().expect("run swe_run");
    assert!(
        out.status.success(),
        "swe_run (forced_scalar={forced_scalar}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("history: recorded run"),
        "run did not flush history: {stdout}"
    );
}

#[test]
fn forced_scalar_regression_is_attributed_to_the_kernel_backend_across_processes() {
    let history = tmp_dir("attrib");

    // Baseline: the genuine SIMD tier. Regressed: same binary, same
    // config, the kernel backend pinned to scalar by the environment.
    run_into(&history, false);
    run_into(&history, true);

    // Human-readable report: exit 1, FAIL verdict naming the dimension
    // and the metric.
    let out = swe_diag()
        .args(["--history-dir", history.to_str().unwrap()])
        .args(["--run", "latest", "--against", "last=1"])
        .output()
        .expect("run swe_diag");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "swe_diag must exit 1 on a fail-severity regression:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("verdict: FAIL — regression attributed to kernel-backend"),
        "missing kernel-backend attribution:\n{stdout}"
    );
    assert!(
        stdout.contains("kernel.simd_speedup_serial"),
        "missing the attributing metric:\n{stdout}"
    );

    // JSON report: same exit code, parseable, the top-ranked finding is
    // the kernel-backend speedup collapse.
    let out = swe_diag()
        .args(["--history-dir", history.to_str().unwrap()])
        .args(["--run", "latest", "--against", "last=1", "--json"])
        .output()
        .expect("run swe_diag --json");
    assert_eq!(out.status.code(), Some(1));
    let payload = String::from_utf8_lossy(&out.stdout);
    mpas_telemetry::export::validate_json(&payload)
        .unwrap_or_else(|at| panic!("diagnosis JSON invalid at byte {at}:\n{payload}"));
    let doc = mpas_telemetry::export::parse_json(&payload).unwrap();
    assert_eq!(doc.get("failed").and_then(|v| v.as_bool()), Some(true));
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings");
    assert!(!findings.is_empty());
    let top = &findings[0];
    assert_eq!(
        top.get("dimension").and_then(|d| d.as_str()),
        Some("kernel-backend"),
        "top finding:\n{payload}"
    );
    assert_eq!(
        top.get("metric").and_then(|m| m.as_str()),
        Some("kernel.simd_speedup_serial")
    );
    assert_eq!(top.get("severity").and_then(|s| s.as_str()), Some("fail"));

    // The baseline run itself diagnoses clean (exit 0, no findings to
    // fail on): attribution is directional, not symmetric noise.
    let out = swe_diag()
        .args(["--history-dir", history.to_str().unwrap()])
        .args(["--run", "r000001", "--against", "last=1"])
        .output()
        .expect("run swe_diag on baseline");
    assert_eq!(
        out.status.code(),
        Some(0),
        "baseline run must not fail:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // --list shows both runs with their manifest axes.
    let out = swe_diag()
        .args(["--history-dir", history.to_str().unwrap(), "--list"])
        .output()
        .expect("run swe_diag --list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("r000001") && stdout.contains("r000002"),
        "{stdout}"
    );
    assert!(stdout.contains("simd"), "{stdout}");

    std::fs::remove_dir_all(&history).ok();
}
