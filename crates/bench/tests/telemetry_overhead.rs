//! Satellite guard: disabled telemetry must cost nothing measurable.
//!
//! The instrumented executors hit a telemetry hook a bounded number of
//! times per RK-4 step (`kernel_timer` per pattern per stage, step/stage
//! spans, per-step gauges — comfortably under `CALLS_PER_STEP` below).
//! Rather than an A/B wall-clock comparison of two whole builds (noisy on
//! shared CI), this microbenchmarks the no-op recorder's primitives with
//! the same harness the paper figures use and asserts that a whole step's
//! worth of hooks stays within 5% of one measured step.

use mpas_bench::time_per_call;
use mpas_core::{Executor, Simulation};
use mpas_telemetry::Recorder;

/// Upper bound on telemetry hook invocations per RK-4 step: 4 stages x
/// (~16 kernel timers + 1 stage span) + step span + facade gauges/counter.
const CALLS_PER_STEP: f64 = 150.0;

#[test]
fn noop_recorder_overhead_is_within_5_percent_of_a_step() {
    let rec = Recorder::noop();

    // The hooks the hot path executes: the enabled check (taken on every
    // kernel), and the full guard create/drop + counter/gauge writes the
    // disabled recorder short-circuits.
    let iters = 100_000;
    let t_enabled_check = time_per_call(
        || {
            std::hint::black_box(rec.is_enabled());
        },
        iters,
    );
    let t_guard = time_per_call(
        || {
            let g = rec.time("bench.guard_seconds");
            std::hint::black_box(&g);
        },
        iters,
    );
    let t_counter = time_per_call(
        || {
            rec.add("bench.counter", 1);
        },
        iters,
    );
    let t_gauge = time_per_call(
        || {
            rec.set_gauge("bench.gauge", 1.0);
        },
        iters,
    );
    let per_call = t_enabled_check.max(t_guard).max(t_counter).max(t_gauge);
    let overhead_per_step = CALLS_PER_STEP * per_call;

    // One real step of the instrumented threaded executor (recorder off —
    // exactly the uninstrumented configuration every non-traced run uses).
    let mut sim = Simulation::builder()
        .mesh_level(3)
        .executor(Executor::Threaded { threads: 2 })
        .build();
    sim.run_steps(1); // warm-up
    let t0 = std::time::Instant::now();
    sim.run_steps(4);
    let step_seconds = t0.elapsed().as_secs_f64() / 4.0;

    assert!(
        overhead_per_step <= 0.05 * step_seconds,
        "no-op telemetry overhead {:.3e}s/step ({CALLS_PER_STEP} x {per_call:.3e}s) \
         exceeds 5% of a measured step ({step_seconds:.3e}s)",
        overhead_per_step
    );
}

#[test]
fn noop_recorder_stores_nothing() {
    let rec = Recorder::noop();
    {
        let _g = rec.span_timed("measured", "step", "hybrid.step_seconds");
        rec.add("c", 1);
        rec.set_gauge("g", 1.0);
        rec.record("h", 1.0);
        rec.event("e", &[]);
    }
    assert!(!rec.is_enabled());
    assert!(rec.spans().is_empty());
    assert!(rec.events().is_empty());
    let snap = rec.snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
}
