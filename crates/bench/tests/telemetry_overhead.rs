//! Satellite guard: disabled telemetry must cost nothing measurable.
//!
//! The instrumented executors hit a telemetry hook a bounded number of
//! times per RK-4 step (`kernel_timer` per pattern per stage, step/stage
//! spans, per-step gauges — comfortably under `CALLS_PER_STEP` below).
//! Rather than an A/B wall-clock comparison of two whole builds (noisy on
//! shared CI), this microbenchmarks the no-op recorder's primitives with
//! the same harness the paper figures use and asserts that a whole step's
//! worth of hooks stays within 5% of one measured step.

use mpas_bench::time_per_call;
use mpas_core::{Executor, Simulation};
use mpas_telemetry::Recorder;

/// Upper bound on telemetry hook invocations per RK-4 step: 4 stages x
/// (~16 kernel timers + 1 stage span) + step span + facade gauges/counter.
const CALLS_PER_STEP: f64 = 150.0;

/// Of that bound, at most this many are timed guards — 4 stages x ~16
/// kernel timers plus the stage/step spans; the remainder are plain
/// counter/gauge/histogram writes.
const TIMED_PER_STEP: f64 = 70.0;

/// Writes per step that feed a registered rolling window. The server
/// registers windows on `core.sim.step_seconds`, queue wait and live
/// latency — one to two writes per step; 10 is a 5x cushion.
const WINDOWED_PER_STEP: f64 = 10.0;

/// Smallest per-call time over `reps` measurement repetitions. Noise on a
/// shared machine (scheduler preemption, frequency steps) only ever adds
/// time, so the minimum is the robust estimate of a primitive's true cost.
fn min_time_per_call(mut f: impl FnMut(), iters: usize, reps: usize) -> f64 {
    (0..reps)
        .map(|_| time_per_call(&mut f, iters))
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn noop_recorder_overhead_is_within_5_percent_of_a_step() {
    let rec = Recorder::noop();

    // The hooks the hot path executes: the enabled check (taken on every
    // kernel), and the full guard create/drop + counter/gauge writes the
    // disabled recorder short-circuits.
    let iters = 100_000;
    let t_enabled_check = time_per_call(
        || {
            std::hint::black_box(rec.is_enabled());
        },
        iters,
    );
    let t_guard = time_per_call(
        || {
            let g = rec.time("bench.guard_seconds");
            std::hint::black_box(&g);
        },
        iters,
    );
    let t_counter = time_per_call(
        || {
            rec.add("bench.counter", 1);
        },
        iters,
    );
    let t_gauge = time_per_call(
        || {
            rec.set_gauge("bench.gauge", 1.0);
        },
        iters,
    );
    let per_call = t_enabled_check.max(t_guard).max(t_counter).max(t_gauge);
    let overhead_per_step = CALLS_PER_STEP * per_call;

    // One real step of the instrumented threaded executor (recorder off —
    // exactly the uninstrumented configuration every non-traced run uses).
    let mut sim = Simulation::builder()
        .mesh_level(3)
        .executor(Executor::Threaded { threads: 2 })
        .build();
    sim.run_steps(1); // warm-up
    let t0 = std::time::Instant::now();
    sim.run_steps(4);
    let step_seconds = t0.elapsed().as_secs_f64() / 4.0;

    assert!(
        overhead_per_step <= 0.05 * step_seconds,
        "no-op telemetry overhead {:.3e}s/step ({CALLS_PER_STEP} x {per_call:.3e}s) \
         exceeds 5% of a measured step ({step_seconds:.3e}s)",
        overhead_per_step
    );
}

#[test]
fn live_recorder_with_flight_and_window_is_within_5_percent_of_a_step() {
    // PR 8 makes the flight ring always-on for any live recorder, and the
    // server keeps rolling windows registered for the whole run — so the
    // ≤5%/step budget must hold for the *enabled* hot path too: every
    // counter/gauge/histogram write lands in its store, feeds its rolling
    // window if one is registered, and (timers aside) pushes one ring
    // slot. The window sits on the gauge — mirroring production, where
    // windows watch per-step aggregates (step seconds, queue wait), never
    // the per-kernel timers.
    let rec = Recorder::new();
    rec.rolling_window("bench.gauge", 30.0);

    let (iters, reps) = (40_000, 5);
    let t_guard = min_time_per_call(
        || {
            let g = rec.time("bench.guard_seconds");
            std::hint::black_box(&g);
        },
        iters,
        reps,
    );
    let t_counter = min_time_per_call(
        || {
            rec.add("bench.counter", 1);
        },
        iters,
        reps,
    );
    let t_windowed = min_time_per_call(
        || {
            rec.set_gauge("bench.gauge", 1.0);
        },
        iters,
        reps,
    );
    let t_hist = min_time_per_call(
        || {
            rec.record("bench.hist", 1e-6);
        },
        iters,
        reps,
    );
    // Cost the step's hook mix by class (the same 150-hook bound the
    // no-op test charges) instead of charging every hook at guard price:
    // ~70 timed guards, ≤10 windowed writes, the rest plain writes.
    let light = t_counter.max(t_hist);
    let overhead_per_step = TIMED_PER_STEP * t_guard
        + WINDOWED_PER_STEP * t_windowed
        + (CALLS_PER_STEP - TIMED_PER_STEP - WINDOWED_PER_STEP) * light;

    let mut sim = Simulation::builder()
        .mesh_level(3)
        .executor(Executor::Threaded { threads: 2 })
        .build();
    sim.run_steps(1); // warm-up
    let t0 = std::time::Instant::now();
    sim.run_steps(4);
    let step_seconds = t0.elapsed().as_secs_f64() / 4.0;

    assert!(
        overhead_per_step <= 0.05 * step_seconds,
        "live telemetry overhead {overhead_per_step:.3e}s/step \
         ({TIMED_PER_STEP} x {t_guard:.3e}s + {WINDOWED_PER_STEP} x {t_windowed:.3e}s \
         + {} x {light:.3e}s) exceeds 5% of a measured step ({step_seconds:.3e}s)",
        CALLS_PER_STEP - TIMED_PER_STEP - WINDOWED_PER_STEP
    );
    // The ring really was fed by the light writes (bounded, not
    // ever-growing); pure timers stay out of it by design.
    let light_writes = 3 * (iters * reps + reps) as u64; // +reps: warm-up calls
    assert!(rec.flight_total() >= light_writes);
    assert_eq!(rec.flight_events().len(), rec.flight_capacity());
}

#[test]
fn history_flush_stays_off_the_hot_path() {
    // The history store attaches to a recorder only at flush time: a
    // post-run `record_recorder` snapshot read. The hot-path primitives
    // of a recorder that is about to be (and then has been) flushed must
    // therefore cost the same as any live recorder — the same ≤5%/step
    // budget — and the flush itself must not perturb the recorder's
    // contents.
    let rec = Recorder::new();
    let dir = std::env::temp_dir().join(format!("mpas-overhead-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = mpas_telemetry::store::HistoryStore::open(&dir).expect("open store");
    let manifest = mpas_telemetry::store::RunManifest::new(
        "5",
        3,
        0,
        "simd",
        4,
        "pattern-driven",
        "serial",
        0,
        4,
    );

    let (iters, reps) = (40_000, 5);
    let hot_mix = |rec: &Recorder| {
        let t_guard = min_time_per_call(
            || {
                let g = rec.time("bench.guard_seconds");
                std::hint::black_box(&g);
            },
            iters,
            reps,
        );
        let t_counter = min_time_per_call(
            || {
                rec.add("bench.counter", 1);
            },
            iters,
            reps,
        );
        let t_hist = min_time_per_call(
            || {
                rec.record("bench.hist", 1e-6);
            },
            iters,
            reps,
        );
        let light = t_counter.max(t_hist);
        TIMED_PER_STEP * t_guard + (CALLS_PER_STEP - TIMED_PER_STEP) * light
    };

    let before_flush = hot_mix(&rec);
    let snap_before = rec.snapshot();
    let m = store.record_recorder(&manifest, &rec, "").expect("flush");
    let snap_after = rec.snapshot();
    let after_flush = hot_mix(&rec);

    let mut sim = Simulation::builder()
        .mesh_level(3)
        .executor(Executor::Threaded { threads: 2 })
        .build();
    sim.run_steps(1); // warm-up
    let t0 = std::time::Instant::now();
    sim.run_steps(4);
    let step_seconds = t0.elapsed().as_secs_f64() / 4.0;

    for (label, overhead) in [("before", before_flush), ("after", after_flush)] {
        assert!(
            overhead <= 0.05 * step_seconds,
            "{label} the history flush, hot-path overhead {overhead:.3e}s/step \
             exceeds 5% of a measured step ({step_seconds:.3e}s)"
        );
    }
    // The flush read a snapshot; it did not drain, reset or otherwise
    // mutate the live recorder.
    assert_eq!(snap_before.counters, snap_after.counters);
    assert_eq!(snap_before.gauges, snap_after.gauges);
    assert_eq!(
        snap_before.histograms.keys().collect::<Vec<_>>(),
        snap_after.histograms.keys().collect::<Vec<_>>()
    );
    // And the run really landed: the store holds the flushed metrics.
    let rows = store.run_summary(&m.run_id).expect("summary");
    assert!(rows.iter().any(|r| r.metric == "bench.counter"));
    assert!(rows.iter().any(|r| r.metric == "bench.hist"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn noop_recorder_stores_nothing() {
    let rec = Recorder::noop();
    {
        let _g = rec.span_timed("measured", "step", "hybrid.step_seconds");
        rec.add("c", 1);
        rec.set_gauge("g", 1.0);
        rec.record("h", 1.0);
        rec.event("e", &[]);
    }
    assert!(!rec.is_enabled());
    assert!(rec.spans().is_empty());
    assert!(rec.events().is_empty());
    let snap = rec.snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
}
