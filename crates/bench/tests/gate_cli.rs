//! End-to-end exit-code tests of the `swe-run` regression-gate and
//! invariant-alert chain: `--gate-write` → `--gate` green, a tightened
//! baseline exits 1, an injected mass drift trips the monitor with exit 3,
//! and `--report` prints a blame table whose artifacts parse.

use std::path::PathBuf;
use std::process::Command;

fn swe_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swe_run"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swe_gate_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn gate_write_then_gate_passes_and_tightened_baseline_fails() {
    let base = tmp("base.json");
    let status = swe_run()
        .args(["--level", "3", "--days", "0.05", "--ranks", "2"])
        .args(["--gate-write", base.to_str().unwrap()])
        .status()
        .expect("run swe_run");
    assert!(status.success(), "gate-write run failed: {status}");
    let text = std::fs::read_to_string(&base).expect("baseline written");
    mpas_telemetry::export::validate_json(&text).expect("baseline is valid JSON");
    assert!(text.contains("core.sim.step_seconds"));
    assert!(text.contains("core.sim.mass_drift"));

    // The identical configuration gates green against its own baseline.
    let out = swe_run()
        .args(["--level", "3", "--days", "0.05", "--ranks", "2"])
        .args(["--gate", base.to_str().unwrap()])
        .output()
        .expect("run swe_run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "gate run: {stdout}");
    assert!(stdout.contains("verdict: ok"), "gate output: {stdout}");

    // A tightened fail-severity baseline must exit 1.
    let tight = tmp("tight.json");
    std::fs::write(
        &tight,
        "{\"name\":\"tight\",\"entries\":[{\"metric\":\"core.sim.step_seconds\",\
         \"median\":1e-9,\"mad\":0,\"floor\":1e-10,\"severity\":\"fail\"}]}",
    )
    .unwrap();
    let out = swe_run()
        .args(["--level", "3", "--days", "0.05", "--ranks", "2"])
        .args(["--gate", tight.to_str().unwrap()])
        .output()
        .expect("run swe_run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: FAIL"));
}

#[test]
fn injected_mass_drift_trips_the_invariant_monitor() {
    let out = swe_run()
        .args([
            "--level",
            "3",
            "--days",
            "0.02",
            "--inject-mass-drift",
            "1e-5",
        ])
        .output()
        .expect("run swe_run");
    assert_eq!(out.status.code(), Some(3), "alert must exit 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ALERT"), "stderr: {stderr}");
    assert!(stderr.contains("core.sim.mass_drift"));
}

#[test]
fn report_prints_blame_table_and_json_artifact_parses() {
    let report = tmp("report.json");
    let out = swe_run()
        .args(["--level", "3", "--days", "0.05", "--ranks", "2", "--report"])
        .args(["--report-json", report.to_str().unwrap()])
        .output()
        .expect("run swe_run");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== per-rank blame =="), "stdout: {stdout}");
    assert!(stdout.contains("critical path"), "stdout: {stdout}");
    assert!(stdout.contains("measured vs modeled"), "stdout: {stdout}");

    let text = std::fs::read_to_string(&report).expect("report written");
    let v = mpas_telemetry::export::parse_json(&text).expect("report is valid JSON");
    let ranks = v
        .get("ranks")
        .and_then(|r| r.as_arr())
        .expect("ranks array");
    assert_eq!(ranks.len(), 2);
    for r in ranks {
        let f = |k: &str| r.get(k).and_then(|x| x.as_f64()).expect(k);
        let sum = f("compute_frac") + f("wait_frac") + f("copy_frac") + f("barrier_frac");
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum {sum}");
    }
    assert!(v.get("critical_path").is_some());
}
