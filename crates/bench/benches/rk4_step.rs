//! Measured companion of Fig. 7: full RK-4 step cost under the serial,
//! threaded and two-pool hybrid executors. On a multicore host the threaded
//! executors pull ahead; on any host all three produce bit-identical states
//! (asserted by the integration tests, not here).

use criterion::{criterion_group, criterion_main, Criterion};
use mpas_hybrid::{HybridModel, ParallelModel, Platform};
use mpas_swe::config::ModelConfig;
use mpas_swe::testcases::TestCase;
use mpas_swe::ShallowWaterModel;
use std::sync::Arc;
use std::time::Duration;

fn bench_step(c: &mut Criterion) {
    let mesh = Arc::new(mpas_mesh::generate(5, 0)); // 10 242 cells
    let cfg = ModelConfig::default();
    let tc = TestCase::Case5;

    let mut g = c.benchmark_group("fig7_rk4_step");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let mut serial = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
    g.bench_function("serial", |b| b.iter(|| serial.step()));

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut par = ParallelModel::new(mesh.clone(), cfg, tc, None, threads);
    g.bench_function(format!("threaded_{threads}"), |b| b.iter(|| par.step()));

    let mut hyb = HybridModel::new(
        mesh.clone(),
        cfg,
        tc,
        None,
        threads.div_ceil(2),
        threads.div_ceil(2),
        &Platform::paper_node(),
    );
    g.bench_function("hybrid_two_pool", |b| b.iter(|| hyb.step()));
    g.finish();
}

/// The PR-4 acceptance benchmark: full RK-4 step at level 6 (40 962
/// cells), seed per-slot kernels on the natural cell ordering against the
/// precomputed-coefficient fast path on the Morton/SFC reordered mesh, on
/// both the serial and the threaded executor. The fused+reordered variants
/// are the ones BENCH_pr4.json records.
fn bench_layout(c: &mut Criterion) {
    use mpas_mesh::Reordering;

    let level = 6;
    let base = Arc::new(mpas_mesh::generate(level, 0));
    let sfc = Arc::new(base.reordered(&Reordering::Sfc.permutation(&base)));
    let seed_cfg = ModelConfig {
        kernel_backend: mpas_swe::KernelBackend::Scalar,
        ..ModelConfig::default()
    };
    let fused_cfg = ModelConfig::default();
    let tc = TestCase::Case5;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut g = c.benchmark_group("pr4_rk4_layout");
    g.sample_size(10).measurement_time(Duration::from_secs(5));

    let mut m = ShallowWaterModel::new(base.clone(), seed_cfg, tc, None);
    g.bench_function("serial_seed_natural", |b| b.iter(|| m.step()));
    let mut m = ShallowWaterModel::new(base.clone(), fused_cfg, tc, None);
    g.bench_function("serial_fused_natural", |b| b.iter(|| m.step()));
    let mut m = ShallowWaterModel::new(sfc.clone(), fused_cfg, tc, None);
    g.bench_function("serial_fused_sfc", |b| b.iter(|| m.step()));

    let mut m = ParallelModel::new(base.clone(), seed_cfg, tc, None, threads);
    g.bench_function(format!("threaded{threads}_seed_natural"), |b| {
        b.iter(|| m.step())
    });
    let mut m = ParallelModel::new(sfc.clone(), fused_cfg, tc, None, threads);
    g.bench_function(format!("threaded{threads}_fused_sfc"), |b| {
        b.iter(|| m.step())
    });
    g.finish();
}

/// The PR-9 acceptance benchmark: the vertically batched simd tier at
/// level 6 with k = 4 layers on the SFC ordering, next to the fused
/// serial single-layer step (the `kernel.simd_speedup_serial` numerator)
/// and the flat simd step (the bitwise-equal k = 1 degenerate case).
fn bench_simd(c: &mut Criterion) {
    use mpas_mesh::Reordering;
    use mpas_swe::layers::LayeredModel;
    use mpas_swe::KernelBackend;

    let base = Arc::new(mpas_mesh::generate(6, 0));
    let sfc = Arc::new(base.reordered(&Reordering::Sfc.permutation(&base)));
    let tc = TestCase::Case5;
    let simd_cfg = |k: usize| ModelConfig {
        kernel_backend: KernelBackend::Simd,
        n_layers: k,
        ..ModelConfig::default()
    };

    let mut g = c.benchmark_group("pr9_rk4_simd");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let mut m = ShallowWaterModel::new(sfc.clone(), ModelConfig::default(), tc, None);
    g.bench_function("serial_fused_sfc", |b| b.iter(|| m.step()));
    let mut m = ShallowWaterModel::new(sfc.clone(), simd_cfg(1), tc, None);
    g.bench_function("serial_simd_sfc_k1", |b| b.iter(|| m.step()));
    let mut m = LayeredModel::new(sfc.clone(), simd_cfg(4), tc, None);
    g.bench_function("serial_simd_sfc_k4", |b| b.iter(|| m.step()));
    g.finish();
}

criterion_group!(benches, bench_step, bench_layout, bench_simd);
criterion_main!(benches);
