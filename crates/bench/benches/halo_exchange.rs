//! Measured companion of Figs. 8–9: the per-substep halo-exchange cost of
//! the message runtime across rank counts (the α+β model's measured
//! counterpart on the in-process wire).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpas_mesh::MeshPartition;
use mpas_msg::comm::run_ranks;
use mpas_msg::halo::{FieldKind, HaloExchanger};
use std::time::Duration;

fn bench_halo(c: &mut Criterion) {
    let mesh = mpas_mesh::generate(5, 0);
    let mut g = c.benchmark_group("fig8_halo_exchange");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for &n_ranks in &[2usize, 4, 8] {
        let part = MeshPartition::build(&mesh, n_ranks, 3);
        let parts = part.ranks.clone();
        g.bench_with_input(
            BenchmarkId::new("cell_and_edge_field", n_ranks),
            &n_ranks,
            |b, &n| {
                b.iter(|| {
                    run_ranks(n, |mut ctx| {
                        let mut hx = HaloExchanger::new(parts[ctx.rank].clone());
                        let mut hc = vec![1.0; hx.local().n_cells()];
                        let mut he = vec![2.0; hx.local().n_edges()];
                        for _ in 0..4 {
                            hx.exchange(&mut ctx, FieldKind::Cell, &mut hc);
                            hx.exchange(&mut ctx, FieldKind::Edge, &mut he);
                        }
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_halo);
criterion_main!(benches);
