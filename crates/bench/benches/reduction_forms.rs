//! Measured companion of Fig. 6 and Algorithms 2–4: the three loop forms of
//! the edge→cell irregular reduction, plus the scatter/gather forms of the
//! real `tend_h` pattern. On any host the gather (Alg. 3) and branch-free
//! label-matrix (Alg. 4) forms should beat the scatter form once data no
//! longer fits in cache, and the label-matrix form vectorizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpas_patterns::reduction::{EdgeCellReduction, LabelMatrix};
use mpas_swe::kernels::{ops, scatter};
use std::time::Duration;

fn bench_reduction_forms(c: &mut Criterion) {
    let mesh = mpas_mesh::generate(5, 0); // 10 242 cells
    let u: Vec<f64> = (0..mesh.n_edges())
        .map(|e| (e as f64 * 0.17).sin())
        .collect();
    let h_edge: Vec<f64> = (0..mesh.n_edges())
        .map(|e| 1000.0 + (e % 13) as f64)
        .collect();
    let lm = LabelMatrix::build(&mesh);
    let mut y = vec![0.0; mesh.n_cells()];

    let mut g = c.benchmark_group("fig6_reduction_forms");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function(BenchmarkId::new("alg2_scatter", mesh.n_cells()), |b| {
        b.iter(|| EdgeCellReduction::scatter(&mesh, &u, &mut y))
    });
    g.bench_function(BenchmarkId::new("alg3_gather", mesh.n_cells()), |b| {
        b.iter(|| EdgeCellReduction::gather(&mesh, &u, &mut y))
    });
    g.bench_function(BenchmarkId::new("alg4_label_matrix", mesh.n_cells()), |b| {
        b.iter(|| lm.apply(&u, &mut y))
    });
    g.bench_function(BenchmarkId::new("tend_h_scatter", mesh.n_cells()), |b| {
        b.iter(|| scatter::tend_h_scatter(&mesh, &u, &h_edge, &mut y))
    });
    g.bench_function(BenchmarkId::new("tend_h_gather", mesh.n_cells()), |b| {
        b.iter(|| ops::tend_h(&mesh, &u, &h_edge, &mut y, 0..mesh.n_cells()))
    });
    g.finish();
}

criterion_group!(benches, bench_reduction_forms);
criterion_main!(benches);
