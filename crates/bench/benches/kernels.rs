//! Measured cost of every Table-I pattern instance (the data behind the
//! pattern-level load-balancing argument of Fig. 4): each stencil class has
//! a distinct cost per output point, which is what the pattern-driven
//! scheduler exploits.

use criterion::{criterion_group, criterion_main, Criterion};
use mpas_swe::config::ModelConfig;
use mpas_swe::kernels::ops;
use mpas_swe::reconstruct::ReconstructCoeffs;
use mpas_swe::state::Diagnostics;
use mpas_swe::testcases::TestCase;
use std::time::Duration;

fn bench_patterns(c: &mut Criterion) {
    let mesh = mpas_mesh::generate(5, 0);
    let config = ModelConfig::default();
    let tc = TestCase::Case5;
    let state = tc.initial_state(&mesh);
    let b = tc.topography(&mesh);
    let f_vertex = tc.coriolis_vertex(&mesh);
    let coeffs = ReconstructCoeffs::build(&mesh);
    let mut d = Diagnostics::zeros(&mesh);
    // Populate diagnostics once so every op sees realistic inputs.
    mpas_swe::kernels::compute_solve_diagnostics(
        &mesh, &config, &state.h, &state.u, &f_vertex, 100.0, &mut d,
    );
    let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
    let mut out_c = vec![0.0; nc];
    let mut out_e = vec![0.0; ne];
    let mut out_v = vec![0.0; nv];
    let mut out_e2 = vec![0.0; ne];
    let mut xyz = (vec![0.0; nc], vec![0.0; nc], vec![0.0; nc]);
    let mut out_c2 = vec![0.0; nc];

    let mut g = c.benchmark_group("table1_patterns");
    g.sample_size(20).measurement_time(Duration::from_secs(1));
    g.bench_function("A1_tend_h", |bch| {
        bch.iter(|| ops::tend_h(&mesh, &state.u, &d.h_edge, &mut out_c, 0..nc))
    });
    g.bench_function("B1_tend_u", |bch| {
        bch.iter(|| {
            ops::tend_u(
                &mesh,
                config.gravity,
                &d.pv_edge,
                &state.u,
                &d.h_edge,
                &d.ke,
                &state.h,
                &b,
                &mut out_e,
                0..ne,
            )
        })
    });
    g.bench_function("C1_tend_u_del2", |bch| {
        bch.iter(|| ops::tend_u_del2(&mesh, 1e4, &d.divergence, &d.vorticity, &mut out_e, 0..ne))
    });
    g.bench_function("D_d2fdx2", |bch| {
        bch.iter(|| ops::d2fdx2(&mesh, &state.h, &mut out_e, &mut out_e2, 0..ne))
    });
    g.bench_function("H2_h_edge", |bch| {
        bch.iter(|| ops::h_edge(&mesh, &config, &state.h, &[], &[], &mut out_e, 0..ne))
    });
    g.bench_function("C2_vorticity", |bch| {
        bch.iter(|| ops::vorticity(&mesh, &state.u, &mut out_v, 0..nv))
    });
    g.bench_function("A2_ke", |bch| {
        bch.iter(|| ops::ke(&mesh, &state.u, &mut out_c, 0..nc))
    });
    g.bench_function("B2_divergence", |bch| {
        bch.iter(|| ops::divergence(&mesh, &state.u, &mut out_c, 0..nc))
    });
    g.bench_function("H1_tangential_velocity", |bch| {
        bch.iter(|| ops::tangential_velocity(&mesh, &state.u, &mut out_e, 0..ne))
    });
    g.bench_function("A3_vorticity_cell", |bch| {
        bch.iter(|| ops::vorticity_cell(&mesh, &d.vorticity, &mut out_c, 0..nc))
    });
    g.bench_function("E_pv_vertex", |bch| {
        bch.iter(|| ops::pv_vertex(&mesh, &state.h, &d.vorticity, &f_vertex, &mut out_v, 0..nv))
    });
    g.bench_function("F_pv_cell", |bch| {
        bch.iter(|| ops::pv_cell(&mesh, &d.pv_vertex, &mut out_c, 0..nc))
    });
    g.bench_function("G_pv_edge", |bch| {
        bch.iter(|| {
            ops::pv_edge(
                &mesh,
                0.5,
                100.0,
                &d.pv_vertex,
                &d.pv_cell,
                &state.u,
                &d.v,
                &mut out_e,
                0..ne,
            )
        })
    });
    g.bench_function("A4_reconstruct", |bch| {
        bch.iter(|| {
            ops::reconstruct_xyz(
                &mesh,
                &coeffs,
                &state.u,
                &mut xyz.0,
                &mut xyz.1,
                &mut xyz.2,
                0..nc,
            )
        })
    });
    g.bench_function("X6_zonal_meridional", |bch| {
        bch.iter(|| {
            ops::zonal_meridional(
                &mesh,
                &xyz.0,
                &xyz.1,
                &xyz.2,
                &mut out_c,
                &mut out_c2,
                0..nc,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
