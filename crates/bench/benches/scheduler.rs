//! Cost of the scheduling machinery itself (the modeled side of Fig. 7):
//! building the data-flow diagram and producing kernel-level and
//! pattern-driven schedules must be negligible next to a time step.

use criterion::{criterion_group, criterion_main, Criterion};
use mpas_hybrid::sched::{schedule_substep, Policy};
use mpas_hybrid::Platform;
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use std::time::Duration;

fn bench_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_scheduler");
    g.sample_size(50).measurement_time(Duration::from_secs(1));
    g.bench_function("build_dataflow_graph", |b| {
        b.iter(|| DataflowGraph::for_substep(RkPhase::Intermediate))
    });
    let graph = DataflowGraph::for_substep(RkPhase::Intermediate);
    let mc = MeshCounts::icosahedral(655_362);
    let p = Platform::paper_node();
    for policy in [Policy::Serial, Policy::KernelLevel, Policy::PatternDriven] {
        g.bench_function(format!("schedule_{policy:?}"), |b| {
            b.iter(|| schedule_substep(&graph, &mc, &p, policy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
