//! Measured companion of Table III: cost of building the SCVT-like meshes
//! (subdivision + Voronoi dual + TRiSK weights) by level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpas_mesh::{build_mesh, IcosaGrid};
use std::time::Duration;

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_mesh_generation");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for &level in &[3u32, 4, 5] {
        g.bench_with_input(BenchmarkId::new("subdivide", level), &level, |b, &l| {
            b.iter(|| IcosaGrid::subdivide(l))
        });
        let grid = IcosaGrid::subdivide(level);
        g.bench_with_input(BenchmarkId::new("voronoi_dual", level), &level, |b, _| {
            b.iter(|| build_mesh(&grid))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);
