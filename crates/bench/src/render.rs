//! Rendering cell fields to lon-lat raster images (binary PPM).
//!
//! The paper's Fig. 5 shows the total height field on a lon-lat map. This
//! module samples a cell field onto an equirectangular grid by
//! nearest-cell-center lookup (exact for piecewise-constant finite-volume
//! data: every pixel displays the value of the Voronoi cell it falls in)
//! and writes a blue→white→red diverging colormap as a PPM file that any
//! image viewer opens.

use mpas_geom::{LonLat, Vec3};
use mpas_mesh::Mesh;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Spatial index for nearest-cell-center queries on the sphere.
pub struct CellLocator<'m> {
    mesh: &'m Mesh,
    nlon: usize,
    nlat: usize,
    buckets: Vec<Vec<u32>>,
}

impl<'m> CellLocator<'m> {
    /// Build a lon-lat bucket grid sized to the mesh resolution.
    pub fn new(mesh: &'m Mesh) -> Self {
        // ~2 cells per bucket on a quasi-uniform mesh.
        let n = ((mesh.n_cells() as f64 / 2.0).sqrt() as usize).clamp(8, 512);
        let (nlon, nlat) = (2 * n, n);
        let mut buckets = vec![Vec::new(); nlon * nlat];
        for i in 0..mesh.n_cells() {
            let ll = mpas_geom::to_lonlat(mesh.x_cell[i]);
            let (bx, by) = Self::bucket_of(ll, nlon, nlat);
            buckets[by * nlon + bx].push(i as u32);
        }
        CellLocator {
            mesh,
            nlon,
            nlat,
            buckets,
        }
    }

    fn bucket_of(ll: LonLat, nlon: usize, nlat: usize) -> (usize, usize) {
        let bx = ((ll.lon / std::f64::consts::TAU) * nlon as f64) as usize;
        let by = (((ll.lat + std::f64::consts::FRAC_PI_2) / std::f64::consts::PI) * nlat as f64)
            as usize;
        (bx.min(nlon - 1), by.min(nlat - 1))
    }

    /// Index of the cell whose center is nearest to `p`.
    ///
    /// Scans whole latitude bands outward from `p`'s band. Longitude
    /// buckets converge at the poles, so per-band scans cover the full
    /// longitude range; the sound stopping rule is that every unvisited
    /// band is at least `(r-1) * π/nlat` of latitude away.
    pub fn nearest_cell(&self, p: Vec3) -> usize {
        let ll = mpas_geom::to_lonlat(p);
        let (_, by) = Self::bucket_of(ll, self.nlon, self.nlat);
        let band_height = std::f64::consts::PI / self.nlat as f64;
        let mut best = (f64::INFINITY, 0usize); // (chord, cell)
        for radius in 0..self.nlat as i64 {
            let mut scanned = false;
            for y in [by as i64 - radius, by as i64 + radius] {
                if y < 0 || y >= self.nlat as i64 {
                    continue;
                }
                if radius == 0 && y != by as i64 {
                    continue; // avoid double-scanning the home band
                }
                scanned = true;
                let row = y as usize * self.nlon;
                for x in 0..self.nlon {
                    for &c in &self.buckets[row + x] {
                        let d = p.dist(self.mesh.x_cell[c as usize]);
                        if d < best.0 {
                            best = (d, c as usize);
                        }
                    }
                }
            }
            if best.0.is_finite() {
                // Arc lower bound to any cell in bands beyond `radius`.
                let min_arc = (radius as f64) * band_height - band_height;
                let best_arc = 2.0 * (best.0 / 2.0).asin();
                if min_arc > best_arc {
                    break;
                }
            }
            if !scanned && best.0.is_finite() {
                break; // ran off both poles
            }
        }
        best.1
    }
}

/// Sample a cell field on an equirectangular grid (row 0 = north).
pub fn sample_lonlat(mesh: &Mesh, field: &[f64], width: usize, height: usize) -> Vec<f64> {
    assert_eq!(field.len(), mesh.n_cells());
    let locator = CellLocator::new(mesh);
    let mut out = Vec::with_capacity(width * height);
    for row in 0..height {
        let lat =
            std::f64::consts::FRAC_PI_2 - (row as f64 + 0.5) / height as f64 * std::f64::consts::PI;
        for col in 0..width {
            let lon = (col as f64 + 0.5) / width as f64 * std::f64::consts::TAU;
            let p = LonLat::new(lon, lat).to_unit_vector();
            out.push(field[locator.nearest_cell(p)]);
        }
    }
    out
}

/// Map a normalized value in [0,1] to a blue→white→red diverging color.
fn diverging_rgb(t: f64) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    let lerp = |a: f64, b: f64, s: f64| (a + (b - a) * s) as u8;
    if t < 0.5 {
        let s = t * 2.0;
        [
            lerp(40.0, 245.0, s),
            lerp(70.0, 245.0, s),
            lerp(160.0, 245.0, s),
        ]
    } else {
        let s = (t - 0.5) * 2.0;
        [
            lerp(245.0, 180.0, s),
            lerp(245.0, 40.0, s),
            lerp(245.0, 50.0, s),
        ]
    }
}

/// Write a sampled field as a binary PPM (P6) image.
pub fn write_ppm(
    path: impl AsRef<Path>,
    values: &[f64],
    width: usize,
    height: usize,
    vmin: f64,
    vmax: f64,
) -> io::Result<()> {
    assert_eq!(values.len(), width * height);
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "P6\n{width} {height}\n255")?;
    let span = (vmax - vmin).max(f64::MIN_POSITIVE);
    for &v in values {
        let t = (v - vmin) / span;
        w.write_all(&diverging_rgb(t))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_cell_is_truly_nearest() {
        let mesh = mpas_mesh::generate(3, 0);
        let locator = CellLocator::new(&mesh);
        for k in 0..200 {
            let p = LonLat::new(k as f64 * 0.0931, ((k * 17) as f64 * 0.013).sin() * 1.5)
                .to_unit_vector();
            let found = locator.nearest_cell(p);
            let brute = (0..mesh.n_cells())
                .min_by(|&a, &b| {
                    p.dist(mesh.x_cell[a])
                        .partial_cmp(&p.dist(mesh.x_cell[b]))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(found, brute, "point {k}");
        }
    }

    #[test]
    fn sampling_reproduces_a_latitude_gradient() {
        let mesh = mpas_mesh::generate(3, 0);
        let field: Vec<f64> = (0..mesh.n_cells()).map(|i| mesh.x_cell[i].z).collect();
        let (w, h) = (64, 32);
        let img = sample_lonlat(&mesh, &field, w, h);
        assert_eq!(img.len(), w * h);
        // Row means decrease monotonically from north to south.
        let row_mean = |r: usize| -> f64 { img[r * w..(r + 1) * w].iter().sum::<f64>() / w as f64 };
        assert!(row_mean(0) > 0.8);
        assert!(row_mean(h - 1) < -0.8);
        for r in 0..h - 1 {
            assert!(row_mean(r) >= row_mean(r + 1) - 0.05, "row {r}");
        }
    }

    #[test]
    fn ppm_file_is_well_formed() {
        let dir = std::env::temp_dir();
        let path = dir.join("mpas_render_test.ppm");
        let vals: Vec<f64> = (0..12).map(|k| k as f64).collect();
        write_ppm(&path, &vals, 4, 3, 0.0, 11.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(bytes.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(bytes.len(), b"P6\n4 3\n255\n".len() + 12 * 3);
    }

    #[test]
    fn colormap_endpoints() {
        assert_eq!(diverging_rgb(0.0), [40, 70, 160]); // blue
        assert_eq!(diverging_rgb(1.0), [180, 40, 50]); // red
        let mid = diverging_rgb(0.5);
        assert!(mid.iter().all(|&c| c > 230)); // near white
    }
}
