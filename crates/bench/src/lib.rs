#![warn(missing_docs)]
//! Shared harness utilities for the benchmark suite and the `figures`
//! binary (which regenerates every table and figure of the paper — see
//! EXPERIMENTS.md for the experiment index).

pub mod render;

use std::time::Instant;

/// Print an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (k, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>width$}  ",
                c,
                width = widths[k.min(widths.len() - 1)]
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Wall-clock a closure `iters` times and return seconds per call (after
/// one warm-up call).
pub fn time_per_call<F: FnMut()>(mut f: F, iters: usize) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_returns_positive() {
        let mut x = 0u64;
        let t = time_per_call(
            || {
                x = x.wrapping_add(1);
            },
            10,
        );
        assert!(t >= 0.0);
    }

    #[test]
    fn fmt_units() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
    }
}
