//! `swe_diag`: root-cause a performance/correctness regression from the
//! telemetry history store.
//!
//! ```text
//! swe_diag --history-dir H [--run R|latest] [--against last=5] [--json] [--list]
//! ```
//!
//! Reads the store recorded by `swe_run --history-dir` / `swe_serve
//! --history-dir` / `swe_load --history-dir`, selects baseline runs
//! whose manifest key matches the run under diagnosis (same case,
//! level, backend, layers, policy, executor, ranks and step count),
//! and prints the ranked [`mpas_telemetry::diagnose::DiagnosisReport`]:
//! which metric regressed, attributed to which dimension
//! (kernel-backend, a Table-I kernel span, a rank's blame fraction, the
//! serving plane), with effect sizes in gate band-widths and the store
//! rows supporting each finding.
//!
//! Exit codes: `0` clean (or warn-severity drift only), `1` a
//! fail-severity regression was attributed, `2` usage or store errors.
//! CI's history-smoke job asserts the `1`: a forced-scalar run at level
//! 6, k=4 must produce a top-ranked kernel-backend finding.

use mpas_telemetry::diagnose::{diagnose, DiagnoseConfig};
use mpas_telemetry::store::HistoryStore;
use std::path::PathBuf;

struct Args {
    history_dir: PathBuf,
    run: String,
    against: usize,
    json: bool,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: swe-diag --history-dir DIR [--run ID|latest] \
         [--against last=N] [--json] [--list]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        history_dir: PathBuf::new(),
        run: "latest".to_string(),
        against: 5,
        json: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {a}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--history-dir" => args.history_dir = PathBuf::from(val()),
            "--run" => args.run = val(),
            "--against" => {
                let v = val();
                args.against = match v.trim_start_matches("last=").parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--against must be last=N or N (N >= 1), got {v}");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if args.history_dir.as_os_str().is_empty() {
        eprintln!("--history-dir is required");
        usage();
    }
    args
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("swe-diag: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let store = HistoryStore::open(&args.history_dir).unwrap_or_else(|e| fail(e));

    if args.list {
        let runs = store.runs().unwrap_or_else(|e| fail(e));
        println!(
            "{:<9} {:<12} {:>5} {:<7} {:>2} {:<14} {:<10} {:>5} {:<20}",
            "run", "case", "level", "backend", "k", "policy", "executor", "steps", "git"
        );
        for m in &runs {
            println!(
                "{:<9} {:<12} {:>5} {:<7} {:>2} {:<14} {:<10} {:>5} {:<20}",
                m.run_id,
                m.case,
                m.level,
                m.backend,
                m.layers,
                m.policy,
                m.executor,
                m.steps,
                m.git
            );
        }
        return;
    }

    let run_id = if args.run == "latest" {
        match store.latest() {
            Ok(Some(m)) => m.run_id,
            Ok(None) => fail("store has no recorded runs"),
            Err(e) => fail(e),
        }
    } else {
        args.run.clone()
    };

    let cfg = DiagnoseConfig {
        last_n: args.against,
        ..DiagnoseConfig::default()
    };
    let report = diagnose(&store, &run_id, &cfg).unwrap_or_else(|e| fail(e));
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.failed() {
        std::process::exit(1);
    }
}
