//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures <experiment> [options]
//!   table1 | table2 | table3 | fig4 | fig4x | fig5 | fig6 | fig7 | fig7x
//!   | fig8 | fig9 | ablations | trace | profile | convergence
//!   | partitioners | fig_layout | fig_blame | fig_simd | all
//!
//! `fig_layout` measures the PR-4 data-layout ladder: RK-4 step time by
//! cell ordering (natural, Morton SFC, BFS) × mesh level × executor, seed
//! per-slot kernels against the precomputed fused-coefficient fast path.
//!
//! `fig_simd` measures the PR-9 kernel-tier ladder: RK-4 step time by
//! backend (scalar, fused, simd) × vertical layers × mesh level on the
//! SFC ordering, with the per-layer cost and the speedup over running the
//! fused single-layer model once per layer.
//!
//! `fig7x` extends Fig. 7 with every policy registered in `mpas-sched`
//! (HEFT, CPOP, lookahead, dynamic-list, ...) on the Table III meshes.
//!
//! `fig4x` runs the real threaded executor under the telemetry recorder
//! and prints the measured per-pattern times next to the roofline model's
//! predictions, writing one combined modeled+measured Chrome trace.
//!
//! `fig_blame` (PR-5) runs the distributed engine at 2/4/8 ranks under
//! the trace analyzer and tabulates each configuration's compute / wait /
//! copy blame fractions, imbalance, and extracted critical path.
//!
//! options:
//!   --level N     mesh subdivision level for measured runs (default 5)
//!   --days X      simulated days for fig5 (default 0.5; paper uses 15)
//!   --full        generate the full Table III meshes (levels 8-9 are slow)
//! ```
//!
//! Modeled results use the Table-II-calibrated device descriptors (see
//! DESIGN.md §1 for the substitution rationale); measured results run the
//! real kernels on this host. EXPERIMENTS.md records paper-vs-reproduced
//! values for each experiment.

use mpas_bench::{fmt_secs, print_table, time_per_call};
use mpas_hybrid::sched::{schedule_substep, Policy};
use mpas_hybrid::sim::{time_per_step, time_per_step_multirank};
use mpas_hybrid::{fig6_ladder, Platform};
use mpas_msg::CommCostModel;
use mpas_patterns::dataflow::{table_i, DataflowGraph, MeshCounts, RkPhase};
use mpas_patterns::reduction::{EdgeCellReduction, LabelMatrix};
use mpas_swe::config::{KernelBackend, ModelConfig};
use mpas_swe::kernels::{ops, scatter};
use mpas_swe::testcases::TestCase;
use mpas_swe::ShallowWaterModel;
use std::sync::Arc;

struct Opts {
    level: u32,
    days: f64,
    full: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut opts = Opts {
        level: 5,
        days: 0.5,
        full: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--level" => opts.level = it.next().expect("--level N").parse().expect("level"),
            "--days" => opts.days = it.next().expect("--days X").parse().expect("days"),
            "--full" => opts.full = true,
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    for w in which {
        match w.as_str() {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(&opts),
            "fig4" => fig4(),
            "fig4x" => fig4x(&opts),
            "fig5" => fig5(&opts),
            "fig6" => fig6(&opts),
            "fig7" => fig7(&opts),
            "fig7x" => fig7x(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "ablations" => ablations(),
            "trace" => trace(),
            "profile" => profile(),
            "convergence" => convergence(),
            "partitioners" => partitioners(&opts),
            "fig_layout" => fig_layout(&opts),
            "fig_blame" => fig_blame(&opts),
            "fig_simd" => fig_simd(&opts),
            "all" => {
                table1();
                table2();
                table3(&opts);
                fig4();
                fig5(&opts);
                fig6(&opts);
                fig7(&opts);
                fig7x();
                fig8();
                fig9();
                ablations();
            }
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

/// Table I: pattern instances and their input/output variables.
fn table1() {
    let rows: Vec<Vec<String>> = table_i()
        .iter()
        .map(|p| {
            vec![
                format!("{:?}", p.kernel),
                p.name.to_string(),
                format!("{:?}", p.class),
                p.inputs
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(","),
                p.outputs
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<_>>()
                    .join(","),
            ]
        })
        .collect();
    print_table(
        "Table I — patterns and their input/output variables",
        &["kernel", "pattern", "class", "inputs", "outputs"],
        &rows,
    );
}

/// Table II: platform configuration (the simulated node).
fn table2() {
    let p = Platform::paper_node();
    let rows = vec![
        vec!["name".into(), p.cpu.name.into(), p.acc.name.into()],
        vec![
            "workers".into(),
            p.cpu.n_workers.to_string(),
            p.acc.n_workers.to_string(),
        ],
        vec![
            "eff. flops".into(),
            format!("{:.0} Gflop/s", p.cpu.flops / 1e9),
            format!("{:.0} Gflop/s", p.acc.flops / 1e9),
        ],
        vec![
            "eff. bandwidth".into(),
            format!("{:.0} GB/s", p.cpu.mem_bw / 1e9),
            format!("{:.0} GB/s", p.acc.mem_bw / 1e9),
        ],
        vec![
            "launch overhead".into(),
            format!("{:.0} µs", p.cpu.launch_overhead * 1e6),
            format!("{:.0} µs", p.acc.launch_overhead * 1e6),
        ],
    ];
    print_table(
        "Table II — simulated platform (calibrated from the paper's Table II)",
        &["quantity", "CPU (host)", "MIC (device)"],
        &rows,
    );
    println!(
        "link: PCIe {:.0} µs latency, {:.1} GB/s",
        p.link.latency * 1e6,
        p.link.bandwidth / 1e9
    );
}

/// Table III: mesh inventory.
fn table3(opts: &Opts) {
    use mpas_mesh::{IcosaGrid, MeshQuality};
    let mut rows = Vec::new();
    for level in mpas_mesh::TABLE3_LEVELS {
        let cells = IcosaGrid::expected_points(level);
        let label = match level {
            6 => "120-km",
            7 => "60-km",
            8 => "30-km",
            9 => "15-km",
            _ => "?",
        };
        let generate_now = level <= 7 || opts.full;
        let detail = if generate_now {
            let mesh = mpas_mesh::generate(level, 0);
            assert_eq!(mesh.n_cells(), cells);
            let q = MeshQuality::of(&mesh);
            format!("generated: {q}")
        } else {
            "analytic (use --full to generate)".to_string()
        };
        rows.push(vec![
            label.to_string(),
            cells.to_string(),
            level.to_string(),
            detail,
        ]);
    }
    print_table(
        "Table III — mesh inventory",
        &["resolution", "# mesh cells", "subdivision level", "status"],
        &rows,
    );
}

/// Fig. 4: the data-flow diagram itself, exported as Graphviz DOT plus a
/// plain-text concurrency report (topological levels).
fn fig4() {
    use mpas_patterns::{concurrency_report, to_dot};
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    for (phase, name) in [
        (RkPhase::Intermediate, "fig4_intermediate_substep.dot"),
        (RkPhase::Final, "fig4_final_substep.dot"),
    ] {
        let g = DataflowGraph::for_substep(phase);
        std::fs::write(out_dir.join(name), to_dot(&g)).unwrap();
        println!("\n=== Fig. 4 — data-flow diagram, {phase:?} substep ===");
        print!("{}", concurrency_report(&g));
        let mc = MeshCounts::icosahedral(655_362);
        let (cp, total) = g.critical_path(|n| n.work(&mc).bytes);
        println!(
            "critical path / total work = {:.2} (max pattern-level speedup {:.1}x)",
            cp / total,
            total / cp
        );
        println!("wrote target/figures/{name}");
    }
}

/// Fig. 5: correctness of the hybrid implementation on Williamson TC5.
fn fig5(opts: &Opts) {
    println!("\n=== Fig. 5 — TC5 total height h+b, serial vs hybrid ===");
    println!(
        "(mesh level {}, {} simulated days; paper: 120-km mesh, day 15)",
        opts.level, opts.days
    );
    let mesh = Arc::new(mpas_mesh::generate(opts.level, 0));
    let cfg = ModelConfig::default();
    let tc = TestCase::Case5;
    let mut serial = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
    let steps = serial.steps_for_days(opts.days);
    let mut hybrid =
        mpas_hybrid::HybridModel::new(mesh.clone(), cfg, tc, None, 2, 2, &Platform::paper_node());
    serial.run_steps(steps);
    hybrid.run_steps(steps);

    let th_serial = serial.total_height();
    let b = tc.topography(&mesh);
    let th_hybrid: Vec<f64> = hybrid
        .state()
        .h
        .iter()
        .zip(&b)
        .map(|(&h, &b)| h + b)
        .collect();
    let stats = |x: &[f64]| {
        let min = x.iter().cloned().fold(f64::MAX, f64::min);
        let max = x.iter().cloned().fold(f64::MIN, f64::max);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        (min, max, mean)
    };
    let (smin, smax, smean) = stats(&th_serial);
    let (hmin, hmax, hmean) = stats(&th_hybrid);
    let maxdiff = th_serial
        .iter()
        .zip(&th_hybrid)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    print_table(
        "total height h+b (m)",
        &["version", "min", "max", "mean"],
        &[
            vec![
                "original CPU".into(),
                format!("{smin:.3}"),
                format!("{smax:.3}"),
                format!("{smean:.3}"),
            ],
            vec![
                "hybrid".into(),
                format!("{hmin:.3}"),
                format!("{hmax:.3}"),
                format!("{hmean:.3}"),
            ],
        ],
    );
    println!("max |difference| = {maxdiff:.3e} m  (paper: consistent within machine precision)");
    println!("steps = {steps}, dt = {:.1} s", serial.dt);

    // Render the Fig. 5 panels as PPM images.
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let (w, h) = (720, 360);
    let img_serial = mpas_bench::render::sample_lonlat(&mesh, &th_serial, w, h);
    let img_hybrid = mpas_bench::render::sample_lonlat(&mesh, &th_hybrid, w, h);
    let diff: Vec<f64> = th_serial
        .iter()
        .zip(&th_hybrid)
        .map(|(a, b)| a - b)
        .collect();
    let img_diff = mpas_bench::render::sample_lonlat(&mesh, &diff, w, h);
    let dmax = maxdiff.max(1e-30);
    mpas_bench::render::write_ppm(
        out_dir.join("fig5_serial.ppm"),
        &img_serial,
        w,
        h,
        smin,
        smax,
    )
    .unwrap();
    mpas_bench::render::write_ppm(
        out_dir.join("fig5_hybrid.ppm"),
        &img_hybrid,
        w,
        h,
        hmin,
        hmax,
    )
    .unwrap();
    mpas_bench::render::write_ppm(
        out_dir.join("fig5_difference.ppm"),
        &img_diff,
        w,
        h,
        -dmax,
        dmax,
    )
    .unwrap();
    println!("wrote target/figures/fig5_{{serial,hybrid,difference}}.ppm");
}

/// Fig. 6: single-device optimization ladder (modeled) plus the measured
/// loop-form ladder on this host.
fn fig6(opts: &Opts) {
    let mc = MeshCounts::icosahedral(163_842);
    let ladder = fig6_ladder(&mc);
    let rows: Vec<Vec<String>> = ladder
        .iter()
        .map(|(s, sp)| vec![s.label().to_string(), format!("{sp:.1}x")])
        .collect();
    print_table(
        "Fig. 6 — Xeon Phi optimization ladder (modeled; speedup vs 1 unoptimized Phi core)",
        &["stage", "speedup"],
        &rows,
    );
    println!("paper bands: OpenMP < 20x, Refactoring > 60x, SIMD ≈ +20%, final ≈ 100x");

    // Measured companion: loop forms on this host (single core).
    let mesh = mpas_mesh::generate(opts.level, 0);
    let u: Vec<f64> = (0..mesh.n_edges())
        .map(|e| (e as f64 * 0.1).sin())
        .collect();
    let h_edge: Vec<f64> = (0..mesh.n_edges()).map(|e| 1e3 + (e % 7) as f64).collect();
    let mut y = vec![0.0; mesh.n_cells()];
    let lm = LabelMatrix::build(&mesh);
    let iters = 50;
    let t_scatter = time_per_call(|| EdgeCellReduction::scatter(&mesh, &u, &mut y), iters);
    let t_gather = time_per_call(|| EdgeCellReduction::gather(&mesh, &u, &mut y), iters);
    let t_label = time_per_call(|| lm.apply(&u, &mut y), iters);
    let t_tendh_scatter = time_per_call(
        || scatter::tend_h_scatter(&mesh, &u, &h_edge, &mut y),
        iters,
    );
    let t_tendh_gather = time_per_call(
        || ops::tend_h(&mesh, &u, &h_edge, &mut y, 0..mesh.n_cells()),
        iters,
    );
    print_table(
        "Fig. 6 measured companion — loop forms on this host (1 core)",
        &["loop form", "time", "vs scatter"],
        &[
            vec!["Alg.2 scatter".into(), fmt_secs(t_scatter), "1.00x".into()],
            vec![
                "Alg.3 gather".into(),
                fmt_secs(t_gather),
                format!("{:.2}x", t_scatter / t_gather),
            ],
            vec![
                "Alg.4 label-matrix".into(),
                fmt_secs(t_label),
                format!("{:.2}x", t_scatter / t_label),
            ],
            vec![
                "tend_h scatter".into(),
                fmt_secs(t_tendh_scatter),
                "1.00x".into(),
            ],
            vec![
                "tend_h gather".into(),
                fmt_secs(t_tendh_gather),
                format!("{:.2}x", t_tendh_scatter / t_tendh_gather),
            ],
        ],
    );
}

/// Fig. 7: time per step and speedup across the Table III meshes for the
/// CPU version, kernel-level and pattern-driven hybrids.
fn fig7(opts: &Opts) {
    let p = Platform::paper_node();
    let mut rows = Vec::new();
    for &cells in &[40_962usize, 163_842, 655_362, 2_621_442] {
        let mc = MeshCounts::icosahedral(cells);
        let t_cpu = time_per_step(&mc, &p, Policy::Serial);
        let t_kernel = time_per_step(&mc, &p, Policy::KernelLevel);
        let t_pattern = time_per_step(&mc, &p, Policy::PatternDriven);
        rows.push(vec![
            cells.to_string(),
            format!("{t_cpu:.3}"),
            format!("{t_kernel:.3}"),
            format!("{t_pattern:.3}"),
            format!("{:.2}x", t_cpu / t_kernel),
            format!("{:.2}x", t_cpu / t_pattern),
        ]);
    }
    print_table(
        "Fig. 7 — time/step (s, modeled) and speedup vs single-core CPU",
        &[
            "cells",
            "CPU",
            "kernel-level",
            "pattern-driven",
            "kernel spdup",
            "pattern spdup",
        ],
        &rows,
    );
    println!("paper: kernel-level 4.59-6.05x, pattern-driven 5.63-8.35x (growing with size)");

    // Grounding: one measured serial step on this host.
    let mesh = Arc::new(mpas_mesh::generate(opts.level, 0));
    let mut m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case5, None);
    let t = time_per_call(|| m.step(), 3);
    println!(
        "measured serial step on this host at level {} ({} cells): {}",
        opts.level,
        mesh.n_cells(),
        fmt_secs(t)
    );

    // Load-balance detail the paper attributes the gain to.
    let g = DataflowGraph::for_substep(RkPhase::Intermediate);
    let mc = MeshCounts::icosahedral(655_362);
    let sk = schedule_substep(&g, &mc, &p, Policy::KernelLevel);
    let sp = schedule_substep(&g, &mc, &p, Policy::PatternDriven);
    println!(
        "device imbalance (busy-time gap / max): kernel-level {:.0}%, pattern-driven {:.0}%",
        sk.imbalance() * 100.0,
        sp.imbalance() * 100.0
    );
}

/// Fig. 7x (extension): every policy in the `mpas-sched` registry across
/// the Table III meshes — modeled time/step with speedup vs the serial
/// reference, plus the intermediate-substep device imbalance at 30 km.
fn fig7x() {
    let p = Platform::paper_node();
    let meshes = [40_962usize, 163_842, 655_362, 2_621_442];
    let serial: Vec<f64> = meshes
        .iter()
        .map(|&cells| time_per_step(&MeshCounts::icosahedral(cells), &p, Policy::Serial))
        .collect();
    let g = DataflowGraph::for_substep(RkPhase::Intermediate);
    let mut rows = Vec::new();
    for spec in mpas_sched::registered_names() {
        let policy = mpas_sched::resolve(spec).expect("registered policy");
        let mut row = vec![policy.name()];
        for (k, &cells) in meshes.iter().enumerate() {
            let t = time_per_step(&MeshCounts::icosahedral(cells), &p, &policy);
            row.push(format!("{t:.3} ({:.2}x)", serial[k] / t));
        }
        let s = schedule_substep(&g, &MeshCounts::icosahedral(655_362), &p, &policy);
        row.push(format!("{:.0}%", s.imbalance() * 100.0));
        rows.push(row);
    }
    print_table(
        "Fig. 7x — time/step (s, modeled) and speedup vs serial, all registered policies",
        &[
            "policy",
            "40,962",
            "163,842",
            "655,362",
            "2,621,442",
            "imb@30km",
        ],
        &rows,
    );
    println!(
        "policy-name grammar: name[key=val,...] — see `mpas_sched::resolve`; \
         list schedulers (heft, cpop, lookahead, dynamic-list) price work on \
         the same Table-II roofline as the paper's policies"
    );
}

/// Fig. 8: strong scaling on the 30-km and 15-km meshes.
fn fig8() {
    let p = Platform::paper_node();
    let comm = CommCostModel::fdr_infiniband();
    for &(label, cells) in &[
        ("30-km (655,362 cells)", 655_362usize),
        ("15-km (2,621,442 cells)", 2_621_442),
    ] {
        let mut rows = Vec::new();
        for &ranks in &[1usize, 2, 4, 8, 16, 32, 64] {
            let t_cpu = time_per_step_multirank(cells, ranks, &p, Policy::Serial, &comm);
            let t_pat = time_per_step_multirank(cells, ranks, &p, Policy::PatternDriven, &comm);
            let t1_cpu = time_per_step_multirank(cells, 1, &p, Policy::Serial, &comm);
            let t1_pat = time_per_step_multirank(cells, 1, &p, Policy::PatternDriven, &comm);
            rows.push(vec![
                ranks.to_string(),
                format!("{t_cpu:.4}"),
                format!("{t_pat:.4}"),
                format!("{:.0}%", t1_cpu / (t_cpu * ranks as f64) * 100.0),
                format!("{:.0}%", t1_pat / (t_pat * ranks as f64) * 100.0),
            ]);
        }
        print_table(
            &format!("Fig. 8 — strong scaling, {label} (time/step s, modeled)"),
            &[
                "P",
                "CPU version",
                "pattern-driven",
                "CPU eff.",
                "hybrid eff.",
            ],
            &rows,
        );
    }
}

/// §II.C's profiling step: the modeled per-kernel and per-pattern cost
/// breakdown that motivates the hybrid assignment.
fn profile() {
    use mpas_patterns::profile::{kernel_profile, pattern_profile};
    let mc = MeshCounts::icosahedral(655_362);
    let ks = kernel_profile(RkPhase::Intermediate, &mc);
    print_table(
        "Profile — per-kernel work (intermediate substep, 655,362 cells)",
        &["kernel", "#patterns", "MB moved", "share"],
        &ks.iter()
            .map(|k| {
                vec![
                    format!("{:?}", k.kernel),
                    k.n_patterns.to_string(),
                    format!("{:.1}", k.bytes / 1e6),
                    format!("{:.1}%", k.share * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let ps = pattern_profile(RkPhase::Intermediate, &mc);
    print_table(
        "Profile — heaviest pattern instances",
        &["pattern", "kernel", "MB moved", "share"],
        &ps.iter()
            .take(8)
            .map(|p| {
                vec![
                    p.name.to_string(),
                    format!("{:?}", p.kernel),
                    format!("{:.1}", p.bytes / 1e6),
                    format!("{:.1}%", p.share * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Partitioner comparison: RCB vs space-filling-curve vs cyclic edge cuts
/// (the domain-decomposition quality behind Figs. 8-9's communication
/// volume).
fn partitioners(opts: &Opts) {
    use mpas_mesh::partition::rcb_partition;
    use mpas_mesh::sfc_partition;
    let mesh = mpas_mesh::generate(opts.level, 0);
    let cut = |owner: &[u32]| -> usize {
        mesh.cells_on_edge
            .iter()
            .filter(|&&[a, b]| owner[a as usize] != owner[b as usize])
            .count()
    };
    let mut rows = Vec::new();
    for &parts in &[4usize, 8, 16, 32] {
        let rcb = cut(&rcb_partition(&mesh, parts));
        let sfc = cut(&sfc_partition(&mesh, parts));
        let cyclic = cut(&(0..mesh.n_cells() as u32)
            .map(|c| c % parts as u32)
            .collect::<Vec<_>>());
        rows.push(vec![
            parts.to_string(),
            rcb.to_string(),
            sfc.to_string(),
            cyclic.to_string(),
            format!("{:.1}%", rcb as f64 / mesh.n_edges() as f64 * 100.0),
        ]);
    }
    print_table(
        &format!(
            "Partitioners — edge cut on the level-{} mesh ({} cells, {} edges)",
            opts.level,
            mesh.n_cells(),
            mesh.n_edges()
        ),
        &["parts", "RCB", "SFC (Morton)", "cyclic", "RCB cut frac"],
        &rows,
    );
}

/// Williamson TC2 spatial-convergence study (model validation beyond the
/// paper's Fig. 5 check).
fn convergence() {
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for level in 3..=5u32 {
        let mesh = Arc::new(mpas_mesh::generate(level, 0));
        let mut m = ShallowWaterModel::new(
            mesh.clone(),
            ModelConfig::default(),
            TestCase::Case2 { alpha: 0.0 },
            None,
        );
        let steps = (6.0 * 3600.0 / m.dt).ceil() as usize;
        m.run_steps(steps);
        let n = m.h_error_norms();
        let rate = prev.map(|p: f64| (p / n.l2).log2());
        rows.push(vec![
            level.to_string(),
            mesh.n_cells().to_string(),
            format!("{:.3e}", n.l1),
            format!("{:.3e}", n.l2),
            format!("{:.3e}", n.linf),
            rate.map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
        prev = Some(n.l2);
    }
    print_table(
        "Convergence — Williamson TC2 thickness error after 6 h",
        &["level", "cells", "l1", "l2", "linf", "l2 rate"],
        &rows,
    );
}

/// Fig. 4 extension: measured-vs-modeled per-pattern report. Runs the real
/// threaded executor under a telemetry recorder, fits per-pattern measured
/// times from the collected `hybrid.kernel.*` histograms, and prints them
/// against the roofline predictions; also writes a combined Chrome trace
/// with the modeled schedule (track group 1) and the measured spans (track
/// group 2) side by side.
fn fig4x(opts: &Opts) {
    use mpas_core::{Executor, Simulation};
    use mpas_telemetry::Recorder;

    let rec = Recorder::new();
    let mesh = Arc::new(mpas_mesh::generate(opts.level, 0));
    let mut sim = Simulation::builder()
        .mesh(mesh.clone())
        .test_case(TestCase::Case5)
        .config(ModelConfig {
            high_order_h_edge: true,
            ..ModelConfig::default()
        })
        .executor(Executor::Threaded { threads: 2 })
        .recorder(rec.clone())
        .build();
    sim.run_steps(2);

    let mc = MeshCounts {
        n_cells: mesh.n_cells() as f64,
        n_edges: mesh.n_edges() as f64,
        n_vertices: mesh.n_vertices() as f64,
    };
    let report = mpas_hybrid::calibration_from_metrics(&rec.snapshot(), &mc);
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                fmt_secs(e.measured),
                fmt_secs(e.predicted),
                format!("{:.2}", e.coeff()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 4x — measured (p50 of telemetry histograms) vs roofline, level {} ({} cells)",
            opts.level,
            mesh.n_cells()
        ),
        &["pattern", "measured", "modeled", "ratio"],
        &rows,
    );

    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let schedule = sim.modeled_schedule(&Platform::paper_node());
    let json = mpas_hybrid::to_combined_trace(&schedule, &rec);
    let path = out_dir.join("fig4x_combined.json");
    std::fs::write(&path, &json).expect("write combined trace");
    println!(
        "wrote {} ({} measured spans + {}-node modeled schedule)",
        path.display(),
        rec.spans().len(),
        schedule.nodes.len()
    );
}

/// Export per-policy schedule timelines as Chrome-trace JSON (load into
/// about://tracing or ui.perfetto.dev): the Fig. 4 load-balance argument
/// as an inspectable artifact.
fn trace() {
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let g = DataflowGraph::for_substep(RkPhase::Intermediate);
    let mc = MeshCounts::icosahedral(655_362);
    let p = Platform::paper_node();
    for (policy, name) in [
        (Policy::Serial, "trace_serial.json"),
        (Policy::KernelLevel, "trace_kernel_level.json"),
        (Policy::PatternDriven, "trace_pattern_driven.json"),
    ] {
        let s = schedule_substep(&g, &mc, &p, policy);
        std::fs::write(out_dir.join(name), mpas_hybrid::to_chrome_trace(&s)).unwrap();
        println!(
            "{name}: makespan {:.2} ms, imbalance {:.0}%",
            s.makespan * 1e3,
            s.imbalance() * 100.0
        );
    }
    println!("wrote target/figures/trace_*.json");
}

/// Ablations beyond the paper: sensitivity of the pattern-driven design to
/// the split threshold, device ratio, link bandwidth, and loop fusion.
fn ablations() {
    use mpas_hybrid::ablation::*;
    let mc = MeshCounts::icosahedral(655_362);
    let p = Platform::paper_node();

    let pts = sweep_split_threshold(&mc, &p, &[0.01, 0.02, 0.05, 0.08, 0.15, 0.3, 1.1]);
    print_table(
        "Ablation — adjustability (split) threshold, 655,362 cells",
        &["threshold", "pattern ms", "kernel ms", "advantage"],
        &pts.iter()
            .map(|s| {
                vec![
                    format!("{:.2}", s.x),
                    format!("{:.2}", s.pattern_makespan * 1e3),
                    format!("{:.2}", s.kernel_makespan * 1e3),
                    format!(
                        "{:.0}%",
                        (s.kernel_makespan / s.pattern_makespan - 1.0) * 100.0
                    ),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let pts = sweep_device_ratio(&mc, &p, &[0.25, 0.5, 1.0, 1.4, 2.0, 4.0, 8.0]);
    print_table(
        "Ablation — accelerator:host throughput ratio (fixed node total)",
        &["acc/cpu", "pattern ms", "kernel ms", "advantage"],
        &pts.iter()
            .map(|s| {
                vec![
                    format!("{:.2}", s.x),
                    format!("{:.2}", s.pattern_makespan * 1e3),
                    format!("{:.2}", s.kernel_makespan * 1e3),
                    format!(
                        "{:.0}%",
                        (s.kernel_makespan / s.pattern_makespan - 1.0) * 100.0
                    ),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let pts = sweep_link_bandwidth(&mc, &p, &[0.5e9, 2e9, 6e9, 24e9]);
    print_table(
        "Ablation — PCIe link bandwidth",
        &["GB/s", "pattern ms", "kernel ms"],
        &pts.iter()
            .map(|s| {
                vec![
                    format!("{:.1}", s.x / 1e9),
                    format!("{:.2}", s.pattern_makespan * 1e3),
                    format!("{:.2}", s.kernel_makespan * 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let small = MeshCounts::icosahedral(40_962);
    let (unfused, fused, saved) = fused_local_single_device(&small, &p.acc);
    println!(
        "\nAblation — loop fusion of point-local patterns (40,962 cells, device-only):\n  {saved} regions fused, substep {:.3} ms -> {:.3} ms",
        unfused * 1e3,
        fused * 1e3
    );
}

/// Fig. 9: weak scaling at 40,962 cells per process.
fn fig9() {
    let p = Platform::paper_node();
    let comm = CommCostModel::fdr_infiniband();
    let mut rows = Vec::new();
    for &ranks in &[1usize, 4, 16, 64] {
        let cells = 40_962 * ranks;
        let t_cpu = time_per_step_multirank(cells, ranks, &p, Policy::Serial, &comm);
        let t_pat = time_per_step_multirank(cells, ranks, &p, Policy::PatternDriven, &comm);
        rows.push(vec![
            ranks.to_string(),
            format!("{t_cpu:.4}"),
            format!("{t_pat:.4}"),
        ]);
    }
    print_table(
        "Fig. 9 — weak scaling, 40,962 cells/process (time/step s, modeled)",
        &["P", "CPU version", "pattern-driven"],
        &rows,
    );
    println!("paper: CPU ~0.271-0.274 s flat; pattern-driven ~0.045-0.047 s flat");
}

/// `fig_layout` — the PR-4 locality ladder: full RK-4 step time by cell
/// ordering (natural, Morton SFC, BFS/Cuthill–McKee), mesh level and
/// executor. Each row times the seed per-slot kernels and the
/// precomputed-coefficient fast path ([`mpas_swe::KernelCoeffs`] +
/// `kernels::fused`); the speedup column is fused-on-this-ordering over
/// seed-on-the-natural-ordering for the same executor — the Fig. 6-style
/// ladder for data layout rather than kernel form.
fn fig_layout(opts: &Opts) {
    use mpas_hybrid::ParallelModel;
    use mpas_mesh::Reordering;

    let tc = TestCase::Case5;
    let seed_cfg = ModelConfig {
        kernel_backend: KernelBackend::Scalar,
        ..ModelConfig::default()
    };
    let fused_cfg = ModelConfig::default();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let levels = [opts.level.saturating_sub(1).max(3), opts.level];
    let mut rows = Vec::new();
    for &level in &levels {
        let base = Arc::new(mpas_mesh::generate(level, 0));
        let iters = if level >= 6 { 2 } else { 6 };
        // Per-executor baseline: seed kernels on the natural ordering.
        let mut base_ms = [f64::NAN; 2];
        for ord in [Reordering::None, Reordering::Sfc, Reordering::Bfs] {
            let mesh = if ord == Reordering::None {
                base.clone()
            } else {
                Arc::new(base.reordered(&ord.permutation(&base)))
            };
            for (xi, serial) in [(0usize, true), (1, false)] {
                let step_ms = |cfg: ModelConfig| -> f64 {
                    if serial {
                        let mut m = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
                        time_per_call(|| m.step(), iters) * 1e3
                    } else {
                        let mut m = ParallelModel::new(mesh.clone(), cfg, tc, None, threads);
                        time_per_call(|| m.step(), iters) * 1e3
                    }
                };
                let seed_ms = step_ms(seed_cfg);
                let fused_ms = step_ms(fused_cfg);
                if ord == Reordering::None {
                    base_ms[xi] = seed_ms;
                }
                rows.push(vec![
                    level.to_string(),
                    mesh.n_cells().to_string(),
                    ord.name().to_string(),
                    if serial {
                        "serial".to_string()
                    } else {
                        format!("threaded:{threads}")
                    },
                    format!("{seed_ms:.2}"),
                    format!("{fused_ms:.2}"),
                    format!("{:.2}x", base_ms[xi] / fused_ms),
                ]);
            }
        }
    }
    print_table(
        "fig_layout — RK-4 step: ordering x level x executor (speedup vs seed kernels, natural order)",
        &["level", "cells", "ordering", "executor", "seed ms/step", "fused ms/step", "speedup"],
        &rows,
    );
}

/// `fig_simd` — the PR-9 kernel-tier ladder: RK-4 step time by backend ×
/// vertical layers × mesh level, on the SFC ordering the cache-blocked
/// sweeps tile. Flat (`k = 1`) rows compare all three tiers directly;
/// layered rows (`k = 4, 7`) time the vertically batched simd model and
/// report the speedup over running the fused single-layer model once per
/// layer — the `kernel.simd_speedup_serial` quantity the perf gate
/// watches (DESIGN.md §14).
fn fig_simd(opts: &Opts) {
    use mpas_mesh::Reordering;
    use mpas_swe::layers::LayeredModel;

    let tc = TestCase::Case5;
    let levels = [opts.level.saturating_sub(1).max(3), opts.level];
    let mut rows = Vec::new();
    for &level in &levels {
        let base = Arc::new(mpas_mesh::generate(level, 0));
        let mesh = Arc::new(base.reordered(&Reordering::Sfc.permutation(&base)));
        let iters = if level >= 6 { 2 } else { 5 };
        let cfg = |backend: KernelBackend, k: usize| ModelConfig {
            kernel_backend: backend,
            n_layers: k,
            ..ModelConfig::default()
        };
        let mut fused_ms = f64::NAN;
        for backend in KernelBackend::ALL {
            let mut m = ShallowWaterModel::new(mesh.clone(), cfg(backend, 1), tc, None);
            let ms = time_per_call(|| m.step(), iters) * 1e3;
            if backend == KernelBackend::Fused {
                fused_ms = ms;
            }
            rows.push(vec![
                level.to_string(),
                mesh.n_cells().to_string(),
                backend.name().to_string(),
                "1".to_string(),
                format!("{ms:.2}"),
                format!("{ms:.2}"),
                String::new(),
            ]);
        }
        for k in [4usize, 7] {
            let mut m = LayeredModel::new(mesh.clone(), cfg(KernelBackend::Simd, k), tc, None);
            let ms = time_per_call(|| m.step(), iters) * 1e3;
            rows.push(vec![
                level.to_string(),
                mesh.n_cells().to_string(),
                "simd".to_string(),
                k.to_string(),
                format!("{ms:.2}"),
                format!("{:.2}", ms / k as f64),
                format!("{:.2}x", fused_ms * k as f64 / ms),
            ]);
        }
    }
    print_table(
        "fig_simd — RK-4 step: backend x layers x level on the SFC ordering (speedup vs k fused single-layer runs)",
        &["level", "cells", "backend", "k", "ms/step", "ms/step/layer", "speedup"],
        &rows,
    );
}

/// `fig_blame` — the PR-5 trace-analysis figure: distributed runs at
/// 2/4/8 ranks, decomposed by the blame analyzer into compute / wait /
/// copy fractions (mean over ranks; waits also max), with the trace
/// imbalance and the extracted critical path's length and wait share.
fn fig_blame(opts: &Opts) {
    use mpas_core::{run_distributed_recorded, DistributedConfig};
    use mpas_telemetry::analysis::Trace;
    use mpas_telemetry::Recorder;

    let tc = TestCase::Case5;
    let levels = [opts.level.saturating_sub(1).max(3), opts.level];
    let mut rows = Vec::new();
    for &level in &levels {
        let mesh = mpas_mesh::generate(level, 0);
        let dt = ModelConfig::suggested_dt(&mesh);
        let n_steps = if level >= 6 { 2 } else { 4 };
        for ranks in [2usize, 4, 8] {
            let rec = Recorder::new();
            run_distributed_recorded(
                &mesh,
                DistributedConfig {
                    n_ranks: ranks,
                    halo_layers: 3,
                    model: ModelConfig::default(),
                    test_case: tc,
                    dt,
                    n_steps,
                },
                &rec,
            );
            let t = Trace::from_recorder(&rec);
            let blame = t.blame();
            let cp = t.critical_path();
            let n = blame.ranks.len().max(1) as f64;
            let mean = |f: &dyn Fn(&mpas_telemetry::analysis::RankBlame) -> f64| -> f64 {
                blame.ranks.iter().map(f).sum::<f64>() / n
            };
            rows.push(vec![
                level.to_string(),
                mesh.n_cells().to_string(),
                ranks.to_string(),
                format!("{:.1}", 100.0 * mean(&|r| r.compute_frac())),
                format!("{:.1}", 100.0 * mean(&|r| r.wait_frac())),
                format!("{:.1}", 100.0 * blame.max_wait_frac()),
                format!("{:.1}", 100.0 * mean(&|r| r.copy_frac())),
                format!("{:.3}", blame.imbalance),
                format!("{:.2}", 1e3 * blame.makespan_s / n_steps as f64),
                format!("{:.2}", 1e3 * cp.path_s() / n_steps as f64),
                format!(
                    "{:.1}",
                    100.0 * cp.wait_s / cp.path_s().max(f64::MIN_POSITIVE)
                ),
            ]);
        }
    }
    print_table(
        "fig_blame — distributed blame decomposition x ranks x level (per-step ms; critical path from the measured trace)",
        &[
            "level",
            "cells",
            "ranks",
            "compute%",
            "wait%",
            "max wait%",
            "copy%",
            "imbalance",
            "step ms",
            "cp ms",
            "cp wait%",
        ],
        &rows,
    );
}
