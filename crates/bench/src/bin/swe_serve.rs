//! `swe-serve` — run the `mpas-server` job service as a process.
//!
//! ```text
//! swe-serve --addr 127.0.0.1:0 --workers 4 --queue-cap 64 \
//!           --metrics target/serve_metrics.json
//! ```
//!
//! Prints `swe-serve listening on HOST:PORT` once the socket is bound (the
//! load generator and CI parse that line), then serves until a tenant
//! POSTs `/shutdown`, at which point it drains the worker pool — every
//! accepted job completes — writes the telemetry snapshot, and exits 0.

use mpas_server::{Server, ServerConfig};
use mpas_telemetry::Recorder;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    queue_cap: usize,
    metrics: Option<PathBuf>,
    history_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 64,
        metrics: None,
        history_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value for {a}"));
        match a.as_str() {
            "--addr" => args.addr = val(),
            "--workers" => args.workers = val().parse().expect("workers"),
            "--queue-cap" => args.queue_cap = val().parse().expect("queue-cap"),
            "--metrics" => args.metrics = Some(PathBuf::from(val())),
            "--history-dir" => args.history_dir = Some(PathBuf::from(val())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: swe-serve [--addr HOST:PORT] [--workers N] \
                     [--queue-cap N] [--metrics FILE.json] [--history-dir DIR]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let rec = Recorder::new();
    let mut server = Server::start(
        ServerConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            queue_capacity: args.queue_cap,
            history_dir: args.history_dir.clone(),
        },
        rec.clone(),
    )
    .unwrap_or_else(|e| panic!("bind {}: {e}", args.addr));
    println!("swe-serve listening on {}", server.addr());
    println!(
        "workers {}, queue capacity {} (POST /shutdown to drain)",
        args.workers, args.queue_cap
    );
    std::io::stdout().flush().expect("flush");

    while !server.draining() {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("drain requested; finishing accepted jobs...");
    server.shutdown();

    let snap = rec.snapshot();
    println!(
        "drained: {} submitted, {} completed, {} rejected",
        snap.counter("server.jobs.submitted").unwrap_or(0),
        snap.counter("server.jobs.completed").unwrap_or(0),
        snap.counter("server.jobs.rejected").unwrap_or(0),
    );
    if let Some(path) = &args.metrics {
        let json = snap.to_json();
        mpas_telemetry::export::validate_json(&json)
            .unwrap_or_else(|at| panic!("metrics snapshot is not valid JSON at byte {at}"));
        std::fs::write(path, &json).expect("write metrics");
        println!("wrote metrics snapshot to {}", path.display());
    }
}
