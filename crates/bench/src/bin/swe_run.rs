//! `swe-run` — the downstream-user CLI: run any Williamson case on any
//! mesh with any executor, with periodic diagnostics and optional PPM
//! frame dumps of the total height field.
//!
//! ```text
//! swe-run --case 5 --level 5 --days 2 --executor threaded:4 \
//!         --frames 4 --out target/frames
//! ```
//!
//! With `--trace trace.json` the run is recorded and a combined
//! Chrome-trace is written: track group "modeled" holds the scheduler's
//! predicted substep timeline, "measured" the recorded execution. With
//! `--metrics metrics.json` a metrics snapshot (per-kernel timing
//! histograms, halo byte counters, per-step norms) is written as JSON
//! (`.csv` extension switches to CSV).
//!
//! ## Trace analysis and regression gating
//!
//! `--ranks N` (N ≥ 2) runs the distributed engine instead of the
//! single-address-space executors: N communicating ranks, rank-tagged
//! step/wait/copy/barrier spans and send/recv edge events. `--report`
//! then prints the per-rank blame table, the extracted critical path, and
//! the measured-vs-modeled schedule diff; `--report-json FILE` writes the
//! same as JSON.
//!
//! `--gate-write FILE` fits a statistical baseline (median/MAD per
//! watched metric) from this run; `--gate FILE` compares the run against
//! a committed baseline and exits 1 on a `fail`-severity violation
//! (`--gate-strict` also fails on warnings). Invariant monitors (mass
//! drift, h-error bound) always run when telemetry is on; a tripped
//! monitor records a structured `alert` event and exits 3.
//! `--inject-mass-drift X` deliberately offsets the drift gauge so the
//! alarm chain can be tested end to end; `--inject-courant X` does the
//! same for the CFL monitor. `--gate-filter PREFIX[,...]` restricts the
//! committed baseline to metrics starting with a listed prefix, so one
//! baseline file serves CI jobs that exercise different pipeline slices.
//!
//! ## Kernel tiers and vertical layers
//!
//! `--backend scalar|fused|simd` picks the kernel tier (DESIGN.md §14);
//! `--fused on|off` remains as an alias for the two pre-simd tiers.
//! `--layers K` (K > 1, simd + serial only) runs the vertically batched
//! K-layer model; the same invocation also times the fused serial
//! single-layer reference and records the `kernel.simd_speedup_serial`
//! gauge — (fused per-step × K) / (simd K-layer per-step) — which the
//! perf gate fails below 2.0×.
//!
//! ## Scenario catalog and validation
//!
//! `--case` accepts any catalog label (`1`..`6`, `williamson-N`,
//! `galewsky`, `tracer-case5`); catalog switches (advection-only for
//! case 1, tracer count for the tracer scenario) ride on the label.
//! `--validate` runs the scenario at its committed `(level, days)`
//! horizon, judges the measured error norms (and tracer-mass drift)
//! against the reference bands in `mpas_swe::validation::SPECS`, records
//! `validate.<case>.l2`/`.linf` gauges for the regression gate, and exits
//! 2 on a violation. `--adaptive` switches the serial path to
//! CFL-monitored adaptive time stepping.

use mpas_bench::render::{sample_lonlat, write_ppm};
use mpas_core::{DistributedConfig, Simulation};
use mpas_mesh::Reordering;
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use mpas_swe::{ErrorNorms, KernelBackend, ModelConfig, ShallowWaterModel, TestCase};
use mpas_telemetry::analysis::{
    check_invariants, default_invariants, diff_schedule, record_blame, CriticalPath, ModeledTask,
    Trace,
};
use mpas_telemetry::gate::{median_mad, Baseline, BaselineEntry, Direction, Severity};
use mpas_telemetry::store::{HistoryStore, Retention, RunManifest};
use mpas_telemetry::Recorder;
use std::path::PathBuf;

struct Args {
    case: String,
    alpha: f64,
    level: u32,
    lloyd: u32,
    days: f64,
    executor: String,
    policy: String,
    reorder: Reordering,
    backend: KernelBackend,
    layers: usize,
    ranks: usize,
    frames: usize,
    out: PathBuf,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    flight_dump: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    report: bool,
    report_json: Option<PathBuf>,
    gate: Option<PathBuf>,
    gate_write: Option<PathBuf>,
    history_dir: Option<PathBuf>,
    gate_strict: bool,
    gate_filter: Vec<String>,
    inject_mass_drift: f64,
    inject_courant: f64,
    validate: bool,
    adaptive: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        case: "5".into(),
        alpha: 0.0,
        level: 4,
        lloyd: 0,
        days: 1.0,
        executor: "serial".into(),
        policy: "pattern-driven".into(),
        reorder: Reordering::None,
        backend: KernelBackend::Fused,
        layers: 1,
        ranks: 0,
        frames: 0,
        out: PathBuf::from("target/frames"),
        trace: None,
        metrics: None,
        flight_dump: None,
        bench_json: None,
        report: false,
        report_json: None,
        gate: None,
        gate_write: None,
        history_dir: None,
        gate_strict: false,
        gate_filter: Vec::new(),
        inject_mass_drift: 0.0,
        inject_courant: 0.0,
        validate: false,
        adaptive: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value for {a}"));
        match a.as_str() {
            "--case" => args.case = val(),
            "--alpha" => args.alpha = val().parse().expect("alpha"),
            "--level" => args.level = val().parse().expect("level"),
            "--lloyd" => args.lloyd = val().parse().expect("lloyd"),
            "--days" => args.days = val().parse().expect("days"),
            "--executor" => args.executor = val(),
            "--policy" => args.policy = val(),
            "--reorder" => {
                let v = val();
                args.reorder = Reordering::parse(&v)
                    .unwrap_or_else(|| panic!("unknown reorder {v} (none, sfc or bfs)"));
            }
            "--backend" => {
                let v = val();
                args.backend = KernelBackend::parse(&v)
                    .unwrap_or_else(|| panic!("unknown backend {v} (scalar, fused or simd)"));
            }
            "--layers" => args.layers = val().parse().expect("layers"),
            // Back-compat alias for the pre-simd tier switch.
            "--fused" => {
                let v = val();
                args.backend = match v.as_str() {
                    "on" => KernelBackend::Fused,
                    "off" => KernelBackend::Scalar,
                    other => panic!("unknown fused {other} (on or off)"),
                };
            }
            "--ranks" => args.ranks = val().parse().expect("ranks"),
            "--frames" => args.frames = val().parse().expect("frames"),
            "--out" => args.out = PathBuf::from(val()),
            "--trace" => args.trace = Some(PathBuf::from(val())),
            "--metrics" => args.metrics = Some(PathBuf::from(val())),
            "--flight-dump" => args.flight_dump = Some(PathBuf::from(val())),
            "--bench-json" => args.bench_json = Some(PathBuf::from(val())),
            "--report" => args.report = true,
            "--report-json" => args.report_json = Some(PathBuf::from(val())),
            "--gate" => args.gate = Some(PathBuf::from(val())),
            "--gate-write" => args.gate_write = Some(PathBuf::from(val())),
            "--history-dir" => args.history_dir = Some(PathBuf::from(val())),
            "--gate-strict" => args.gate_strict = true,
            "--gate-filter" => {
                args.gate_filter
                    .extend(val().split(',').map(str::to_string));
            }
            "--inject-mass-drift" => {
                args.inject_mass_drift = val().parse().expect("inject-mass-drift")
            }
            "--inject-courant" => args.inject_courant = val().parse().expect("inject-courant"),
            "--validate" => args.validate = true,
            "--adaptive" => args.adaptive = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: swe-run [--case 1..6|williamson-N|galewsky|tracer-case5] \
                     [--alpha RAD] [--level N] \
                     [--lloyd N] [--days X] [--executor serial|threaded:N|hybrid:N:M] \
                     [--policy NAME] [--reorder none|sfc|bfs] \
                     [--backend scalar|fused|simd] [--layers K] [--fused on|off] \
                     [--validate] [--adaptive] \
                     [--ranks N] [--frames K] [--out DIR] \
                     [--trace FILE.json] [--metrics FILE.json|FILE.csv] \
                     [--flight-dump FILE.json] [--bench-json FILE.json] \
                     [--report] [--report-json FILE.json] \
                     [--gate BASELINE.json] [--gate-write BASELINE.json] \
                     [--gate-strict] [--gate-filter PREFIX[,...]] \
                     [--history-dir DIR] \
                     [--inject-mass-drift X] [--inject-courant X]\n\
                     cases: {}\n\
                     policies: {}",
                    mpas_swe::validation::catalog_names().join(", "),
                    mpas_sched::registered_names().join(", ")
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// What either execution path hands back to the shared analysis tail.
struct RunStats {
    n_cells: usize,
    total_steps: usize,
    run_secs: f64,
    mass_drift: f64,
    /// Thickness error norms vs the case's reference at the final time.
    norms: ErrorNorms,
    /// Largest relative tracer-mass drift across tracers (`None` when the
    /// scenario carries no tracers).
    tracer_drift: Option<f64>,
    /// Modeled seconds per RK-4 step for the unit the run executed
    /// (calibrated per-rank serial model in distributed mode, the
    /// configured policy's roofline otherwise). 0 when not computed.
    modeled_step_s: f64,
    /// Modeled intermediate-substep tasks, for the per-kernel slack diff.
    modeled_tasks: Vec<ModeledTask>,
}

/// Single-address-space path: the `Simulation` facade with the configured
/// executor, frames, and modeled-trace support.
fn run_single(args: &Args, tc: TestCase, rec: &Recorder) -> RunStats {
    let mut config = ModelConfig {
        kernel_backend: args.backend,
        n_layers: args.layers,
        ..Default::default()
    };
    mpas_core::apply_case_config(&args.case, &mut config);
    let mut sim = Simulation::builder()
        .mesh_level(args.level)
        .lloyd_iters(args.lloyd)
        .test_case(tc)
        .executor(mpas_core::parse_executor(&args.executor).unwrap_or_else(|e| panic!("{e}")))
        .config(config)
        .reorder(args.reorder)
        .sched_policy(&args.policy)
        .recorder(rec.clone())
        .build();

    let total_steps = ((args.days * 86_400.0) / sim.dt()).ceil().max(1.0) as usize;
    println!(
        "{}: {} cells, dt {:.0} s, {} steps, executor {}, reorder {}, backend {}, layers {}",
        tc.name(),
        sim.mesh.n_cells(),
        sim.dt(),
        total_steps,
        args.executor,
        args.reorder.name(),
        args.backend.name(),
        args.layers
    );
    let platform = mpas_hybrid::Platform::paper_node();
    let modeled_step_s = sim.modeled_time_per_step(&platform);
    println!(
        "policy {}: modeled {:.1} ms/step on the Table-II node",
        sim.sched_policy().name(),
        modeled_step_s * 1e3
    );
    let schedule = sim.modeled_schedule(&platform);
    let modeled_tasks = schedule_tasks(&schedule);

    if args.frames > 0 {
        std::fs::create_dir_all(&args.out).expect("create output dir");
    }
    let chunk = (total_steps / args.frames.max(1)).max(1);
    let (w, h) = (480, 240);
    let mut done = 0usize;
    let mut frame = 0usize;
    let mut run_secs = 0.0f64;
    let t0 = std::time::Instant::now();
    while done < total_steps {
        let n = chunk.min(total_steps - done);
        let ts = std::time::Instant::now();
        sim.run_steps(n);
        run_secs += ts.elapsed().as_secs_f64();
        done += n;
        let norms = sim.h_error_norms();
        println!(
            "step {done}/{total_steps}: mass drift {:+.1e}, h error l2 {:.3e}",
            sim.mass_drift(),
            norms.l2
        );
        if args.frames > 0 {
            let th = sim.total_height();
            let img = sample_lonlat(&sim.mesh, &th, w, h);
            let min = th.iter().cloned().fold(f64::MAX, f64::min);
            let max = th.iter().cloned().fold(f64::MIN, f64::max);
            let path = args.out.join(format!("frame_{frame:04}.ppm"));
            write_ppm(&path, &img, w, h, min, max).expect("write frame");
            frame += 1;
        }
    }
    println!(
        "finished {:.2?} ({:.1} ms/step); mass drift {:+.2e}",
        t0.elapsed(),
        t0.elapsed().as_secs_f64() * 1e3 / total_steps as f64,
        sim.mass_drift()
    );
    if let Some(d) = sim.tracer_mass_drift() {
        println!("tracer mass drift {:+.2e}", d);
    }
    if args.frames > 0 {
        println!("wrote {frame} frames to {}", args.out.display());
    }

    // Layered simd runs also time the PR-4 fused serial single-layer model
    // in the same invocation, so the perf-gate metric compares like
    // against like on this exact machine and mesh: speedup =
    // (fused per-step × k) / (simd k-layer per-step), i.e. how much faster
    // the batched tier advances k layers than k fused runs. The two models
    // are timed in *interleaved* A/B batches and reduced with per-batch
    // medians, so slow machine drift (thermal, noisy neighbours) hits both
    // sides of the ratio and one-off stalls fall out of the median.
    if args.backend == KernelBackend::Simd && args.layers > 1 {
        let fused_cfg = ModelConfig {
            kernel_backend: KernelBackend::Fused,
            n_layers: 1,
            ..config
        };
        let mut reference = ShallowWaterModel::new(sim.mesh.clone(), fused_cfg, tc, None);
        let mut layered = mpas_swe::layers::LayeredModel::new(sim.mesh.clone(), config, tc, None);
        reference.run_steps(1); // warm both instruction/data paths
        layered.run_steps(1);
        let batch = total_steps.clamp(1, 4);
        const REPS: usize = 5;
        let mut fused_s = Vec::with_capacity(REPS);
        let mut simd_s = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = std::time::Instant::now();
            reference.run_steps(batch);
            fused_s.push(t.elapsed().as_secs_f64() / batch as f64);
            let t = std::time::Instant::now();
            layered.run_steps(batch);
            simd_s.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        let (fused_step_s, _) = median_mad(&fused_s);
        let (simd_step_s, _) = median_mad(&simd_s);
        let speedup = fused_step_s * args.layers as f64 / simd_step_s;
        rec.set_gauge("kernel.simd_speedup_serial", speedup);
        println!(
            "simd speedup vs fused serial: {:.2}x ({} layers: fused {:.2} ms/step/layer, \
             simd {:.2} ms/step for all layers; medians of {REPS} interleaved batches)",
            speedup,
            args.layers,
            fused_step_s * 1e3,
            simd_step_s * 1e3
        );
    }

    if rec.is_enabled() {
        // One real halo-exchange round on a 4-way partition so the metrics
        // carry measured halo byte counters next to the analytic estimate.
        mpas_core::halo_probe(&sim.mesh, 4, rec);
    }
    if let Some(path) = &args.trace {
        let json = mpas_hybrid::to_combined_trace(&schedule, rec);
        std::fs::write(path, &json).expect("write trace");
        println!(
            "wrote combined modeled+measured trace ({} spans) to {}",
            rec.spans().len(),
            path.display()
        );
    }
    RunStats {
        n_cells: sim.mesh.n_cells(),
        total_steps,
        run_secs,
        mass_drift: sim.mass_drift(),
        norms: sim.h_error_norms(),
        tracer_drift: sim.tracer_mass_drift(),
        modeled_step_s,
        modeled_tasks,
    }
}

/// Adaptive-dt path: the serial reference model with CFL-monitored step
/// retuning. The run is judged by simulated time (`--days`), not a fixed
/// step count, since `dt` floats inside the Courant band.
fn run_adaptive(args: &Args, tc: TestCase, rec: &Recorder) -> RunStats {
    const CFL_TARGET: f64 = 0.35;
    const CFL_BAND: f64 = 0.25;
    let mesh = mpas_core::build_mesh(args.level, args.lloyd, args.reorder);
    let mut config = ModelConfig {
        kernel_backend: args.backend,
        ..Default::default()
    };
    mpas_core::apply_case_config(&args.case, &mut config);
    let mut model = ShallowWaterModel::new(mesh, config, tc, None);
    let tracer_mass0: Vec<f64> = (0..config.n_tracers)
        .map(|k| model.total_tracer(k))
        .collect();
    let mass0 = model.total_mass();
    let horizon = args.days * 86_400.0;
    println!(
        "{}: {} cells, adaptive dt from {:.0} s (CFL target {CFL_TARGET} ±{:.0}%), \
         {} days, serial, reorder {}, backend {}",
        tc.name(),
        model.mesh.n_cells(),
        model.dt,
        CFL_BAND * 100.0,
        args.days,
        args.reorder.name(),
        args.backend.name()
    );

    let t0 = std::time::Instant::now();
    let mut steps = 0usize;
    let mut max_c = 0.0f64;
    let mut next_report = horizon / 8.0;
    while model.time < horizon {
        let ts = std::time::Instant::now();
        let c = model.step_adaptive(CFL_TARGET, CFL_BAND);
        rec.record("core.sim.step_seconds", ts.elapsed().as_secs_f64());
        max_c = max_c.max(c);
        steps += 1;
        if model.time >= next_report {
            println!(
                "t = {:.2} days (step {steps}): dt {:.0} s, courant {:.3}, \
                 h error l2 {:.3e}",
                model.time / 86_400.0,
                model.dt,
                c,
                model.h_error_norms().l2
            );
            next_report += horizon / 8.0;
        }
    }
    let run_secs = t0.elapsed().as_secs_f64();

    let mass_drift = (model.total_mass() - mass0) / mass0;
    let norms = model.h_error_norms();
    let tracer_drift = (!tracer_mass0.is_empty()).then(|| {
        (0..config.n_tracers)
            .map(|k| ((model.total_tracer(k) - tracer_mass0[k]) / tracer_mass0[k]).abs())
            .fold(0.0f64, f64::max)
    });
    rec.set_gauge("core.sim.mass_drift", mass_drift);
    rec.set_gauge("core.sim.h_err_l2", norms.l2);
    rec.set_gauge("core.sim.max_courant", max_c);
    if let Some(d) = tracer_drift {
        rec.set_gauge("core.sim.tracer_mass_drift", d);
    }
    println!(
        "finished {:.2?} ({:.1} ms/step, {} adaptive steps); mass drift {:+.2e}, \
         max courant {:.3}, h error l2 {:.3e}",
        t0.elapsed(),
        run_secs * 1e3 / steps.max(1) as f64,
        steps,
        mass_drift,
        max_c,
        norms.l2
    );

    RunStats {
        n_cells: model.mesh.n_cells(),
        total_steps: steps,
        run_secs,
        mass_drift,
        norms,
        tracer_drift,
        modeled_step_s: 0.0,
        modeled_tasks: Vec::new(),
    }
}

/// Distributed path: `--ranks N` communicating ranks running the serial
/// kernel chain on RCB partitions, rank-tagged trace instrumentation, and
/// a calibrated per-rank serial model as the comparison point.
fn run_dist(args: &Args, tc: TestCase, rec: &Recorder) -> RunStats {
    let mesh = mpas_core::build_mesh(args.level, args.lloyd, args.reorder);
    let dt = ModelConfig::suggested_dt(&mesh);
    let total_steps = ((args.days * 86_400.0) / dt).ceil().max(1.0) as usize;
    println!(
        "{}: {} cells, dt {:.0} s, {} steps on {} ranks (reorder {}, backend {}; \
         --executor is ignored in distributed mode)",
        tc.name(),
        mesh.n_cells(),
        dt,
        total_steps,
        args.ranks,
        args.reorder.name(),
        args.backend.name()
    );
    if args.frames > 0 {
        eprintln!("warning: --frames is not supported with --ranks; skipping frame dumps");
    }

    let mut model = ModelConfig {
        kernel_backend: args.backend,
        ..Default::default()
    };
    mpas_core::apply_case_config(&args.case, &mut model);
    let initial = tc.initial_state_with_tracers(&mesh, model.n_tracers);
    let mass = |h: &[f64]| -> f64 {
        (0..mesh.n_cells())
            .map(|i| h[i] * mesh.area_cell[i])
            .sum::<f64>()
    };
    let mass0 = mass(&initial.h);
    let tracer_mass0: Vec<f64> = initial.tracers.iter().map(|tr| mass(tr)).collect();

    let t0 = std::time::Instant::now();
    let final_state = mpas_core::run_distributed_recorded(
        &mesh,
        DistributedConfig {
            n_ranks: args.ranks,
            halo_layers: 3,
            model,
            test_case: tc,
            dt,
            n_steps: total_steps,
        },
        rec,
    );
    let run_secs = t0.elapsed().as_secs_f64();

    let mass_drift = (mass(&final_state.h) - mass0) / mass0;
    let time = total_steps as f64 * dt;
    let reference: Vec<f64> = (0..mesh.n_cells())
        .map(|i| tc.reference_thickness_at(mesh.x_cell[i], time))
        .collect();
    let norms = ErrorNorms::compute(&final_state.h, &reference, &mesh.area_cell);
    let tracer_drift = (!tracer_mass0.is_empty()).then(|| {
        final_state
            .tracers
            .iter()
            .zip(&tracer_mass0)
            .map(|(tr, m0)| ((mass(tr) - m0) / m0).abs())
            .fold(0.0f64, f64::max)
    });
    rec.set_gauge("core.sim.mass_drift", mass_drift);
    rec.set_gauge("core.sim.h_err_l2", norms.l2);
    if let Some(d) = tracer_drift {
        rec.set_gauge("core.sim.tracer_mass_drift", d);
    }
    println!(
        "finished {:.2?} ({:.1} ms/step); mass drift {:+.2e}, h error l2 {:.3e}",
        t0.elapsed(),
        run_secs * 1e3 / total_steps as f64,
        mass_drift,
        norms.l2
    );

    // Modeled comparison point: every rank runs the serial kernel chain on
    // ~n_cells/ranks cells, so the right model is the *calibrated* serial
    // schedule on per-rank mesh counts. Calibration coefficients are
    // per-pattern and mesh-size-insensitive, so a small level-3 fit is
    // enough (and cheap at CLI latency).
    let want_model = args.report || args.report_json.is_some() || args.trace.is_some();
    let (modeled_step_s, modeled_tasks, schedule) = if want_model {
        let r = args.ranks as f64;
        let mc_rank = MeshCounts {
            n_cells: mesh.n_cells() as f64 / r,
            n_edges: mesh.n_edges() as f64 / r,
            n_vertices: mesh.n_vertices() as f64 / r,
        };
        let platform = mpas_hybrid::Platform::paper_node();
        let policy = mpas_sched::resolve("serial").expect("serial policy");
        let cal = mpas_hybrid::calibrate_host(args.level.min(3), 3);
        let step = cal.modeled_time_per_step(&mc_rank, &platform, policy.as_ref());
        let graph = DataflowGraph::for_substep(RkPhase::Intermediate);
        let sched = mpas_hybrid::schedule_substep(&graph, &mc_rank, &platform, policy.as_ref());
        let tasks = schedule_tasks(&sched);
        (step, tasks, Some(sched))
    } else {
        (0.0, Vec::new(), None)
    };
    if let (Some(path), Some(sched)) = (&args.trace, &schedule) {
        let json = mpas_hybrid::to_combined_trace(sched, rec);
        std::fs::write(path, &json).expect("write trace");
        println!(
            "wrote combined modeled+measured trace ({} spans) to {}",
            rec.spans().len(),
            path.display()
        );
    }

    RunStats {
        n_cells: mesh.n_cells(),
        total_steps,
        run_secs,
        mass_drift,
        norms,
        tracer_drift,
        modeled_step_s,
        modeled_tasks,
    }
}

fn schedule_tasks(s: &mpas_hybrid::Schedule) -> Vec<ModeledTask> {
    s.nodes
        .iter()
        .map(|n| ModeledTask {
            name: n.name.to_string(),
            start_s: n.start,
            finish_s: n.finish,
        })
        .collect()
}

/// Fit a gate baseline from what this run recorded. Step time is fitted
/// from the per-step samples (median/MAD) as a warn-only band — CI boxes
/// are noisy; the invariant-adjacent metrics are fail-severity with
/// absolute floors, because they are deterministic up to rounding.
fn fit_baseline(name: String, rec: &Recorder) -> Baseline {
    let snap = rec.snapshot();
    let mut entries = Vec::new();
    let steps = rec.histogram_samples("core.sim.step_seconds");
    if !steps.is_empty() {
        let (median, mad) = median_mad(&steps);
        entries.push(BaselineEntry {
            metric: "core.sim.step_seconds".to_string(),
            median,
            mad,
            count: steps.len(),
            k: 5.0,
            floor: 0.25 * median,
            direction: Direction::Above,
            severity: Severity::Warn,
            abs: false,
        });
    }
    entries.push(BaselineEntry {
        metric: "core.sim.mass_drift".to_string(),
        median: 0.0,
        mad: 0.0,
        count: 1,
        k: 0.0,
        floor: 1e-9,
        direction: Direction::Above,
        severity: Severity::Fail,
        abs: true,
    });
    if let Some(l2) = snap.gauge("core.sim.h_err_l2") {
        entries.push(BaselineEntry {
            metric: "core.sim.h_err_l2".to_string(),
            median: l2,
            mad: 0.0,
            count: 1,
            k: 0.0,
            floor: 0.5 * l2.abs().max(1e-12),
            direction: Direction::Above,
            severity: Severity::Fail,
            abs: false,
        });
    }
    // Scenario-validation norms (`--validate` runs): deterministic up to
    // libm ulp differences, so fail-severity with a wide relative floor.
    for (metric, &val) in snap.gauges.iter() {
        if metric.starts_with("validate.") {
            entries.push(BaselineEntry {
                metric: metric.clone(),
                median: val,
                mad: 0.0,
                count: 1,
                k: 0.0,
                floor: 0.5 * val.abs().max(1e-12),
                direction: Direction::Above,
                severity: Severity::Fail,
                abs: false,
            });
        }
    }
    // Layered simd runs measure their fused-serial speedup in-invocation;
    // gate it from below (fail-severity) so the batched tier can never
    // silently regress to slower-than-k-fused-runs. The committed floor is
    // `median − 2.0`, i.e. an absolute 2.0× requirement under Below
    // semantics (`v < median − band` trips).
    if let Some(s) = snap.gauge("kernel.simd_speedup_serial") {
        entries.push(BaselineEntry {
            metric: "kernel.simd_speedup_serial".to_string(),
            median: s,
            mad: 0.0,
            count: 1,
            k: 0.0,
            floor: s - 2.0,
            direction: Direction::Below,
            severity: Severity::Fail,
            abs: false,
        });
    }
    if let Some(w) = snap.gauge("analysis.blame.max_wait_frac") {
        entries.push(BaselineEntry {
            metric: "analysis.blame.max_wait_frac".to_string(),
            median: w,
            mad: 0.0,
            count: 1,
            k: 0.0,
            floor: 0.2,
            direction: Direction::Above,
            severity: Severity::Warn,
            abs: false,
        });
    }
    Baseline { name, entries }
}

/// Blame + critical-path + schedule-diff report as a JSON document (the
/// `--report-json` artifact CI uploads).
fn report_json(
    trace: &Trace,
    cp: &CriticalPath,
    measured_step_s: f64,
    modeled_step_s: f64,
) -> String {
    use std::fmt::Write as _;
    let blame = trace.blame();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"makespan_s\": {:e},", blame.makespan_s);
    let _ = writeln!(out, "  \"imbalance\": {:e},", blame.imbalance);
    let _ = writeln!(out, "  \"measured_step_s\": {measured_step_s:e},");
    let _ = writeln!(out, "  \"modeled_step_s\": {modeled_step_s:e},");
    out.push_str("  \"ranks\": [");
    for (i, r) in blame.ranks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rank\": {}, \"total_s\": {:e}, \"compute_frac\": {:e}, \
             \"wait_frac\": {:e}, \"copy_frac\": {:e}, \"barrier_frac\": {:e}}}",
            r.rank,
            r.total_s,
            r.compute_frac(),
            r.wait_frac(),
            r.copy_frac(),
            r.barrier_frac(),
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"critical_path\": {{\"path_s\": {:e}, \"compute_s\": {:e}, \"wait_s\": {:e}, \
         \"copy_s\": {:e}, \"barrier_s\": {:e}, \"ranks_visited\": {}, \"segments\": {}}}",
        cp.path_s(),
        cp.compute_s,
        cp.wait_s,
        cp.copy_s,
        cp.barrier_s,
        cp.ranks_visited(),
        cp.segments.len(),
    );
    out.push_str("}\n");
    out
}

fn main() {
    let mut args = parse_args();
    let tc = mpas_core::parse_case(&args.case, args.alpha).unwrap_or_else(|e| panic!("{e}"));
    if args.adaptive && args.ranks >= 2 {
        panic!("--adaptive is a serial-path feature; drop --ranks");
    }
    if args.layers == 0 {
        panic!("--layers must be >= 1");
    }
    if args.layers > 1 {
        if args.backend != KernelBackend::Simd {
            panic!("--layers {} requires --backend simd", args.layers);
        }
        if args.adaptive || args.ranks >= 2 {
            panic!("--layers > 1 runs on the single-address-space serial path");
        }
        if args.executor != "serial" {
            panic!("--layers > 1 requires --executor serial");
        }
    }
    if args.validate {
        // Validation runs at the committed horizon, not the --days value:
        // the committed norms are only meaningful at their (level, days).
        match mpas_swe::validation::spec(&args.case, args.level) {
            Some(sp) => {
                args.days = sp.days;
                println!(
                    "validate: gating {} at level {} over {} simulated days",
                    sp.name, args.level, sp.days
                );
            }
            None => {
                eprintln!(
                    "validate: no committed norms for case {} at level {}",
                    args.case, args.level
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "generating level-{} mesh (lloyd {})...",
        args.level, args.lloyd
    );
    let telemetry_on = args.trace.is_some()
        || args.metrics.is_some()
        || args.flight_dump.is_some()
        || args.report
        || args.report_json.is_some()
        || args.gate.is_some()
        || args.gate_write.is_some()
        || args.history_dir.is_some()
        || args.inject_mass_drift != 0.0
        || args.inject_courant != 0.0
        || args.validate
        || args.adaptive;
    let rec = if telemetry_on {
        Recorder::new()
    } else {
        Recorder::noop()
    };
    // Arm dump-on-anomaly before the run: if `check_invariants` trips
    // later, the flight ring is written to this path at alert time.
    if let Some(path) = &args.flight_dump {
        rec.set_flight_dump(path.clone());
    }

    let stats = if args.ranks >= 2 {
        run_dist(&args, tc, &rec)
    } else if args.adaptive {
        run_adaptive(&args, tc, &rec)
    } else {
        run_single(&args, tc, &rec)
    };

    if args.inject_mass_drift != 0.0 {
        println!(
            "injecting {:+.1e} artificial mass drift (invariant-monitor test hook)",
            args.inject_mass_drift
        );
        rec.set_gauge(
            "core.sim.mass_drift",
            stats.mass_drift + args.inject_mass_drift,
        );
    }
    if args.inject_courant != 0.0 {
        println!(
            "injecting Courant number {} (invariant-monitor test hook)",
            args.inject_courant
        );
        rec.set_gauge("core.sim.max_courant", args.inject_courant);
    }

    // -- scenario validation ----------------------------------------------
    let mut validate_failed = false;
    if args.validate {
        match mpas_swe::validation::check(
            &args.case,
            args.level,
            stats.total_steps,
            stats.norms,
            stats.tracer_drift.unwrap_or(0.0),
        ) {
            None => unreachable!("spec existence checked before the run"),
            Some(r) => {
                rec.set_gauge(&format!("validate.{}.l2", r.name), r.norms.l2);
                rec.set_gauge(&format!("validate.{}.linf", r.name), r.norms.linf);
                println!(
                    "validate {} level {}: l2 {:.4e} (committed {:.4e}), \
                     linf {:.4e} (committed {:.4e}), tolerance ±{:.0}%",
                    r.name,
                    r.level,
                    r.norms.l2,
                    r.spec.l2,
                    r.norms.linf,
                    r.spec.linf,
                    r.spec.tolerance * 100.0
                );
                if let Some(d) = stats.tracer_drift {
                    println!(
                        "validate {}: tracer mass drift {:.3e} over {} steps",
                        r.name, d, r.steps
                    );
                }
                if r.passed() {
                    println!("validate {}: PASS", r.name);
                } else {
                    for f in &r.failures {
                        eprintln!("validate {}: FAIL — {f}", r.name);
                    }
                    validate_failed = true;
                }
            }
        }
    }

    // -- trace analysis ---------------------------------------------------
    let trace = Trace::from_recorder(&rec);
    let measured_step_s = if args.ranks >= 2 {
        // Distributed mode records no facade-level step timer; derive it
        // from the per-step trace makespans and feed the same histogram
        // the gate watches.
        let per_step = trace.per_step_makespans();
        for &m in &per_step {
            rec.record("core.sim.step_seconds", m);
        }
        median_mad(&per_step).0
    } else {
        stats.run_secs / stats.total_steps as f64
    };
    let blame = trace.blame();
    let cp = trace.critical_path();
    record_blame(&rec, &blame, Some(&cp));
    let alerts = check_invariants(&rec, &default_invariants());

    if args.report {
        println!("\n== per-rank blame ==");
        print!("{}", blame.render());
        println!("\n== critical path ==");
        println!("{}", cp.render());
        if stats.modeled_step_s > 0.0 {
            println!("== measured vs modeled ==");
            println!(
                "measured {:.3} ms/step vs modeled {:.3} ms/step (x{:.2})",
                measured_step_s * 1e3,
                stats.modeled_step_s * 1e3,
                measured_step_s / stats.modeled_step_s
            );
            let diff = diff_schedule(&stats.modeled_tasks, measured_step_s / 4.0);
            println!(
                "intermediate substep: modeled {:.3} ms, measured (step/4) {:.3} ms; \
                 tightest kernels:",
                diff.modeled_s * 1e3,
                diff.measured_s * 1e3
            );
            for k in diff.kernels.iter().take(5) {
                println!(
                    "  {:<4} start {:.3} ms  finish {:.3} ms  slack {:.3} ms",
                    k.name,
                    k.start_s * 1e3,
                    k.finish_s * 1e3,
                    k.slack_s * 1e3
                );
            }
        } else if args.ranks < 2 {
            println!("(blame table needs rank-tagged traces: rerun with --ranks N >= 2)");
        }
    }
    if let Some(path) = &args.report_json {
        let json = report_json(&trace, &cp, measured_step_s, stats.modeled_step_s);
        std::fs::write(path, &json).expect("write report json");
        println!("wrote blame report to {}", path.display());
    }

    // -- artifacts --------------------------------------------------------
    if let Some(path) = &args.bench_json {
        // Machine-readable timing record (the BENCH_pr4.json shape): one
        // object per run so CI and `figures fig_layout` can diff configs.
        let json = format!(
            "{{\n  \"case\": \"{}\",\n  \"level\": {},\n  \"executor\": \"{}\",\n  \
             \"ranks\": {},\n  \
             \"reorder\": \"{}\",\n  \"backend\": \"{}\",\n  \"layers\": {},\n  \
             \"n_cells\": {},\n  \
             \"steps\": {},\n  \"run_seconds\": {:.6},\n  \"ms_per_step\": {:.4},\n  \
             \"mass_drift\": {:e},\n  \"h_err_l2\": {:e}\n}}\n",
            args.case,
            args.level,
            args.executor,
            args.ranks,
            args.reorder.name(),
            args.backend.name(),
            args.layers,
            stats.n_cells,
            stats.total_steps,
            stats.run_secs,
            stats.run_secs * 1e3 / stats.total_steps as f64,
            stats.mass_drift,
            stats.norms.l2,
        );
        std::fs::write(path, &json).expect("write bench json");
        println!("wrote bench record to {}", path.display());
    }
    if let Some(path) = &args.metrics {
        let snap = rec.snapshot();
        let body = if path.extension().is_some_and(|e| e == "csv") {
            snap.to_csv()
        } else {
            snap.to_json()
        };
        std::fs::write(path, &body).expect("write metrics");
        println!(
            "wrote {} counters / {} gauges / {} histograms to {}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len(),
            path.display()
        );
    }

    if let Some(path) = &args.flight_dump {
        // An invariant alert may already have dumped here (dump-on-anomaly
        // at alert time); the final write refreshes the ring to include
        // everything up to run end, so the file always exists and is a
        // complete Chrome trace either way.
        rec.flight_dump_to(path).expect("write flight dump");
        println!(
            "wrote flight recorder ({} of {} events retained) to {}",
            rec.flight_events().len(),
            rec.flight_total(),
            path.display()
        );
    }

    // -- history store ----------------------------------------------------
    // Flushed after the analysis pass so the stored run carries the
    // `analysis.blame.*` gauges alongside solver metrics, and entirely
    // off the step hot path (the run is over). Default retention keeps
    // the directory bounded without any extra flags.
    if let Some(dir) = &args.history_dir {
        let store = HistoryStore::open(dir).expect("open history store");
        let manifest = RunManifest::new(
            &args.case,
            args.level,
            args.lloyd,
            args.backend.name(),
            args.layers,
            &args.policy,
            &args.executor,
            args.ranks,
            stats.total_steps,
        );
        let recorded = store
            .record_recorder(&manifest, &rec, "")
            .expect("record history run");
        let compaction = store
            .compact(&Retention::default())
            .expect("compact history store");
        println!(
            "history: recorded run {} into {} ({} run(s) retained, {} KiB)",
            recorded.run_id,
            dir.display(),
            store.runs().map(|r| r.len()).unwrap_or(0),
            compaction.bytes_after / 1024,
        );
    }

    // -- regression gate --------------------------------------------------
    if let Some(path) = &args.gate_write {
        let name = format!(
            "case{}-level{}-{}",
            args.case,
            args.level,
            if args.ranks >= 2 {
                format!("ranks{}", args.ranks)
            } else {
                args.executor.clone()
            }
        );
        let baseline = fit_baseline(name, &rec);
        std::fs::write(path, baseline.to_json()).expect("write baseline");
        println!(
            "wrote baseline ({} entries) to {}",
            baseline.entries.len(),
            path.display()
        );
    }
    // Exit-code precedence: tripped invariant (3) > validation band (2) >
    // statistical gate (1).
    let mut exit_code = 0;
    if let Some(path) = &args.gate {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let mut baseline = Baseline::parse(&text)
            .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
        // `--gate-filter` restricts the committed baseline to the metric
        // families this invocation actually produces (a missing watched
        // metric is a fail), so one baseline file can serve CI jobs that
        // each exercise a different slice of the pipeline.
        if !args.gate_filter.is_empty() {
            let before = baseline.entries.len();
            baseline
                .entries
                .retain(|e| args.gate_filter.iter().any(|p| e.metric.starts_with(p)));
            println!(
                "gate: filtered baseline to {} of {before} entries ({})",
                baseline.entries.len(),
                args.gate_filter.join(",")
            );
        }
        let outcome = baseline.evaluate(&rec.snapshot());
        print!("{}", outcome.render());
        if outcome.failed() || (args.gate_strict && outcome.warned()) {
            exit_code = 1;
        }
    }
    if validate_failed {
        exit_code = 2;
    }
    for a in &alerts {
        eprintln!(
            "ALERT: {} = {:e} exceeds |{:e}| — {}",
            a.metric, a.value, a.threshold, a.message
        );
    }
    if !alerts.is_empty() {
        exit_code = 3;
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
