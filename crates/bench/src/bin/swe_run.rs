//! `swe-run` — the downstream-user CLI: run any Williamson case on any
//! mesh with any executor, with periodic diagnostics and optional PPM
//! frame dumps of the total height field.
//!
//! ```text
//! swe-run --case 5 --level 5 --days 2 --executor threaded:4 \
//!         --frames 4 --out target/frames
//! ```
//!
//! With `--trace trace.json` the run is recorded and a combined
//! Chrome-trace is written: track group "modeled" holds the scheduler's
//! predicted substep timeline, "measured" the recorded execution. With
//! `--metrics metrics.json` a metrics snapshot (per-kernel timing
//! histograms, halo byte counters, per-step norms) is written as JSON
//! (`.csv` extension switches to CSV).

use mpas_bench::render::{sample_lonlat, write_ppm};
use mpas_core::{Executor, Simulation};
use mpas_mesh::Reordering;
use mpas_swe::{ModelConfig, TestCase};
use mpas_telemetry::Recorder;
use std::path::PathBuf;

struct Args {
    case: String,
    alpha: f64,
    level: u32,
    lloyd: u32,
    days: f64,
    executor: String,
    policy: String,
    reorder: Reordering,
    fused: bool,
    frames: usize,
    out: PathBuf,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    bench_json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        case: "5".into(),
        alpha: 0.0,
        level: 4,
        lloyd: 0,
        days: 1.0,
        executor: "serial".into(),
        policy: "pattern-driven".into(),
        reorder: Reordering::None,
        fused: true,
        frames: 0,
        out: PathBuf::from("target/frames"),
        trace: None,
        metrics: None,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value for {a}"));
        match a.as_str() {
            "--case" => args.case = val(),
            "--alpha" => args.alpha = val().parse().expect("alpha"),
            "--level" => args.level = val().parse().expect("level"),
            "--lloyd" => args.lloyd = val().parse().expect("lloyd"),
            "--days" => args.days = val().parse().expect("days"),
            "--executor" => args.executor = val(),
            "--policy" => args.policy = val(),
            "--reorder" => {
                let v = val();
                args.reorder = Reordering::parse(&v)
                    .unwrap_or_else(|| panic!("unknown reorder {v} (none, sfc or bfs)"));
            }
            "--fused" => {
                let v = val();
                args.fused = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("unknown fused {other} (on or off)"),
                };
            }
            "--frames" => args.frames = val().parse().expect("frames"),
            "--out" => args.out = PathBuf::from(val()),
            "--trace" => args.trace = Some(PathBuf::from(val())),
            "--metrics" => args.metrics = Some(PathBuf::from(val())),
            "--bench-json" => args.bench_json = Some(PathBuf::from(val())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: swe-run [--case 2|5|6] [--alpha RAD] [--level N] \
                     [--lloyd N] [--days X] [--executor serial|threaded:N|hybrid:N:M] \
                     [--policy NAME] [--reorder none|sfc|bfs] [--fused on|off] \
                     [--frames K] [--out DIR] \
                     [--trace FILE.json] [--metrics FILE.json|FILE.csv] \
                     [--bench-json FILE.json]\n\
                     policies: {}",
                    mpas_sched::registered_names().join(", ")
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn parse_executor(spec: &str) -> Executor {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts[0] {
        "serial" => Executor::Serial,
        "threaded" => Executor::Threaded {
            threads: parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(2),
        },
        "hybrid" => Executor::Hybrid {
            cpu_threads: parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(2),
            acc_threads: parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(2),
        },
        other => panic!("unknown executor {other}"),
    }
}

fn main() {
    let args = parse_args();
    let tc = match args.case.as_str() {
        "2" => TestCase::Case2 { alpha: args.alpha },
        "5" => TestCase::Case5,
        "6" => TestCase::Case6,
        other => panic!("unsupported case {other} (2, 5 or 6)"),
    };

    println!(
        "generating level-{} mesh (lloyd {})...",
        args.level, args.lloyd
    );
    let telemetry_on = args.trace.is_some() || args.metrics.is_some();
    let rec = if telemetry_on {
        Recorder::new()
    } else {
        Recorder::noop()
    };
    let mut sim = Simulation::builder()
        .mesh_level(args.level)
        .lloyd_iters(args.lloyd)
        .test_case(tc)
        .executor(parse_executor(&args.executor))
        .config(ModelConfig {
            fused_coeffs: args.fused,
            ..Default::default()
        })
        .reorder(args.reorder)
        .sched_policy(&args.policy)
        .recorder(rec.clone())
        .build();

    let total_steps = ((args.days * 86_400.0) / sim.dt()).ceil().max(1.0) as usize;
    println!(
        "{}: {} cells, dt {:.0} s, {} steps, executor {}, reorder {}, fused {}",
        tc.name(),
        sim.mesh.n_cells(),
        sim.dt(),
        total_steps,
        args.executor,
        args.reorder.name(),
        args.fused
    );
    println!(
        "policy {}: modeled {:.1} ms/step on the Table-II node",
        sim.sched_policy().name(),
        sim.modeled_time_per_step(&mpas_hybrid::Platform::paper_node()) * 1e3
    );

    if args.frames > 0 {
        std::fs::create_dir_all(&args.out).expect("create output dir");
    }
    let chunk = (total_steps / args.frames.max(1)).max(1);
    let (w, h) = (480, 240);
    let mut done = 0usize;
    let mut frame = 0usize;
    let mut run_secs = 0.0f64;
    let t0 = std::time::Instant::now();
    while done < total_steps {
        let n = chunk.min(total_steps - done);
        let ts = std::time::Instant::now();
        sim.run_steps(n);
        run_secs += ts.elapsed().as_secs_f64();
        done += n;
        let norms = sim.h_error_norms();
        println!(
            "step {done}/{total_steps}: mass drift {:+.1e}, h error l2 {:.3e}",
            sim.mass_drift(),
            norms.l2
        );
        if args.frames > 0 {
            let th = sim.total_height();
            let img = sample_lonlat(&sim.mesh, &th, w, h);
            let min = th.iter().cloned().fold(f64::MAX, f64::min);
            let max = th.iter().cloned().fold(f64::MIN, f64::max);
            let path = args.out.join(format!("frame_{frame:04}.ppm"));
            write_ppm(&path, &img, w, h, min, max).expect("write frame");
            frame += 1;
        }
    }
    println!(
        "finished {:.2?} ({:.1} ms/step); mass drift {:+.2e}",
        t0.elapsed(),
        t0.elapsed().as_secs_f64() * 1e3 / total_steps as f64,
        sim.mass_drift()
    );
    if args.frames > 0 {
        println!("wrote {frame} frames to {}", args.out.display());
    }

    if telemetry_on {
        // One real halo-exchange round on a 4-way partition so the metrics
        // carry measured halo byte counters next to the analytic estimate.
        mpas_core::halo_probe(&sim.mesh, 4, &rec);
    }
    if let Some(path) = &args.trace {
        let schedule = sim.modeled_schedule(&mpas_hybrid::Platform::paper_node());
        let json = mpas_hybrid::to_combined_trace(&schedule, &rec);
        std::fs::write(path, &json).expect("write trace");
        println!(
            "wrote combined modeled+measured trace ({} spans) to {}",
            rec.spans().len(),
            path.display()
        );
    }
    if let Some(path) = &args.bench_json {
        // Machine-readable timing record (the BENCH_pr4.json shape): one
        // object per run so CI and `figures fig_layout` can diff configs.
        let json = format!(
            "{{\n  \"case\": \"{}\",\n  \"level\": {},\n  \"executor\": \"{}\",\n  \
             \"reorder\": \"{}\",\n  \"fused\": {},\n  \"n_cells\": {},\n  \
             \"steps\": {},\n  \"run_seconds\": {:.6},\n  \"ms_per_step\": {:.4},\n  \
             \"mass_drift\": {:e},\n  \"h_err_l2\": {:e}\n}}\n",
            args.case,
            args.level,
            args.executor,
            args.reorder.name(),
            args.fused,
            sim.mesh.n_cells(),
            total_steps,
            run_secs,
            run_secs * 1e3 / total_steps as f64,
            sim.mass_drift(),
            sim.h_error_norms().l2,
        );
        std::fs::write(path, &json).expect("write bench json");
        println!("wrote bench record to {}", path.display());
    }
    if let Some(path) = &args.metrics {
        let snap = rec.snapshot();
        let body = if path.extension().is_some_and(|e| e == "csv") {
            snap.to_csv()
        } else {
            snap.to_json()
        };
        std::fs::write(path, &body).expect("write metrics");
        println!(
            "wrote {} counters / {} gauges / {} histograms to {}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len(),
            path.display()
        );
    }
}
