//! `swe-load` — closed-loop load generator for `swe-serve`.
//!
//! ```text
//! swe-load --addr 127.0.0.1:8080 --clients 8 --jobs 4 --level 5 --steps 2 \
//!          --bench-json target/serve_bench.json --gate BENCH_baseline.json
//! ```
//!
//! Spawns `--clients` tenant threads; each submits `--jobs` identical jobs
//! one at a time (submit, poll to a terminal state, fetch the result) so
//! offered load tracks service capacity. 429 backpressure answers are
//! retried with backoff and counted, never dropped. At the end it checks
//! every per-job `state_hash` is bitwise identical across tenants, prints
//! and optionally writes (`--bench-json`) the throughput/latency summary —
//! `serve.jobs_per_sec`, p50/p95 time-to-first-step and end-to-end job
//! latency — and evaluates them against a committed baseline (`--gate`,
//! exit 1 on fail-severity violations, `--gate-strict` promotes warnings).
//! `--shutdown` drains the server afterwards.
//!
//! The live observability plane is exercised too: every poll also samples
//! `GET /jobs/{id}/telemetry` (validated JSON) and its latency is reported
//! as the `live` column and the `serve.live_p95_ms` gauge. `--stream-out
//! FILE` runs a concurrent observer that captures `--stream-lines` lines
//! of `GET /metrics/stream` during the load (validated with
//! `export::validate_ndjson`, first offending line reported); `--flight-out
//! FILE` saves one job's `GET /jobs/{id}/flight` Chrome trace.
//!
//! Exit codes: 0 ok, 1 gate violation, 2 job failure, divergent results,
//! or invalid live-endpoint output.

use mpas_server::http::{request, stream_lines};
use mpas_telemetry::export::parse_json;
use mpas_telemetry::gate::Baseline;
use mpas_telemetry::{names, Recorder};
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    clients: usize,
    jobs: usize,
    level: u32,
    steps: usize,
    case: String,
    executor: String,
    policy: String,
    bench_json: Option<PathBuf>,
    gate: Option<PathBuf>,
    gate_strict: bool,
    history_dir: Option<PathBuf>,
    shutdown: bool,
    stream_out: Option<PathBuf>,
    stream_lines: usize,
    flight_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        clients: 8,
        jobs: 4,
        level: 5,
        steps: 2,
        case: "5".to_string(),
        executor: "serial".to_string(),
        policy: "pattern-driven".to_string(),
        bench_json: None,
        gate: None,
        gate_strict: false,
        history_dir: None,
        shutdown: false,
        stream_out: None,
        stream_lines: 5,
        flight_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("missing value for {a}"));
        match a.as_str() {
            "--addr" => args.addr = val(),
            "--clients" => args.clients = val().parse().expect("clients"),
            "--jobs" => args.jobs = val().parse().expect("jobs"),
            "--level" => args.level = val().parse().expect("level"),
            "--steps" => args.steps = val().parse().expect("steps"),
            "--case" => args.case = val(),
            "--executor" => args.executor = val(),
            "--policy" => args.policy = val(),
            "--bench-json" => args.bench_json = Some(PathBuf::from(val())),
            "--gate" => args.gate = Some(PathBuf::from(val())),
            "--gate-strict" => args.gate_strict = true,
            "--history-dir" => args.history_dir = Some(PathBuf::from(val())),
            "--shutdown" => args.shutdown = true,
            "--stream-out" => args.stream_out = Some(PathBuf::from(val())),
            "--stream-lines" => args.stream_lines = val().parse().expect("stream-lines"),
            "--flight-out" => args.flight_out = Some(PathBuf::from(val())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: swe-load --addr HOST:PORT [--clients N] [--jobs M] \
                     [--level L] [--steps S] [--case 2|5|6] [--executor SPEC] \
                     [--policy NAME] [--bench-json FILE] [--gate BASELINE.json] \
                     [--gate-strict] [--history-dir DIR] [--shutdown] \
                     [--stream-out FILE] [--stream-lines N] [--flight-out FILE]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!args.addr.is_empty(), "--addr is required");
    args
}

/// One completed job as observed by a tenant.
struct Sample {
    id: u64,
    ttfs_ms: f64,
    latency_ms: f64,
    state_hash: String,
    retries_429: usize,
    /// Latencies of the `GET /jobs/{id}/telemetry` probes taken during
    /// polling (empty when the job finished before the first poll).
    live_ms: Vec<f64>,
}

fn json_str(doc: &mpas_telemetry::export::JsonValue, key: &str) -> Option<String> {
    doc.get(key).and_then(|v| v.as_str()).map(str::to_string)
}

fn run_one_job(addr: SocketAddr, body: &str) -> Result<Sample, String> {
    let t0 = Instant::now();
    let mut retries_429 = 0usize;
    let id = loop {
        let (status, payload) =
            request(addr, "POST", "/jobs", body).map_err(|e| format!("submit: {e}"))?;
        match status {
            202 => {
                let doc = parse_json(&payload).map_err(|at| format!("submit json @{at}"))?;
                break doc
                    .get("id")
                    .and_then(|v| v.as_f64())
                    .ok_or("submit response lacks id")? as u64;
            }
            429 => {
                retries_429 += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            other => return Err(format!("submit rejected: {other} {payload}")),
        }
    };
    let mut live_ms = Vec::new();
    loop {
        let (status, payload) =
            request(addr, "GET", &format!("/jobs/{id}"), "").map_err(|e| format!("poll: {e}"))?;
        if status != 200 {
            return Err(format!("poll {id}: {status}"));
        }
        let doc = parse_json(&payload).map_err(|at| format!("poll json @{at}"))?;
        match json_str(&doc, "status").as_deref() {
            Some("completed") => break,
            Some("failed") | Some("cancelled") => return Err(format!("job {id} ended {payload}")),
            _ => {
                // Sample the live-telemetry endpoint while the job is in
                // flight: its latency is the `live` column, and its body
                // must always be valid JSON.
                let t = Instant::now();
                let (status, payload) = request(addr, "GET", &format!("/jobs/{id}/telemetry"), "")
                    .map_err(|e| format!("telemetry: {e}"))?;
                if status != 200 {
                    return Err(format!("telemetry {id}: {status}"));
                }
                live_ms.push(t.elapsed().as_secs_f64() * 1e3);
                mpas_telemetry::export::validate_json(&payload)
                    .map_err(|at| format!("telemetry {id}: invalid JSON at byte {at}"))?;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (status, payload) = request(addr, "GET", &format!("/jobs/{id}/result"), "")
        .map_err(|e| format!("result: {e}"))?;
    if status != 200 {
        return Err(format!("result {id}: {status}"));
    }
    let doc = parse_json(&payload).map_err(|at| format!("result json @{at}"))?;
    Ok(Sample {
        id,
        ttfs_ms: doc
            .get("ttfs_ms")
            .and_then(|v| v.as_f64())
            .ok_or("result lacks ttfs_ms")?,
        latency_ms,
        state_hash: json_str(&doc, "state_hash").ok_or("result lacks state_hash")?,
        retries_429,
        live_ms,
    })
}

/// Fetch one completed job's flight trace and check it is a Chrome trace.
fn flight_fetch(addr: SocketAddr, samples: &[Sample]) -> Result<String, String> {
    let id = samples
        .first()
        .map(|s| s.id)
        .ok_or("no completed job to fetch a flight trace for")?;
    let (status, payload) = request(addr, "GET", &format!("/jobs/{id}/flight"), "")
        .map_err(|e| format!("flight: {e}"))?;
    if status != 200 {
        return Err(format!("flight {id}: {status}"));
    }
    mpas_telemetry::export::validate_json(&payload)
        .map_err(|at| format!("flight {id}: invalid JSON at byte {at}"))?;
    if !payload.contains("traceEvents") {
        return Err(format!("flight {id}: not a Chrome trace"));
    }
    Ok(payload)
}

/// Nearest-rank percentile of an unsorted sample set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

fn main() {
    let args = parse_args();
    let addr: SocketAddr = args
        .addr
        .to_socket_addrs()
        .unwrap_or_else(|e| panic!("resolve {}: {e}", args.addr))
        .next()
        .expect("resolved address");
    let body = format!(
        "{{\"case\": \"{}\", \"level\": {}, \"steps\": {}, \"executor\": \"{}\", \
         \"policy\": \"{}\", \"progress_every\": 1}}",
        args.case, args.level, args.steps, args.executor, args.policy
    );

    println!(
        "swe-load: {} clients x {} jobs (case {}, level {}, {} steps) against {addr}",
        args.clients, args.jobs, args.case, args.level, args.steps
    );
    // Concurrent stream observer: captures NDJSON snapshot lines off
    // `/metrics/stream` while the load is in flight, so the stream is
    // exercised against a busy server, not an idle one.
    let stream_observer = args.stream_out.as_ref().map(|path| {
        let path = path.clone();
        let n = args.stream_lines.max(1);
        std::thread::spawn(move || -> Result<usize, String> {
            let lines = stream_lines(
                addr,
                &format!("/metrics/stream?interval_ms=100&count={n}"),
                n,
            )
            .map_err(|e| format!("stream: {e}"))?;
            let body = lines.join("\n") + "\n";
            let count = mpas_telemetry::export::validate_ndjson(&body)
                .map_err(|(line, at)| format!("stream: invalid JSON on line {line}, byte {at}"))?;
            std::fs::write(&path, &body).map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("wrote {count} stream snapshot lines to {}", path.display());
            Ok(count)
        })
    });

    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|_| {
            let body = body.clone();
            let jobs = args.jobs;
            std::thread::spawn(move || {
                (0..jobs)
                    .map(|_| run_one_job(addr, &body))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut samples = Vec::new();
    let mut failures = Vec::new();
    for h in handles {
        for outcome in h.join().expect("client thread panicked") {
            match outcome {
                Ok(s) => samples.push(s),
                Err(e) => failures.push(e),
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut live_failures = Vec::new();
    if let Some(h) = stream_observer {
        if let Err(e) = h.join().expect("stream observer panicked") {
            live_failures.push(e);
        }
    }
    // One job's flight-recorder dump: the ring outlives job completion,
    // so any observed id yields its namespace's Chrome trace.
    if let Some(path) = &args.flight_out {
        match flight_fetch(addr, &samples) {
            Ok(trace) => {
                std::fs::write(path, &trace).expect("write flight trace");
                println!("wrote flight trace to {}", path.display());
            }
            Err(e) => live_failures.push(e),
        }
    }

    if args.shutdown {
        let _ = request(addr, "POST", "/shutdown", "");
    }
    for f in &failures {
        eprintln!("FAILED: {f}");
    }
    let hashes: Vec<&str> = samples.iter().map(|s| s.state_hash.as_str()).collect();
    let identical = hashes.windows(2).all(|w| w[0] == w[1]);
    if !identical {
        eprintln!("DIVERGED: tenants disagree on the final state: {hashes:?}");
    }

    let completed = samples.len();
    let retries: usize = samples.iter().map(|s| s.retries_429).sum();
    let jobs_per_sec = completed as f64 / wall_secs.max(1e-9);
    let mut ttfs: Vec<f64> = samples.iter().map(|s| s.ttfs_ms).collect();
    let mut latency: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let mut live: Vec<f64> = samples
        .iter()
        .flat_map(|s| s.live_ms.iter().copied())
        .collect();
    let live_probes = live.len();
    let (ttfs_p50, ttfs_p95) = (percentile(&mut ttfs, 50.0), percentile(&mut ttfs, 95.0));
    let (lat_p50, lat_p95) = (
        percentile(&mut latency, 50.0),
        percentile(&mut latency, 95.0),
    );
    let (live_p50, live_p95) = (percentile(&mut live, 50.0), percentile(&mut live, 95.0));
    println!(
        "completed {completed}/{} jobs in {wall_secs:.3} s ({jobs_per_sec:.2} jobs/s, \
         {retries} backpressure retries)",
        args.clients * args.jobs
    );
    println!("ttfs    p50 {ttfs_p50:.1} ms, p95 {ttfs_p95:.1} ms");
    println!("latency p50 {lat_p50:.1} ms, p95 {lat_p95:.1} ms");
    println!("live    p50 {live_p50:.1} ms, p95 {live_p95:.1} ms ({live_probes} telemetry probes)");

    if let Some(path) = &args.bench_json {
        let json = format!(
            "{{\n  \"clients\": {},\n  \"jobs_per_client\": {},\n  \"case\": \"{}\",\n  \
             \"level\": {},\n  \"steps\": {},\n  \"executor\": \"{}\",\n  \
             \"completed\": {completed},\n  \"failed\": {},\n  \
             \"retries_429\": {retries},\n  \"wall_seconds\": {wall_secs:.6},\n  \
             \"identical_results\": {identical},\n  \"state_hash\": \"{}\",\n  \
             \"{}\": {jobs_per_sec:.4},\n  \"serve.ttfs_p50_ms\": {ttfs_p50:.3},\n  \
             \"{}\": {ttfs_p95:.3},\n  \"serve.latency_p50_ms\": {lat_p50:.3},\n  \
             \"{}\": {lat_p95:.3},\n  \"live_probes\": {live_probes},\n  \
             \"serve.live_p50_ms\": {live_p50:.3},\n  \"{}\": {live_p95:.3}\n}}\n",
            args.clients,
            args.jobs,
            args.case,
            args.level,
            args.steps,
            args.executor,
            failures.len(),
            hashes.first().copied().unwrap_or(""),
            names::SERVE_JOBS_PER_SEC,
            names::SERVE_TTFS_P95_MS,
            names::SERVE_LATENCY_P95_MS,
            names::SERVE_LIVE_P95_MS,
        );
        mpas_telemetry::export::validate_json(&json)
            .unwrap_or_else(|at| panic!("bench record is not valid JSON at byte {at}"));
        std::fs::write(path, &json).expect("write bench json");
        println!("wrote serve bench record to {}", path.display());
    }

    // Persist the percentile summary into the shared history store, so
    // serving metrics are queryable (and diagnosable) alongside solver
    // metrics. The manifest's backend axis is "serve": load runs only
    // baseline against other load runs of the same shape.
    if let Some(dir) = &args.history_dir {
        use mpas_telemetry::store::{HistoryStore, RunManifest};
        let rec = Recorder::new();
        rec.set_gauge(names::SERVE_JOBS_PER_SEC, jobs_per_sec);
        rec.set_gauge("serve.ttfs_p50_ms", ttfs_p50);
        rec.set_gauge(names::SERVE_TTFS_P95_MS, ttfs_p95);
        rec.set_gauge("serve.latency_p50_ms", lat_p50);
        rec.set_gauge(names::SERVE_LATENCY_P95_MS, lat_p95);
        rec.set_gauge(names::SERVE_LIVE_P50_MS, live_p50);
        rec.set_gauge(names::SERVE_LIVE_P95_MS, live_p95);
        let store = HistoryStore::open(dir).expect("open history store");
        // The ranks axis carries the client count: two load runs are only
        // comparable at equal concurrency.
        let manifest = RunManifest::new(
            &args.case,
            args.level,
            0,
            "serve",
            1,
            &args.policy,
            &args.executor,
            args.clients,
            args.steps,
        );
        let recorded = store
            .record_recorder(&manifest, &rec, "")
            .expect("record load run");
        println!(
            "history: recorded load run {} into {}",
            recorded.run_id,
            dir.display()
        );
    }

    let mut exit_code = 0;
    if let Some(path) = &args.gate {
        // The gate machinery evaluates metric gauges, so land the summary
        // in a recorder snapshot under the shared serve.* names.
        let rec = Recorder::new();
        rec.set_gauge(names::SERVE_JOBS_PER_SEC, jobs_per_sec);
        rec.set_gauge(names::SERVE_TTFS_P95_MS, ttfs_p95);
        rec.set_gauge(names::SERVE_LATENCY_P95_MS, lat_p95);
        // Published for visibility; only gated once the committed baseline
        // grows a serve.live_p95_ms entry.
        rec.set_gauge(names::SERVE_LIVE_P95_MS, live_p95);
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let mut baseline = Baseline::parse(&text)
            .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
        // The committed baseline also carries swe_run's core.sim.* entries;
        // only the serving metrics are this tool's to judge.
        baseline.entries.retain(|e| e.metric.starts_with("serve."));
        assert!(
            !baseline.entries.is_empty(),
            "baseline {} has no serve.* entries",
            path.display()
        );
        let outcome = baseline.evaluate(&rec.snapshot());
        print!("{}", outcome.render());
        if outcome.failed() || (args.gate_strict && outcome.warned()) {
            exit_code = 1;
        }
    }
    for f in &live_failures {
        eprintln!("LIVE-ENDPOINT FAILED: {f}");
    }
    if !failures.is_empty() || !identical || !live_failures.is_empty() {
        exit_code = 2;
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
