//! Binary mesh files.
//!
//! MPAS's initialization phase reads pre-generated mesh files (the paper's
//! §II.B three-phase structure). Generating the 15-km mesh takes minutes,
//! so this module provides a compact little-endian binary format to
//! generate once and reload instantly. The format is self-describing
//! enough to reject foreign files (magic + version + counts), but it is
//! not meant as an interchange format — it mirrors [`Mesh`] field-for-field.

use crate::mesh::Mesh;
use mpas_geom::Vec3;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MPASMSH1";

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64s(w: &mut impl Write, xs: &[f64]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn write_u32s(w: &mut impl Write, xs: &[u32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn write_i8s(w: &mut impl Write, xs: &[i8]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn write_vec3s(w: &mut impl Write, xs: &[Vec3]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for v in xs {
        w.write_all(&v.x.to_le_bytes())?;
        w.write_all(&v.y.to_le_bytes())?;
        w.write_all(&v.z.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64s(r: &mut impl Read) -> io::Result<Vec<f64>> {
    let n = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f64::from_le_bytes(b));
    }
    Ok(out)
}

fn read_u32s(r: &mut impl Read) -> io::Result<Vec<u32>> {
    let n = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(u32::from_le_bytes(b));
    }
    Ok(out)
}

fn read_i8s(r: &mut impl Read) -> io::Result<Vec<i8>> {
    let n = read_u64(r)? as usize;
    let mut out = vec![0u8; n];
    r.read_exact(&mut out)?;
    Ok(out.into_iter().map(|b| b as i8).collect())
}

fn read_vec3s(r: &mut impl Read) -> io::Result<Vec<Vec3>> {
    let n = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        let mut v = [0.0f64; 3];
        for c in v.iter_mut() {
            r.read_exact(&mut b)?;
            *c = f64::from_le_bytes(b);
        }
        out.push(Vec3::new(v[0], v[1], v[2]));
    }
    Ok(out)
}

/// Write a mesh to a binary file.
pub fn save_mesh(mesh: &Mesh, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&mesh.sphere_radius.to_le_bytes())?;
    write_vec3s(&mut w, &mesh.x_cell)?;
    write_vec3s(&mut w, &mesh.x_edge)?;
    write_vec3s(&mut w, &mesh.x_vertex)?;
    let flat2 = |xs: &Vec<[u32; 2]>| -> Vec<u32> { xs.iter().flatten().copied().collect() };
    let flat3 = |xs: &Vec<[u32; 3]>| -> Vec<u32> { xs.iter().flatten().copied().collect() };
    write_u32s(&mut w, &flat2(&mesh.cells_on_edge))?;
    write_u32s(&mut w, &flat2(&mesh.vertices_on_edge))?;
    write_u32s(&mut w, &flat3(&mesh.cells_on_vertex))?;
    write_u32s(&mut w, &flat3(&mesh.edges_on_vertex))?;
    write_u32s(&mut w, &mesh.cell_offsets)?;
    write_u32s(&mut w, &mesh.edges_on_cell)?;
    write_u32s(&mut w, &mesh.vertices_on_cell)?;
    write_u32s(&mut w, &mesh.cells_on_cell)?;
    write_i8s(&mut w, &mesh.edge_sign_on_cell)?;
    write_u32s(&mut w, &mesh.eoe_offsets)?;
    write_u32s(&mut w, &mesh.edges_on_edge)?;
    write_f64s(&mut w, &mesh.weights_on_edge)?;
    write_f64s(&mut w, &mesh.dc_edge)?;
    write_f64s(&mut w, &mesh.dv_edge)?;
    write_f64s(&mut w, &mesh.area_cell)?;
    write_f64s(&mut w, &mesh.area_triangle)?;
    let kites: Vec<f64> = mesh
        .kite_areas_on_vertex
        .iter()
        .flatten()
        .copied()
        .collect();
    write_f64s(&mut w, &kites)?;
    write_vec3s(&mut w, &mesh.normal_edge)?;
    write_vec3s(&mut w, &mesh.tangent_edge)?;
    let vsigns: Vec<i8> = mesh.edge_sign_on_vertex.iter().flatten().copied().collect();
    write_i8s(&mut w, &vsigns)?;
    let boundary: Vec<i8> = mesh
        .boundary_edge
        .iter()
        .map(|&b| if b { 1 } else { 0 })
        .collect();
    write_i8s(&mut w, &boundary)?;
    w.flush()
}

/// Read a mesh written by [`save_mesh`].
pub fn load_mesh(path: impl AsRef<Path>) -> io::Result<Mesh> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an MPASMSH1 mesh file",
        ));
    }
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let sphere_radius = f64::from_le_bytes(b);

    let x_cell = read_vec3s(&mut r)?;
    let x_edge = read_vec3s(&mut r)?;
    let x_vertex = read_vec3s(&mut r)?;
    let unflat2 =
        |xs: Vec<u32>| -> Vec<[u32; 2]> { xs.chunks_exact(2).map(|c| [c[0], c[1]]).collect() };
    let unflat3 = |xs: Vec<u32>| -> Vec<[u32; 3]> {
        xs.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect()
    };
    let cells_on_edge = unflat2(read_u32s(&mut r)?);
    let vertices_on_edge = unflat2(read_u32s(&mut r)?);
    let cells_on_vertex = unflat3(read_u32s(&mut r)?);
    let edges_on_vertex = unflat3(read_u32s(&mut r)?);
    let cell_offsets = read_u32s(&mut r)?;
    let edges_on_cell = read_u32s(&mut r)?;
    let vertices_on_cell = read_u32s(&mut r)?;
    let cells_on_cell = read_u32s(&mut r)?;
    let edge_sign_on_cell = read_i8s(&mut r)?;
    let eoe_offsets = read_u32s(&mut r)?;
    let edges_on_edge = read_u32s(&mut r)?;
    let weights_on_edge = read_f64s(&mut r)?;
    let dc_edge = read_f64s(&mut r)?;
    let dv_edge = read_f64s(&mut r)?;
    let area_cell = read_f64s(&mut r)?;
    let area_triangle = read_f64s(&mut r)?;
    let kites = read_f64s(&mut r)?;
    let kite_areas_on_vertex: Vec<[f64; 3]> =
        kites.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    let normal_edge = read_vec3s(&mut r)?;
    let tangent_edge = read_vec3s(&mut r)?;
    let vsigns = read_i8s(&mut r)?;
    let edge_sign_on_vertex: Vec<[i8; 3]> =
        vsigns.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    let boundary_edge: Vec<bool> = read_i8s(&mut r)?.into_iter().map(|b| b != 0).collect();

    Ok(Mesh {
        sphere_radius,
        x_cell,
        x_edge,
        x_vertex,
        cells_on_edge,
        vertices_on_edge,
        cells_on_vertex,
        edges_on_vertex,
        cell_offsets,
        edges_on_cell,
        vertices_on_cell,
        cells_on_cell,
        edge_sign_on_cell,
        eoe_offsets,
        edges_on_edge,
        weights_on_edge,
        dc_edge,
        dv_edge,
        area_cell,
        area_triangle,
        kite_areas_on_vertex,
        normal_edge,
        tangent_edge,
        edge_sign_on_vertex,
        boundary_edge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_every_field() {
        let mesh = crate::generate(2, 0);
        let dir = std::env::temp_dir();
        let path = dir.join("mpas_mesh_roundtrip_test.msh");
        save_mesh(&mesh, &path).unwrap();
        let back = load_mesh(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(mesh.sphere_radius, back.sphere_radius);
        assert_eq!(mesh.x_cell, back.x_cell);
        assert_eq!(mesh.cells_on_edge, back.cells_on_edge);
        assert_eq!(mesh.vertices_on_edge, back.vertices_on_edge);
        assert_eq!(mesh.cells_on_vertex, back.cells_on_vertex);
        assert_eq!(mesh.edges_on_vertex, back.edges_on_vertex);
        assert_eq!(mesh.cell_offsets, back.cell_offsets);
        assert_eq!(mesh.edges_on_cell, back.edges_on_cell);
        assert_eq!(mesh.vertices_on_cell, back.vertices_on_cell);
        assert_eq!(mesh.cells_on_cell, back.cells_on_cell);
        assert_eq!(mesh.edge_sign_on_cell, back.edge_sign_on_cell);
        assert_eq!(mesh.eoe_offsets, back.eoe_offsets);
        assert_eq!(mesh.edges_on_edge, back.edges_on_edge);
        assert_eq!(mesh.weights_on_edge, back.weights_on_edge);
        assert_eq!(mesh.dc_edge, back.dc_edge);
        assert_eq!(mesh.dv_edge, back.dv_edge);
        assert_eq!(mesh.area_cell, back.area_cell);
        assert_eq!(mesh.area_triangle, back.area_triangle);
        assert_eq!(mesh.kite_areas_on_vertex, back.kite_areas_on_vertex);
        assert_eq!(mesh.normal_edge, back.normal_edge);
        assert_eq!(mesh.tangent_edge, back.tangent_edge);
        assert_eq!(mesh.edge_sign_on_vertex, back.edge_sign_on_vertex);
        assert_eq!(mesh.boundary_edge, back.boundary_edge);

        // A loaded mesh passes full validation.
        back.validate();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let dir = std::env::temp_dir();
        let path = dir.join("mpas_mesh_bad_magic_test.msh");
        std::fs::write(&path, b"NOTAMESH-and-more-bytes").unwrap();
        let err = load_mesh(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_files_error_cleanly() {
        let mesh = crate::generate(1, 0);
        let dir = std::env::temp_dir();
        let path = dir.join("mpas_mesh_truncated_test.msh");
        save_mesh(&mesh, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_mesh(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
