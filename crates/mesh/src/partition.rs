//! Domain decomposition: recursive coordinate bisection plus multi-layer
//! halo construction and exchange lists.
//!
//! This plays the role of the METIS/`graph.info` partitioning in MPAS. Each
//! rank receives a [`RankLocal`] view: its owned cells, a configurable number
//! of halo layers of remote cells, the induced local edge/vertex sets, and
//! matched send/receive lists so the message runtime can update halos
//! without any global knowledge.
//!
//! Ownership rules (deterministic, rank-independent):
//! * cell owner — from RCB;
//! * edge owner — owner of `cells_on_edge[e][0]`;
//! * vertex owner — owner of `cells_on_vertex[v][0]`.

use crate::mesh::{CellId, EdgeId, Mesh, VertexId};
use std::collections::HashMap;

/// A partition of a mesh across `n_ranks` ranks.
#[derive(Debug, Clone)]
pub struct MeshPartition {
    /// Number of parts.
    pub n_ranks: usize,
    /// Owning rank of every global cell.
    pub owner_cell: Vec<u32>,
    /// Owning rank of every global edge.
    pub owner_edge: Vec<u32>,
    /// Per-rank local views.
    pub ranks: Vec<RankLocal>,
}

/// One rank's local view of the mesh.
#[derive(Debug, Clone)]
pub struct RankLocal {
    /// This rank's id.
    pub rank: usize,
    /// Global cell ids: owned first, then halo layer 1, layer 2, ...
    pub cells: Vec<CellId>,
    /// Number of owned cells (prefix of `cells`).
    pub n_owned_cells: usize,
    /// Global edge ids: edges owned by this rank first, then remote edges
    /// touching any local cell.
    pub edges: Vec<EdgeId>,
    /// Number of owned edges (prefix of `edges`).
    pub n_owned_edges: usize,
    /// Global vertex ids of all vertices whose three cells are all local.
    pub vertices: Vec<VertexId>,
    /// Map global cell id -> local index.
    pub cell_g2l: HashMap<CellId, u32>,
    /// Map global edge id -> local index.
    pub edge_g2l: HashMap<EdgeId, u32>,
    /// Per neighbor rank: local indices of **owned** cells to send.
    pub send_cells: Vec<(usize, Vec<u32>)>,
    /// Per neighbor rank: local indices of **halo** cells to receive.
    pub recv_cells: Vec<(usize, Vec<u32>)>,
    /// Per neighbor rank: local indices of owned edges to send.
    pub send_edges: Vec<(usize, Vec<u32>)>,
    /// Per neighbor rank: local indices of halo edges to receive.
    pub recv_edges: Vec<(usize, Vec<u32>)>,
}

impl RankLocal {
    /// Total number of local cells (owned + halo).
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total number of local edges (owned + halo).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Bytes exchanged per halo update of one `f64` cell field plus one
    /// `f64` edge field (used by the communication cost model).
    pub fn halo_bytes(&self) -> usize {
        let cells: usize = self.recv_cells.iter().map(|(_, v)| v.len()).sum();
        let edges: usize = self.recv_edges.iter().map(|(_, v)| v.len()).sum();
        (cells + edges) * std::mem::size_of::<f64>()
    }
}

/// Recursive coordinate bisection of the cell centers into `n_parts`
/// near-equal parts. Returns the owner of each cell.
pub fn rcb_partition(mesh: &Mesh, n_parts: usize) -> Vec<u32> {
    assert!(n_parts >= 1);
    let mut owner = vec![0u32; mesh.n_cells()];
    let mut idx: Vec<u32> = (0..mesh.n_cells() as u32).collect();
    rcb_recurse(mesh, &mut idx, 0, n_parts, &mut owner);
    owner
}

fn rcb_recurse(mesh: &Mesh, idx: &mut [u32], first_part: usize, n_parts: usize, owner: &mut [u32]) {
    if n_parts == 1 {
        for &i in idx.iter() {
            owner[i as usize] = first_part as u32;
        }
        return;
    }
    // Split proportionally so odd rank counts stay balanced.
    let left_parts = n_parts / 2;
    let right_parts = n_parts - left_parts;
    let split_at = idx.len() * left_parts / n_parts;

    // Pick the coordinate with the largest spread.
    let spread = |get: fn(&Mesh, u32) -> f64| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in idx.iter() {
            let v = get(mesh, i);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    };
    let fx = |m: &Mesh, i: u32| m.x_cell[i as usize].x;
    let fy = |m: &Mesh, i: u32| m.x_cell[i as usize].y;
    let fz = |m: &Mesh, i: u32| m.x_cell[i as usize].z;
    let (sx, sy, sz) = (spread(fx), spread(fy), spread(fz));
    let key: fn(&Mesh, u32) -> f64 = if sx >= sy && sx >= sz {
        fx
    } else if sy >= sz {
        fy
    } else {
        fz
    };
    idx.sort_by(|&a, &b| {
        key(mesh, a)
            .partial_cmp(&key(mesh, b))
            .unwrap()
            .then(a.cmp(&b))
    });
    let (left, right) = idx.split_at_mut(split_at);
    rcb_recurse(mesh, left, first_part, left_parts, owner);
    rcb_recurse(mesh, right, first_part + left_parts, right_parts, owner);
}

impl MeshPartition {
    /// Partition `mesh` into `n_ranks` parts with `halo_layers` layers of
    /// ghost cells (the shallow-water RK4 step with TRiSK stencils needs 3
    /// layers to advance owned points without mid-step communication).
    pub fn build(mesh: &Mesh, n_ranks: usize, halo_layers: usize) -> Self {
        let owner_cell = rcb_partition(mesh, n_ranks);
        let owner_edge: Vec<u32> = mesh
            .cells_on_edge
            .iter()
            .map(|&[c1, _]| owner_cell[c1 as usize])
            .collect();

        let mut ranks = Vec::with_capacity(n_ranks);
        for r in 0..n_ranks {
            ranks.push(Self::build_rank(
                mesh,
                &owner_cell,
                &owner_edge,
                r,
                halo_layers,
            ));
        }
        let mut part = MeshPartition {
            n_ranks,
            owner_cell,
            owner_edge,
            ranks,
        };
        part.wire_exchange_lists(mesh);
        part
    }

    /// Number of mesh edges whose two cells live on different ranks — the
    /// classic partition-quality metric (communication volume is
    /// proportional to it).
    pub fn edge_cut(&self, mesh: &Mesh) -> usize {
        mesh.cells_on_edge
            .iter()
            .filter(|&&[a, b]| self.owner_cell[a as usize] != self.owner_cell[b as usize])
            .count()
    }

    /// Total halo cells across ranks (replication overhead of the chosen
    /// halo depth).
    pub fn total_halo_cells(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.n_cells() - r.n_owned_cells)
            .sum()
    }

    fn build_rank(
        mesh: &Mesh,
        owner_cell: &[u32],
        owner_edge: &[u32],
        rank: usize,
        halo_layers: usize,
    ) -> RankLocal {
        // Owned cells in ascending global order (deterministic).
        let mut cells: Vec<CellId> = (0..mesh.n_cells() as u32)
            .filter(|&c| owner_cell[c as usize] == rank as u32)
            .collect();
        let n_owned_cells = cells.len();
        let mut in_set: HashMap<CellId, u32> = cells
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();

        // Breadth-first halo layers over cellsOnCell.
        let mut frontier_start = 0;
        for _layer in 0..halo_layers {
            let frontier_end = cells.len();
            let mut next: Vec<CellId> = Vec::new();
            for k in frontier_start..frontier_end {
                let g = cells[k] as usize;
                for &nb in mesh.cells_of_cell(g) {
                    if let std::collections::hash_map::Entry::Vacant(slot) = in_set.entry(nb) {
                        slot.insert((cells.len() + next.len()) as u32);
                        next.push(nb);
                    }
                }
            }
            next.sort_unstable();
            // Re-register with sorted order for determinism.
            for (off, &g) in next.iter().enumerate() {
                in_set.insert(g, (cells.len() + off) as u32);
            }
            cells.extend_from_slice(&next);
            frontier_start = frontier_end;
        }

        // Local edges: all edges of local cells; owned-by-me first.
        let mut edge_set: Vec<EdgeId> = Vec::new();
        let mut seen_edges: HashMap<EdgeId, ()> = HashMap::new();
        for &g in &cells {
            for &e in mesh.edges_of_cell(g as usize) {
                if seen_edges.insert(e, ()).is_none() {
                    edge_set.push(e);
                }
            }
        }
        let mut owned_edges: Vec<EdgeId> = edge_set
            .iter()
            .copied()
            .filter(|&e| owner_edge[e as usize] == rank as u32)
            .collect();
        let mut halo_edges: Vec<EdgeId> = edge_set
            .iter()
            .copied()
            .filter(|&e| owner_edge[e as usize] != rank as u32)
            .collect();
        owned_edges.sort_unstable();
        halo_edges.sort_unstable();
        let n_owned_edges = owned_edges.len();
        let mut edges = owned_edges;
        edges.extend_from_slice(&halo_edges);
        let edge_g2l: HashMap<EdgeId, u32> = edges
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();

        // Local vertices: those whose 3 cells are all local (diagnostics on
        // them are then locally computable).
        let mut vertices: Vec<VertexId> = (0..mesh.n_vertices() as u32)
            .filter(|&v| {
                mesh.cells_on_vertex[v as usize]
                    .iter()
                    .all(|c| in_set.contains_key(c))
            })
            .collect();
        vertices.sort_unstable();

        RankLocal {
            rank,
            cells,
            n_owned_cells,
            edges,
            n_owned_edges,
            vertices,
            cell_g2l: in_set,
            edge_g2l,
            send_cells: Vec::new(),
            recv_cells: Vec::new(),
            send_edges: Vec::new(),
            recv_edges: Vec::new(),
        }
    }

    /// Build matched send/recv lists. Both sides enumerate the transferred
    /// global ids in the receiver's halo order, so packing on the sender and
    /// unpacking on the receiver agree element-by-element.
    fn wire_exchange_lists(&mut self, _mesh: &Mesh) {
        let n = self.n_ranks;
        // (from, to) -> global cell ids in receiver order.
        let mut cell_flows: HashMap<(usize, usize), Vec<CellId>> = HashMap::new();
        let mut edge_flows: HashMap<(usize, usize), Vec<EdgeId>> = HashMap::new();
        for r in 0..n {
            let local = &self.ranks[r];
            for &g in &local.cells[local.n_owned_cells..] {
                let o = self.owner_cell[g as usize] as usize;
                cell_flows.entry((o, r)).or_default().push(g);
            }
            for &g in &local.edges[local.n_owned_edges..] {
                let o = self.owner_edge[g as usize] as usize;
                edge_flows.entry((o, r)).or_default().push(g);
            }
        }
        for r in 0..n {
            let mut send_cells = Vec::new();
            let mut recv_cells = Vec::new();
            let mut send_edges = Vec::new();
            let mut recv_edges = Vec::new();
            for other in 0..n {
                if other == r {
                    continue;
                }
                if let Some(globals) = cell_flows.get(&(r, other)) {
                    let locals = globals.iter().map(|g| self.ranks[r].cell_g2l[g]).collect();
                    send_cells.push((other, locals));
                }
                if let Some(globals) = cell_flows.get(&(other, r)) {
                    let locals = globals.iter().map(|g| self.ranks[r].cell_g2l[g]).collect();
                    recv_cells.push((other, locals));
                }
                if let Some(globals) = edge_flows.get(&(r, other)) {
                    let locals = globals.iter().map(|g| self.ranks[r].edge_g2l[g]).collect();
                    send_edges.push((other, locals));
                }
                if let Some(globals) = edge_flows.get(&(other, r)) {
                    let locals = globals.iter().map(|g| self.ranks[r].edge_g2l[g]).collect();
                    recv_edges.push((other, locals));
                }
            }
            let rl = &mut self.ranks[r];
            rl.send_cells = send_cells;
            rl.recv_cells = recv_cells;
            rl.send_edges = send_edges;
            rl.recv_edges = recv_edges;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icosahedron::IcosaGrid;
    use crate::voronoi::build_mesh;

    fn mesh() -> Mesh {
        build_mesh(&IcosaGrid::subdivide(3))
    }

    #[test]
    fn ownership_is_a_partition() {
        let m = mesh();
        let p = MeshPartition::build(&m, 4, 2);
        let mut counts = vec![0usize; 4];
        for &o in &p.owner_cell {
            counts[o as usize] += 1;
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, m.n_cells());
        // Balance within 2%.
        let ideal = m.n_cells() as f64 / 4.0;
        for &c in &counts {
            assert!(
                (c as f64 / ideal - 1.0).abs() < 0.02,
                "imbalance: {counts:?}"
            );
        }
    }

    #[test]
    fn owned_regions_are_disjoint_and_cover() {
        let m = mesh();
        let p = MeshPartition::build(&m, 5, 1);
        let mut seen_cells = vec![false; m.n_cells()];
        let mut seen_edges = vec![false; m.n_edges()];
        for r in &p.ranks {
            for &c in &r.cells[..r.n_owned_cells] {
                assert!(!seen_cells[c as usize], "cell {c} owned twice");
                seen_cells[c as usize] = true;
            }
            for &e in &r.edges[..r.n_owned_edges] {
                assert!(!seen_edges[e as usize], "edge {e} owned twice");
                seen_edges[e as usize] = true;
            }
        }
        assert!(seen_cells.iter().all(|&b| b));
        assert!(seen_edges.iter().all(|&b| b));
    }

    #[test]
    fn halo_layers_grow_monotonically() {
        let m = mesh();
        let p1 = MeshPartition::build(&m, 4, 1);
        let p2 = MeshPartition::build(&m, 4, 2);
        let p3 = MeshPartition::build(&m, 4, 3);
        for r in 0..4 {
            assert!(p1.ranks[r].n_cells() < p2.ranks[r].n_cells());
            assert!(p2.ranks[r].n_cells() < p3.ranks[r].n_cells());
            // Owned counts are identical regardless of halo depth.
            assert_eq!(p1.ranks[r].n_owned_cells, p3.ranks[r].n_owned_cells);
        }
    }

    #[test]
    fn halo_layer1_is_exactly_the_cell_neighborhood() {
        let m = mesh();
        let p = MeshPartition::build(&m, 3, 1);
        for r in &p.ranks {
            let owned: std::collections::HashSet<_> =
                r.cells[..r.n_owned_cells].iter().copied().collect();
            let halo: std::collections::HashSet<_> =
                r.cells[r.n_owned_cells..].iter().copied().collect();
            let mut expect = std::collections::HashSet::new();
            for &c in &owned {
                for &nb in m.cells_of_cell(c as usize) {
                    if !owned.contains(&nb) {
                        expect.insert(nb);
                    }
                }
            }
            assert_eq!(halo, expect, "rank {} halo mismatch", r.rank);
        }
    }

    #[test]
    fn exchange_lists_are_matched() {
        let m = mesh();
        let p = MeshPartition::build(&m, 4, 2);
        for r in 0..4 {
            for &(to, ref send) in &p.ranks[r].send_cells {
                let recv = p.ranks[to]
                    .recv_cells
                    .iter()
                    .find(|&&(from, _)| from == r)
                    .map(|(_, v)| v)
                    .expect("missing recv side");
                assert_eq!(send.len(), recv.len());
                // Same global ids in the same order on both sides.
                for (s, rcv) in send.iter().zip(recv) {
                    let g_send = p.ranks[r].cells[*s as usize];
                    let g_recv = p.ranks[to].cells[*rcv as usize];
                    assert_eq!(g_send, g_recv);
                }
                // Sender only sends what it owns; receiver only fills halo.
                for s in send {
                    assert!((*s as usize) < p.ranks[r].n_owned_cells);
                }
                for rcv in recv {
                    assert!((*rcv as usize) >= p.ranks[to].n_owned_cells);
                }
            }
        }
    }

    #[test]
    fn every_halo_cell_is_covered_by_exactly_one_recv() {
        let m = mesh();
        let p = MeshPartition::build(&m, 4, 2);
        for r in &p.ranks {
            let mut covered = vec![0u32; r.n_cells()];
            for (_, list) in &r.recv_cells {
                for &l in list {
                    covered[l as usize] += 1;
                }
            }
            for (l, &c) in covered.iter().enumerate() {
                let expect = if l < r.n_owned_cells { 0 } else { 1 };
                assert_eq!(c, expect, "cell local {l} of rank {}", r.rank);
            }
        }
    }

    #[test]
    fn single_rank_partition_has_no_halo() {
        let m = mesh();
        let p = MeshPartition::build(&m, 1, 3);
        assert_eq!(p.ranks[0].n_owned_cells, m.n_cells());
        assert_eq!(p.ranks[0].n_cells(), m.n_cells());
        assert_eq!(p.ranks[0].n_owned_edges, m.n_edges());
        assert!(p.ranks[0].recv_cells.is_empty());
        assert_eq!(p.ranks[0].vertices.len(), m.n_vertices());
    }

    #[test]
    fn rcb_cuts_fewer_edges_than_a_cyclic_partition() {
        // Geometric partitions keep neighborhoods together: the RCB edge
        // cut must be far below a cells-dealt-round-robin partition.
        let m = mesh();
        let p = MeshPartition::build(&m, 8, 1);
        let rcb_cut = p.edge_cut(&m);
        let cyclic_cut = m
            .cells_on_edge
            .iter()
            .filter(|&&[a, b]| a % 8 != b % 8)
            .count();
        assert!(
            rcb_cut * 3 < cyclic_cut,
            "RCB {rcb_cut} vs cyclic {cyclic_cut}"
        );
        // Scaling sanity: the cut grows sublinearly with rank count.
        let p16 = MeshPartition::build(&m, 16, 1);
        assert!(p16.edge_cut(&m) < 2 * rcb_cut + m.n_edges() / 10);
    }

    #[test]
    fn halo_volume_tracks_surface_not_volume() {
        // Halo cells should be O(sqrt(cells/rank)) per rank per layer.
        let m = mesh();
        let p = MeshPartition::build(&m, 4, 1);
        let per_rank = p.total_halo_cells() / 4;
        let owned = m.n_cells() / 4;
        let ring_estimate = 3.46 * (owned as f64).sqrt();
        assert!(
            (per_rank as f64) < 3.0 * ring_estimate,
            "halo {per_rank} vs ring {ring_estimate}"
        );
    }

    #[test]
    fn rcb_is_deterministic() {
        let m = mesh();
        let a = rcb_partition(&m, 7);
        let b = rcb_partition(&m, 7);
        assert_eq!(a, b);
    }
}
