//! Variable-resolution SCVT meshes via density-weighted Lloyd relaxation.
//!
//! MPAS's defining feature (Ringler et al. 2011, cited by the paper) is the
//! multiresolution SCVT: given a density function ρ on the sphere, Lloyd's
//! algorithm with mass-weighted centroids concentrates generators where ρ
//! is large; the equilibrium cell spacing scales like ρ^(-1/4). The paper
//! evaluates on quasi-uniform meshes (ρ ≡ 1), but the kernels and the
//! hybrid engine are resolution-agnostic, and this module lets tests and
//! examples exercise them on genuinely multiresolution meshes.
//!
//! Topology is kept fixed across sweeps (valid for modest density
//! contrasts and iteration counts; the builder re-derives all geometry
//! each sweep so the result is a fully consistent [`Mesh`]).

use crate::icosahedron::IcosaGrid;
use crate::mesh::Mesh;
use crate::voronoi::build_mesh;
use mpas_geom::{spherical_triangle_area, Vec3};

/// One density-weighted Lloyd sweep: move every generator to the ρ-weighted
/// centroid of its Voronoi cell. Returns the maximum displacement in
/// radians.
pub fn lloyd_step_weighted(
    grid: &mut IcosaGrid,
    mesh: &Mesh,
    density: impl Fn(Vec3) -> f64,
) -> f64 {
    let mut max_move: f64 = 0.0;
    let mut ring: Vec<Vec3> = Vec::with_capacity(8);
    for i in 0..mesh.n_cells() {
        ring.clear();
        ring.extend(
            mesh.vertices_of_cell(i)
                .iter()
                .map(|&v| mesh.x_vertex[v as usize]),
        );
        let anchor: Vec3 = ring.iter().copied().sum::<Vec3>().normalized();
        let mut acc = Vec3::ZERO;
        let mut mass = 0.0;
        for k in 0..ring.len() {
            let j = (k + 1) % ring.len();
            let area = spherical_triangle_area(anchor, ring[k], ring[j]);
            // Flat-triangle centroid (normalized only at the end), matching
            // the unweighted Lloyd step exactly when density == 1.
            let centroid = (anchor + ring[k] + ring[j]) / 3.0;
            let w = area * density(centroid.normalized());
            acc += centroid * w;
            mass += w;
        }
        debug_assert!(mass > 0.0, "density must be positive");
        let new = (acc / mass).normalized();
        max_move = max_move.max(mpas_geom::arc_length(grid.points[i], new));
        grid.points[i] = new;
    }
    max_move
}

/// Generate a variable-resolution mesh: subdivide to `level`, then apply
/// `iters` density-weighted Lloyd sweeps.
pub fn generate_variable(level: u32, iters: u32, density: impl Fn(Vec3) -> f64 + Copy) -> Mesh {
    let mut grid = IcosaGrid::subdivide(level);
    let mut mesh = build_mesh(&grid);
    for _ in 0..iters {
        lloyd_step_weighted(&mut grid, &mesh, density);
        mesh = build_mesh(&grid);
    }
    mesh
}

/// A smooth bump density: `1 + (amplitude-1) * exp(-(d/width)^2)` where `d`
/// is the arc distance to `center` — the standard refinement-region shape
/// used in MPAS multiresolution studies.
pub fn bump_density(center: Vec3, width: f64, amplitude: f64) -> impl Fn(Vec3) -> f64 + Copy {
    move |p: Vec3| {
        let d = mpas_geom::arc_length(p.normalized(), center.normalized());
        1.0 + (amplitude - 1.0) * (-(d / width).powi(2)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_density_reduces_to_plain_lloyd() {
        let mut grid_a = IcosaGrid::subdivide(2);
        let mut grid_b = grid_a.clone();
        let mesh = build_mesh(&grid_a);
        let da = lloyd_step_weighted(&mut grid_a, &mesh, |_| 1.0);
        let db = crate::lloyd::lloyd_step(&mut grid_b, &mesh);
        assert!((da - db).abs() < 1e-12);
        for (a, b) in grid_a.points.iter().zip(&grid_b.points) {
            assert!(a.dist(*b) < 1e-12);
        }
    }

    #[test]
    fn refinement_region_gets_smaller_cells() {
        let center = Vec3::new(1.0, 0.0, 0.0);
        let density = bump_density(center, 0.6, 8.0);
        // Lloyd converges slowly toward the ρ^(-1/2) equilibrium area ratio
        // (≈2.8 here); 100 sweeps reach ≈1.5, enough to verify the
        // mechanism while keeping the test fast.
        let mesh = generate_variable(3, 100, density);
        // Mean cell area inside the bump vs. on the far side.
        let mut near = (0.0, 0usize);
        let mut far = (0.0, 0usize);
        for i in 0..mesh.n_cells() {
            let d = mpas_geom::arc_length(mesh.x_cell[i], center);
            if d < 0.4 {
                near.0 += mesh.area_cell[i];
                near.1 += 1;
            } else if d > 2.0 {
                far.0 += mesh.area_cell[i];
                far.1 += 1;
            }
        }
        let near_mean = near.0 / near.1 as f64;
        let far_mean = far.0 / far.1 as f64;
        assert!(
            far_mean / near_mean > 1.45,
            "no refinement: near {near_mean:.3e} vs far {far_mean:.3e}"
        );
        // Still a structurally valid mesh (areas tile, signs consistent...).
        mesh.validate();
    }

    #[test]
    fn variable_mesh_still_runs_well_formed_reductions() {
        // The pattern machinery is resolution-agnostic: the label matrix on
        // a variable mesh still matches the gather form bit-for-bit.
        use crate::Mesh;
        let mesh: Mesh = generate_variable(2, 5, bump_density(Vec3::new(0.0, 0.0, 1.0), 0.8, 4.0));
        let x: Vec<f64> = (0..mesh.n_edges())
            .map(|e| (e as f64 * 0.7).sin())
            .collect();
        let mut gather = vec![0.0; mesh.n_cells()];
        for (i, g) in gather.iter_mut().enumerate() {
            let mut acc = 0.0;
            for slot in mesh.cell_range(i) {
                acc += mesh.edge_sign_on_cell[slot] as f64 * x[mesh.edges_on_cell[slot] as usize];
            }
            *g = acc;
        }
        let total: f64 = gather.iter().sum();
        assert!(total.abs() < 1e-9);
    }

    #[test]
    fn bump_density_has_expected_profile() {
        let c = Vec3::new(0.0, 1.0, 0.0);
        let d = bump_density(c, 0.5, 10.0);
        assert!((d(c) - 10.0).abs() < 1e-12);
        let far = Vec3::new(0.0, -1.0, 0.0);
        assert!(d(far) < 1.01);
        // Monotone decreasing with distance.
        let mid = Vec3::new(1.0, 1.0, 0.0).normalized();
        assert!(d(c) > d(mid) && d(mid) > d(far));
    }
}
