//! The MPAS horizontal-mesh specification.
//!
//! [`Mesh`] carries every connectivity and geometry array the shallow-water
//! core needs, mirroring the MPAS mesh-file variables (`cellsOnEdge`,
//! `edgesOnCell`, `weightsOnEdge`, `kiteAreasOnVertex`, ...). Variable-degree
//! relations (cells have 5–7 edges) are stored in CSR form; fixed-degree
//! relations (edges touch exactly 2 cells and 2 vertices, vertices exactly
//! 3 cells and 3 edges) use inline arrays.
//!
//! # Ordering conventions (load-bearing — the kernels rely on these)
//!
//! * `cells_on_edge[e] = [c1, c2]`: the positive edge normal `n̂_e` points
//!   from `c1` toward `c2`.
//! * `vertices_on_edge[e] = [v1, v2]`: the positive edge tangent
//!   `t̂_e = r̂ × n̂_e` points from `v1` toward `v2`.
//! * `edges_on_cell` is ordered counterclockwise (seen from outside the
//!   sphere); `vertices_on_cell[k]` is the vertex **between**
//!   `edges_on_cell[k]` and `edges_on_cell[k+1 mod n]`; `cells_on_cell[k]`
//!   is the neighbor across `edges_on_cell[k]`.
//! * `cells_on_vertex[v]` is counterclockwise; `edges_on_vertex[v][k]` joins
//!   `cells_on_vertex[v][k]` and `cells_on_vertex[v][(k+1) % 3]`.
//! * `edge_sign_on_cell[k]` (parallel to `edges_on_cell`) is `+1` when the
//!   edge normal points **out of** the cell.
//! * `edge_sign_on_vertex[v][k]` is `+1` when traveling along `+n̂` on the
//!   dual edge is **counterclockwise** around vertex `v`.

use mpas_geom::Vec3;

/// Index of a Voronoi cell (mass point).
pub type CellId = u32;
/// Index of an edge (velocity point).
pub type EdgeId = u32;
/// Index of a Voronoi corner / Delaunay triangle (vorticity point).
pub type VertexId = u32;

/// A complete MPAS-style horizontal mesh on the sphere.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// Sphere radius in meters; all lengths/areas below are dimensional.
    pub sphere_radius: f64,

    // ---- positions (unit vectors; multiply by `sphere_radius` for meters)
    /// Cell centers (mass points), unit vectors.
    pub x_cell: Vec<Vec3>,
    /// Edge midpoints (velocity points), unit vectors.
    pub x_edge: Vec<Vec3>,
    /// Voronoi corners (vorticity points), unit vectors.
    pub x_vertex: Vec<Vec3>,

    // ---- fixed-degree connectivity
    /// The two cells of each edge; the normal points from `[0]` to `[1]`.
    pub cells_on_edge: Vec<[CellId; 2]>,
    /// The two vertices of each edge; the tangent points from `[0]` to `[1]`.
    pub vertices_on_edge: Vec<[VertexId; 2]>,
    /// The three cells around each vertex, counterclockwise.
    pub cells_on_vertex: Vec<[CellId; 3]>,
    /// The three edges at each vertex; slot `k` joins cells `k` and `k+1`.
    pub edges_on_vertex: Vec<[EdgeId; 3]>,

    // ---- variable-degree connectivity around cells (CSR over cells)
    /// CSR offsets; cell `i` owns slots `cell_offsets[i]..cell_offsets[i+1]`.
    pub cell_offsets: Vec<u32>,
    /// Edges of each cell, counterclockwise (CSR, see `cell_offsets`).
    pub edges_on_cell: Vec<EdgeId>,
    /// Vertices of each cell; slot `k` lies between edges `k` and `k+1`.
    pub vertices_on_cell: Vec<VertexId>,
    /// Neighbor cells across the corresponding edge slot.
    pub cells_on_cell: Vec<CellId>,
    /// `+1` where the edge normal exits the cell, `-1` where it enters.
    pub edge_sign_on_cell: Vec<i8>,

    // ---- tangential-reconstruction operator (CSR over edges)
    /// CSR offsets; edge `e` owns slots `eoe_offsets[e]..eoe_offsets[e+1]`.
    pub eoe_offsets: Vec<u32>,
    /// TRiSK neighborhood: the edges of both adjacent cells, minus `e`.
    pub edges_on_edge: Vec<EdgeId>,
    /// TRiSK weights: `v_e = Σ_j weights_on_edge[j] * u[edges_on_edge[j]]`.
    pub weights_on_edge: Vec<f64>,

    // ---- geometry (meters / square meters)
    /// Arc distance between the two adjacent cell centers (dual edge length).
    pub dc_edge: Vec<f64>,
    /// Arc distance between the two adjacent vertices (primal edge length).
    pub dv_edge: Vec<f64>,
    /// Spherical area of each Voronoi cell, m².
    pub area_cell: Vec<f64>,
    /// Spherical area of each dual (Delaunay) triangle, m².
    pub area_triangle: Vec<f64>,
    /// `kite_areas_on_vertex[v][k]`: area of the intersection of the dual
    /// triangle at `v` with cell `cells_on_vertex[v][k]`.
    pub kite_areas_on_vertex: Vec<[f64; 3]>,

    // ---- edge frames
    /// Unit normal at the edge midpoint (tangent to sphere, `c1 → c2`).
    pub normal_edge: Vec<Vec3>,
    /// Unit tangent at the edge midpoint (`t̂ = r̂ × n̂`, `v1 → v2`).
    pub tangent_edge: Vec<Vec3>,
    /// `+1` when the dual-edge direction `+n̂` is CCW around the vertex.
    pub edge_sign_on_vertex: Vec<[i8; 3]>,

    /// Edges flagged as domain boundary (always `false` on the full sphere;
    /// kept because `enforce_boundary_edge` is part of the kernel set).
    pub boundary_edge: Vec<bool>,
}

impl Mesh {
    /// Number of Voronoi cells (mass points).
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.x_cell.len()
    }

    /// Number of edges (velocity points).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.x_edge.len()
    }

    /// Number of vertices (vorticity points).
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.x_vertex.len()
    }

    /// Slot range of cell `i` into the cell-CSR arrays.
    #[inline]
    pub fn cell_range(&self, i: usize) -> std::ops::Range<usize> {
        self.cell_offsets[i] as usize..self.cell_offsets[i + 1] as usize
    }

    /// Edges of cell `i`, counterclockwise.
    #[inline]
    pub fn edges_of_cell(&self, i: usize) -> &[EdgeId] {
        &self.edges_on_cell[self.cell_range(i)]
    }

    /// Vertices of cell `i`, counterclockwise (interleaved with edges).
    #[inline]
    pub fn vertices_of_cell(&self, i: usize) -> &[VertexId] {
        &self.vertices_on_cell[self.cell_range(i)]
    }

    /// Neighboring cells of cell `i` (across the corresponding edge slot).
    #[inline]
    pub fn cells_of_cell(&self, i: usize) -> &[CellId] {
        &self.cells_on_cell[self.cell_range(i)]
    }

    /// Outward signs of cell `i`'s edges (parallel to `edges_of_cell`).
    #[inline]
    pub fn edge_signs_of_cell(&self, i: usize) -> &[i8] {
        &self.edge_sign_on_cell[self.cell_range(i)]
    }

    /// Slot range of edge `e` into the edges-on-edge CSR arrays.
    #[inline]
    pub fn eoe_range(&self, e: usize) -> std::ops::Range<usize> {
        self.eoe_offsets[e] as usize..self.eoe_offsets[e + 1] as usize
    }

    /// Edge neighborhood used by the TRiSK tangential reconstruction.
    #[inline]
    pub fn edges_of_edge(&self, e: usize) -> &[EdgeId] {
        &self.edges_on_edge[self.eoe_range(e)]
    }

    /// TRiSK weights parallel to [`Mesh::edges_of_edge`].
    #[inline]
    pub fn weights_of_edge(&self, e: usize) -> &[f64] {
        &self.weights_on_edge[self.eoe_range(e)]
    }

    /// Maximum number of edges on any cell (6 for icosahedral meshes, with
    /// 12 pentagons of degree 5). Drives the label-matrix width (Alg. 4).
    pub fn max_edges(&self) -> usize {
        (0..self.n_cells())
            .map(|i| self.cell_range(i).len())
            .max()
            .unwrap_or(0)
    }

    /// Total surface area of the sphere this mesh should tile.
    pub fn sphere_area(&self) -> f64 {
        4.0 * std::f64::consts::PI * self.sphere_radius.powi(2)
    }

    /// Verify every structural invariant of the mesh. Panics with a
    /// description on the first violation; returns `self` for chaining.
    ///
    /// Checked invariants:
    /// 1. Euler's formula `V - E + F = 2` (vertices = triangles here).
    /// 2. All ids in range; CSR arrays well-formed and mutually consistent.
    /// 3. Cell areas tile the sphere; triangle areas tile the sphere.
    /// 4. Kite areas tile both each triangle and each cell.
    /// 5. Sign arrays consistent with `cells_on_edge` / orientation rules.
    /// 6. Edge frames orthonormal and consistent with vertex ordering.
    /// 7. TRiSK antisymmetry `w̃(e,e') = -w̃(e',e)` where
    ///    `w̃(e,e') = weights_on_edge * dc(e) / dv(e')`.
    pub fn validate(&self) -> &Self {
        let (nc, ne, nv) = (self.n_cells(), self.n_edges(), self.n_vertices());
        assert_eq!(
            nc as i64 - ne as i64 + nv as i64,
            2,
            "Euler formula violated: C={nc} E={ne} V={nv}"
        );
        assert_eq!(self.cell_offsets.len(), nc + 1);
        assert_eq!(self.eoe_offsets.len(), ne + 1);
        assert_eq!(
            *self.cell_offsets.last().unwrap() as usize,
            self.edges_on_cell.len()
        );
        assert_eq!(self.edges_on_cell.len(), self.vertices_on_cell.len());
        assert_eq!(self.edges_on_cell.len(), self.cells_on_cell.len());
        assert_eq!(self.edges_on_cell.len(), self.edge_sign_on_cell.len());

        // 2. id ranges + per-edge consistency with per-cell info.
        for e in 0..ne {
            let [c1, c2] = self.cells_on_edge[e];
            assert!((c1 as usize) < nc && (c2 as usize) < nc);
            assert_ne!(c1, c2, "edge {e} connects a cell to itself");
            let [v1, v2] = self.vertices_on_edge[e];
            assert!((v1 as usize) < nv && (v2 as usize) < nv);
            assert_ne!(v1, v2);
        }

        for i in 0..nc {
            let edges = self.edges_of_cell(i);
            assert!(
                (5..=7).contains(&edges.len()),
                "cell {i} degree {}",
                edges.len()
            );
            for (slot, &e) in edges.iter().enumerate() {
                let [c1, c2] = self.cells_on_edge[e as usize];
                assert!(
                    c1 as usize == i || c2 as usize == i,
                    "cell {i} lists edge {e} that does not touch it"
                );
                let sign = self.edge_signs_of_cell(i)[slot];
                let expect = if c1 as usize == i { 1 } else { -1 };
                assert_eq!(
                    sign, expect,
                    "edge_sign_on_cell wrong at cell {i} slot {slot}"
                );
                let neighbor = self.cells_of_cell(i)[slot];
                let expect_n = if c1 as usize == i { c2 } else { c1 };
                assert_eq!(
                    neighbor, expect_n,
                    "cells_on_cell wrong at cell {i} slot {slot}"
                );
            }
        }

        for v in 0..nv {
            for k in 0..3 {
                let e = self.edges_on_vertex[v][k] as usize;
                let [c1, c2] = self.cells_on_edge[e];
                let a = self.cells_on_vertex[v][k];
                let b = self.cells_on_vertex[v][(k + 1) % 3];
                assert!(
                    (c1 == a && c2 == b) || (c1 == b && c2 == a),
                    "edges_on_vertex slot mismatch at vertex {v} slot {k}"
                );
                let sign = self.edge_sign_on_vertex[v][k];
                let expect = if c1 == a { 1 } else { -1 };
                assert_eq!(
                    sign, expect,
                    "edge_sign_on_vertex wrong at vertex {v} slot {k}"
                );
                let [v1, v2] = self.vertices_on_edge[e];
                assert!(v1 as usize == v || v2 as usize == v);
            }
        }

        // 3. areas tile the sphere.
        let sphere = self.sphere_area();
        let cell_sum: f64 = self.area_cell.iter().sum();
        let tri_sum: f64 = self.area_triangle.iter().sum();
        assert!(
            (cell_sum / sphere - 1.0).abs() < 1e-9,
            "cell areas do not tile the sphere: {cell_sum} vs {sphere}"
        );
        assert!((tri_sum / sphere - 1.0).abs() < 1e-9);

        // 4. kites tile triangles and cells.
        for v in 0..nv {
            let k: f64 = self.kite_areas_on_vertex[v].iter().sum();
            assert!(
                (k / self.area_triangle[v] - 1.0).abs() < 1e-6,
                "kites do not tile triangle {v}: {k} vs {}",
                self.area_triangle[v]
            );
        }
        let mut kite_per_cell = vec![0.0f64; nc];
        for v in 0..nv {
            for k in 0..3 {
                kite_per_cell[self.cells_on_vertex[v][k] as usize] +=
                    self.kite_areas_on_vertex[v][k];
            }
        }
        for (i, &kite) in kite_per_cell.iter().enumerate() {
            assert!(
                (kite / self.area_cell[i] - 1.0).abs() < 1e-6,
                "kites do not tile cell {i}"
            );
        }

        // 6. edge frames.
        for e in 0..ne {
            let r = self.x_edge[e];
            let n = self.normal_edge[e];
            let t = self.tangent_edge[e];
            assert!((n.norm() - 1.0).abs() < 1e-12);
            assert!((t.norm() - 1.0).abs() < 1e-12);
            assert!(
                n.dot(r).abs() < 1e-9,
                "normal not tangent to sphere at edge {e}"
            );
            assert!(
                t.dist(r.normalized().cross(n)) < 1e-9,
                "t != r x n at edge {e}"
            );
            let [c1, c2] = self.cells_on_edge[e];
            let d = self.x_cell[c2 as usize] - self.x_cell[c1 as usize];
            assert!(n.dot(d) > 0.0, "normal does not point c1->c2 at edge {e}");
            let [v1, v2] = self.vertices_on_edge[e];
            let dv = self.x_vertex[v2 as usize] - self.x_vertex[v1 as usize];
            assert!(t.dot(dv) > 0.0, "tangent does not point v1->v2 at edge {e}");
            assert!(self.dc_edge[e] > 0.0 && self.dv_edge[e] > 0.0);
        }

        // 7. TRiSK antisymmetry.
        let mut slot_of: std::collections::HashMap<(EdgeId, EdgeId), f64> =
            std::collections::HashMap::new();
        for e in 0..ne {
            for (j, &ep) in self.edges_of_edge(e).iter().enumerate() {
                let w = self.weights_of_edge(e)[j];
                let w_norm = w * self.dc_edge[e] / self.dv_edge[ep as usize];
                slot_of.insert((e as EdgeId, ep), w_norm);
            }
        }
        for (&(e, ep), &w) in &slot_of {
            let back = slot_of
                .get(&(ep, e))
                .unwrap_or_else(|| panic!("edges_on_edge not symmetric: {e} -> {ep}"));
            // Mixed tolerance: the spherical-area evaluations behind the
            // kite fractions are ~1e-11 relative (tiny solid angles on
            // fine meshes), and the walks around the two cells accumulate
            // rounding differently, so allow a small absolute floor plus a
            // relative term. Weights are O(0.01..0.5), so this still pins
            // the antisymmetry to ~10 significant digits.
            assert!(
                (w + back).abs() < 2e-11 + 1e-9 * w.abs(),
                "TRiSK antisymmetry violated at ({e},{ep}): {w} vs {back}"
            );
        }

        self
    }
}
