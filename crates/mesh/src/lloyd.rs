//! Topology-preserving Lloyd relaxation.
//!
//! A spherical CVT is the fixed point of Lloyd's map: every generator sits
//! at the mass centroid of its Voronoi cell. Subdivided-icosahedral points
//! are already very close to centroidal; a few sweeps of this smoother push
//! them closer without changing the connectivity (valid because the motion
//! per sweep is a small fraction of the cell size).

use crate::icosahedron::IcosaGrid;
use crate::mesh::Mesh;
use mpas_geom::{spherical_polygon_centroid, Vec3};

/// One Lloyd sweep: move every generator to the spherical centroid of its
/// current Voronoi cell. Returns the maximum generator displacement
/// (radians); a vanishing displacement means the mesh is centroidal.
pub fn lloyd_step(grid: &mut IcosaGrid, mesh: &Mesh) -> f64 {
    let mut max_move: f64 = 0.0;
    let mut ring: Vec<Vec3> = Vec::with_capacity(8);
    for i in 0..mesh.n_cells() {
        ring.clear();
        ring.extend(
            mesh.vertices_of_cell(i)
                .iter()
                .map(|&v| mesh.x_vertex[v as usize]),
        );
        let centroid = spherical_polygon_centroid(&ring);
        max_move = max_move.max(mpas_geom::arc_length(grid.points[i], centroid));
        grid.points[i] = centroid;
    }
    max_move
}

/// How far the mesh is from centroidal: the maximum arc distance between a
/// generator and its cell centroid, in units of the local cell radius.
pub fn centroidal_defect(mesh: &Mesh) -> f64 {
    let mut worst: f64 = 0.0;
    let mut ring: Vec<Vec3> = Vec::with_capacity(8);
    for i in 0..mesh.n_cells() {
        ring.clear();
        ring.extend(
            mesh.vertices_of_cell(i)
                .iter()
                .map(|&v| mesh.x_vertex[v as usize]),
        );
        let centroid = spherical_polygon_centroid(&ring);
        let cell_radius = (mesh.area_cell[i] / std::f64::consts::PI).sqrt() / mesh.sphere_radius;
        let defect = mpas_geom::arc_length(mesh.x_cell[i], centroid) / cell_radius;
        worst = worst.max(defect);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voronoi::build_mesh;

    #[test]
    fn lloyd_reduces_centroidal_defect() {
        let mut grid = IcosaGrid::subdivide(3);
        let mesh0 = build_mesh(&grid);
        let before = centroidal_defect(&mesh0);
        lloyd_step(&mut grid, &mesh0);
        let mesh1 = build_mesh(&grid);
        let after = centroidal_defect(&mesh1);
        assert!(
            after < before,
            "Lloyd did not improve centroidality: {before} -> {after}"
        );
        // The relaxed mesh is still structurally valid.
        mesh1.validate();
    }

    #[test]
    fn lloyd_converges_monotonically_in_displacement() {
        let mut grid = IcosaGrid::subdivide(2);
        let mut mesh = build_mesh(&grid);
        let mut last = f64::INFINITY;
        for sweep in 0..5 {
            let moved = lloyd_step(&mut grid, &mesh);
            mesh = build_mesh(&grid);
            assert!(
                moved < last * 1.01,
                "sweep {sweep}: displacement grew {last} -> {moved}"
            );
            last = moved;
        }
        assert!(last < 1e-3, "Lloyd not converging: last move {last}");
    }

    #[test]
    fn generate_with_lloyd_matches_counts() {
        let m = crate::generate(2, 2);
        assert_eq!(m.n_cells(), 162);
        m.validate();
    }
}
