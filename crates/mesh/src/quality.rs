//! Mesh-quality statistics, used by the Table III reproduction and by tests
//! that guard against degenerate geometry.

use crate::mesh::Mesh;

/// Summary statistics of a mesh's uniformity and orthogonality.
#[derive(Debug, Clone, Copy)]
pub struct MeshQuality {
    /// Number of cells.
    pub n_cells: usize,
    /// Number of edges.
    pub n_edges: usize,
    /// Number of vertices.
    pub n_vertices: usize,
    /// Nominal resolution: mean cell-center spacing `dc`, in kilometers.
    pub mean_dc_km: f64,
    /// Smallest / largest cell area divided by the mean cell area.
    pub area_ratio_min: f64,
    /// Largest cell area divided by the mean cell area.
    pub area_ratio_max: f64,
    /// Smallest dv/dc ratio (orthogonality/quality indicator).
    pub min_dv_dc: f64,
}

impl MeshQuality {
    /// Compute quality statistics for a mesh.
    pub fn of(mesh: &Mesh) -> MeshQuality {
        let mean_area = mesh.area_cell.iter().sum::<f64>() / mesh.n_cells() as f64;
        let (mut amin, mut amax) = (f64::INFINITY, 0.0f64);
        for &a in &mesh.area_cell {
            amin = amin.min(a);
            amax = amax.max(a);
        }
        let mean_dc = mesh.dc_edge.iter().sum::<f64>() / mesh.n_edges() as f64;
        let min_dv_dc = mesh
            .dv_edge
            .iter()
            .zip(&mesh.dc_edge)
            .map(|(&dv, &dc)| dv / dc)
            .fold(f64::INFINITY, f64::min);
        MeshQuality {
            n_cells: mesh.n_cells(),
            n_edges: mesh.n_edges(),
            n_vertices: mesh.n_vertices(),
            mean_dc_km: mean_dc / 1000.0,
            area_ratio_min: amin / mean_area,
            area_ratio_max: amax / mean_area,
            min_dv_dc,
        }
    }
}

impl std::fmt::Display for MeshQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cells={} edges={} vertices={} mean_dc={:.1}km area_ratio=[{:.3},{:.3}] min_dv/dc={:.3}",
            self.n_cells,
            self.n_edges,
            self.n_vertices,
            self.mean_dc_km,
            self.area_ratio_min,
            self.area_ratio_max,
            self.min_dv_dc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icosahedron::IcosaGrid;
    use crate::voronoi::build_mesh;

    #[test]
    fn quality_of_level4_is_quasi_uniform() {
        let m = build_mesh(&IcosaGrid::subdivide(4));
        let q = MeshQuality::of(&m);
        assert_eq!(q.n_cells, 2562);
        // Quasi-uniform: no cell smaller than half or larger than 1.5x mean.
        assert!(q.area_ratio_min > 0.5, "{q}");
        assert!(q.area_ratio_max < 1.5, "{q}");
        assert!(q.min_dv_dc > 0.3, "{q}");
    }

    #[test]
    fn resolution_halves_per_level() {
        let q3 = MeshQuality::of(&build_mesh(&IcosaGrid::subdivide(3)));
        let q4 = MeshQuality::of(&build_mesh(&IcosaGrid::subdivide(4)));
        let ratio = q3.mean_dc_km / q4.mean_dc_km;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }
}
