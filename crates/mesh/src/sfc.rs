//! Space-filling-curve (Morton) partitioning — the alternative to RCB.
//!
//! MPAS production runs use graph partitioners (METIS); RCB and SFC are the
//! standard geometric fallbacks. The Morton variant orders cells by
//! interleaving the bits of their quantized Cartesian coordinates and cuts
//! the curve into equal consecutive chunks: cheaper than RCB (one global
//! sort, no recursion) with comparable locality on quasi-uniform meshes.
//! `mpas-bench`'s partitioner comparison and the tests below quantify the
//! edge-cut difference.

use crate::mesh::Mesh;

/// 3-D Morton key from coordinates in `[-1, 1]`, 21 bits per axis. Shared
/// with [`crate::reorder`], whose SFC cell ordering sorts by the same key.
pub(crate) fn morton_key(x: f64, y: f64, z: f64) -> u64 {
    const BITS: u32 = 21;
    let q = |v: f64| -> u64 {
        let t = ((v + 1.0) / 2.0).clamp(0.0, 1.0);
        ((t * ((1u64 << BITS) - 1) as f64) as u64).min((1 << BITS) - 1)
    };
    let parts = [q(x), q(y), q(z)];
    let mut out = 0u64;
    for bit in 0..BITS {
        for (axis, &p) in parts.iter().enumerate() {
            out |= ((p >> bit) & 1) << (3 * bit + axis as u32);
        }
    }
    out
}

/// Partition cells into `n_parts` consecutive chunks of the Morton order.
pub fn sfc_partition(mesh: &Mesh, n_parts: usize) -> Vec<u32> {
    assert!(n_parts >= 1);
    let mut idx: Vec<u32> = (0..mesh.n_cells() as u32).collect();
    idx.sort_by_key(|&i| {
        let p = mesh.x_cell[i as usize];
        morton_key(p.x, p.y, p.z)
    });
    let mut owner = vec![0u32; mesh.n_cells()];
    let n = mesh.n_cells();
    for (pos, &cell) in idx.iter().enumerate() {
        // Proportional chunking keeps parts within one cell of each other.
        owner[cell as usize] = ((pos * n_parts) / n) as u32;
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::rcb_partition;

    fn mesh() -> Mesh {
        crate::generate(3, 0)
    }

    #[test]
    fn sfc_is_balanced() {
        let m = mesh();
        for &parts in &[2usize, 5, 8, 13] {
            let owner = sfc_partition(&m, parts);
            let mut counts = vec![0usize; parts];
            for &o in &owner {
                counts[o as usize] += 1;
            }
            let ideal = m.n_cells() as f64 / parts as f64;
            for (r, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 - ideal).abs() <= 1.0,
                    "part {r}: {c} vs ideal {ideal}"
                );
            }
        }
    }

    #[test]
    fn sfc_locality_is_comparable_to_rcb() {
        // Both geometric methods should produce edge cuts within ~2.5x of
        // each other and far below a random partition.
        let m = mesh();
        let parts = 8;
        let cut_of = |owner: &[u32]| {
            m.cells_on_edge
                .iter()
                .filter(|&&[a, b]| owner[a as usize] != owner[b as usize])
                .count()
        };
        let sfc = cut_of(&sfc_partition(&m, parts));
        let rcb = cut_of(&rcb_partition(&m, parts));
        let pseudo_random = cut_of(
            &(0..m.n_cells() as u32)
                .map(|c| (c.wrapping_mul(2654435761)) % parts as u32)
                .collect::<Vec<_>>(),
        );
        assert!(
            sfc < pseudo_random / 3,
            "sfc {sfc} vs random {pseudo_random}"
        );
        assert!(
            (sfc as f64) < 2.5 * rcb as f64,
            "sfc cut {sfc} too far above rcb {rcb}"
        );
    }

    #[test]
    fn morton_keys_preserve_octant_ordering() {
        // Points in different octants never interleave at the top bit
        // level: the key's three highest bits are the octant id bits.
        let corners = [
            (-0.9, -0.9, -0.9),
            (0.9, -0.9, -0.9),
            (-0.9, 0.9, -0.9),
            (-0.9, -0.9, 0.9),
            (0.9, 0.9, 0.9),
        ];
        let keys: Vec<u64> = corners
            .iter()
            .map(|&(x, y, z)| morton_key(x, y, z))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "octant collision");
    }

    #[test]
    fn single_part_is_trivial() {
        let m = mesh();
        let owner = sfc_partition(&m, 1);
        assert!(owner.iter().all(|&o| o == 0));
    }
}
