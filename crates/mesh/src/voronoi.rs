//! Voronoi-dual construction: from generator points + Delaunay triangles to
//! the full MPAS mesh spec, including the TRiSK `weightsOnEdge` operator.
//!
//! On the sphere, both circumcenters of the two triangles sharing a Delaunay
//! edge lie in the perpendicular-bisector plane of that edge's chord, so the
//! Voronoi arc crosses the Delaunay arc exactly at its midpoint and at a
//! right angle. This orthogonality is what makes the C-grid discretization
//! (and the exact kite-area tiling) work.
//!
//! # TRiSK tangential reconstruction (derivation sketch)
//!
//! For a discretely nondivergent flow there is a stream function `ψ` at
//! vertices with `u_e = -(ψ_{v_k} - ψ_{v_{k-1}})/l_e` along each CCW cell
//! walk. Interpolating `ψ` to cell centers with kite-area weights
//! (`ψ̃_i = Σ_v kite_{i,v} ψ_v / A_i`) and differencing across the edge gives
//! the tangential velocity
//!
//! ```text
//! v_e = (1/d_e) [  Σ_{e'∈E(c1)\e} (1/2 − R_{c1}(e')) l_{e'} o_{e',c1} u_{e'}
//!                − Σ_{e'∈E(c2)\e} (1/2 − R_{c2}(e')) l_{e'} o_{e',c2} u_{e'} ]
//! ```
//!
//! where `o_{e',i}=±1` is the outward sign of `e'` for cell `i` and
//! `R_i(e')` is the cumulative kite-area fraction of the vertices passed
//! when walking CCW around cell `i` from `e` to `e'`. The self-term cancels
//! exactly between the two cell walks. These are the `weightsOnEdge` of the
//! MPAS mesh spec; they satisfy the energy-conserving antisymmetry
//! `w̃(e,e') = -w̃(e',e)` checked by [`Mesh::validate`].

use crate::icosahedron::IcosaGrid;
use crate::mesh::{CellId, EdgeId, Mesh, VertexId};
use mpas_geom::{
    arc_length, arc_midpoint, spherical_circumcenter, spherical_polygon_area,
    spherical_triangle_area, Vec3, EARTH_RADIUS,
};
use std::collections::HashMap;

/// Build the full MPAS mesh (Earth-radius sphere) from a triangulated point
/// set. Panics if the triangulation is not a closed 2-manifold.
pub fn build_mesh(grid: &IcosaGrid) -> Mesh {
    build_mesh_with_radius(grid, EARTH_RADIUS)
}

/// As [`build_mesh`], with an explicit sphere radius in meters.
pub fn build_mesh_with_radius(grid: &IcosaGrid, sphere_radius: f64) -> Mesh {
    let n_cells = grid.points.len();
    let n_vertices = grid.triangles.len();

    // ---- vertices: circumcenters of Delaunay triangles ---------------------
    let x_vertex: Vec<Vec3> = grid
        .triangles
        .iter()
        .map(|&[a, b, c]| {
            spherical_circumcenter(
                grid.points[a as usize],
                grid.points[b as usize],
                grid.points[c as usize],
            )
        })
        .collect();

    // ---- enumerate edges: one per Delaunay edge -----------------------------
    // Key: sorted cell pair. Value: edge id.
    let mut edge_ids: HashMap<(u32, u32), EdgeId> = HashMap::with_capacity(grid.n_edges());
    let mut cells_on_edge: Vec<[CellId; 2]> = Vec::with_capacity(grid.n_edges());
    // Adjacent triangles per edge, in discovery order.
    let mut tris_on_edge: Vec<[u32; 2]> = Vec::with_capacity(grid.n_edges());

    for (t, &[a, b, c]) in grid.triangles.iter().enumerate() {
        for (x, y) in [(a, b), (b, c), (c, a)] {
            let key = if x < y { (x, y) } else { (y, x) };
            match edge_ids.get(&key) {
                None => {
                    let id = cells_on_edge.len() as EdgeId;
                    edge_ids.insert(key, id);
                    // Normal direction convention: from the lower to the
                    // higher cell id — deterministic and cheap.
                    cells_on_edge.push([key.0, key.1]);
                    tris_on_edge.push([t as u32, u32::MAX]);
                }
                Some(&id) => {
                    let slot = &mut tris_on_edge[id as usize];
                    assert_eq!(slot[1], u32::MAX, "edge shared by >2 triangles");
                    slot[1] = t as u32;
                }
            }
        }
    }
    let n_edges = cells_on_edge.len();
    assert!(
        tris_on_edge.iter().all(|t| t[1] != u32::MAX),
        "open boundary: some edge has only one adjacent triangle"
    );
    assert_eq!(n_cells + n_vertices - 2, n_edges, "Euler formula");

    // ---- edge midpoints, frames, and vertex ordering ------------------------
    let mut x_edge = Vec::with_capacity(n_edges);
    let mut normal_edge = Vec::with_capacity(n_edges);
    let mut tangent_edge = Vec::with_capacity(n_edges);
    let mut vertices_on_edge: Vec<[VertexId; 2]> = Vec::with_capacity(n_edges);

    for e in 0..n_edges {
        let [c1, c2] = cells_on_edge[e];
        let (p1, p2) = (grid.points[c1 as usize], grid.points[c2 as usize]);
        let m = arc_midpoint(p1, p2);
        // Normal: great-circle direction from c1 to c2 at the midpoint.
        let n = (p2 - p1 - m * m.dot(p2 - p1)).normalized();
        let t = m.cross(n); // r̂ × n̂, unit by construction
        let [ta, tb] = tris_on_edge[e];
        let (va, vb) = (x_vertex[ta as usize], x_vertex[tb as usize]);
        let pair = if (vb - va).dot(t) >= 0.0 {
            [ta, tb]
        } else {
            [tb, ta]
        };
        x_edge.push(m);
        normal_edge.push(n);
        tangent_edge.push(t);
        vertices_on_edge.push(pair);
    }

    // ---- vertex-centric connectivity ----------------------------------------
    // cells_on_vertex: triangle corners, already CCW from the generator.
    let cells_on_vertex: Vec<[CellId; 3]> = grid.triangles.clone();
    let mut edges_on_vertex: Vec<[EdgeId; 3]> = vec![[0; 3]; n_vertices];
    let mut edge_sign_on_vertex: Vec<[i8; 3]> = vec![[0; 3]; n_vertices];
    for v in 0..n_vertices {
        let cs = cells_on_vertex[v];
        for k in 0..3 {
            let (a, b) = (cs[k], cs[(k + 1) % 3]);
            let key = if a < b { (a, b) } else { (b, a) };
            let e = edge_ids[&key];
            edges_on_vertex[v][k] = e;
            // +1 when +n̂ (c1->c2) runs CCW around v, i.e. from slot k to k+1.
            edge_sign_on_vertex[v][k] = if cells_on_edge[e as usize][0] == a {
                1
            } else {
                -1
            };
        }
    }

    // ---- cell-centric connectivity (CCW ordering) ----------------------------
    // Gather incident edges per cell.
    let mut degree = vec![0u32; n_cells];
    for &[c1, c2] in &cells_on_edge {
        degree[c1 as usize] += 1;
        degree[c2 as usize] += 1;
    }
    let mut cell_offsets = vec![0u32; n_cells + 1];
    for i in 0..n_cells {
        cell_offsets[i + 1] = cell_offsets[i] + degree[i];
    }
    let total_slots = cell_offsets[n_cells] as usize;
    let mut edges_on_cell = vec![0 as EdgeId; total_slots];
    let mut fill = cell_offsets.clone();
    for (e, &[c1, c2]) in cells_on_edge.iter().enumerate() {
        for c in [c1, c2] {
            edges_on_cell[fill[c as usize] as usize] = e as EdgeId;
            fill[c as usize] += 1;
        }
    }

    // Sort each cell's edges CCW by azimuth in a local tangent frame.
    for i in 0..n_cells {
        let c = grid.points[i];
        // Any vector not parallel to c seeds the tangent frame.
        let seed = if c.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        let u = seed.cross(c).normalized();
        let w = c.cross(u); // (u, w, c) right-handed => CCW from outside
        let range = cell_offsets[i] as usize..cell_offsets[i + 1] as usize;
        let slice = &mut edges_on_cell[range];
        slice.sort_by(|&ea, &eb| {
            let az = |e: EdgeId| {
                let d = x_edge[e as usize];
                d.dot(w).atan2(d.dot(u))
            };
            az(ea).partial_cmp(&az(eb)).unwrap()
        });
    }

    // Derived per-slot arrays: neighbor cell, outward sign, between-vertex.
    let mut cells_on_cell = vec![0 as CellId; total_slots];
    let mut edge_sign_on_cell = vec![0i8; total_slots];
    let mut vertices_on_cell = vec![0 as VertexId; total_slots];
    for i in 0..n_cells {
        let range = cell_offsets[i] as usize..cell_offsets[i + 1] as usize;
        let n = range.len();
        for k in 0..n {
            let slot = range.start + k;
            let e = edges_on_cell[slot] as usize;
            let [c1, c2] = cells_on_edge[e];
            let (neigh, sign) = if c1 as usize == i { (c2, 1) } else { (c1, -1) };
            cells_on_cell[slot] = neigh;
            edge_sign_on_cell[slot] = sign;
            // Vertex between edge k and edge k+1: shared vertex id.
            let e_next = edges_on_cell[range.start + (k + 1) % n] as usize;
            let [a1, a2] = vertices_on_edge[e];
            let [b1, b2] = vertices_on_edge[e_next];
            let shared = if a1 == b1 || a1 == b2 {
                a1
            } else {
                debug_assert!(
                    a2 == b1 || a2 == b2,
                    "edges {e} and {e_next} share no vertex"
                );
                a2
            };
            vertices_on_cell[slot] = shared;
        }
    }

    // ---- geometry ------------------------------------------------------------
    let r2 = sphere_radius * sphere_radius;
    let dc_edge: Vec<f64> = cells_on_edge
        .iter()
        .map(|&[a, b]| arc_length(grid.points[a as usize], grid.points[b as usize]) * sphere_radius)
        .collect();
    let dv_edge: Vec<f64> = vertices_on_edge
        .iter()
        .map(|&[a, b]| arc_length(x_vertex[a as usize], x_vertex[b as usize]) * sphere_radius)
        .collect();
    let area_triangle: Vec<f64> = cells_on_vertex
        .iter()
        .map(|&[a, b, c]| {
            spherical_triangle_area(
                grid.points[a as usize],
                grid.points[b as usize],
                grid.points[c as usize],
            ) * r2
        })
        .collect();
    let mut area_cell = vec![0.0f64; n_cells];
    {
        let mut ring: Vec<Vec3> = Vec::with_capacity(8);
        for i in 0..n_cells {
            ring.clear();
            let range = cell_offsets[i] as usize..cell_offsets[i + 1] as usize;
            ring.extend(
                vertices_on_cell[range]
                    .iter()
                    .map(|&v| x_vertex[v as usize]),
            );
            area_cell[i] = spherical_polygon_area(&ring) * r2;
        }
    }

    // Kite areas: intersection of dual triangle v with each corner cell.
    // Quad (cell center, edge-mid a, vertex, edge-mid b) split into two
    // spherical triangles. Edges adjacent to cell slot k at vertex v are the
    // vertex-edge slots k (cells k,k+1) and (k+2)%3 (cells k+2,k).
    let mut kite_areas_on_vertex: Vec<[f64; 3]> = vec![[0.0; 3]; n_vertices];
    for v in 0..n_vertices {
        let xv = x_vertex[v];
        for k in 0..3 {
            let cell = cells_on_vertex[v][k] as usize;
            let e_a = edges_on_vertex[v][k] as usize; // joins cells k, k+1
            let e_b = edges_on_vertex[v][(k + 2) % 3] as usize; // joins k+2, k
            let (ma, mb) = (x_edge[e_a], x_edge[e_b]);
            let c = grid.points[cell];
            kite_areas_on_vertex[v][k] =
                (spherical_triangle_area(c, ma, xv) + spherical_triangle_area(c, xv, mb)) * r2;
        }
    }

    // ---- TRiSK weightsOnEdge ---------------------------------------------------
    // For each edge e and each of its two cells, walk CCW from e collecting
    // (1/2 - R) * l/d * outward-sign terms (see module docs).
    let mut eoe_offsets = vec![0u32; n_edges + 1];
    for e in 0..n_edges {
        let [c1, c2] = cells_on_edge[e];
        let deg = |c: CellId| (cell_offsets[c as usize + 1] - cell_offsets[c as usize]) as u32;
        eoe_offsets[e + 1] = eoe_offsets[e] + (deg(c1) - 1) + (deg(c2) - 1);
    }
    let mut edges_on_edge = vec![0 as EdgeId; eoe_offsets[n_edges] as usize];
    let mut weights_on_edge = vec![0.0f64; eoe_offsets[n_edges] as usize];
    for e in 0..n_edges {
        let mut cursor = eoe_offsets[e] as usize;
        let d_e = dc_edge[e];
        for (which, &cell) in cells_on_edge[e].iter().enumerate() {
            let s_i = if which == 0 { 1.0 } else { -1.0 };
            let i = cell as usize;
            let range = cell_offsets[i] as usize..cell_offsets[i + 1] as usize;
            let n = range.len();
            let local_edges = &edges_on_cell[range.clone()];
            let local_verts = &vertices_on_cell[range.clone()];
            let local_signs = &edge_sign_on_cell[range];
            let j0 = local_edges
                .iter()
                .position(|&x| x as usize == e)
                .expect("edge missing from its own cell");
            let mut r_cum = 0.0;
            for step in 1..n {
                let jj = (j0 + step) % n;
                // Vertex between edge (jj-1) and edge jj is slot (jj-1+n)%n.
                let v_between = local_verts[(jj + n - 1) % n] as usize;
                // Kite fraction of that vertex belonging to cell i.
                let kslot = cells_on_vertex[v_between]
                    .iter()
                    .position(|&c| c as usize == i)
                    .expect("vertex missing its cell");
                r_cum += kite_areas_on_vertex[v_between][kslot] / area_cell[i];
                let ep = local_edges[jj] as usize;
                let o = local_signs[jj] as f64;
                edges_on_edge[cursor] = ep as EdgeId;
                weights_on_edge[cursor] = s_i * (0.5 - r_cum) * o * dv_edge[ep] / d_e;
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, eoe_offsets[e + 1] as usize);
    }

    Mesh {
        sphere_radius,
        x_cell: grid.points.clone(),
        x_edge,
        x_vertex,
        cells_on_edge,
        vertices_on_edge,
        cells_on_vertex,
        edges_on_vertex,
        cell_offsets,
        edges_on_cell,
        vertices_on_cell,
        cells_on_cell,
        edge_sign_on_cell,
        eoe_offsets,
        edges_on_edge,
        weights_on_edge,
        dc_edge,
        dv_edge,
        area_cell,
        area_triangle,
        kite_areas_on_vertex,
        normal_edge,
        tangent_edge,
        edge_sign_on_vertex,
        boundary_edge: vec![false; n_edges],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icosahedron::IcosaGrid;

    fn mesh(level: u32) -> Mesh {
        build_mesh(&IcosaGrid::subdivide(level))
    }

    #[test]
    fn level2_mesh_validates() {
        mesh(2).validate();
    }

    #[test]
    fn level3_mesh_validates() {
        mesh(3).validate();
    }

    #[test]
    fn counts_match_formulas() {
        let m = mesh(3);
        assert_eq!(m.n_cells(), 642);
        assert_eq!(m.n_vertices(), 20 * 64);
        assert_eq!(m.n_edges(), 30 * 64);
        assert_eq!(m.max_edges(), 6);
        // Exactly 12 pentagons.
        let pentagons = (0..m.n_cells())
            .filter(|&i| m.edges_of_cell(i).len() == 5)
            .count();
        assert_eq!(pentagons, 12);
    }

    #[test]
    fn voronoi_edge_crosses_delaunay_edge_at_midpoint() {
        let m = mesh(3);
        // Both circumcenters lie in the perpendicular-bisector plane of the
        // chord c1-c2 (which passes through the origin), and so does the arc
        // midpoint x_edge. Hence x_edge lies ON the Voronoi great circle and
        // BETWEEN the two vertices: coplanarity + additive arc lengths.
        for e in 0..m.n_edges() {
            let [v1, v2] = m.vertices_on_edge[e];
            let (a, b) = (m.x_vertex[v1 as usize], m.x_vertex[v2 as usize]);
            let x = m.x_edge[e];
            assert!(
                x.dot(a.cross(b)).abs() < 1e-12,
                "edge {e}: midpoint not on the Voronoi great circle"
            );
            let split = arc_length(a, x) + arc_length(x, b);
            let whole = arc_length(a, b);
            assert!(
                (split - whole).abs() < 1e-12,
                "edge {e}: midpoint not between the vertices ({split} vs {whole})"
            );
        }
    }

    #[test]
    fn tangential_reconstruction_solid_body_rotation() {
        // u = Ω' × r with Ω' along an arbitrary axis; check that
        // v_e = Σ w u recovers the analytic tangential component.
        let m = mesh(4);
        let omega = Vec3::new(0.3, -0.2, 1.0) * 1e-5;
        let u: Vec<f64> = (0..m.n_edges())
            .map(|e| {
                let vel = omega.cross(m.x_edge[e] * m.sphere_radius);
                vel.dot(m.normal_edge[e])
            })
            .collect();
        let mut rms_err = 0.0;
        let mut rms_ref = 0.0;
        for e in 0..m.n_edges() {
            let recon: f64 = m
                .edges_of_edge(e)
                .iter()
                .zip(m.weights_of_edge(e))
                .map(|(&ep, &w)| w * u[ep as usize])
                .sum();
            let vel = omega.cross(m.x_edge[e] * m.sphere_radius);
            let exact = vel.dot(m.tangent_edge[e]);
            rms_err += (recon - exact).powi(2);
            rms_ref += exact.powi(2);
        }
        let rel = (rms_err / rms_ref).sqrt();
        assert!(rel < 0.05, "tangential reconstruction rel RMS error {rel}");
    }

    #[test]
    fn divergence_of_any_field_integrates_to_zero() {
        let m = mesh(3);
        let u: Vec<f64> = (0..m.n_edges())
            .map(|e| (e as f64 * 0.7).sin() * 10.0)
            .collect();
        let mut total = 0.0;
        for i in 0..m.n_cells() {
            for (slot, &e) in m.edges_of_cell(i).iter().enumerate() {
                let s = m.edge_signs_of_cell(i)[slot] as f64;
                total += s * u[e as usize] * m.dv_edge[e as usize];
            }
        }
        assert!(total.abs() < 1e-6 * 10.0 * m.n_edges() as f64);
    }

    #[test]
    fn circulation_of_any_field_integrates_to_zero() {
        let m = mesh(3);
        let u: Vec<f64> = (0..m.n_edges())
            .map(|e| (e as f64 * 1.3).cos() * 5.0)
            .collect();
        let mut total = 0.0;
        for v in 0..m.n_vertices() {
            for k in 0..3 {
                let e = m.edges_on_vertex[v][k] as usize;
                total += m.edge_sign_on_vertex[v][k] as f64 * u[e] * m.dc_edge[e];
            }
        }
        assert!(total.abs() < 1e-6 * 5.0 * m.n_edges() as f64);
    }

    #[test]
    fn dc_and_dv_are_comparable_scales() {
        let m = mesh(3);
        for e in 0..m.n_edges() {
            let ratio = m.dv_edge[e] / m.dc_edge[e];
            assert!(
                (0.3..3.0).contains(&ratio),
                "edge {e} dv/dc ratio {ratio} out of range"
            );
        }
    }
}
