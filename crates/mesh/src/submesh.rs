//! Per-rank local meshes.
//!
//! Each rank computes on a locally-indexed copy of its region: the owned
//! cells, `L` halo layers, and a **phantom** fringe — one extra ring of
//! cells (and the missing edges/vertices references) included only so that
//! every local connectivity entry resolves to a valid local index. Phantom
//! entities are never computed and their field values are stale; with three
//! halo layers the TRiSK stencil chain (u → vorticity → pv_vertex →
//! pv_edge → tend_u) never lets stale values reach an owned output, which
//! the distributed-vs-serial equivalence tests verify bit-for-bit.
//!
//! Index layout (prefix property, relied on by the kernels' loop ranges):
//! * cells:   `[owned | halo layers (RankLocal order) | phantom]`
//! * edges:   `[owned | halo (RankLocal order)]` — all edges of non-phantom
//!   cells are local, so no phantom edges exist.
//! * vertices:`[vertices of non-phantom cells]`
//!
//! Because the cell/edge prefixes follow `RankLocal` order exactly, the
//! halo-exchange send/recv lists index straight into local fields.

use crate::mesh::{CellId, EdgeId, Mesh, VertexId};
use crate::partition::RankLocal;
use std::collections::HashMap;

/// A rank's locally-indexed mesh plus the global id maps.
#[derive(Debug, Clone)]
pub struct LocalMesh {
    /// Remapped mesh (phantom fringe included; do not `validate()`).
    pub mesh: Mesh,
    /// Cells `0..n_owned_cells` are owned.
    pub n_owned_cells: usize,
    /// Cells `0..n_compute_cells` (owned + halo) are safe to compute on.
    pub n_compute_cells: usize,
    /// Edges `0..n_owned_edges` are owned.
    pub n_owned_edges: usize,
    /// Global ids of local cells (including phantom suffix).
    pub cell_l2g: Vec<CellId>,
    /// Global ids of local edges.
    pub edge_l2g: Vec<EdgeId>,
    /// Global ids of local vertices.
    pub vertex_l2g: Vec<VertexId>,
}

/// Build the local mesh for one rank.
pub fn extract_local_mesh(global: &Mesh, local: &RankLocal) -> LocalMesh {
    // ---- local id assignment ------------------------------------------------
    let mut cell_l2g: Vec<CellId> = local.cells.clone();
    let mut cell_g2l: HashMap<CellId, u32> = cell_l2g
        .iter()
        .enumerate()
        .map(|(l, &g)| (g, l as u32))
        .collect();
    let n_compute_cells = cell_l2g.len();

    let edge_l2g: Vec<EdgeId> = local.edges.clone();
    let edge_g2l: HashMap<EdgeId, u32> = edge_l2g
        .iter()
        .enumerate()
        .map(|(l, &g)| (g, l as u32))
        .collect();

    // Vertices: all vertices of non-phantom cells, deterministic order.
    let mut vertex_l2g: Vec<VertexId> = Vec::new();
    let mut vertex_g2l: HashMap<VertexId, u32> = HashMap::new();
    for &g in &local.cells {
        for &v in global.vertices_of_cell(g as usize) {
            vertex_g2l.entry(v).or_insert_with(|| {
                vertex_l2g.push(v);
                (vertex_l2g.len() - 1) as u32
            });
        }
    }

    // Phantom cells: referenced by local edges/vertices but not local.
    for &e in &edge_l2g {
        for &c in &global.cells_on_edge[e as usize] {
            cell_g2l.entry(c).or_insert_with(|| {
                cell_l2g.push(c);
                (cell_l2g.len() - 1) as u32
            });
        }
    }
    for &v in &vertex_l2g {
        for &c in &global.cells_on_vertex[v as usize] {
            cell_g2l.entry(c).or_insert_with(|| {
                cell_l2g.push(c);
                (cell_l2g.len() - 1) as u32
            });
        }
    }
    let n_cells = cell_l2g.len();
    let n_edges = edge_l2g.len();

    // ---- fixed-degree connectivity -------------------------------------------
    let cells_on_edge: Vec<[CellId; 2]> = edge_l2g
        .iter()
        .map(|&e| {
            let [a, b] = global.cells_on_edge[e as usize];
            [cell_g2l[&a], cell_g2l[&b]]
        })
        .collect();
    // Vertices of fringe edges may not be local: map missing to 0 (their
    // values are never consumed by owned outputs).
    let vmap = |v: VertexId| *vertex_g2l.get(&v).unwrap_or(&0);
    let vertices_on_edge: Vec<[VertexId; 2]> = edge_l2g
        .iter()
        .map(|&e| {
            let [a, b] = global.vertices_on_edge[e as usize];
            [vmap(a), vmap(b)]
        })
        .collect();
    let cells_on_vertex: Vec<[CellId; 3]> = vertex_l2g
        .iter()
        .map(|&v| global.cells_on_vertex[v as usize].map(|c| cell_g2l[&c]))
        .collect();
    let emap = |e: EdgeId| *edge_g2l.get(&e).unwrap_or(&0);
    let edges_on_vertex: Vec<[EdgeId; 3]> = vertex_l2g
        .iter()
        .map(|&v| global.edges_on_vertex[v as usize].map(emap))
        .collect();

    // ---- per-cell CSR (empty rows for phantom cells) --------------------------
    let mut cell_offsets = vec![0u32; n_cells + 1];
    let mut edges_on_cell = Vec::new();
    let mut vertices_on_cell = Vec::new();
    let mut cells_on_cell = Vec::new();
    let mut edge_sign_on_cell = Vec::new();
    for l in 0..n_cells {
        if l < n_compute_cells {
            let g = cell_l2g[l] as usize;
            let range = global.cell_range(g);
            for slot in range {
                edges_on_cell.push(edge_g2l[&global.edges_on_cell[slot]]);
                vertices_on_cell.push(vertex_g2l[&global.vertices_on_cell[slot]]);
                cells_on_cell.push(cell_g2l[&global.cells_on_cell[slot]]);
                edge_sign_on_cell.push(global.edge_sign_on_cell[slot]);
            }
        }
        cell_offsets[l + 1] = edges_on_cell.len() as u32;
    }

    // ---- edgesOnEdge CSR (drop entries pointing at non-local edges) -----------
    let mut eoe_offsets = vec![0u32; n_edges + 1];
    let mut edges_on_edge = Vec::new();
    let mut weights_on_edge = Vec::new();
    for (l, &g) in edge_l2g.iter().enumerate() {
        for slot in global.eoe_range(g as usize) {
            if let Some(&le) = edge_g2l.get(&global.edges_on_edge[slot]) {
                edges_on_edge.push(le);
                weights_on_edge.push(global.weights_on_edge[slot]);
            }
        }
        eoe_offsets[l + 1] = edges_on_edge.len() as u32;
    }

    // ---- geometry copies -------------------------------------------------------
    let gather_cells =
        |src: &Vec<f64>| -> Vec<f64> { cell_l2g.iter().map(|&g| src[g as usize]).collect() };
    let mesh = Mesh {
        sphere_radius: global.sphere_radius,
        x_cell: cell_l2g
            .iter()
            .map(|&g| global.x_cell[g as usize])
            .collect(),
        x_edge: edge_l2g
            .iter()
            .map(|&g| global.x_edge[g as usize])
            .collect(),
        x_vertex: vertex_l2g
            .iter()
            .map(|&g| global.x_vertex[g as usize])
            .collect(),
        cells_on_edge,
        vertices_on_edge,
        cells_on_vertex,
        edges_on_vertex,
        cell_offsets,
        edges_on_cell,
        vertices_on_cell,
        cells_on_cell,
        edge_sign_on_cell,
        eoe_offsets,
        edges_on_edge,
        weights_on_edge,
        dc_edge: edge_l2g
            .iter()
            .map(|&g| global.dc_edge[g as usize])
            .collect(),
        dv_edge: edge_l2g
            .iter()
            .map(|&g| global.dv_edge[g as usize])
            .collect(),
        area_cell: gather_cells(&global.area_cell),
        area_triangle: vertex_l2g
            .iter()
            .map(|&g| global.area_triangle[g as usize])
            .collect(),
        kite_areas_on_vertex: vertex_l2g
            .iter()
            .map(|&g| global.kite_areas_on_vertex[g as usize])
            .collect(),
        normal_edge: edge_l2g
            .iter()
            .map(|&g| global.normal_edge[g as usize])
            .collect(),
        tangent_edge: edge_l2g
            .iter()
            .map(|&g| global.tangent_edge[g as usize])
            .collect(),
        edge_sign_on_vertex: vertex_l2g
            .iter()
            .map(|&g| global.edge_sign_on_vertex[g as usize])
            .collect(),
        boundary_edge: edge_l2g
            .iter()
            .map(|&g| global.boundary_edge[g as usize])
            .collect(),
    };

    LocalMesh {
        mesh,
        n_owned_cells: local.n_owned_cells,
        n_compute_cells,
        n_owned_edges: local.n_owned_edges,
        cell_l2g,
        edge_l2g,
        vertex_l2g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::MeshPartition;

    #[test]
    fn local_meshes_cover_global_geometry() {
        let global = crate::generate(3, 0);
        let part = MeshPartition::build(&global, 4, 3);
        for rl in &part.ranks {
            let lm = extract_local_mesh(&global, rl);
            // Prefix layout matches RankLocal ordering.
            assert_eq!(lm.cell_l2g[..rl.cells.len()], rl.cells[..]);
            assert_eq!(lm.edge_l2g, rl.edges);
            // Geometry round-trips through the remap.
            for (l, &g) in lm.edge_l2g.iter().enumerate() {
                assert_eq!(lm.mesh.dc_edge[l], global.dc_edge[g as usize]);
                let [lc1, _] = lm.mesh.cells_on_edge[l];
                let [gc1, _] = global.cells_on_edge[g as usize];
                assert_eq!(lm.cell_l2g[lc1 as usize], gc1);
            }
        }
    }

    #[test]
    fn compute_cells_have_full_rows_phantoms_empty() {
        let global = crate::generate(3, 0);
        let part = MeshPartition::build(&global, 3, 2);
        let lm = extract_local_mesh(&global, &part.ranks[1]);
        for l in 0..lm.mesh.n_cells() {
            let deg = lm.mesh.cell_range(l).len();
            if l < lm.n_compute_cells {
                let g = lm.cell_l2g[l] as usize;
                assert_eq!(deg, global.cell_range(g).len());
            } else {
                assert_eq!(deg, 0, "phantom cell {l} has a CSR row");
            }
        }
    }

    #[test]
    fn owned_edges_keep_full_trisk_neighborhood() {
        // Every owned edge must retain its complete edgesOnEdge row — only
        // fringe edges may lose entries.
        let global = crate::generate(3, 0);
        let part = MeshPartition::build(&global, 4, 3);
        for rl in &part.ranks {
            let lm = extract_local_mesh(&global, rl);
            for l in 0..lm.n_owned_edges {
                let g = lm.edge_l2g[l] as usize;
                assert_eq!(
                    lm.mesh.eoe_range(l).len(),
                    global.eoe_range(g).len(),
                    "owned edge {l} lost TRiSK neighbors"
                );
                let gw = global.weights_of_edge(g);
                let lw = lm.mesh.weights_of_edge(l);
                assert_eq!(gw, lw);
            }
        }
    }

    #[test]
    fn all_indices_in_range() {
        let global = crate::generate(2, 0);
        let part = MeshPartition::build(&global, 5, 2);
        for rl in &part.ranks {
            let lm = extract_local_mesh(&global, rl);
            let m = &lm.mesh;
            let (nc, ne, nv) = (m.n_cells(), m.n_edges(), m.n_vertices());
            for e in 0..ne {
                assert!(m.cells_on_edge[e].iter().all(|&c| (c as usize) < nc));
                assert!(m.vertices_on_edge[e].iter().all(|&v| (v as usize) < nv));
            }
            for v in 0..nv {
                assert!(m.cells_on_vertex[v].iter().all(|&c| (c as usize) < nc));
                assert!(m.edges_on_vertex[v].iter().all(|&e| (e as usize) < ne));
            }
            assert!(m.edges_on_cell.iter().all(|&e| (e as usize) < ne));
            assert!(m.cells_on_cell.iter().all(|&c| (c as usize) < nc));
            assert!(m.vertices_on_cell.iter().all(|&v| (v as usize) < nv));
            assert!(m.edges_on_edge.iter().all(|&e| (e as usize) < ne));
        }
    }
}
