//! Locality-optimized mesh renumbering.
//!
//! The generator emits cells, edges and vertices in construction order
//! (icosahedral subdivision order), which interleaves distant patches of
//! the sphere: the indirect gathers of the Table-I kernels (`u[e]`,
//! `h[c1]`, `pv_vertex[v]`, ...) then stride across the whole working set.
//! A [`MeshPermutation`] renumbers all three entity kinds so that
//! geometrically adjacent entities get adjacent ids:
//!
//! * [`MeshPermutation::sfc`] — cells sorted along the 3-D Morton curve
//!   (the same keys `sfc_partition` cuts into chunks).
//! * [`MeshPermutation::bfs`] — Cuthill–McKee breadth-first order over the
//!   cell adjacency graph, seeded at a minimum-degree cell (a pentagon),
//!   neighbors visited in ascending-degree order.
//!
//! Either way, edges and vertices are renumbered by **first touch**: walk
//! the cells in their new order and assign each edge/vertex the next free
//! id the first time a cell mentions it. Cell-centric loops (`tend_h`,
//! `ke`, `divergence`) then stream their CSR rows almost sequentially, and
//! edge-centric loops (`tend_u`, `pv_edge`) gather cell/vertex values from
//! a compact moving window.
//!
//! [`Mesh::reordered`] rewrites every connectivity, sign and geometry
//! array under a permutation. Renumbering never swaps the slot order
//! inside a row, so the documented orientation conventions (CCW
//! `edges_on_cell`, normals pointing `c1 → c2`, sign arrays) survive
//! verbatim — `Mesh::validate` passes on the reordered mesh and every
//! kernel produces bitwise the value it produced at the entity's old id.

use crate::mesh::Mesh;
use crate::sfc::morton_key;

/// Which cell ordering a [`MeshPermutation`] is derived from.
///
/// This is the user-facing knob (`swe_run --reorder {none,sfc,bfs}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reordering {
    /// Keep construction order (the identity permutation).
    None,
    /// Morton/space-filling-curve order of the cell centers.
    Sfc,
    /// Cuthill–McKee breadth-first order of the cell adjacency graph.
    Bfs,
}

impl Reordering {
    /// Parse a CLI spelling (`none` / `sfc` / `bfs`).
    pub fn parse(s: &str) -> Option<Reordering> {
        match s {
            "none" => Some(Reordering::None),
            "sfc" | "morton" => Some(Reordering::Sfc),
            "bfs" | "cm" | "cuthill-mckee" => Some(Reordering::Bfs),
            _ => None,
        }
    }

    /// The permutation this ordering induces on `mesh`.
    pub fn permutation(self, mesh: &Mesh) -> MeshPermutation {
        match self {
            Reordering::None => MeshPermutation::identity(mesh),
            Reordering::Sfc => MeshPermutation::sfc(mesh),
            Reordering::Bfs => MeshPermutation::bfs(mesh),
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Reordering::None => "none",
            Reordering::Sfc => "sfc",
            Reordering::Bfs => "bfs",
        }
    }
}

/// A simultaneous renumbering of cells, edges and vertices.
///
/// `*_new[old] = new` maps construction ids to the new numbering;
/// `*_old[new] = old` is the inverse. Fields move between the two
/// numberings with [`MeshPermutation::permute_cell_field`] (old → new
/// indexing) and [`MeshPermutation::unpermute_cell_field`] (new → old),
/// and likewise for edges and vertices.
#[derive(Debug, Clone)]
pub struct MeshPermutation {
    /// Cell map, old id → new id.
    pub cell_new: Vec<u32>,
    /// Cell map, new id → old id.
    pub cell_old: Vec<u32>,
    /// Edge map, old id → new id.
    pub edge_new: Vec<u32>,
    /// Edge map, new id → old id.
    pub edge_old: Vec<u32>,
    /// Vertex map, old id → new id.
    pub vertex_new: Vec<u32>,
    /// Vertex map, new id → old id.
    pub vertex_old: Vec<u32>,
}

fn invert(forward: &[u32]) -> Vec<u32> {
    let mut inv = vec![u32::MAX; forward.len()];
    for (old, &new) in forward.iter().enumerate() {
        debug_assert_eq!(inv[new as usize], u32::MAX, "not a permutation");
        inv[new as usize] = old as u32;
    }
    inv
}

impl MeshPermutation {
    /// The identity permutation (construction order kept).
    pub fn identity(mesh: &Mesh) -> Self {
        let id = |n: usize| (0..n as u32).collect::<Vec<u32>>();
        MeshPermutation {
            cell_new: id(mesh.n_cells()),
            cell_old: id(mesh.n_cells()),
            edge_new: id(mesh.n_edges()),
            edge_old: id(mesh.n_edges()),
            vertex_new: id(mesh.n_vertices()),
            vertex_old: id(mesh.n_vertices()),
        }
    }

    /// Morton/space-filling-curve cell order (ties broken by old id, so
    /// the result is deterministic), edges and vertices by first touch.
    pub fn sfc(mesh: &Mesh) -> Self {
        let mut order: Vec<u32> = (0..mesh.n_cells() as u32).collect();
        order.sort_by_key(|&i| {
            let p = mesh.x_cell[i as usize];
            (morton_key(p.x, p.y, p.z), i)
        });
        Self::from_cell_order(mesh, &order)
    }

    /// Cuthill–McKee breadth-first cell order, edges and vertices by first
    /// touch. Seeded at the minimum-degree cell (an icosahedral pentagon);
    /// within a BFS front, neighbors are visited in ascending degree, then
    /// ascending old id — the classic bandwidth-reducing heuristic.
    pub fn bfs(mesh: &Mesh) -> Self {
        let nc = mesh.n_cells();
        let degree = |i: usize| mesh.cell_range(i).len();
        let mut order: Vec<u32> = Vec::with_capacity(nc);
        let mut seen = vec![false; nc];
        // The sphere's adjacency graph is connected, but stay robust for
        // submeshes: restart from the best unvisited seed until done.
        while order.len() < nc {
            let seed = (0..nc)
                .filter(|&i| !seen[i])
                .min_by_key(|&i| (degree(i), i))
                .expect("unvisited cell exists");
            seen[seed] = true;
            order.push(seed as u32);
            let mut head = order.len() - 1;
            while head < order.len() {
                let i = order[head] as usize;
                head += 1;
                let mut nbrs: Vec<u32> = mesh
                    .cells_of_cell(i)
                    .iter()
                    .copied()
                    .filter(|&n| !seen[n as usize])
                    .collect();
                nbrs.sort_by_key(|&n| (degree(n as usize), n));
                for n in nbrs {
                    // A neighbor may have been enqueued by an earlier cell
                    // of the same front since the filter above ran.
                    if !seen[n as usize] {
                        seen[n as usize] = true;
                        order.push(n);
                    }
                }
            }
        }
        Self::from_cell_order(mesh, &order)
    }

    /// Build the full permutation from an explicit cell order
    /// (`order[new] = old`): edges and vertices are numbered in the order
    /// the reordered cells first mention them (CSR slot order within each
    /// cell).
    pub fn from_cell_order(mesh: &Mesh, order: &[u32]) -> Self {
        assert_eq!(order.len(), mesh.n_cells(), "cell order length mismatch");
        let cell_old = order.to_vec();
        let cell_new = invert(&cell_old);
        let mut edge_new = vec![u32::MAX; mesh.n_edges()];
        let mut vertex_new = vec![u32::MAX; mesh.n_vertices()];
        let (mut next_e, mut next_v) = (0u32, 0u32);
        for &old_cell in &cell_old {
            let range = mesh.cell_range(old_cell as usize);
            for &e in &mesh.edges_on_cell[range.clone()] {
                if edge_new[e as usize] == u32::MAX {
                    edge_new[e as usize] = next_e;
                    next_e += 1;
                }
            }
            for &v in &mesh.vertices_on_cell[range] {
                if vertex_new[v as usize] == u32::MAX {
                    vertex_new[v as usize] = next_v;
                    next_v += 1;
                }
            }
        }
        assert_eq!(next_e as usize, mesh.n_edges(), "edges not all touched");
        assert_eq!(
            next_v as usize,
            mesh.n_vertices(),
            "vertices not all touched"
        );
        let edge_old = invert(&edge_new);
        let vertex_old = invert(&vertex_new);
        MeshPermutation {
            cell_new,
            cell_old,
            edge_new,
            edge_old,
            vertex_new,
            vertex_old,
        }
    }

    /// Panic unless all six maps are mutually inverse bijections sized for
    /// `mesh`.
    pub fn validate(&self, mesh: &Mesh) -> &Self {
        let check = |fwd: &[u32], inv: &[u32], n: usize, what: &str| {
            assert_eq!(fwd.len(), n, "{what}: forward length");
            assert_eq!(inv.len(), n, "{what}: inverse length");
            for (old, &new) in fwd.iter().enumerate() {
                assert!((new as usize) < n, "{what}: id out of range");
                assert_eq!(inv[new as usize] as usize, old, "{what}: not inverse");
            }
        };
        check(&self.cell_new, &self.cell_old, mesh.n_cells(), "cells");
        check(&self.edge_new, &self.edge_old, mesh.n_edges(), "edges");
        check(
            &self.vertex_new,
            &self.vertex_old,
            mesh.n_vertices(),
            "vertices",
        );
        self
    }

    /// Move a cell field from old indexing to new: `out[cell_new[i]] = f[i]`.
    pub fn permute_cell_field<T: Copy>(&self, f: &[T]) -> Vec<T> {
        gather(f, &self.cell_old)
    }

    /// Move a cell field from new indexing back to old.
    pub fn unpermute_cell_field<T: Copy>(&self, f: &[T]) -> Vec<T> {
        gather(f, &self.cell_new)
    }

    /// Move an edge field from old indexing to new.
    pub fn permute_edge_field<T: Copy>(&self, f: &[T]) -> Vec<T> {
        gather(f, &self.edge_old)
    }

    /// Move an edge field from new indexing back to old.
    pub fn unpermute_edge_field<T: Copy>(&self, f: &[T]) -> Vec<T> {
        gather(f, &self.edge_new)
    }

    /// Move a vertex field from old indexing to new.
    pub fn permute_vertex_field<T: Copy>(&self, f: &[T]) -> Vec<T> {
        gather(f, &self.vertex_old)
    }

    /// Move a vertex field from new indexing back to old.
    pub fn unpermute_vertex_field<T: Copy>(&self, f: &[T]) -> Vec<T> {
        gather(f, &self.vertex_new)
    }
}

/// `out[i] = f[idx[i]]` — the shared body of all six field movers. With
/// `idx = *_old` this produces new-indexed fields; with `idx = *_new` it
/// inverts (`out[old] = f[new_of_old]` is exactly the inverse gather
/// because the maps are mutually inverse bijections).
fn gather<T: Copy>(f: &[T], idx: &[u32]) -> Vec<T> {
    assert_eq!(f.len(), idx.len(), "field length mismatch");
    idx.iter().map(|&j| f[j as usize]).collect()
}

impl Mesh {
    /// The same mesh under a renumbering: every id array mapped through
    /// `perm`, every per-entity array gathered into the new order, slot
    /// order inside each row untouched (so CCW ordering, `c1 → c2` normal
    /// orientation and both sign arrays keep their documented meaning).
    pub fn reordered(&self, perm: &MeshPermutation) -> Mesh {
        perm.validate(self);
        let pc = |c: u32| perm.cell_new[c as usize];
        let pe = |e: u32| perm.edge_new[e as usize];
        let pv = |v: u32| perm.vertex_new[v as usize];

        // Cell CSR: rebuild offsets from the new cell order, then copy each
        // old row in slot order with ids mapped.
        let nc = self.n_cells();
        let mut cell_offsets = Vec::with_capacity(nc + 1);
        cell_offsets.push(0u32);
        for &old in &perm.cell_old {
            let deg = self.cell_range(old as usize).len() as u32;
            cell_offsets.push(cell_offsets.last().unwrap() + deg);
        }
        let nslots = *cell_offsets.last().unwrap() as usize;
        let mut edges_on_cell = Vec::with_capacity(nslots);
        let mut vertices_on_cell = Vec::with_capacity(nslots);
        let mut cells_on_cell = Vec::with_capacity(nslots);
        let mut edge_sign_on_cell = Vec::with_capacity(nslots);
        for &old in &perm.cell_old {
            let r = self.cell_range(old as usize);
            edges_on_cell.extend(self.edges_on_cell[r.clone()].iter().map(|&e| pe(e)));
            vertices_on_cell.extend(self.vertices_on_cell[r.clone()].iter().map(|&v| pv(v)));
            cells_on_cell.extend(self.cells_on_cell[r.clone()].iter().map(|&c| pc(c)));
            edge_sign_on_cell.extend_from_slice(&self.edge_sign_on_cell[r]);
        }

        // Edge CSR (TRiSK neighborhoods), same recipe.
        let ne = self.n_edges();
        let mut eoe_offsets = Vec::with_capacity(ne + 1);
        eoe_offsets.push(0u32);
        for &old in &perm.edge_old {
            let deg = self.eoe_range(old as usize).len() as u32;
            eoe_offsets.push(eoe_offsets.last().unwrap() + deg);
        }
        let eslots = *eoe_offsets.last().unwrap() as usize;
        let mut edges_on_edge = Vec::with_capacity(eslots);
        let mut weights_on_edge = Vec::with_capacity(eslots);
        for &old in &perm.edge_old {
            let r = self.eoe_range(old as usize);
            edges_on_edge.extend(self.edges_on_edge[r.clone()].iter().map(|&e| pe(e)));
            weights_on_edge.extend_from_slice(&self.weights_on_edge[r]);
        }

        Mesh {
            sphere_radius: self.sphere_radius,
            x_cell: perm.permute_cell_field(&self.x_cell),
            x_edge: perm.permute_edge_field(&self.x_edge),
            x_vertex: perm.permute_vertex_field(&self.x_vertex),
            cells_on_edge: perm
                .permute_edge_field(&self.cells_on_edge)
                .iter()
                .map(|&[a, b]| [pc(a), pc(b)])
                .collect(),
            vertices_on_edge: perm
                .permute_edge_field(&self.vertices_on_edge)
                .iter()
                .map(|&[a, b]| [pv(a), pv(b)])
                .collect(),
            cells_on_vertex: perm
                .permute_vertex_field(&self.cells_on_vertex)
                .iter()
                .map(|&[a, b, c]| [pc(a), pc(b), pc(c)])
                .collect(),
            edges_on_vertex: perm
                .permute_vertex_field(&self.edges_on_vertex)
                .iter()
                .map(|&[a, b, c]| [pe(a), pe(b), pe(c)])
                .collect(),
            cell_offsets,
            edges_on_cell,
            vertices_on_cell,
            cells_on_cell,
            edge_sign_on_cell,
            eoe_offsets,
            edges_on_edge,
            weights_on_edge,
            dc_edge: perm.permute_edge_field(&self.dc_edge),
            dv_edge: perm.permute_edge_field(&self.dv_edge),
            area_cell: perm.permute_cell_field(&self.area_cell),
            area_triangle: perm.permute_vertex_field(&self.area_triangle),
            kite_areas_on_vertex: perm.permute_vertex_field(&self.kite_areas_on_vertex),
            normal_edge: perm.permute_edge_field(&self.normal_edge),
            tangent_edge: perm.permute_edge_field(&self.tangent_edge),
            edge_sign_on_vertex: perm.permute_vertex_field(&self.edge_sign_on_vertex),
            boundary_edge: perm.permute_edge_field(&self.boundary_edge),
        }
    }
}

/// Mean CSR-gather distance of the cell→edge relation: how far apart (in
/// ids) consecutive slot targets are. The quantity the renumbering exists
/// to shrink; exported so benches and `fig_layout` can report it.
pub fn gather_spread(mesh: &Mesh) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for i in 0..mesh.n_cells() {
        let edges = mesh.edges_of_cell(i);
        for w in edges.windows(2) {
            total += (w[1] as i64 - w[0] as i64).unsigned_abs() as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        crate::generate(3, 0)
    }

    #[test]
    fn identity_reorder_is_a_noop() {
        let m = mesh();
        let p = MeshPermutation::identity(&m);
        let r = m.reordered(&p);
        assert_eq!(m.edges_on_cell, r.edges_on_cell);
        assert_eq!(m.weights_on_edge, r.weights_on_edge);
        assert_eq!(m.dc_edge, r.dc_edge);
    }

    #[test]
    fn sfc_and_bfs_reordered_meshes_validate() {
        let m = mesh();
        for ord in [Reordering::Sfc, Reordering::Bfs] {
            let p = ord.permutation(&m);
            p.validate(&m);
            let r = m.reordered(&p);
            r.validate();
            assert_eq!(r.n_cells(), m.n_cells());
            assert_eq!(r.n_edges(), m.n_edges());
            assert_eq!(r.n_vertices(), m.n_vertices());
        }
    }

    #[test]
    fn field_round_trip_all_entities() {
        let m = mesh();
        let p = MeshPermutation::sfc(&m);
        let cf: Vec<f64> = (0..m.n_cells()).map(|i| i as f64 * 0.7).collect();
        let ef: Vec<f64> = (0..m.n_edges()).map(|i| i as f64 - 3.0).collect();
        let vf: Vec<f64> = (0..m.n_vertices()).map(|i| (i as f64).sin()).collect();
        assert_eq!(p.unpermute_cell_field(&p.permute_cell_field(&cf)), cf);
        assert_eq!(p.unpermute_edge_field(&p.permute_edge_field(&ef)), ef);
        assert_eq!(p.unpermute_vertex_field(&p.permute_vertex_field(&vf)), vf);
        // And the permuted field really is a gather by the inverse map.
        let pc = p.permute_cell_field(&cf);
        for new in 0..m.n_cells() {
            assert_eq!(pc[new], cf[p.cell_old[new] as usize]);
        }
    }

    #[test]
    fn geometry_travels_with_ids() {
        let m = mesh();
        let p = MeshPermutation::bfs(&m);
        let r = m.reordered(&p);
        for old in 0..m.n_cells() {
            let new = p.cell_new[old] as usize;
            assert_eq!(r.area_cell[new], m.area_cell[old]);
            assert_eq!(r.x_cell[new], m.x_cell[old]);
        }
        for old in 0..m.n_edges() {
            let new = p.edge_new[old] as usize;
            assert_eq!(r.dc_edge[new], m.dc_edge[old]);
            let [c1_old, c2_old] = m.cells_on_edge[old];
            let [c1_new, c2_new] = r.cells_on_edge[new];
            // Slot order preserved: the normal still points c1 → c2.
            assert_eq!(c1_new, p.cell_new[c1_old as usize]);
            assert_eq!(c2_new, p.cell_new[c2_old as usize]);
        }
    }

    #[test]
    fn reordering_improves_gather_locality_over_shuffle() {
        let m = mesh();
        // Adversarial baseline: a bit-reversal-style shuffle that scatters
        // neighbors far apart.
        let n = m.n_cells() as u32;
        let mut shuffled: Vec<u32> = (0..n).collect();
        shuffled.sort_by_key(|&i| i.wrapping_mul(2654435761) % n);
        let bad = m.reordered(&MeshPermutation::from_cell_order(&m, &shuffled));
        let bad_spread = gather_spread(&bad);
        for ord in [Reordering::Sfc, Reordering::Bfs] {
            let r = m.reordered(&ord.permutation(&m));
            let s = gather_spread(&r);
            assert!(
                s < 0.5 * bad_spread,
                "{}: spread {s} vs shuffled {bad_spread}",
                ord.name()
            );
        }
    }

    #[test]
    fn reordering_parse_round_trips() {
        for ord in [Reordering::None, Reordering::Sfc, Reordering::Bfs] {
            assert_eq!(Reordering::parse(ord.name()), Some(ord));
        }
        assert_eq!(Reordering::parse("hilbert"), None);
    }
}
