//! Recursive icosahedral subdivision of the sphere.
//!
//! The subdivided icosahedron provides both the generator points (future
//! Voronoi cell centers / mass points) and their Delaunay triangulation
//! (whose triangles become the vorticity points). Midpoint subdivision with
//! an edge cache keeps shared points unique, so level `n` has exactly
//! `10*4^n + 2` points and `20*4^n` triangles — the classic "class I"
//! geodesic grid used by MPAS quasi-uniform meshes.

use mpas_geom::{arc_midpoint, Vec3};
use std::collections::HashMap;

/// Subdivision levels whose cell counts match the paper's Table III
/// (120-km, 60-km, 30-km and 15-km horizontal resolution).
pub const TABLE3_LEVELS: [u32; 4] = [6, 7, 8, 9];

/// Points on the unit sphere plus their Delaunay triangulation.
#[derive(Debug, Clone)]
pub struct IcosaGrid {
    /// Generator points (unit vectors); these become cell centers.
    pub points: Vec<Vec3>,
    /// Triangles as CCW-ordered point-index triples (seen from outside).
    pub triangles: Vec<[u32; 3]>,
    /// Subdivision level this grid was built at.
    pub level: u32,
}

/// The 12 vertices of a regular icosahedron, normalized to the unit sphere.
fn icosahedron_vertices() -> Vec<Vec3> {
    let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
    let raw = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ];
    raw.iter()
        .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
        .collect()
}

/// The 20 faces of the regular icosahedron (CCW from outside), matching the
/// vertex list above.
fn icosahedron_faces() -> Vec<[u32; 3]> {
    vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ]
}

impl IcosaGrid {
    /// The base (level-0) icosahedron.
    pub fn base() -> Self {
        IcosaGrid {
            points: icosahedron_vertices(),
            triangles: icosahedron_faces(),
            level: 0,
        }
    }

    /// Subdivide the base icosahedron `level` times. Each pass splits every
    /// triangle into four, placing new points at arc midpoints.
    pub fn subdivide(level: u32) -> Self {
        let mut grid = Self::base();
        for _ in 0..level {
            grid = grid.subdivide_once();
        }
        grid
    }

    /// One midpoint-subdivision pass.
    pub fn subdivide_once(&self) -> Self {
        let mut points = self.points.clone();
        // Midpoint cache keyed by the (sorted) parent pair.
        let mut midpoints: HashMap<(u32, u32), u32> =
            HashMap::with_capacity(self.triangles.len() * 3 / 2);
        let mut triangles = Vec::with_capacity(self.triangles.len() * 4);

        let mut midpoint = |a: u32, b: u32, points: &mut Vec<Vec3>| -> u32 {
            let key = if a < b { (a, b) } else { (b, a) };
            *midpoints.entry(key).or_insert_with(|| {
                let m = arc_midpoint(points[a as usize], points[b as usize]);
                points.push(m);
                (points.len() - 1) as u32
            })
        };

        for &[a, b, c] in &self.triangles {
            let ab = midpoint(a, b, &mut points);
            let bc = midpoint(b, c, &mut points);
            let ca = midpoint(c, a, &mut points);
            // Orientation of children matches the parent (CCW preserved).
            triangles.push([a, ab, ca]);
            triangles.push([b, bc, ab]);
            triangles.push([c, ca, bc]);
            triangles.push([ab, bc, ca]);
        }

        IcosaGrid {
            points,
            triangles,
            level: self.level + 1,
        }
    }

    /// Number of generator points, `10*4^level + 2`.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Number of Delaunay triangles, `20*4^level`.
    pub fn n_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of Delaunay edges, `30*4^level` (by Euler's formula).
    pub fn n_edges(&self) -> usize {
        self.n_points() + self.n_triangles() - 2
    }

    /// Expected point count for a given level.
    pub fn expected_points(level: u32) -> usize {
        10 * 4usize.pow(level) + 2
    }

    /// Nominal horizontal resolution in kilometers: the square root of the
    /// mean cell area on an Earth-radius sphere. Level 6 comes out near the
    /// paper's "120-km" label, level 9 near "15-km".
    pub fn nominal_resolution_km(level: u32) -> f64 {
        let area = 4.0 * std::f64::consts::PI * mpas_geom::EARTH_RADIUS.powi(2)
            / Self::expected_points(level) as f64;
        area.sqrt() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpas_geom::spherical_triangle_area_signed;

    #[test]
    fn base_icosahedron_counts() {
        let g = IcosaGrid::base();
        assert_eq!(g.n_points(), 12);
        assert_eq!(g.n_triangles(), 20);
        assert_eq!(g.n_edges(), 30);
    }

    #[test]
    fn base_faces_are_ccw_and_tile_sphere() {
        let g = IcosaGrid::base();
        let mut total = 0.0;
        for &[a, b, c] in &g.triangles {
            let area = spherical_triangle_area_signed(
                g.points[a as usize],
                g.points[b as usize],
                g.points[c as usize],
            );
            assert!(area > 0.0, "face [{a},{b},{c}] is not CCW");
            total += area;
        }
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-10);
    }

    #[test]
    fn subdivision_counts_match_formula() {
        for level in 0..5 {
            let g = IcosaGrid::subdivide(level);
            assert_eq!(g.n_points(), IcosaGrid::expected_points(level));
            assert_eq!(g.n_triangles(), 20 * 4usize.pow(level));
        }
    }

    #[test]
    fn table3_cell_counts() {
        // The paper's Table III: 40 962 / 163 842 / 655 362 / 2 621 442 cells.
        assert_eq!(IcosaGrid::expected_points(6), 40_962);
        assert_eq!(IcosaGrid::expected_points(7), 163_842);
        assert_eq!(IcosaGrid::expected_points(8), 655_362);
        assert_eq!(IcosaGrid::expected_points(9), 2_621_442);
    }

    #[test]
    fn subdivided_faces_remain_ccw_and_tile_sphere() {
        let g = IcosaGrid::subdivide(3);
        let mut total = 0.0;
        for &[a, b, c] in &g.triangles {
            let area = spherical_triangle_area_signed(
                g.points[a as usize],
                g.points[b as usize],
                g.points[c as usize],
            );
            assert!(area > 0.0);
            total += area;
        }
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn all_points_on_unit_sphere() {
        let g = IcosaGrid::subdivide(3);
        for p in &g.points {
            assert!((p.norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn no_duplicate_points() {
        let g = IcosaGrid::subdivide(3);
        for i in 0..g.points.len() {
            for j in (i + 1)..g.points.len() {
                assert!(g.points[i].dist(g.points[j]) > 1e-6);
            }
        }
    }

    #[test]
    fn every_edge_shared_by_exactly_two_triangles() {
        let g = IcosaGrid::subdivide(2);
        let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
        for &[a, b, c] in &g.triangles {
            for (x, y) in [(a, b), (b, c), (c, a)] {
                let key = if x < y { (x, y) } else { (y, x) };
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        assert_eq!(counts.len(), g.n_edges());
        assert!(counts.values().all(|&c| c == 2));
    }

    #[test]
    fn nominal_resolution_matches_paper_labels() {
        // Paper labels: level 6 ~ "120-km", level 9 ~ "15-km". The sqrt-area
        // measure is within a factor ~0.6 of the label (labels are
        // cell-center spacings); check the ratio structure instead: each
        // level halves the resolution.
        let r6 = IcosaGrid::nominal_resolution_km(6);
        let r9 = IcosaGrid::nominal_resolution_km(9);
        // Not exactly 8 because of the "+2" in the point count.
        assert!((r6 / r9 - 8.0).abs() < 1e-3);
        assert!(r6 > 80.0 && r6 < 130.0, "r6 = {r6}");
    }
}
