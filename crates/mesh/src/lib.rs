#![warn(missing_docs)]
//! SCVT-like spherical mesh substrate for the MPAS shallow-water reproduction.
//!
//! The paper runs on quasi-uniform spherical centroidal Voronoi tessellation
//! (SCVT) meshes distributed with MPAS. We rebuild that substrate from
//! scratch:
//!
//! * [`icosahedron`] — recursive icosahedral subdivision producing generator
//!   points and their Delaunay triangulation. Subdivision level `n` yields
//!   exactly `10*4^n + 2` cells, matching the paper's Table III inventory
//!   (levels 6..=9 give 40 962 / 163 842 / 655 362 / 2 621 442 cells).
//! * [`lloyd`] — topology-preserving Lloyd relaxation nudging generators
//!   toward cell centroids (the *centroidal* property of an SCVT).
//! * [`voronoi`] — the Voronoi dual and the complete MPAS horizontal-mesh
//!   connectivity/geometry spec ([`Mesh`]), including the TRiSK
//!   `weightsOnEdge` operator needed by the C-grid shallow-water scheme.
//! * [`partition`] — recursive-coordinate-bisection domain decomposition
//!   with multi-layer halos, the substrate for the message-passing runtime.
//!
//! The three MPAS point types live here: *mass* points (cell centers),
//! *velocity* points (edge midpoints), *vorticity* points (Voronoi corners =
//! Delaunay triangle circumcenters).

pub mod density;
pub mod icosahedron;
pub mod io;
pub mod lloyd;
pub mod mesh;
pub mod partition;
pub mod quality;
pub mod reorder;
pub mod sfc;
pub mod submesh;
pub mod voronoi;

pub use density::{bump_density, generate_variable};
pub use icosahedron::{IcosaGrid, TABLE3_LEVELS};
pub use io::{load_mesh, save_mesh};
pub use mesh::{CellId, EdgeId, Mesh, VertexId};
pub use partition::{MeshPartition, RankLocal};
pub use quality::MeshQuality;
pub use reorder::{gather_spread, MeshPermutation, Reordering};
pub use sfc::sfc_partition;
pub use submesh::{extract_local_mesh, LocalMesh};
pub use voronoi::build_mesh;

/// Generate a quasi-uniform spherical mesh at the given icosahedral
/// subdivision level, optionally with `lloyd_iters` relaxation sweeps, and
/// build the full MPAS connectivity.
///
/// This is the one-call entry point used by examples and benches.
pub fn generate(level: u32, lloyd_iters: u32) -> Mesh {
    let mut grid = IcosaGrid::subdivide(level);
    let mut mesh = build_mesh(&grid);
    for _ in 0..lloyd_iters {
        lloyd::lloyd_step(&mut grid, &mesh);
        mesh = build_mesh(&grid);
    }
    mesh
}
