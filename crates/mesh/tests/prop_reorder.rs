//! Property tests of the PR-4 renumbering layer: every ordering at every
//! small level yields a permutation whose reordered mesh re-passes the
//! full structural [`Mesh::validate`] sweep, and whose field helpers
//! round-trip exactly.

use mpas_mesh::{gather_spread, MeshPermutation, Reordering};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `reordered(perm)` re-validates for both non-trivial orderings at
    /// the paper's small levels, and the cell gather spread (mean |i - j|
    /// over cell adjacencies, the locality proxy) does not regress versus
    /// the construction order.
    #[test]
    fn reordered_mesh_revalidates(level in 3u32..6, use_sfc in proptest::bool::ANY) {
        let mesh = mpas_mesh::generate(level, 0);
        let ord = if use_sfc { Reordering::Sfc } else { Reordering::Bfs };
        let perm = ord.permutation(&mesh);
        perm.validate(&mesh);
        let re = mesh.reordered(&perm);
        re.validate();
        prop_assert_eq!(re.n_cells(), mesh.n_cells());
        prop_assert_eq!(re.n_edges(), mesh.n_edges());
        prop_assert_eq!(re.n_vertices(), mesh.n_vertices());
        prop_assert!(gather_spread(&re) <= gather_spread(&mesh));
    }

    /// permute ∘ unpermute is the identity on all three entity classes,
    /// for random fields.
    #[test]
    fn field_permutation_round_trips(level in 3u32..6, use_sfc in proptest::bool::ANY, seed in 0.0f64..1.0) {
        let mesh = mpas_mesh::generate(level, 0);
        let ord = if use_sfc { Reordering::Sfc } else { Reordering::Bfs };
        let perm = ord.permutation(&mesh);

        let cf: Vec<f64> = (0..mesh.n_cells()).map(|i| (i as f64 * 0.7 + seed).sin()).collect();
        let ef: Vec<f64> = (0..mesh.n_edges()).map(|i| (i as f64 * 0.3 + seed).cos()).collect();
        let vf: Vec<f64> = (0..mesh.n_vertices()).map(|i| (i as f64 * 0.9 + seed).sin()).collect();

        prop_assert_eq!(perm.unpermute_cell_field(&perm.permute_cell_field(&cf)), cf);
        prop_assert_eq!(perm.unpermute_edge_field(&perm.permute_edge_field(&ef)), ef);
        prop_assert_eq!(perm.unpermute_vertex_field(&perm.permute_vertex_field(&vf)), vf);
    }

    /// The identity permutation reproduces the mesh exactly (spot-checked
    /// on the connectivity arrays a non-trivial ordering rewrites).
    #[test]
    fn identity_reorder_is_a_no_op(level in 3u32..5) {
        let mesh = mpas_mesh::generate(level, 0);
        let re = mesh.reordered(&MeshPermutation::identity(&mesh));
        prop_assert_eq!(&re.edges_on_cell, &mesh.edges_on_cell);
        prop_assert_eq!(&re.cells_on_edge, &mesh.cells_on_edge);
        prop_assert_eq!(&re.edges_on_vertex, &mesh.edges_on_vertex);
        prop_assert_eq!(&re.dc_edge, &mesh.dc_edge);
        prop_assert_eq!(&re.area_cell, &mesh.area_cell);
    }
}
