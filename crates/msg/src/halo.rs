//! Halo exchange over a partitioned mesh.
//!
//! Packs owned entries into per-neighbor buffers using the matched
//! send/recv lists produced by [`mpas_mesh::MeshPartition`], ships them
//! through the rank channels, and unpacks into the halo region. Tags encode
//! `(field, generation)` so back-to-back exchanges of different fields
//! cannot cross-talk.

use crate::comm::RankCtx;
use mpas_mesh::RankLocal;
use mpas_telemetry::analysis::COPY_SPAN;
use mpas_telemetry::Recorder;

/// Which index space a field lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// A field indexed by local cell ids.
    Cell,
    /// A field indexed by local edge ids.
    Edge,
}

/// Per-rank halo-exchange engine.
pub struct HaloExchanger {
    local: RankLocal,
    generation: u64,
    /// Telemetry sink (`msg.halo.*` timers and byte counters); no-op by default.
    recorder: Recorder,
}

impl HaloExchanger {
    /// Wrap a rank's local view.
    pub fn new(local: RankLocal) -> Self {
        HaloExchanger {
            local,
            generation: 0,
            recorder: Recorder::noop(),
        }
    }

    /// Route this exchanger's `msg.halo.*` telemetry into `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Route this exchanger's `msg.halo.*` telemetry into `rec`.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// The wrapped local view.
    pub fn local(&self) -> &RankLocal {
        &self.local
    }

    /// Update the halo entries of a locally-indexed field from their owners.
    /// Every rank of the partition must call this collectively with the
    /// same `kind` sequence.
    pub fn exchange(&mut self, ctx: &mut RankCtx, kind: FieldKind, field: &mut [f64]) {
        let _t = self.recorder.time("msg.halo.exchange_seconds");
        self.generation += 1;
        let tag_base = match kind {
            FieldKind::Cell => 1_000_000,
            FieldKind::Edge => 2_000_000,
        } + self.generation * 4;
        let (sends, recvs) = match kind {
            FieldKind::Cell => (&self.local.send_cells, &self.local.recv_cells),
            FieldKind::Edge => (&self.local.send_edges, &self.local.recv_edges),
        };
        {
            // Pack + eager sends: a payload-copy span on the rank track,
            // disjoint from any wait (sends never block).
            let _pack = self
                .recorder
                .span_timed(ctx.track(), COPY_SPAN, "msg.halo.pack_seconds");
            for (to, list) in sends {
                let buf: Vec<f64> = list.iter().map(|&l| field[l as usize]).collect();
                self.recorder
                    .add("msg.halo.bytes_sent", (buf.len() * 8) as u64);
                ctx.send(*to, tag_base, buf);
            }
        }
        for (from, list) in recvs {
            // The blocked wait lives inside `recv`; the unpack below gets
            // its own copy span so the two never overlap.
            let buf = ctx.recv(*from, tag_base);
            assert_eq!(buf.len(), list.len(), "halo length mismatch");
            let _unpack =
                self.recorder
                    .span_timed(ctx.track(), COPY_SPAN, "msg.halo.unpack_seconds");
            self.recorder
                .add("msg.halo.bytes_recv", (buf.len() * 8) as u64);
            for (&l, &v) in list.iter().zip(&buf) {
                field[l as usize] = v;
            }
        }
        self.recorder.add("msg.halo.exchanges", 1);
    }
}

impl HaloExchanger {
    /// Update the halos of one cell field and one edge field with a single
    /// message per neighbor (the packed form MPAS uses to halve latency
    /// costs). Equivalent to two [`HaloExchanger::exchange`] calls.
    pub fn exchange_state(
        &mut self,
        ctx: &mut RankCtx,
        cell_field: &mut [f64],
        edge_field: &mut [f64],
    ) {
        let _t = self.recorder.time("msg.halo.exchange_seconds");
        self.generation += 1;
        let tag = 3_000_000 + self.generation * 4;
        // Pack cells then edges for each neighbor. Neighbor sets for cells
        // and edges can differ, so union them.
        let mut neighbors: Vec<usize> = self
            .local
            .send_cells
            .iter()
            .map(|&(r, _)| r)
            .chain(self.local.send_edges.iter().map(|&(r, _)| r))
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        {
            let _pack = self
                .recorder
                .span_timed(ctx.track(), COPY_SPAN, "msg.halo.pack_seconds");
            for &to in &neighbors {
                let mut buf = Vec::new();
                if let Some((_, list)) = self.local.send_cells.iter().find(|&&(r, _)| r == to) {
                    buf.extend(list.iter().map(|&l| cell_field[l as usize]));
                }
                if let Some((_, list)) = self.local.send_edges.iter().find(|&&(r, _)| r == to) {
                    buf.extend(list.iter().map(|&l| edge_field[l as usize]));
                }
                self.recorder
                    .add("msg.halo.bytes_sent", (buf.len() * 8) as u64);
                ctx.send(to, tag, buf);
            }
        }
        let mut senders: Vec<usize> = self
            .local
            .recv_cells
            .iter()
            .map(|&(r, _)| r)
            .chain(self.local.recv_edges.iter().map(|&(r, _)| r))
            .collect();
        senders.sort_unstable();
        senders.dedup();
        for &from in &senders {
            let buf = ctx.recv(from, tag);
            let _unpack =
                self.recorder
                    .span_timed(ctx.track(), COPY_SPAN, "msg.halo.unpack_seconds");
            self.recorder
                .add("msg.halo.bytes_recv", (buf.len() * 8) as u64);
            let mut cursor = 0usize;
            if let Some((_, list)) = self.local.recv_cells.iter().find(|&&(r, _)| r == from) {
                for &l in list {
                    cell_field[l as usize] = buf[cursor];
                    cursor += 1;
                }
            }
            if let Some((_, list)) = self.local.recv_edges.iter().find(|&&(r, _)| r == from) {
                for &l in list {
                    edge_field[l as usize] = buf[cursor];
                    cursor += 1;
                }
            }
            assert_eq!(cursor, buf.len(), "packed halo length mismatch");
        }
        self.recorder.add("msg.halo.exchanges", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use mpas_mesh::MeshPartition;

    /// Every rank fills owned entries with a global function of the global
    /// id; after exchange, halo entries must match that function too.
    #[test]
    fn halo_exchange_recovers_owner_values() {
        let mesh = mpas_mesh::generate(3, 0);
        let n_ranks = 4;
        let part = MeshPartition::build(&mesh, n_ranks, 2);
        let parts: Vec<RankLocal> = part.ranks.clone();
        let f = |g: u32| (g as f64) * 1.5 + 7.0;

        run_ranks(n_ranks, |mut ctx| {
            let local = parts[ctx.rank].clone();
            let mut hx = HaloExchanger::new(local);
            let nl = hx.local().n_cells();
            let owned = hx.local().n_owned_cells;
            let mut field = vec![f64::NAN; nl];
            for (l, fl) in field.iter_mut().enumerate().take(owned) {
                *fl = f(hx.local().cells[l]);
            }
            ctx.barrier();
            let mut field2: Vec<f64> = hx
                .local()
                .edges
                .iter()
                .enumerate()
                .map(|(l, &g)| {
                    if l < hx.local().n_owned_edges {
                        f(g) * 2.0
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            hx.exchange(&mut ctx, FieldKind::Cell, &mut field);
            hx.exchange(&mut ctx, FieldKind::Edge, &mut field2);
            for (l, &g) in hx.local().cells.iter().enumerate() {
                assert_eq!(field[l], f(g), "cell halo wrong at local {l}");
            }
            for (l, &g) in hx.local().edges.iter().enumerate() {
                assert_eq!(field2[l], f(g) * 2.0, "edge halo wrong at local {l}");
            }
        });
    }

    /// The packed state exchange produces exactly the same halos as two
    /// separate per-field exchanges.
    #[test]
    fn packed_exchange_equals_separate_exchanges() {
        let mesh = mpas_mesh::generate(3, 0);
        let n_ranks = 4;
        let part = MeshPartition::build(&mesh, n_ranks, 2);
        let parts: Vec<RankLocal> = part.ranks.clone();
        run_ranks(n_ranks, |mut ctx| {
            let mut hx = HaloExchanger::new(parts[ctx.rank].clone());
            let fill = |g: u32, scale: f64| g as f64 * scale + 3.0;
            let mk = |owned: usize, ids: &[u32], scale: f64| -> Vec<f64> {
                ids.iter()
                    .enumerate()
                    .map(|(l, &g)| if l < owned { fill(g, scale) } else { -1.0 })
                    .collect()
            };
            let owned_c = hx.local().n_owned_cells;
            let owned_e = hx.local().n_owned_edges;
            let cells = hx.local().cells.clone();
            let edges = hx.local().edges.clone();
            let mut hc_a = mk(owned_c, &cells, 2.0);
            let mut he_a = mk(owned_e, &edges, 5.0);
            let mut hc_b = hc_a.clone();
            let mut he_b = he_a.clone();
            hx.exchange_state(&mut ctx, &mut hc_a, &mut he_a);
            hx.exchange(&mut ctx, FieldKind::Cell, &mut hc_b);
            hx.exchange(&mut ctx, FieldKind::Edge, &mut he_b);
            assert_eq!(hc_a, hc_b);
            assert_eq!(he_a, he_b);
            // And the values really are the owners' values.
            for (l, &g) in cells.iter().enumerate() {
                assert_eq!(hc_a[l], fill(g, 2.0));
            }
        });
    }

    /// Byte counters recorded by the telemetry sink must equal exactly the
    /// bytes implied by the partition's send/recv lists (8 bytes per f64).
    #[test]
    fn telemetry_counts_list_derived_bytes() {
        let mesh = mpas_mesh::generate(3, 0);
        let n_ranks = 4;
        let part = MeshPartition::build(&mesh, n_ranks, 2);
        let parts: Vec<RankLocal> = part.ranks.clone();
        let rec = Recorder::new();
        let expected: u64 = parts
            .iter()
            .flat_map(|p| p.send_cells.iter().chain(p.send_edges.iter()))
            .map(|(_, list)| (list.len() * 8) as u64)
            .sum();

        run_ranks(n_ranks, |mut ctx| {
            let mut hx = HaloExchanger::new(parts[ctx.rank].clone()).with_recorder(rec.clone());
            let mut cells = vec![1.0; hx.local().n_cells()];
            let mut edges = vec![2.0; hx.local().edges.len()];
            hx.exchange_state(&mut ctx, &mut cells, &mut edges);
        });

        let snap = rec.snapshot();
        assert_eq!(snap.counter("msg.halo.bytes_sent"), Some(expected));
        assert_eq!(snap.counter("msg.halo.bytes_recv"), Some(expected));
        assert_eq!(snap.counter("msg.halo.exchanges"), Some(n_ranks as u64));
    }

    /// Wait spans (blocked receive) and copy spans (pack/unpack) recorded
    /// during an exchange never overlap on a rank's track, so blame
    /// analysis can sum them without double counting.
    #[test]
    fn wait_and_copy_spans_are_disjoint_per_rank() {
        use mpas_telemetry::analysis::{COPY_SPAN, WAIT_SPAN};
        let mesh = mpas_mesh::generate(3, 0);
        let n_ranks = 3;
        let part = MeshPartition::build(&mesh, n_ranks, 2);
        let parts: Vec<RankLocal> = part.ranks.clone();
        let rec = Recorder::new();
        run_ranks(n_ranks, |mut ctx| {
            ctx.set_recorder(rec.clone());
            let mut hx = HaloExchanger::new(parts[ctx.rank].clone()).with_recorder(rec.clone());
            let mut cells = vec![1.0; hx.local().n_cells()];
            let mut edges = vec![2.0; hx.local().edges.len()];
            hx.exchange_state(&mut ctx, &mut cells, &mut edges);
            hx.exchange(&mut ctx, FieldKind::Cell, &mut cells);
        });
        let spans = rec.spans();
        for rank in 0..n_ranks {
            let track = mpas_telemetry::analysis::rank_track(rank);
            let mut intervals: Vec<(f64, f64)> = spans
                .iter()
                .filter(|s| s.track == track && (s.name == WAIT_SPAN || s.name == COPY_SPAN))
                .map(|s| (s.start_s, s.start_s + s.dur_s))
                .collect();
            assert!(!intervals.is_empty(), "rank {rank} recorded no spans");
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(
                    w[0].1 <= w[1].0 + 1e-9,
                    "rank {rank}: overlapping wait/copy spans {w:?}"
                );
            }
        }
    }

    /// Repeated exchanges with changing data keep halos current
    /// (generation tags prevent cross-talk).
    #[test]
    fn repeated_exchanges_track_updates() {
        let mesh = mpas_mesh::generate(2, 0);
        let n_ranks = 3;
        let part = MeshPartition::build(&mesh, n_ranks, 1);
        let parts: Vec<RankLocal> = part.ranks.clone();

        run_ranks(n_ranks, |mut ctx| {
            let mut hx = HaloExchanger::new(parts[ctx.rank].clone());
            let mut field = vec![0.0; hx.local().n_cells()];
            for round in 0..5 {
                let owned = hx.local().n_owned_cells;
                for (l, fl) in field.iter_mut().enumerate().take(owned) {
                    *fl = hx.local().cells[l] as f64 + 1000.0 * round as f64;
                }
                hx.exchange(&mut ctx, FieldKind::Cell, &mut field);
                for (l, &g) in hx.local().cells.iter().enumerate() {
                    assert_eq!(field[l], g as f64 + 1000.0 * round as f64);
                }
            }
        });
    }
}
