#![warn(missing_docs)]
//! In-process message-passing runtime — the MPI substitute.
//!
//! The paper's inter-node layer is MPI over InfiniBand. Rust's MPI ecosystem
//! is thin (see DESIGN.md §1), so this crate rebuilds the needed subset with
//! ranks as OS threads and typed channels as the wire:
//!
//! * [`comm`] — point-to-point tagged send/recv with out-of-order buffering,
//!   barriers, and reductions;
//! * [`halo`] — the halo-exchange engine driven by the exchange lists of
//!   [`mpas_mesh::MeshPartition`];
//! * [`cost`] — the α+β communication cost model used by the scaling
//!   experiments (Figs. 8–9).
//!
//! The semantics match a correct MPI program: the exchange logic (who sends
//! what to whom, pack/unpack order, synchronization points) is identical;
//! only the transport differs.

pub mod comm;
pub mod cost;
pub mod halo;

pub use comm::{run_ranks, RankCtx};
pub use cost::CommCostModel;
pub use halo::HaloExchanger;
