//! Rank contexts and collectives.
//!
//! [`run_ranks`] spawns `n` scoped threads, one per rank, each holding a
//! [`RankCtx`] wired to every other rank through unbounded channels. Tagged
//! messages may arrive out of order; each context buffers non-matching
//! messages until asked for them, giving MPI-like `send`/`recv` semantics
//! without global locks.

use crossbeam_channel::{unbounded, Receiver, Sender};
use mpas_telemetry::analysis::{rank_track, BARRIER_SPAN, RECV_EVENT, SEND_EVENT, WAIT_SPAN};
use mpas_telemetry::Recorder;
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

/// One point-to-point message.
#[derive(Debug)]
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f64>,
}

/// A rank's endpoint into the communicator.
pub struct RankCtx {
    /// This rank's id, `0..n_ranks`.
    pub rank: usize,
    /// Total number of ranks in the communicator.
    pub n_ranks: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet requested, keyed by (from, tag).
    stash: HashMap<(usize, u64), Vec<Vec<f64>>>,
    barrier: Arc<Barrier>,
    /// Telemetry sink (`msg.comm.*` counters); no-op unless set.
    recorder: Recorder,
    /// Trace track this rank's spans land on (`"rank{r}"`), cached so the
    /// hot path never formats.
    track: String,
}

impl RankCtx {
    /// Route this context's `msg.comm.*` telemetry (message/byte counters,
    /// receive-wait timings, rank-tagged wait spans and send/recv edge
    /// events) into `rec`. Defaults to the no-op recorder.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// The telemetry sink for this context.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The trace track this rank records on (`"rank{r}"`).
    pub fn track(&self) -> &str {
        &self.track
    }

    /// Send `payload` to `to` with a tag. Never blocks (unbounded buffering,
    /// like an eager-protocol MPI send). Emits the causal
    /// `msg.comm.send` edge event the trace analyzer matches recvs
    /// against.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<f64>) {
        let bytes = (payload.len() * 8) as u64;
        if self.recorder.is_enabled() {
            self.recorder.add("msg.comm.messages_sent", 1);
            self.recorder.add("msg.comm.bytes_sent", bytes);
            self.recorder.event(
                SEND_EVENT,
                &[
                    ("from", self.rank.to_string()),
                    ("to", to.to_string()),
                    ("tag", tag.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            );
        }
        self.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// Receive the next message from `from` with `tag`, blocking until it
    /// arrives. Messages with other (from, tag) keys are stashed.
    ///
    /// Only the *blocked* portion is timed (`msg.comm.recv_wait_seconds`,
    /// plus a rank-tagged `wait` span); payload copies are the callers'
    /// business and carry their own `copy` spans, so blame analysis never
    /// double-counts. The matching `msg.comm.recv` edge event fires after
    /// the wait completes.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        let payload = if self.recorder.is_enabled() {
            let _wait =
                self.recorder
                    .span_timed(&self.track, WAIT_SPAN, "msg.comm.recv_wait_seconds");
            self.recv_inner(from, tag)
        } else {
            self.recv_inner(from, tag)
        };
        let bytes = (payload.len() * 8) as u64;
        if self.recorder.is_enabled() {
            self.recorder.add("msg.comm.messages_recv", 1);
            self.recorder.add("msg.comm.bytes_recv", bytes);
            self.recorder.event(
                RECV_EVENT,
                &[
                    ("from", from.to_string()),
                    ("to", self.rank.to_string()),
                    ("tag", tag.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            );
        }
        payload
    }

    fn recv_inner(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(q) = self.stash.get_mut(&(from, tag)) {
            if !q.is_empty() {
                return q.remove(0);
            }
        }
        loop {
            let msg = self.receiver.recv().expect("all peers hung up");
            if msg.from == from && msg.tag == tag {
                return msg.payload;
            }
            self.stash
                .entry((msg.from, msg.tag))
                .or_default()
                .push(msg.payload);
        }
    }

    /// Block until every rank reaches the barrier. Timed as a rank-tagged
    /// `barrier` span (`msg.comm.barrier_seconds`).
    pub fn barrier(&self) {
        let _span = self
            .recorder
            .span_timed(&self.track, BARRIER_SPAN, "msg.comm.barrier_seconds");
        self.barrier.wait();
    }

    /// Sum an f64 across all ranks (gather-to-root then broadcast).
    pub fn allreduce_sum(&mut self, x: f64) -> f64 {
        self.allreduce(x, |a, b| a + b)
    }

    /// Max of an f64 across all ranks.
    pub fn allreduce_max(&mut self, x: f64) -> f64 {
        self.allreduce(x, f64::max)
    }

    fn allreduce(&mut self, x: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        const TAG: u64 = u64::MAX - 1;
        if self.rank == 0 {
            let mut acc = x;
            for from in 1..self.n_ranks {
                let v = self.recv(from, TAG);
                acc = op(acc, v[0]);
            }
            for to in 1..self.n_ranks {
                self.send(to, TAG, vec![acc]);
            }
            acc
        } else {
            self.send(0, TAG, vec![x]);
            self.recv(0, TAG)[0]
        }
    }
}

/// Run `f` on `n` ranks concurrently and return the per-rank results in
/// rank order. Panics in any rank propagate.
pub fn run_ranks<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(RankCtx) -> T + Sync,
{
    assert!(n >= 1);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(n));
    let mut ctxs: Vec<RankCtx> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| RankCtx {
            rank,
            n_ranks: n,
            senders: senders.clone(),
            receiver,
            stash: HashMap::new(),
            barrier: barrier.clone(),
            recorder: Recorder::noop(),
            track: rank_track(rank),
        })
        .collect();
    drop(senders);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for ctx in ctxs.drain(..) {
            handles.push(scope.spawn(|| f(ctx)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = run_ranks(4, |mut ctx| {
            let next = (ctx.rank + 1) % ctx.n_ranks;
            let prev = (ctx.rank + ctx.n_ranks - 1) % ctx.n_ranks;
            ctx.send(next, 7, vec![ctx.rank as f64]);
            ctx.recv(prev, 7)[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run_ranks(2, |mut ctx| {
            if ctx.rank == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                ctx.send(1, 2, vec![20.0]);
                ctx.send(1, 1, vec![10.0]);
                0.0
            } else {
                let a = ctx.recv(0, 1)[0];
                let b = ctx.recv(0, 2)[0];
                a * 100.0 + b
            }
        });
        assert_eq!(results[1], 1020.0);
    }

    #[test]
    fn multiple_messages_same_tag_preserve_order() {
        let results = run_ranks(2, |mut ctx| {
            if ctx.rank == 0 {
                for k in 0..5 {
                    ctx.send(1, 9, vec![k as f64]);
                }
                0.0
            } else {
                let mut acc = 0.0;
                for k in 0..5 {
                    let v = ctx.recv(0, 9)[0];
                    assert_eq!(v, k as f64, "FIFO order violated");
                    acc = acc * 10.0 + v;
                }
                acc
            }
        });
        assert_eq!(results[1], 1234.0);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_ranks(5, |mut ctx| ctx.allreduce_sum(ctx.rank as f64 + 1.0));
        assert!(sums.iter().all(|&s| s == 15.0));
        let maxs = run_ranks(5, |mut ctx| {
            ctx.allreduce_max(-((ctx.rank as f64) - 2.0).abs())
        });
        assert!(maxs.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn single_rank_runs() {
        let r = run_ranks(1, |mut ctx| ctx.allreduce_sum(42.0));
        assert_eq!(r, vec![42.0]);
    }

    #[test]
    fn recorded_ranks_emit_rank_tagged_spans_and_edge_events() {
        use mpas_telemetry::analysis;
        let rec = Recorder::new();
        run_ranks(2, |mut ctx| {
            ctx.set_recorder(rec.clone());
            assert_eq!(ctx.track(), analysis::rank_track(ctx.rank));
            if ctx.rank == 0 {
                ctx.send(1, 5, vec![1.0, 2.0]);
            } else {
                assert_eq!(ctx.recv(0, 5), vec![1.0, 2.0]);
            }
            ctx.barrier();
        });
        let spans = rec.spans();
        // The receive produced a wait span on rank1's track; each rank
        // produced a barrier span on its own track.
        assert!(spans
            .iter()
            .any(|s| s.name == WAIT_SPAN && s.track == "rank1"));
        assert_eq!(
            spans.iter().filter(|s| s.name == BARRIER_SPAN).count(),
            2,
            "one barrier span per rank"
        );
        // Edge events carry from/to/tag/bytes and reconstruct into a
        // matched trace.
        let t = analysis::Trace::from_records(&spans, &rec.events());
        assert_eq!(t.sends.len(), 1);
        assert_eq!(t.recvs.len(), 1);
        assert_eq!(t.sends[0].from, 0);
        assert_eq!(t.sends[0].to, 1);
        assert_eq!(t.sends[0].tag, 5);
        assert_eq!(t.sends[0].bytes, 16);
        assert!(t.sends[0].ts_s <= t.recvs[0].ts_s);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("msg.comm.bytes_sent"), Some(16));
        assert_eq!(
            snap.histogram("msg.comm.recv_wait_seconds").unwrap().count,
            1
        );
        assert_eq!(snap.histogram("msg.comm.barrier_seconds").unwrap().count, 2);
    }
}
