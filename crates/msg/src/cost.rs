//! α+β communication cost model.
//!
//! The scaling figures (Figs. 8–9) ran on 56 Gb/s FDR InfiniBand; this
//! machine has no network at all, so scaling experiments price messages
//! with the classic postal model `T(bytes) = α + bytes/β` and feed the
//! result to the makespan simulator in `mpas-hybrid`.

/// Latency/bandwidth model of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCostModel {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Bandwidth, bytes/second.
    pub beta: f64,
}

impl CommCostModel {
    /// FDR InfiniBand (56 Gb/s, ~1.5 µs MPI latency) — the paper's fabric.
    pub fn fdr_infiniband() -> Self {
        CommCostModel {
            alpha: 1.5e-6,
            beta: 56.0e9 / 8.0 * 0.8,
        }
    }

    /// Time to move one message of `bytes`.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }

    /// Time for a halo update exchanging `bytes` split over `n_neighbors`
    /// messages (latency paid per message, sends overlap pairwise).
    pub fn halo_time(&self, bytes: usize, n_neighbors: usize) -> f64 {
        if bytes == 0 || n_neighbors == 0 {
            return 0.0;
        }
        self.alpha * n_neighbors as f64 + bytes as f64 / self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let m = CommCostModel::fdr_infiniband();
        let t8 = m.message_time(8);
        assert!((t8 - m.alpha) / m.alpha < 0.01);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let m = CommCostModel::fdr_infiniband();
        let t = m.message_time(100_000_000);
        assert!(t > 0.01 && t < 0.03, "t = {t}");
    }

    #[test]
    fn halo_time_monotone_in_both_arguments() {
        let m = CommCostModel::fdr_infiniband();
        assert!(m.halo_time(1000, 2) < m.halo_time(2000, 2));
        assert!(m.halo_time(1000, 2) < m.halo_time(1000, 4));
        assert_eq!(m.halo_time(0, 0), 0.0);
    }
}
