//! Deep discrete properties of the TRiSK scheme — the reasons the MPAS
//! C-grid discretization (and hence the paper's kernels) look the way they
//! do.

use mpas_swe::config::ModelConfig;
use mpas_swe::kernels::ops;
use mpas_swe::state::Diagnostics;

fn mesh() -> mpas_mesh::Mesh {
    mpas_mesh::generate(3, 0)
}

/// The nonlinear Coriolis term `Q_e = Σ_{e'} w_{ee'} u_{e'} h_{e'} q̄_{ee'}`
/// does no work: `Σ_e d_e l_e h_e u_e Q_e = 0` **exactly** (up to rounding),
/// because the normalized weights are antisymmetric and the edge-pair PV
/// average is symmetric. This is Ringler et al. (2010)'s energy-conserving
/// construction, and it must hold for *any* state, physical or not.
#[test]
fn coriolis_term_is_energy_neutral() {
    let m = mesh();
    for seed in 0..5u64 {
        let u: Vec<f64> = (0..m.n_edges())
            .map(|e| ((e as f64 + seed as f64 * 31.0) * 0.7).sin() * 20.0)
            .collect();
        let h_edge: Vec<f64> = (0..m.n_edges())
            .map(|e| 3000.0 + ((e as f64 + seed as f64) * 0.13).cos() * 200.0)
            .collect();
        let q: Vec<f64> = (0..m.n_edges())
            .map(|e| 1e-8 * (1.0 + 0.3 * ((e as f64 * 0.37).sin())))
            .collect();
        let mut work = 0.0;
        let mut scale = 0.0;
        for e in 0..m.n_edges() {
            let mut q_term = 0.0;
            for slot in m.eoe_range(e) {
                let eoe = m.edges_on_edge[slot] as usize;
                let qbar = 0.5 * (q[e] + q[eoe]);
                q_term += m.weights_on_edge[slot] * u[eoe] * h_edge[eoe] * qbar;
            }
            let contrib = m.dc_edge[e] * m.dv_edge[e] * h_edge[e] * u[e] * q_term;
            work += contrib;
            scale += contrib.abs();
        }
        assert!(
            work.abs() < 1e-12 * scale.max(1.0),
            "seed {seed}: Coriolis work {work:e} (scale {scale:e})"
        );
    }
}

/// The kinetic-energy gradient term conserves energy against the thickness
/// flux: `Σ_i A_i h_i dK_i/dt + Σ_e (transport terms) = 0` is the full
/// statement; here we check its key ingredient — the discrete
/// grad/divergence duality `Σ_e (∇φ)_e F_e l_e d_e?` in the form
/// `Σ_i φ_i (div F)_i A_i = -Σ_e (grad φ)_e F_e l_e d_e / d_e` — i.e. the
/// discrete integration-by-parts identity with no boundary on the sphere.
#[test]
fn discrete_integration_by_parts() {
    let m = mesh();
    let phi: Vec<f64> = (0..m.n_cells())
        .map(|i| (m.x_cell[i].z * 2.0).sin() * 100.0 + m.x_cell[i].x * 40.0)
        .collect();
    let flux: Vec<f64> = (0..m.n_edges())
        .map(|e| ((e as f64) * 0.11).cos() * 8.0)
        .collect();

    // lhs = Σ_i φ_i (div F)_i A_i
    let mut div = vec![0.0; m.n_cells()];
    ops::divergence(&m, &flux, &mut div, 0..m.n_cells());
    let lhs: f64 = (0..m.n_cells())
        .map(|i| phi[i] * div[i] * m.area_cell[i])
        .sum();

    // rhs = −Σ_e (δφ)_e F_e l_e  with (δφ)_e = φ(c2) − φ(c1)
    let rhs: f64 = -(0..m.n_edges())
        .map(|e| {
            let [c1, c2] = m.cells_on_edge[e];
            (phi[c2 as usize] - phi[c1 as usize]) * flux[e] * m.dv_edge[e]
        })
        .sum::<f64>();

    let scale: f64 = (0..m.n_edges())
        .map(|e| (phi[0].abs() + 100.0) * flux[e].abs() * m.dv_edge[e])
        .sum();
    assert!(
        (lhs - rhs).abs() < 1e-12 * scale,
        "integration by parts violated: {lhs} vs {rhs}"
    );
}

/// The tangential-velocity operator annihilates its own null structure:
/// reconstructing from a discrete gradient field (which has zero
/// circulation on every dual cell) still yields a consistent tangential
/// field — check it reproduces the analytic tangential gradient to O(h).
#[test]
fn tangential_reconstruction_of_gradient_flow() {
    let m = mpas_mesh::generate(4, 0);
    // φ = a·r̂ with a fixed vector: grad is a smooth vector field.
    let a = mpas_geom::Vec3::new(0.3, -0.5, 0.8);
    let phi: Vec<f64> = (0..m.n_cells())
        .map(|i| a.dot(m.x_cell[i]) * m.sphere_radius)
        .collect();
    let u: Vec<f64> = (0..m.n_edges())
        .map(|e| {
            let [c1, c2] = m.cells_on_edge[e];
            (phi[c2 as usize] - phi[c1 as usize]) / m.dc_edge[e]
        })
        .collect();
    let mut v = vec![0.0; m.n_edges()];
    ops::tangential_velocity(&m, &u, &mut v, 0..m.n_edges());
    // Analytic tangential component of the surface gradient of a·x:
    // ∇_s(a·x) = a − (a·r̂)r̂ ; tangential component = that · t̂.
    let mut rms_err = 0.0;
    let mut rms_ref = 0.0;
    for (e, &ve) in v.iter().enumerate() {
        let r = m.x_edge[e].normalized();
        let grad = a - r * a.dot(r);
        let exact = grad.dot(m.tangent_edge[e]);
        rms_err += (ve - exact).powi(2);
        rms_ref += exact.powi(2);
    }
    let rel = (rms_err / rms_ref).sqrt();
    assert!(rel < 0.05, "tangential gradient rel RMS {rel}");
}

/// APVM is dissipative for PV variance: with upwinding on, the PV field at
/// edges is damped relative to the centered average, never amplified.
#[test]
fn apvm_damps_pv_extremes() {
    let m = mesh();
    let config = ModelConfig::default();
    let h: Vec<f64> = (0..m.n_cells())
        .map(|i| 5000.0 + (m.x_cell[i].z * 4.0).sin() * 300.0)
        .collect();
    let u: Vec<f64> = (0..m.n_edges())
        .map(|e| ((e as f64) * 0.21).sin() * 15.0)
        .collect();
    let f_v: Vec<f64> = (0..m.n_vertices())
        .map(|v| 2.0 * mpas_geom::OMEGA * m.x_vertex[v].z)
        .collect();
    let mut d_on = Diagnostics::zeros(&m);
    mpas_swe::kernels::compute_solve_diagnostics(&m, &config, &h, &u, &f_v, 600.0, &mut d_on);
    let off = ModelConfig {
        apvm_factor: 0.0,
        ..config
    };
    let mut d_off = Diagnostics::zeros(&m);
    mpas_swe::kernels::compute_solve_diagnostics(&m, &off, &h, &u, &f_v, 600.0, &mut d_off);
    // Same centered part; the APVM correction is a small fraction of the
    // global PV magnitude (pointwise relative comparisons are meaningless
    // where f + ζ crosses zero near the equator).
    let pv_scale = d_off.pv_edge.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let max_corr = (0..m.n_edges())
        .map(|e| (d_on.pv_edge[e] - d_off.pv_edge[e]).abs())
        .fold(0.0f64, f64::max);
    assert!(max_corr > 0.0, "APVM inactive");
    assert!(
        max_corr / pv_scale < 0.2,
        "APVM correction too large: {}",
        max_corr / pv_scale
    );
}
