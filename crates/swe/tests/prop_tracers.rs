//! Property tests of passive-tracer transport.
//!
//! Two physical guarantees back the tracer pattern:
//!
//! * **Conservation** — the T1 kernel is flux-form (every edge flux enters
//!   its two cells with opposite sign), so total tracer mass `∫ h·q dA`
//!   is conserved to rounding: at most `1e-12` relative drift per step,
//!   the same budget `mpas_swe::validation` gates runs against.
//! * **Constant-field preservation** — for a spatially constant
//!   concentration the centered edge value is exact, the tracer equation
//!   degenerates to the continuity equation, and `h·q` tracks `h`; no new
//!   concentration extrema appear.
//!
//! Both hold on random mesh levels and Lloyd relaxations, for every kernel
//! backend (scalar, fused, simd), and for any tracer count.

use mpas_swe::{KernelBackend, ModelConfig, ShallowWaterModel, TestCase};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Total tracer mass drifts at most 1e-12 relative per step.
    #[test]
    fn tracer_mass_is_conserved(
        level in 2u32..4,
        lloyd in 0u32..2,
        n_tracers in 1usize..4,
        steps in 1usize..8,
        backend_i in 0usize..KernelBackend::ALL.len(),
        case5 in proptest::bool::ANY,
    ) {
        let mesh = Arc::new(mpas_mesh::generate(level, lloyd));
        let cfg = ModelConfig {
            n_tracers,
            kernel_backend: KernelBackend::ALL[backend_i],
            ..Default::default()
        };
        let tc = if case5 { TestCase::Case5 } else { TestCase::Case6 };
        let mut m = ShallowWaterModel::new(mesh, cfg, tc, None);
        let mass0: Vec<f64> = (0..n_tracers).map(|k| m.total_tracer(k)).collect();
        m.run_steps(steps);
        for (k, m0) in mass0.iter().enumerate() {
            let drift = ((m.total_tracer(k) - m0) / m0).abs();
            prop_assert!(
                drift <= 1e-12 * steps as f64,
                "tracer {k}: drift {drift:.3e} over {steps} steps"
            );
        }
    }

    /// A spatially constant concentration stays constant (to rounding):
    /// the advection operator introduces no new extrema for it.
    #[test]
    fn constant_concentration_is_preserved(
        level in 2u32..4,
        lloyd in 0u32..2,
        steps in 1usize..6,
        backend_i in 0usize..KernelBackend::ALL.len(),
    ) {
        let mesh = Arc::new(mpas_mesh::generate(level, lloyd));
        let cfg = ModelConfig {
            n_tracers: 1,
            kernel_backend: KernelBackend::ALL[backend_i],
            ..Default::default()
        };
        let mut m = ShallowWaterModel::new(mesh, cfg, TestCase::Case5, None);
        // q ≡ 2.5 everywhere, i.e. tracer mass 2.5·h.
        for i in 0..m.mesh.n_cells() {
            m.state.tracers[0][i] = 2.5 * m.state.h[i];
        }
        m.run_steps(steps);
        for i in 0..m.mesh.n_cells() {
            let q = m.state.tracers[0][i] / m.state.h[i];
            prop_assert!(
                (q - 2.5).abs() <= 2.5 * 1e-12,
                "cell {i}: q = {q} drifted from the constant"
            );
        }
    }
}
