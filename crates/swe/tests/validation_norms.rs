//! Golden-norm regression tests: the level-5 committed reference norms.
//!
//! Each test replays one catalog scenario on the serial reference model at
//! level 5 for the committed horizon (see `mpas_swe::validation::SPECS`)
//! and asserts the measured thickness norms land inside the committed
//! band. Because every executor is bitwise-identical to serial, these four
//! runs gate the numerics of the whole executor family; the CI
//! scenario-suite job covers the remaining catalog entries at level 4
//! through `swe_run --validate`.

use mpas_swe::validation;

fn golden(name: &str) {
    let report = validation::run_and_validate(name, 5).expect("committed level-5 spec");
    assert!(
        report.passed(),
        "{name} level 5 (steps {}): l2 {:.4e}, linf {:.4e}; {:?}",
        report.steps,
        report.norms.l2,
        report.norms.linf,
        report.failures
    );
}

#[test]
fn williamson_1_golden_norms() {
    golden("williamson-1");
}

#[test]
fn williamson_2_golden_norms() {
    golden("williamson-2");
}

#[test]
fn williamson_5_golden_norms() {
    golden("williamson-5");
}

#[test]
fn galewsky_golden_norms() {
    golden("galewsky");
}
