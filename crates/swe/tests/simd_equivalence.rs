//! The PR-9 kernel-tier equivalence matrix (DESIGN.md §14).
//!
//! The simd tier batches vertically: each layer lane replays the fused
//! tier's arithmetic in the fused tier's order, so there are no reordered
//! reductions anywhere in the backend — equality is *bitwise*, not
//! approximate, and these tests assert exactly that:
//!
//! * flat (`k = 1`) simd runs hash-match fused runs on every catalog
//!   scenario;
//! * layer 0 of a `k`-layer run hash-matches the flat fused run for
//!   `k ∈ {1, 4, 7}`;
//! * every deeper layer matches a flat fused run started from that layer's
//!   perturbed initial state;
//! * cache-block tiling is a pure traversal-order choice: any block size
//!   produces bits identical to the untiled sweep, and the tiling visits
//!   every index exactly once (property-tested).

use mpas_swe::kernels::simd::block_ranges;
use mpas_swe::layers::{layer_h_scale, LayeredModel};
use mpas_swe::validation::CATALOG;
use mpas_swe::{KernelBackend, ModelConfig, ShallowWaterModel};
use proptest::prelude::*;
use std::sync::Arc;

const LEVEL: u32 = 4;
const STEPS: usize = 3;

fn state_bits(m: &ShallowWaterModel) -> Vec<u64> {
    m.state
        .h
        .iter()
        .chain(&m.state.u)
        .chain(m.state.tracers.iter().flatten())
        .map(|v| v.to_bits())
        .collect()
}

fn run_flat(
    mesh: &Arc<mpas_mesh::Mesh>,
    config: ModelConfig,
    tc: mpas_swe::TestCase,
) -> ShallowWaterModel {
    let mut m = ShallowWaterModel::new(mesh.clone(), config, tc, None);
    m.run_steps(STEPS);
    m
}

#[test]
fn flat_simd_matches_fused_bitwise_on_every_catalog_case() {
    let mesh = Arc::new(mpas_mesh::generate(LEVEL, 0));
    for sc in &CATALOG {
        let fused = run_flat(&mesh, sc.config(), sc.test_case);
        let simd = run_flat(
            &mesh,
            ModelConfig {
                kernel_backend: KernelBackend::Simd,
                ..sc.config()
            },
            sc.test_case,
        );
        assert_eq!(
            state_bits(&fused),
            state_bits(&simd),
            "{}: flat simd diverged from fused",
            sc.name
        );
    }
}

#[test]
fn layered_runs_match_fused_bitwise_per_layer_across_k() {
    let mesh = Arc::new(mpas_mesh::generate(LEVEL, 0));
    for sc in &CATALOG {
        // k = 7 on one representative scenario keeps the matrix fast; every
        // scenario still runs k ∈ {1, 4}.
        let ks: &[usize] = if sc.name == "williamson-5" {
            &[1, 4, 7]
        } else {
            &[1, 4]
        };
        let fused = run_flat(&mesh, sc.config(), sc.test_case);
        for &k in ks {
            let cfg = ModelConfig {
                kernel_backend: KernelBackend::Simd,
                n_layers: k,
                ..sc.config()
            };
            let mut layered = LayeredModel::new(mesh.clone(), cfg, sc.test_case, None);
            layered.run_steps(STEPS);
            let l0 = layered.extract_layer(0);
            assert_eq!(
                state_bits(&fused),
                l0.h.iter()
                    .chain(&l0.u)
                    .chain(l0.tracers.iter().flatten())
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "{} k={k}: layer 0 diverged from the flat fused run",
                sc.name
            );
        }
    }
}

#[test]
fn deeper_layers_match_flat_fused_runs_from_their_scaled_states() {
    let mesh = Arc::new(mpas_mesh::generate(3, 0));
    let tc = mpas_swe::TestCase::Case5;
    let k = 4;
    let cfg = ModelConfig {
        kernel_backend: KernelBackend::Simd,
        n_layers: k,
        n_tracers: 1,
        ..Default::default()
    };
    let mut layered = LayeredModel::new(mesh.clone(), cfg, tc, None);
    let dt = layered.dt;
    layered.run_steps(STEPS);
    for l in 1..k {
        let flat_cfg = ModelConfig {
            n_tracers: 1,
            ..Default::default()
        };
        let mut flat = ShallowWaterModel::new(mesh.clone(), flat_cfg, tc, Some(dt));
        let s = layer_h_scale(l);
        for h in flat.state.h.iter_mut() {
            *h *= s;
        }
        for tr in flat.state.tracers.iter_mut() {
            for q in tr.iter_mut() {
                *q *= s;
            }
        }
        flat.refresh_diagnostics();
        flat.run_steps(STEPS);
        let got = layered.extract_layer(l);
        assert_eq!(
            state_bits(&flat),
            got.h
                .iter()
                .chain(&got.u)
                .chain(got.tracers.iter().flatten())
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "layer {l} diverged from its flat fused twin"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tiling is exact: for any `n` and block size the emitted ranges
    /// partition `0..n` — consecutive, disjoint, complete — so every cell
    /// is visited exactly once no matter how the sweep is blocked.
    #[test]
    fn block_ranges_partition_the_index_space(n in 0usize..10_000, block in 1usize..2_048) {
        let mut next = 0usize;
        for r in block_ranges(n, block) {
            prop_assert_eq!(r.start, next, "gap or overlap at {}", r.start);
            prop_assert!(r.end > r.start, "empty block");
            prop_assert!(r.end - r.start <= block, "oversized block");
            next = r.end;
        }
        prop_assert_eq!(next, n, "tiling stopped short of n");
    }

    /// Block size is invisible in the bits: a layered run under any block
    /// size equals the untiled (single-block) run exactly.
    #[test]
    fn any_block_size_matches_the_untiled_sweep_bitwise(
        block in 1usize..4_096,
        k in 1usize..5,
        steps in 1usize..3,
    ) {
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        let cfg = ModelConfig {
            kernel_backend: KernelBackend::Simd,
            n_layers: k,
            ..Default::default()
        };
        let tc = mpas_swe::TestCase::Case5;
        let mut untiled = LayeredModel::new(mesh.clone(), cfg, tc, None);
        untiled.set_cell_block(usize::MAX);
        untiled.run_steps(steps);
        let mut tiled = LayeredModel::new(mesh.clone(), cfg, tc, None);
        tiled.set_cell_block(block);
        tiled.run_steps(steps);
        prop_assert_eq!(untiled.state_hash(), tiled.state_hash(),
            "block {} changed the bits", block);
    }
}
