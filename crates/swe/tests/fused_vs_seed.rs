//! PR-4 coverage: every fused Table-I op against its seed counterpart,
//! per-range.
//!
//! Two properties per op, on a level-4 mesh with synthetic smooth fields:
//!
//! 1. **Numerics** — the fused form agrees with the seed op over the full
//!    range within the documented rounding contract: bit-identical for the
//!    exact fusions (C2 vorticity, A3 vorticity_cell, F pv_cell, H2
//!    high-order h_edge), ≤ 1e-12 relative for the 1-ulp reassociations
//!    (A1, A2, B1, B2, C1 family, D1/D2, G).
//! 2. **Range splitting** — computing the same output as two disjoint
//!    chunks split at an arbitrary `mid` (both the even `n/2` split and the
//!    uneven `HybridModel`-style offset split) is bit-identical to the full
//!    range. This is the property the two-pool executor relies on.

use mpas_swe::coeffs::KernelCoeffs;
use mpas_swe::config::ModelConfig;
use mpas_swe::kernels::{fused, ops};
use std::ops::Range;

const REL_TOL: f64 = 1e-12;

fn rel_close(seed: &[f64], fused: &[f64], tag: &str) {
    assert_eq!(seed.len(), fused.len());
    for (k, (a, b)) in seed.iter().zip(fused).enumerate() {
        let scale = a.abs().max(1e-30);
        assert!(
            ((a - b) / scale).abs() < REL_TOL,
            "{tag}[{k}]: seed {a} vs fused {b}"
        );
    }
}

/// Run `f` over the full range, then as two chunks split at each `mid`,
/// asserting the chunked results are bit-identical to the full range.
/// `init` seeds the output (the C1 ops are read-modify-write).
fn check_split<F: Fn(&mut [f64], Range<usize>)>(
    n: usize,
    init: &[f64],
    f: F,
    tag: &str,
) -> Vec<f64> {
    let mut full = init.to_vec();
    f(&mut full, 0..n);
    for mid in [n / 2, n / 3, 5 * n / 8] {
        let mut split = init.to_vec();
        let (lo, hi) = split.split_at_mut(mid);
        f(lo, 0..mid);
        f(hi, mid..n);
        assert_eq!(full, split, "{tag}: split at {mid} differs from full");
    }
    full
}

struct Fixture {
    mesh: mpas_mesh::Mesh,
    kc: KernelCoeffs,
    cfg: ModelConfig,
    u: Vec<f64>,
    h: Vec<f64>,
    b: Vec<f64>,
    h_edge: Vec<f64>,
    v_tang: Vec<f64>,
}

fn fixture() -> Fixture {
    let mesh = mpas_mesh::generate(4, 0);
    let cfg = ModelConfig {
        high_order_h_edge: true,
        del2_viscosity: 1.0e4,
        del4_viscosity: 1.0e10,
        ..ModelConfig::default()
    };
    let kc = KernelCoeffs::build(&mesh, &cfg);
    let (ne, nc) = (mesh.n_edges(), mesh.n_cells());
    Fixture {
        u: (0..ne).map(|e| 20.0 * (e as f64 * 0.37).sin()).collect(),
        h: (0..nc)
            .map(|i| 1000.0 + 50.0 * (i as f64 * 0.23).cos())
            .collect(),
        b: (0..nc).map(|i| 10.0 * (i as f64 * 0.61).sin()).collect(),
        h_edge: (0..ne)
            .map(|e| 1000.0 + 40.0 * (e as f64 * 0.11).cos())
            .collect(),
        v_tang: (0..ne).map(|e| 5.0 * (e as f64 * 0.53).cos()).collect(),
        mesh,
        kc,
        cfg,
    }
}

#[test]
fn cell_reductions_match_seed_per_range() {
    let fx = fixture();
    let (mesh, kc, nc) = (&fx.mesh, &fx.kc, fx.mesh.n_cells());
    let zero = vec![0.0; nc];

    // A1 tend_h
    let mut seed = vec![0.0; nc];
    ops::tend_h(mesh, &fx.u, &fx.h_edge, &mut seed, 0..nc);
    let full = check_split(
        nc,
        &zero,
        |out, r| fused::tend_h(mesh, kc, &fx.u, &fx.h_edge, out, r),
        "A1",
    );
    rel_close(&seed, &full, "A1 tend_h");

    // B2 divergence
    ops::divergence(mesh, &fx.u, &mut seed, 0..nc);
    let full = check_split(
        nc,
        &zero,
        |out, r| fused::divergence(mesh, kc, &fx.u, out, r),
        "B2",
    );
    rel_close(&seed, &full, "B2 divergence");

    // A2 ke
    ops::ke(mesh, &fx.u, &mut seed, 0..nc);
    let full = check_split(nc, &zero, |out, r| fused::ke(mesh, kc, &fx.u, out, r), "A2");
    rel_close(&seed, &full, "A2 ke");
}

#[test]
fn vertex_and_kite_ops_are_bit_identical_per_range() {
    let fx = fixture();
    let (mesh, kc) = (&fx.mesh, &fx.kc);
    let (nc, nv) = (mesh.n_cells(), mesh.n_vertices());

    // C2 vorticity: exact fusion.
    let mut seed_v = vec![0.0; nv];
    ops::vorticity(mesh, &fx.u, &mut seed_v, 0..nv);
    let full_v = check_split(
        nv,
        &vec![0.0; nv],
        |out, r| fused::vorticity(mesh, kc, &fx.u, out, r),
        "C2",
    );
    assert_eq!(seed_v, full_v, "C2 vorticity must be bit-identical");

    // A3 vorticity_cell and F pv_cell: exact fusions over kite areas.
    let zero = vec![0.0; nc];
    let mut seed = vec![0.0; nc];
    ops::vorticity_cell(mesh, &seed_v, &mut seed, 0..nc);
    let full = check_split(
        nc,
        &zero,
        |out, r| fused::vorticity_cell(mesh, kc, &seed_v, out, r),
        "A3",
    );
    assert_eq!(seed, full, "A3 vorticity_cell must be bit-identical");

    ops::pv_cell(mesh, &seed_v, &mut seed, 0..nc);
    let full = check_split(
        nc,
        &zero,
        |out, r| fused::pv_cell(mesh, kc, &seed_v, out, r),
        "F",
    );
    assert_eq!(seed, full, "F pv_cell must be bit-identical");
}

#[test]
fn edge_ops_match_seed_per_range() {
    let fx = fixture();
    let (mesh, kc, cfg) = (&fx.mesh, &fx.kc, &fx.cfg);
    let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
    let zero = vec![0.0; ne];

    // Upstream diagnostics shared by the edge ops (seed forms throughout so
    // both paths read identical inputs).
    let mut vort = vec![0.0; nv];
    ops::vorticity(mesh, &fx.u, &mut vort, 0..nv);
    let pv_vertex: Vec<f64> = vort.iter().map(|z| z + 1.0e-4).collect();
    let mut pvc = vec![0.0; nc];
    ops::pv_cell(mesh, &pv_vertex, &mut pvc, 0..nc);
    let mut ke = vec![0.0; nc];
    ops::ke(mesh, &fx.u, &mut ke, 0..nc);
    let mut div = vec![0.0; nc];
    ops::divergence(mesh, &fx.u, &mut div, 0..nc);

    // G pv_edge
    let dt = 120.0;
    let mut seed = vec![0.0; ne];
    ops::pv_edge(
        mesh,
        cfg.apvm_factor,
        dt,
        &pv_vertex,
        &pvc,
        &fx.u,
        &fx.v_tang,
        &mut seed,
        0..ne,
    );
    let full = check_split(
        ne,
        &zero,
        |out, r| {
            fused::pv_edge(
                mesh,
                kc,
                cfg.apvm_factor,
                dt,
                &pv_vertex,
                &pvc,
                &fx.u,
                &fx.v_tang,
                out,
                r,
            )
        },
        "G",
    );
    rel_close(&seed, &full, "G pv_edge");
    let pv_e = seed.clone();

    // B1 tend_u
    ops::tend_u(
        mesh,
        cfg.gravity,
        &pv_e,
        &fx.u,
        &fx.h_edge,
        &ke,
        &fx.h,
        &fx.b,
        &mut seed,
        0..ne,
    );
    let full = check_split(
        ne,
        &zero,
        |out, r| {
            fused::tend_u(
                mesh,
                kc,
                cfg.gravity,
                &pv_e,
                &fx.u,
                &fx.h_edge,
                &ke,
                &fx.h,
                &fx.b,
                out,
                r,
            )
        },
        "B1",
    );
    rel_close(&seed, &full, "B1 tend_u");

    // C1 family: read-modify-write over a non-zero base tendency.
    let base: Vec<f64> = (0..ne).map(|e| 1.0e-4 * (e as f64 * 0.29).sin()).collect();
    let mut seed = base.clone();
    ops::tend_u_del2(mesh, cfg.del2_viscosity, &div, &vort, &mut seed, 0..ne);
    let full = check_split(
        ne,
        &base,
        |out, r| fused::tend_u_del2(mesh, kc, cfg.del2_viscosity, &div, &vort, out, r),
        "C1 del2",
    );
    rel_close(&seed, &full, "C1 tend_u_del2");

    let mut seed = vec![0.0; ne];
    ops::lap_u(mesh, &div, &vort, &mut seed, 0..ne);
    let full = check_split(
        ne,
        &zero,
        |out, r| fused::lap_u(mesh, kc, &div, &vort, out, r),
        "C1 lap",
    );
    rel_close(&seed, &full, "C1 lap_u");

    let mut seed = base.clone();
    ops::tend_u_del4(mesh, cfg.del4_viscosity, &div, &vort, &mut seed, 0..ne);
    let full = check_split(
        ne,
        &base,
        |out, r| fused::tend_u_del4(mesh, kc, cfg.del4_viscosity, &div, &vort, out, r),
        "C1 del4",
    );
    rel_close(&seed, &full, "C1 tend_u_del4");
}

#[test]
fn thickness_blend_ops_match_seed_per_range() {
    let fx = fixture();
    let (mesh, kc, cfg) = (&fx.mesh, &fx.kc, &fx.cfg);
    let ne = mesh.n_edges();
    let zero = vec![0.0; ne];

    // D1/D2 d2fdx2 (two outputs: check each chunked against the full run).
    let mut seed1 = vec![0.0; ne];
    let mut seed2 = vec![0.0; ne];
    ops::d2fdx2(mesh, &fx.h, &mut seed1, &mut seed2, 0..ne);
    let mut full1 = vec![0.0; ne];
    let mut full2 = vec![0.0; ne];
    fused::d2fdx2(mesh, kc, &fx.h, &mut full1, &mut full2, 0..ne);
    rel_close(&seed1, &full1, "D1 d2fdx2_cell1");
    rel_close(&seed2, &full2, "D2 d2fdx2_cell2");
    for mid in [ne / 2, ne / 3, 5 * ne / 8] {
        let mut s1 = vec![0.0; ne];
        let mut s2 = vec![0.0; ne];
        {
            let (lo1, hi1) = s1.split_at_mut(mid);
            let (lo2, hi2) = s2.split_at_mut(mid);
            fused::d2fdx2(mesh, kc, &fx.h, lo1, lo2, 0..mid);
            fused::d2fdx2(mesh, kc, &fx.h, hi1, hi2, mid..ne);
        }
        assert_eq!(full1, s1, "D1: split at {mid}");
        assert_eq!(full2, s2, "D2: split at {mid}");
    }

    // H2 h_edge, high-order branch: exact fusion (dc²/12 is one precomputed
    // product; the blend arithmetic is unchanged).
    let mut seed = vec![0.0; ne];
    ops::h_edge(mesh, cfg, &fx.h, &seed1, &seed2, &mut seed, 0..ne);
    let full = check_split(
        ne,
        &zero,
        |out, r| fused::h_edge(mesh, kc, cfg, &fx.h, &seed1, &seed2, out, r),
        "H2",
    );
    assert_eq!(seed, full, "H2 high-order h_edge must be bit-identical");

    // H2 low-order branch delegates to the seed op verbatim.
    let lo_cfg = ModelConfig {
        high_order_h_edge: false,
        ..*cfg
    };
    let lo_kc = KernelCoeffs::build(mesh, &lo_cfg);
    ops::h_edge(mesh, &lo_cfg, &fx.h, &seed1, &seed2, &mut seed, 0..ne);
    let mut lo = vec![0.0; ne];
    fused::h_edge(mesh, &lo_kc, &lo_cfg, &fx.h, &seed1, &seed2, &mut lo, 0..ne);
    assert_eq!(seed, lo, "H2 low-order h_edge must be bit-identical");
}
