//! Property test of the PR-4 renumbering layer against the full solver:
//! a complete RK-4 step taken on a reordered mesh, un-permuted back to the
//! construction order, reproduces the original step's prognostic fields to
//! 1e-13 relative.
//!
//! This is the end-to-end guarantee the locality optimization rests on —
//! the test-case initializers are position-based and every kernel reduces
//! per entity with its slot order preserved by [`Mesh::reordered`], so the
//! physics must be independent of the numbering.

use mpas_swe::{ModelConfig, ShallowWaterModel, TestCase};
use proptest::prelude::*;
use std::sync::Arc;

fn rel_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(1e-30);
        assert!(((x - y) / scale).abs() < 1e-13, "{what}[{k}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// RK-4 on the reordered mesh un-permutes to the original step.
    #[test]
    fn rk4_step_is_numbering_independent(
        level in 3u32..6,
        use_sfc in proptest::bool::ANY,
        case6 in proptest::bool::ANY,
    ) {
        use mpas_mesh::Reordering;

        let base = Arc::new(mpas_mesh::generate(level, 0));
        let ord = if use_sfc { Reordering::Sfc } else { Reordering::Bfs };
        let perm = ord.permutation(&base);
        let re = Arc::new(base.reordered(&perm));

        let cfg = ModelConfig::default();
        let tc = if case6 { TestCase::Case6 } else { TestCase::Case5 };

        let mut m0 = ShallowWaterModel::new(base, cfg, tc, None);
        let mut m1 = ShallowWaterModel::new(re, cfg, tc, Some(m0.dt));

        // Initial conditions are position-based, so the reordered model
        // must start from exactly the permuted fields.
        rel_close(&m0.state.h, &perm.unpermute_cell_field(&m1.state.h), "h0");
        rel_close(&m0.state.u, &perm.unpermute_edge_field(&m1.state.u), "u0");

        m0.step();
        m1.step();
        rel_close(&m0.state.h, &perm.unpermute_cell_field(&m1.state.h), "h after step");
        rel_close(&m0.state.u, &perm.unpermute_edge_field(&m1.state.u), "u after step");
    }
}
