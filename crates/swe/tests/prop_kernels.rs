//! Property tests of the kernel operators: the range-slicing contract
//! (what makes the pattern-driven splitting safe), scatter/gather
//! equivalence, and conservation identities under random states.

use mpas_swe::config::ModelConfig;
use mpas_swe::kernels::{ops, scatter};
use mpas_swe::state::Diagnostics;
use proptest::prelude::*;
use std::sync::OnceLock;

fn mesh() -> &'static mpas_mesh::Mesh {
    static MESH: OnceLock<mpas_mesh::Mesh> = OnceLock::new();
    MESH.get_or_init(|| mpas_mesh::generate(2, 0))
}

fn edge_field(seed: u64) -> Vec<f64> {
    let m = mesh();
    (0..m.n_edges())
        .map(|e| ((e as f64 + seed as f64) * 0.7311).sin() * 25.0)
        .collect()
}

fn cell_field(seed: u64) -> Vec<f64> {
    let m = mesh();
    (0..m.n_cells())
        .map(|i| 4000.0 + ((i as f64 * 1.37 + seed as f64) * 0.53).cos() * 500.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Computing any cell-space op in two arbitrary chunks gives exactly
    /// the full-range result (the splitting contract).
    #[test]
    fn cell_ops_split_exactly(seed in 0u64..50, frac in 0.01f64..0.99) {
        let m = mesh();
        let u = edge_field(seed);
        let nc = m.n_cells();
        let mid = ((nc as f64 * frac) as usize).clamp(1, nc - 1);
        let mut full = vec![0.0; nc];
        let mut split = vec![0.0; nc];
        ops::ke(m, &u, &mut full, 0..nc);
        {
            let (lo, hi) = split.split_at_mut(mid);
            ops::ke(m, &u, lo, 0..mid);
            ops::ke(m, &u, hi, mid..nc);
        }
        prop_assert_eq!(&full, &split);
        ops::divergence(m, &u, &mut full, 0..nc);
        {
            let (lo, hi) = split.split_at_mut(mid);
            ops::divergence(m, &u, lo, 0..mid);
            ops::divergence(m, &u, hi, mid..nc);
        }
        prop_assert_eq!(&full, &split);
    }

    /// Same splitting contract for the edge-space TRiSK megastencil.
    #[test]
    fn tend_u_splits_exactly(seed in 0u64..50, frac in 0.01f64..0.99) {
        let m = mesh();
        let config = ModelConfig::default();
        let h = cell_field(seed);
        let u = edge_field(seed);
        let b = vec![0.0; m.n_cells()];
        let f_v: Vec<f64> = (0..m.n_vertices())
            .map(|v| 2.0 * mpas_geom::OMEGA * m.x_vertex[v].z)
            .collect();
        let mut d = Diagnostics::zeros(m);
        mpas_swe::kernels::compute_solve_diagnostics(m, &config, &h, &u, &f_v, 60.0, &mut d);
        let ne = m.n_edges();
        let mid = ((ne as f64 * frac) as usize).clamp(1, ne - 1);
        let mut full = vec![0.0; ne];
        ops::tend_u(m, config.gravity, &d.pv_edge, &u, &d.h_edge, &d.ke, &h, &b, &mut full, 0..ne);
        let mut split = vec![0.0; ne];
        {
            let (lo, hi) = split.split_at_mut(mid);
            ops::tend_u(m, config.gravity, &d.pv_edge, &u, &d.h_edge, &d.ke, &h, &b, lo, 0..mid);
            ops::tend_u(m, config.gravity, &d.pv_edge, &u, &d.h_edge, &d.ke, &h, &b, hi, mid..ne);
        }
        prop_assert_eq!(&full, &split);
    }

    /// Scatter and gather forms of tend_h agree for random fluxes.
    #[test]
    fn tend_h_forms_agree(seed in 0u64..100) {
        let m = mesh();
        let u = edge_field(seed);
        let h_edge = cell_to_edge(seed);
        let mut a = vec![0.0; m.n_cells()];
        let mut b = vec![0.0; m.n_cells()];
        scatter::tend_h_scatter(m, &u, &h_edge, &mut a);
        ops::tend_h(m, &u, &h_edge, &mut b, 0..m.n_cells());
        for i in 0..m.n_cells() {
            prop_assert!((a[i] - b[i]).abs() < 1e-9 * (a[i].abs().max(1.0)));
        }
    }

    /// Discrete mass conservation holds for ANY state, not just physical
    /// ones: the area-weighted thickness tendency sums to zero.
    #[test]
    fn mass_conservation_for_random_states(seed in 0u64..100) {
        let m = mesh();
        let u = edge_field(seed);
        let h_edge = cell_to_edge(seed.wrapping_add(7));
        let mut tend_h = vec![0.0; m.n_cells()];
        ops::tend_h(m, &u, &h_edge, &mut tend_h, 0..m.n_cells());
        let total: f64 = (0..m.n_cells())
            .map(|i| tend_h[i] * m.area_cell[i])
            .sum();
        let scale: f64 = (0..m.n_cells())
            .map(|i| tend_h[i].abs() * m.area_cell[i])
            .sum();
        prop_assert!(total.abs() < 1e-12 * scale.max(1.0));
    }

    /// axpy/accumulate algebra: accumulate(w) after zero == axpy(0-base, w).
    #[test]
    fn accumulate_matches_axpy(seed in 0u64..100, w in -2.0f64..2.0) {
        let m = mesh();
        let t = edge_field(seed);
        let n = m.n_edges();
        let zero = vec![0.0; n];
        let mut a = vec![0.0; n];
        ops::axpy(&zero, &t, w, &mut a, 0..n);
        let mut b = vec![0.0; n];
        ops::accumulate(&t, w, &mut b, 0..n);
        prop_assert_eq!(a, b);
    }
}

fn cell_to_edge(seed: u64) -> Vec<f64> {
    let m = mesh();
    let h = cell_field(seed);
    let mut out = vec![0.0; m.n_edges()];
    ops::h_edge(
        m,
        &ModelConfig::default(),
        &h,
        &[],
        &[],
        &mut out,
        0..m.n_edges(),
    );
    out
}
