//! Numerical configuration of the shallow-water core.

use serde::{Deserialize, Serialize};

/// Which kernel tier executes the Table-I patterns (DESIGN.md §14).
///
/// * [`Scalar`](KernelBackend::Scalar) — the seed kernels in
///   [`crate::kernels::ops`], gathering geometric factors from the mesh on
///   every call. The PR-4 baseline.
/// * [`Fused`](KernelBackend::Fused) — the precomputed-coefficient fast
///   path ([`crate::coeffs::KernelCoeffs`] + [`crate::kernels::fused`]).
/// * [`Simd`](KernelBackend::Simd) — the vertical-batching SIMD tier
///   ([`crate::kernels::simd`]): the fused arithmetic replayed per layer
///   lane, with AVX2 inner loops under runtime feature detection and an
///   auto-vectorizable scalar-batch fallback. With `n_layers == 1` it
///   reproduces the fused path bit-for-bit; with `k` layers one gathered
///   stencil index amortizes across `k` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum KernelBackend {
    /// Seed kernels (`kernels::ops`), no precomputation.
    Scalar,
    /// Precomputed-coefficient kernels (`kernels::fused`).
    Fused,
    /// Vertical-batching SIMD kernels (`kernels::simd`).
    Simd,
}

impl KernelBackend {
    /// Lowercase CLI/JSON spelling (`scalar`, `fused`, `simd`).
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Fused => "fused",
            KernelBackend::Simd => "simd",
        }
    }

    /// Parse the lowercase spelling; `None` on anything else.
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s {
            "scalar" => Some(KernelBackend::Scalar),
            "fused" => Some(KernelBackend::Fused),
            "simd" => Some(KernelBackend::Simd),
            _ => None,
        }
    }

    /// All backends, in tier order (for equivalence matrices).
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Fused,
        KernelBackend::Simd,
    ];
}

/// Options mirroring the MPAS `sw` core namelist entries that matter here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Gravitational acceleration, m/s².
    pub gravity: f64,
    /// APVM (anticipated potential vorticity method) upwinding factor for
    /// `pv_edge`; 0.5 is the standard value, 0 disables upwinding.
    pub apvm_factor: f64,
    /// Harmonic (del2) momentum dissipation coefficient ν, m²/s. The
    /// paper's pattern C1. Zero disables the term.
    pub del2_viscosity: f64,
    /// Biharmonic (del4) hyperviscosity coefficient ν₄, m⁴/s — the
    /// scale-selective dissipation MPAS uses operationally (two chained
    /// C1-class applications). Zero disables the term.
    pub del4_viscosity: f64,
    /// Use the higher-order thickness-edge blend (patterns D1/D2 feeding
    /// H2); plain mid-edge averaging otherwise.
    pub high_order_h_edge: bool,
    /// Advection-only mode (Williamson test case 1): the velocity field is
    /// held fixed and only the continuity equation advances; the momentum
    /// tendency and the PV diagnostic chain are skipped.
    pub advection_only: bool,
    /// Which kernel tier runs in every executor. `Scalar` reproduces the
    /// seed kernels exactly — the baseline the PR-4 benchmarks compare
    /// against; `Fused` is the PR-4 fast path and the default; `Simd` is
    /// the vertical-batching tier (required when `n_layers > 1`).
    #[serde(default = "default_backend")]
    pub kernel_backend: KernelBackend,
    /// Number of passive tracer-mass fields advected alongside `h`
    /// (pattern T1). Zero — the default — skips the tracer kernels
    /// entirely, so pre-tracer configurations are bit-for-bit unchanged.
    #[serde(default)]
    pub n_tracers: usize,
    /// Number of vertical layers batched per entity (DESIGN.md §14).
    /// 1 — the default — is the classic single-layer model; `k > 1`
    /// requires the `Simd` backend and runs `k` independent shallow-water
    /// instances whose fields interleave as contiguous lanes per entity.
    #[serde(default = "default_n_layers")]
    pub n_layers: usize,
}

fn default_backend() -> KernelBackend {
    KernelBackend::Fused
}

fn default_n_layers() -> usize {
    1
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            gravity: mpas_geom::GRAVITY,
            apvm_factor: 0.5,
            del2_viscosity: 0.0,
            del4_viscosity: 0.0,
            high_order_h_edge: false,
            advection_only: false,
            kernel_backend: default_backend(),
            n_tracers: 0,
            n_layers: default_n_layers(),
        }
    }
}

impl ModelConfig {
    /// A conservative stable time step for a mesh: CFL 0.25 against a
    /// 300 m/s external gravity wave on the smallest cell spacing.
    pub fn suggested_dt(mesh: &mpas_mesh::Mesh) -> f64 {
        let min_dc = mesh.dc_edge.iter().copied().fold(f64::INFINITY, f64::min);
        0.25 * min_dc / 300.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_mpas_choices() {
        let c = ModelConfig::default();
        assert_eq!(c.apvm_factor, 0.5);
        assert_eq!(c.del2_viscosity, 0.0);
        assert!(!c.high_order_h_edge);
        assert!((c.gravity - 9.80616).abs() < 1e-9);
        assert_eq!(c.kernel_backend, KernelBackend::Fused);
        assert_eq!(c.n_layers, 1);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in KernelBackend::ALL {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(KernelBackend::parse("avx512"), None);
    }

    #[test]
    fn suggested_dt_scales_with_resolution() {
        let m3 = mpas_mesh::generate(3, 0);
        let m4 = mpas_mesh::generate(4, 0);
        let r = ModelConfig::suggested_dt(&m3) / ModelConfig::suggested_dt(&m4);
        assert!((r - 2.0).abs() < 0.3, "dt ratio {r}");
    }
}
