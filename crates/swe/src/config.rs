//! Numerical configuration of the shallow-water core.

use serde::{Deserialize, Serialize};

/// Options mirroring the MPAS `sw` core namelist entries that matter here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Gravitational acceleration, m/s².
    pub gravity: f64,
    /// APVM (anticipated potential vorticity method) upwinding factor for
    /// `pv_edge`; 0.5 is the standard value, 0 disables upwinding.
    pub apvm_factor: f64,
    /// Harmonic (del2) momentum dissipation coefficient ν, m²/s. The
    /// paper's pattern C1. Zero disables the term.
    pub del2_viscosity: f64,
    /// Biharmonic (del4) hyperviscosity coefficient ν₄, m⁴/s — the
    /// scale-selective dissipation MPAS uses operationally (two chained
    /// C1-class applications). Zero disables the term.
    pub del4_viscosity: f64,
    /// Use the higher-order thickness-edge blend (patterns D1/D2 feeding
    /// H2); plain mid-edge averaging otherwise.
    pub high_order_h_edge: bool,
    /// Advection-only mode (Williamson test case 1): the velocity field is
    /// held fixed and only the continuity equation advances; the momentum
    /// tendency and the PV diagnostic chain are skipped.
    pub advection_only: bool,
    /// Take the precomputed-coefficient fast path
    /// ([`crate::coeffs::KernelCoeffs`] + [`crate::kernels::fused`]) in
    /// every executor. Off reproduces the seed kernels exactly — the
    /// baseline the PR-4 benchmarks compare against.
    #[serde(default = "default_fused_coeffs")]
    pub fused_coeffs: bool,
    /// Number of passive tracer-mass fields advected alongside `h`
    /// (pattern T1). Zero — the default — skips the tracer kernels
    /// entirely, so pre-tracer configurations are bit-for-bit unchanged.
    #[serde(default)]
    pub n_tracers: usize,
}

fn default_fused_coeffs() -> bool {
    true
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            gravity: mpas_geom::GRAVITY,
            apvm_factor: 0.5,
            del2_viscosity: 0.0,
            del4_viscosity: 0.0,
            high_order_h_edge: false,
            advection_only: false,
            fused_coeffs: default_fused_coeffs(),
            n_tracers: 0,
        }
    }
}

impl ModelConfig {
    /// A conservative stable time step for a mesh: CFL 0.25 against a
    /// 300 m/s external gravity wave on the smallest cell spacing.
    pub fn suggested_dt(mesh: &mpas_mesh::Mesh) -> f64 {
        let min_dc = mesh.dc_edge.iter().copied().fold(f64::INFINITY, f64::min);
        0.25 * min_dc / 300.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_mpas_choices() {
        let c = ModelConfig::default();
        assert_eq!(c.apvm_factor, 0.5);
        assert_eq!(c.del2_viscosity, 0.0);
        assert!(!c.high_order_h_edge);
        assert!((c.gravity - 9.80616).abs() < 1e-9);
    }

    #[test]
    fn suggested_dt_scales_with_resolution() {
        let m3 = mpas_mesh::generate(3, 0);
        let m4 = mpas_mesh::generate(4, 0);
        let r = ModelConfig::suggested_dt(&m3) / ModelConfig::suggested_dt(&m4);
        assert!((r - 2.0).abs() < 0.3, "dt ratio {r}");
    }
}
