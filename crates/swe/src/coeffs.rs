//! Precomputed fused kernel coefficients (the hot-path data layout).
//!
//! Every RK-4 substep the Table-I kernels re-derive the same geometric
//! factors from the mesh: the signed flux weight `s_ie·dv_e` of A1/B2, the
//! KE quadrature weight `¼·dc_e·dv_e` of A2, the kite area matching a
//! `(vertex, cell)` pair in A3/F (found by a 3-way `position()` search per
//! slot!), and edge reciprocals `1/dc_e`, `1/dv_e` behind every gradient in
//! B1/C1/G. [`KernelCoeffs`] computes each factor once per
//! `(Mesh, ModelConfig)` and stores it in flat arrays aligned with the CSR
//! slot order, so the fused kernels in [`crate::kernels::fused`] stream one
//! contiguous coefficient array instead of gathering two or three mesh
//! arrays through an indirection (and never search).
//!
//! Rounding contract (how DESIGN.md §9's ≤1e-12 drift budget is met):
//!
//! * **Exact fusions** — multiplying by a `±1` sign (`flux_div`,
//!   `vort_sign_dc`) and halving a weight (`half_weights`) are exact in
//!   IEEE-754, and `kite_cell` merely hoists a value the seed kernels
//!   already gather. Kernels that fuse only these (C2, A3, F) stay
//!   **bit-identical** to the seed path.
//! * **1-ulp fusions** — reassociating `s·u·h·dv` to `(s·dv)·u·h` (A1/B2),
//!   `¼·dc·dv·u²` to `(¼·dc·dv)·u²` (A2), and replacing `x/dc` with
//!   `x·(1/dc)` (B1, C1 family, G) each perturb a single rounding, well
//!   inside the 1e-12 relative budget.
//! * **Conservation-critical divisions are kept.** The `/area` at the end
//!   of the cell reductions is *not* turned into a multiplication: mass
//!   conservation rests on the `+dv` / `−dv` flux pair of each edge having
//!   exactly equal magnitude in its two cells, and `s·dv` preserves that
//!   exactly while a per-cell `1/area` factor would not.

use crate::config::ModelConfig;
use mpas_mesh::Mesh;

/// Fused per-slot/per-edge coefficient tables for the Table-I kernels.
///
/// Build once with [`KernelCoeffs::build`]; the arrays are keyed exactly
/// like the mesh CSR arrays they fuse (`cell_offsets` slots, edge ids,
/// vertex ids, `eoe_offsets` slots), so a kernel walks its coefficients in
/// the same loop that walks the connectivity.
#[derive(Debug, Clone)]
pub struct KernelCoeffs {
    /// Per cell slot: `edge_sign_on_cell · dv_edge` — the signed face
    /// length of the A1/B2 flux divergence.
    pub flux_div: Vec<f64>,
    /// Per cell slot: `¼ · dc_edge · dv_edge` — the A2 kinetic-energy
    /// quadrature weight.
    pub ke_weight: Vec<f64>,
    /// Per cell slot: the kite area joining `vertices_on_cell[slot]` to
    /// this cell — the A3/F interpolation weight, precomputed so the
    /// kernels skip the per-slot `cells_on_vertex` search.
    pub kite_cell: Vec<f64>,
    /// Per vertex and corner: `edge_sign_on_vertex · dc_edge` — the signed
    /// circulation length of C2.
    pub vort_sign_dc: Vec<[f64; 3]>,
    /// Per edge: `1 / dc_edge` (normal-gradient factor of B1/C1/G).
    pub inv_dc: Vec<f64>,
    /// Per edge: `1 / dv_edge` (tangential-gradient factor of C1/G).
    pub inv_dv: Vec<f64>,
    /// Per TRiSK slot: `½ · weights_on_edge` — folds the PV-average half
    /// of B1 into the quadrature weight.
    pub half_weights: Vec<f64>,
    /// Per cell slot: `½ · edge_sign_on_cell · dv_edge` — the T1 tracer
    /// flux weight with the edge-average half folded in (an exact halving
    /// of `flux_div`, so the fusion stays in the exact class). Empty
    /// unless the config advects tracers.
    pub half_flux_div: Vec<f64>,
    /// Per cell slot: `dv_edge / dc_edge` — the D1/D2 cell-Laplacian flux
    /// ratio. Empty unless `high_order_h_edge` is set.
    pub grad_ratio: Vec<f64>,
    /// Per edge: `dc_edge² / 12` — the H2 high-order blend factor. Empty
    /// unless `high_order_h_edge` is set.
    pub dc2_12: Vec<f64>,
}

impl KernelCoeffs {
    /// Precompute every fused coefficient table for `mesh` under `config`
    /// (the D1/D2/H2 tables are built only when the config's high-order
    /// thickness blend can reach them).
    pub fn build(mesh: &Mesh, config: &ModelConfig) -> Self {
        let n_slots = mesh.edges_on_cell.len();
        let ne = mesh.n_edges();
        let nv = mesh.n_vertices();

        let mut flux_div = vec![0.0; n_slots];
        let mut ke_weight = vec![0.0; n_slots];
        let mut kite_cell = vec![0.0; n_slots];
        for i in 0..mesh.n_cells() {
            for slot in mesh.cell_range(i) {
                let e = mesh.edges_on_cell[slot] as usize;
                flux_div[slot] = mesh.edge_sign_on_cell[slot] as f64 * mesh.dv_edge[e];
                ke_weight[slot] = 0.25 * mesh.dc_edge[e] * mesh.dv_edge[e];
                let v = mesh.vertices_on_cell[slot] as usize;
                let kslot = mesh.cells_on_vertex[v]
                    .iter()
                    .position(|&c| c as usize == i)
                    .expect("vertex/cell inconsistency");
                kite_cell[slot] = mesh.kite_areas_on_vertex[v][kslot];
            }
        }

        let mut vort_sign_dc = vec![[0.0; 3]; nv];
        for (v, signed) in vort_sign_dc.iter_mut().enumerate() {
            for (k, s) in signed.iter_mut().enumerate() {
                let e = mesh.edges_on_vertex[v][k] as usize;
                *s = mesh.edge_sign_on_vertex[v][k] as f64 * mesh.dc_edge[e];
            }
        }

        let half_flux_div: Vec<f64> = if config.n_tracers > 0 {
            flux_div.iter().map(|&x| 0.5 * x).collect()
        } else {
            Vec::new()
        };

        let inv_dc: Vec<f64> = mesh.dc_edge.iter().map(|&d| 1.0 / d).collect();
        let inv_dv: Vec<f64> = mesh.dv_edge.iter().map(|&d| 1.0 / d).collect();
        let half_weights: Vec<f64> = mesh.weights_on_edge.iter().map(|&w| 0.5 * w).collect();

        let (grad_ratio, dc2_12) = if config.high_order_h_edge {
            let mut gr = vec![0.0; n_slots];
            for (slot, g) in gr.iter_mut().enumerate() {
                let e = mesh.edges_on_cell[slot] as usize;
                *g = mesh.dv_edge[e] / mesh.dc_edge[e];
            }
            let d12: Vec<f64> = (0..ne)
                .map(|e| mesh.dc_edge[e] * mesh.dc_edge[e] / 12.0)
                .collect();
            (gr, d12)
        } else {
            (Vec::new(), Vec::new())
        };

        KernelCoeffs {
            flux_div,
            ke_weight,
            half_flux_div,
            kite_cell,
            vort_sign_dc,
            inv_dc,
            inv_dv,
            half_weights,
            grad_ratio,
            dc2_12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mesh, KernelCoeffs) {
        let mesh = mpas_mesh::generate(3, 0);
        let config = ModelConfig {
            high_order_h_edge: true,
            ..Default::default()
        };
        let kc = KernelCoeffs::build(&mesh, &config);
        (mesh, kc)
    }

    #[test]
    fn slot_tables_match_their_definitions() {
        let (mesh, kc) = setup();
        for i in 0..mesh.n_cells() {
            for slot in mesh.cell_range(i) {
                let e = mesh.edges_on_cell[slot] as usize;
                let s = mesh.edge_sign_on_cell[slot] as f64;
                assert_eq!(kc.flux_div[slot], s * mesh.dv_edge[e]);
                assert_eq!(kc.ke_weight[slot], 0.25 * mesh.dc_edge[e] * mesh.dv_edge[e]);
                assert_eq!(kc.grad_ratio[slot], mesh.dv_edge[e] / mesh.dc_edge[e]);
            }
        }
        for e in 0..mesh.n_edges() {
            assert_eq!(kc.inv_dc[e], 1.0 / mesh.dc_edge[e]);
            assert_eq!(kc.inv_dv[e], 1.0 / mesh.dv_edge[e]);
            assert_eq!(kc.dc2_12[e], mesh.dc_edge[e] * mesh.dc_edge[e] / 12.0);
        }
    }

    #[test]
    fn kite_cell_resolves_the_vertex_search() {
        let (mesh, kc) = setup();
        for i in 0..mesh.n_cells() {
            for slot in mesh.cell_range(i) {
                let v = mesh.vertices_on_cell[slot] as usize;
                let kslot = mesh.cells_on_vertex[v]
                    .iter()
                    .position(|&c| c as usize == i)
                    .unwrap();
                assert_eq!(kc.kite_cell[slot], mesh.kite_areas_on_vertex[v][kslot]);
            }
        }
    }

    #[test]
    fn signed_tables_carry_both_orientations() {
        let (_, kc) = setup();
        assert!(kc.flux_div.iter().any(|&x| x > 0.0));
        assert!(kc.flux_div.iter().any(|&x| x < 0.0));
        assert!(kc.vort_sign_dc.iter().flatten().any(|&x| x > 0.0));
        assert!(kc.vort_sign_dc.iter().flatten().any(|&x| x < 0.0));
    }

    #[test]
    fn low_order_config_skips_blend_tables() {
        let mesh = mpas_mesh::generate(2, 0);
        let kc = KernelCoeffs::build(&mesh, &ModelConfig::default());
        assert!(kc.grad_ratio.is_empty());
        assert!(kc.dc2_12.is_empty());
        assert!(kc.half_flux_div.is_empty());
        assert_eq!(kc.flux_div.len(), mesh.edges_on_cell.len());
    }

    #[test]
    fn tracer_table_is_an_exact_halving() {
        let mesh = mpas_mesh::generate(2, 0);
        let config = ModelConfig {
            n_tracers: 2,
            ..Default::default()
        };
        let kc = KernelCoeffs::build(&mesh, &config);
        assert_eq!(kc.half_flux_div.len(), kc.flux_div.len());
        for (h, f) in kc.half_flux_div.iter().zip(&kc.flux_div) {
            assert_eq!(*h, 0.5 * f);
        }
    }
}
