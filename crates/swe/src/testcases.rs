//! Williamson et al. (1992) standard shallow-water test cases 1–6, plus
//! the Galewsky et al. (2004) barotropic-instability case.
//!
//! * **Case 1** — cosine-bell advection by solid-body rotation (run with
//!   `ModelConfig::advection_only`); exact solution is the rotated bell.
//! * **Case 2** — steady-state zonal geostrophic flow (optionally tilted by
//!   `alpha`); the exact solution equals the initial condition, giving
//!   clean error norms.
//! * **Case 3** — steady zonal jet with compact support; the thickness is
//!   obtained from the zonal geostrophic-balance integral by quadrature.
//! * **Case 4** — forced flow: a zonal jet held in discrete equilibrium by
//!   a fixed forcing term, with a superposed low-pressure anomaly. Unlike
//!   Williamson's translating-low formulation (whose analytic forcing
//!   requires streamfunction derivatives), the forcing here is the
//!   *discrete* negation of the background jet's tendency, computed once
//!   at model init with the model's own kernels — so the unperturbed jet
//!   is a bitwise equilibrium and only the anomaly evolves.
//! * **Case 5** — zonal flow over an isolated conical mountain; the case
//!   the paper's Fig. 5 validates against (total height `h + b` at day 15).
//! * **Case 6** — Rossby–Haurwitz wavenumber-4 wave.
//! * **Galewsky** — barotropic instability of a midlatitude jet seeded by
//!   a localized height bump (Galewsky, Scott & Polvani 2004).

use crate::state::State;
use mpas_geom::{
    east_at, north_at, to_lonlat, LonLat, Vec3, EARTH_RADIUS, GRAVITY, OMEGA, SECONDS_PER_DAY,
};
use mpas_mesh::Mesh;

/// A Williamson test case: initial condition, topography and Coriolis field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TestCase {
    /// Advection of a cosine bell by solid-body rotation (requires
    /// `ModelConfig::advection_only`); the bell returns to its starting
    /// point after exactly 12 days.
    Case1 {
        /// Tilt of the advecting flow's axis from the planetary axis, radians.
        alpha: f64,
    },
    /// Steady zonal geostrophic flow, rotation axis tilted by `alpha`
    /// radians from the planetary axis.
    Case2 {
        /// Tilt of the flow axis from the planetary axis, radians.
        alpha: f64,
    },
    /// Steady zonal jet with compactly supported velocity profile.
    Case3,
    /// Forced zonal jet (discrete equilibrium) plus a low-pressure anomaly.
    Case4,
    /// Zonal flow over an isolated mountain (the paper's validation case).
    Case5,
    /// Rossby–Haurwitz wave, wavenumber 4.
    Case6,
    /// Galewsky barotropic-instability jet with height perturbation.
    Galewsky,
}

/// Williamson's compact taper: `b(x) = exp(-1/x)` for `x > 0`, else 0.
fn taper(x: f64) -> f64 {
    if x > 0.0 {
        (-1.0 / x).exp()
    } else {
        0.0
    }
}

/// Case-3 zonal wind at latitude `lat` (support `[-pi/6, pi/2]`).
fn case3_u(lat: f64) -> f64 {
    let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
    let (lat_b, lat_e, x_e) = (
        -std::f64::consts::FRAC_PI_6,
        std::f64::consts::FRAC_PI_2,
        0.3,
    );
    let x = x_e * (lat - lat_b) / (lat_e - lat_b);
    u0 * taper(x) * taper(x_e - x) * (4.0 / x_e).exp()
}

/// Galewsky jet at latitude `lat` (support `(pi/7, pi/2 - pi/7)`).
fn galewsky_u(lat: f64) -> f64 {
    let umax = 80.0;
    let lat0 = std::f64::consts::PI / 7.0;
    let lat1 = std::f64::consts::FRAC_PI_2 - lat0;
    if lat <= lat0 || lat >= lat1 {
        return 0.0;
    }
    let en = (-4.0 / (lat1 - lat0).powi(2)).exp();
    umax / en * (1.0 / ((lat - lat0) * (lat - lat1))).exp()
}

/// Composite-Simpson quadrature of `f` over `[a, b]` with `n` (even)
/// intervals. Pure and deterministic, so every executor that evaluates an
/// initial condition at the same point gets the same bits.
fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    debug_assert!(n >= 2 && n.is_multiple_of(2));
    let dx = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for k in 1..n {
        let w = if k % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + k as f64 * dx);
    }
    acc * dx / 3.0
}

/// Thickness from the zonal geostrophic-balance integral:
/// `g h(lat) = g h_start − ∫ a·u(τ)·(f(τ) + u(τ)·tanτ/a) dτ` from
/// `lat_start` (below the jet, where `h = h_start`) up to `lat`.
fn balance_thickness(u: impl Fn(f64) -> f64, h_start: f64, lat_start: f64, lat: f64) -> f64 {
    if lat <= lat_start {
        return h_start;
    }
    let integrand = |t: f64| {
        let ut = u(t);
        ut * (EARTH_RADIUS * 2.0 * OMEGA * t.sin() + ut * t.tan())
    };
    h_start - simpson(integrand, lat_start, lat, 512) / GRAVITY
}

impl TestCase {
    /// Short identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TestCase::Case1 { .. } => "williamson-1",
            TestCase::Case2 { .. } => "williamson-2",
            TestCase::Case3 => "williamson-3",
            TestCase::Case4 => "williamson-4",
            TestCase::Case5 => "williamson-5",
            TestCase::Case6 => "williamson-6",
            TestCase::Galewsky => "galewsky",
        }
    }

    /// True when the analytic solution is time-independent.
    pub fn is_steady(&self) -> bool {
        matches!(self, TestCase::Case2 { .. } | TestCase::Case3)
    }

    /// True when the case carries a fixed forcing term that the model must
    /// compute at init (the discrete negation of the background tendency).
    pub fn needs_forcing(&self) -> bool {
        matches!(self, TestCase::Case4)
    }

    /// Analytic velocity vector (tangent to the sphere) at a unit-sphere
    /// point, at t = 0.
    pub fn velocity_at(&self, p: Vec3) -> Vec3 {
        let ll = to_lonlat(p);
        let (lon, lat) = (ll.lon, ll.lat);
        match *self {
            TestCase::Case1 { alpha } | TestCase::Case2 { alpha } => {
                let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
                let uz = u0 * (lat.cos() * alpha.cos() + lon.cos() * lat.sin() * alpha.sin());
                let vm = -u0 * lon.sin() * alpha.sin();
                east_at(p) * uz + north_at(p) * vm
            }
            TestCase::Case3 => east_at(p) * case3_u(lat),
            TestCase::Case4 | TestCase::Case5 => {
                let u0 = 20.0;
                east_at(p) * (u0 * lat.cos())
            }
            TestCase::Galewsky => east_at(p) * galewsky_u(lat),
            TestCase::Case6 => {
                let (omega, k, r) = (7.848e-6, 7.848e-6, 4.0);
                let a = EARTH_RADIUS;
                let c = lat.cos();
                let uz = a * omega * c
                    + a * k * c.powf(r - 1.0) * (r * lat.sin().powi(2) - c * c) * (r * lon).cos();
                let vm = -a * k * r * c.powf(r - 1.0) * lat.sin() * (r * lon).sin();
                east_at(p) * uz + north_at(p) * vm
            }
        }
    }

    /// Bottom topography at a unit-sphere point.
    pub fn topography_at(&self, p: Vec3) -> f64 {
        match self {
            TestCase::Case5 => {
                let ll = to_lonlat(p);
                let b0 = 2000.0;
                let big_r = std::f64::consts::PI / 9.0;
                let lon_c = 1.5 * std::f64::consts::PI;
                let lat_c = std::f64::consts::PI / 6.0;
                let mut dlon = (ll.lon - lon_c).abs();
                if dlon > std::f64::consts::PI {
                    dlon = 2.0 * std::f64::consts::PI - dlon;
                }
                let r = big_r.min((dlon.powi(2) + (ll.lat - lat_c).powi(2)).sqrt());
                b0 * (1.0 - r / big_r)
            }
            _ => 0.0,
        }
    }

    /// Analytic fluid thickness `h` (total height minus topography) at a
    /// unit-sphere point, at t = 0.
    pub fn thickness_at(&self, p: Vec3) -> f64 {
        let ll = to_lonlat(p);
        let (lon, lat) = (ll.lon, ll.lat);
        match *self {
            TestCase::Case1 { .. } => {
                // 1000 m background plus a 1000 m cosine bell of radius a/3
                // centered at (3pi/2, 0). The background makes the PV-free
                // advection-only diagnostics trivially well-defined.
                let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
                let r = mpas_geom::arc_length(p.normalized(), center) * EARTH_RADIUS;
                let big_r = EARTH_RADIUS / 3.0;
                let bell = if r < big_r {
                    500.0 * (1.0 + (std::f64::consts::PI * r / big_r).cos())
                } else {
                    0.0
                };
                1000.0 + bell
            }
            TestCase::Case2 { alpha } => {
                let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
                let gh0 = 2.94e4;
                let s = lat.sin() * alpha.cos() - lon.cos() * lat.cos() * alpha.sin();
                let gh = gh0 - (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) * s * s;
                gh / GRAVITY
            }
            TestCase::Case3 => {
                balance_thickness(case3_u, 3000.0, -std::f64::consts::FRAC_PI_6, lat)
            }
            TestCase::Case4 => {
                // Background jet height plus a Gaussian low-pressure
                // anomaly (depth 120 m, e-folding radius a/10) centered at
                // (lon 0, lat pi/4). The jet part must match
                // `background_thickness_at` exactly so the anomaly is the
                // only unbalanced component.
                let center = LonLat::new(0.0, std::f64::consts::FRAC_PI_4).to_unit_vector();
                let r = mpas_geom::arc_length(p.normalized(), center) * EARTH_RADIUS;
                let r0 = EARTH_RADIUS / 10.0;
                self.background_thickness_at(p) - 120.0 * (-(r / r0).powi(2)).exp()
            }
            TestCase::Case5 => {
                let u0 = 20.0;
                let gh0 = GRAVITY * 5960.0;
                let s = lat.sin();
                let gh = gh0 - (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) * s * s;
                gh / GRAVITY - self.topography_at(p)
            }
            TestCase::Galewsky => {
                // Balanced jet height plus the instability-seeding bump:
                // h' = ĥ·cosθ·exp(−(λ/α)²)·exp(−((θ₂−θ)/β)²), ĥ = 120 m,
                // α = 1/3, β = 1/15, θ₂ = π/4 (Galewsky et al. 2004 eq. 4).
                let lat0 = std::f64::consts::PI / 7.0;
                let base = balance_thickness(galewsky_u, 10158.18, lat0, lat);
                let mut lam = lon;
                if lam > std::f64::consts::PI {
                    lam -= 2.0 * std::f64::consts::PI;
                }
                let (alpha, beta) = (1.0 / 3.0, 1.0 / 15.0);
                let lat2 = std::f64::consts::FRAC_PI_4;
                let bump = 120.0
                    * lat.cos()
                    * (-(lam / alpha).powi(2)).exp()
                    * (-((lat2 - lat) / beta).powi(2)).exp();
                base + bump
            }
            TestCase::Case6 => {
                let (omega, k, r) = (7.848e-6_f64, 7.848e-6_f64, 4.0_f64);
                let a = EARTH_RADIUS;
                let gh0 = GRAVITY * 8000.0;
                let c = lat.cos();
                let c2 = c * c;
                let aa = 0.5 * omega * (2.0 * OMEGA + omega) * c2
                    + 0.25
                        * k
                        * k
                        * c.powf(2.0 * r)
                        * ((r + 1.0) * c2 + (2.0 * r * r - r - 2.0) - 2.0 * r * r / c2);
                let bb = (2.0 * (OMEGA + omega) * k) / ((r + 1.0) * (r + 2.0))
                    * c.powf(r)
                    * ((r * r + 2.0 * r + 2.0) - (r + 1.0).powi(2) * c2);
                let cc = 0.25 * k * k * c.powf(2.0 * r) * ((r + 1.0) * c2 - (r + 2.0));
                let gh = gh0 + a * a * (aa + bb * (r * lon).cos() + cc * (2.0 * r * lon).cos());
                gh / GRAVITY
            }
        }
    }

    /// Coriolis parameter at a unit-sphere point (tilted for Case 2).
    pub fn coriolis_at(&self, p: Vec3) -> f64 {
        let ll = to_lonlat(p);
        match *self {
            TestCase::Case1 { alpha } | TestCase::Case2 { alpha } => {
                2.0 * OMEGA
                    * (ll.lat.sin() * alpha.cos() - ll.lat.cos() * ll.lon.cos() * alpha.sin())
            }
            _ => 2.0 * OMEGA * ll.lat.sin(),
        }
    }

    /// Analytic thickness at time `t` seconds. Equal to the initial field
    /// for steady cases; for Case 1 the bell is rigidly rotated about the
    /// flow axis by the solid-body angle `u0 t / a`.
    pub fn reference_thickness_at(&self, p: Vec3, t: f64) -> f64 {
        match *self {
            TestCase::Case1 { alpha } => {
                let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
                let theta = u0 * t / EARTH_RADIUS;
                let axis = Vec3::new(-alpha.sin(), 0.0, alpha.cos());
                let back = mpas_geom::rotate_about_axis(p, axis, -theta);
                self.thickness_at(back)
            }
            _ => self.thickness_at(p),
        }
    }

    /// Case-4 background jet thickness (no anomaly): the state the fixed
    /// forcing holds in discrete equilibrium. Falls back to the initial
    /// thickness for unforced cases.
    pub fn background_thickness_at(&self, p: Vec3) -> f64 {
        match self {
            TestCase::Case4 => {
                let ll = to_lonlat(p);
                let u0 = 20.0;
                let gh0 = GRAVITY * 5400.0;
                let s = ll.lat.sin();
                (gh0 - (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) * s * s) / GRAVITY
            }
            _ => self.thickness_at(p),
        }
    }

    /// Initial mixing ratio of tracer `k` at a unit-sphere point.
    ///
    /// * tracer 0 — constant 1.0 (the conservation/monotonicity probe:
    ///   `h·q` must track `h` to rounding);
    /// * tracer 1 — a 0..1 cosine bell of radius a/3 at (3π/2, 0);
    /// * tracer k ≥ 2 — smooth latitude bands `(1 + sin lat)/2`.
    pub fn tracer_at(&self, k: usize, p: Vec3) -> f64 {
        match k {
            0 => 1.0,
            1 => {
                let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
                let r = mpas_geom::arc_length(p.normalized(), center) * EARTH_RADIUS;
                let big_r = EARTH_RADIUS / 3.0;
                if r < big_r {
                    0.5 * (1.0 + (std::f64::consts::PI * r / big_r).cos())
                } else {
                    0.0
                }
            }
            _ => 0.5 * (1.0 + to_lonlat(p).lat.sin()),
        }
    }

    /// Sample the initial prognostic state on a mesh (no tracers).
    pub fn initial_state(&self, mesh: &Mesh) -> State {
        self.initial_state_with_tracers(mesh, 0)
    }

    /// Sample the initial prognostic state with `n_tracers` tracer-mass
    /// fields (`h·q` with `q` from [`TestCase::tracer_at`]).
    pub fn initial_state_with_tracers(&self, mesh: &Mesh, n_tracers: usize) -> State {
        let h: Vec<f64> = (0..mesh.n_cells())
            .map(|i| self.thickness_at(mesh.x_cell[i]))
            .collect();
        let u = (0..mesh.n_edges())
            .map(|e| self.velocity_at(mesh.x_edge[e]).dot(mesh.normal_edge[e]))
            .collect();
        let tracers = (0..n_tracers)
            .map(|k| {
                (0..mesh.n_cells())
                    .map(|i| h[i] * self.tracer_at(k, mesh.x_cell[i]))
                    .collect()
            })
            .collect();
        State { h, u, tracers }
    }

    /// The background (forcing-equilibrium) state sampled on a mesh:
    /// identical to the initial state except for forced cases, where the
    /// anomaly is absent. Tracer-free — the forcing only acts on `h`/`u`.
    pub fn background_state(&self, mesh: &Mesh) -> State {
        let h = (0..mesh.n_cells())
            .map(|i| self.background_thickness_at(mesh.x_cell[i]))
            .collect();
        let u = (0..mesh.n_edges())
            .map(|e| self.velocity_at(mesh.x_edge[e]).dot(mesh.normal_edge[e]))
            .collect();
        State {
            h,
            u,
            tracers: Vec::new(),
        }
    }

    /// Sample the topography on a mesh.
    pub fn topography(&self, mesh: &Mesh) -> Vec<f64> {
        (0..mesh.n_cells())
            .map(|i| self.topography_at(mesh.x_cell[i]))
            .collect()
    }

    /// Sample the Coriolis parameter at the vorticity points.
    pub fn coriolis_vertex(&self, mesh: &Mesh) -> Vec<f64> {
        (0..mesh.n_vertices())
            .map(|v| self.coriolis_at(mesh.x_vertex[v]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_bell_shape_and_background() {
        let tc = TestCase::Case1 { alpha: 0.0 };
        let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
        assert!((tc.thickness_at(center) - 2000.0).abs() < 1e-9);
        let far = LonLat::new(0.0, 0.8).to_unit_vector();
        assert_eq!(tc.thickness_at(far), 1000.0);
        // Smooth at the bell edge (cosine taper reaches exactly zero).
        let edge_angle = 1.0 / 3.0;
        let edge = LonLat::new(1.5 * std::f64::consts::PI + edge_angle, 0.0).to_unit_vector();
        assert!(tc.thickness_at(edge) - 1000.0 < 1e-6);
    }

    #[test]
    fn case1_reference_rotates_with_the_flow() {
        let tc = TestCase::Case1 { alpha: 0.0 };
        let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
        // After a quarter period (3 days) the bell peak has moved 90 deg east.
        let t = 3.0 * SECONDS_PER_DAY;
        let new_center = LonLat::new(0.0, 0.0).to_unit_vector();
        assert!(
            (tc.reference_thickness_at(new_center, t) - 2000.0).abs() < 1e-6,
            "peak not at the advected position"
        );
        assert!(tc.reference_thickness_at(center, t) - 1000.0 < 1e-6);
        // Full revolution returns the initial field.
        let t_full = 12.0 * SECONDS_PER_DAY;
        for k in 0..20 {
            let p = LonLat::new(k as f64 * 0.3, (k as f64 * 0.17).sin()).to_unit_vector();
            assert!((tc.reference_thickness_at(p, t_full) - tc.thickness_at(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn case1_tilted_velocity_matches_rotation_axis() {
        let alpha = 0.9;
        let tc = TestCase::Case1 { alpha };
        let axis = Vec3::new(-alpha.sin(), 0.0, alpha.cos());
        let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
        for k in 0..30 {
            let p = LonLat::new(k as f64 * 0.21, (k as f64 * 0.13).sin() * 1.2).to_unit_vector();
            let expect = (axis * u0).cross(p);
            assert!(tc.velocity_at(p).dist(expect) < 1e-9, "point {k}");
        }
    }

    #[test]
    fn case2_velocity_is_zonal_without_tilt() {
        let tc = TestCase::Case2 { alpha: 0.0 };
        let p = LonLat::new(1.0, 0.5).to_unit_vector();
        let v = tc.velocity_at(p);
        // Purely eastward: no component along north.
        assert!(v.dot(north_at(p)).abs() < 1e-9);
        let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
        assert!((v.dot(east_at(p)) - u0 * 0.5f64.cos()).abs() < 1e-9);
    }

    #[test]
    fn case2_thickness_positive_everywhere() {
        let tc = TestCase::Case2 { alpha: 0.3 };
        for k in 0..200 {
            let lon = k as f64 * 0.0314;
            let lat = (k as f64 * 0.017).sin() * 1.5;
            let h = tc.thickness_at(LonLat::new(lon, lat).to_unit_vector());
            assert!(h > 500.0, "h = {h} at ({lon},{lat})");
        }
    }

    #[test]
    fn case5_mountain_peak_and_extent() {
        let tc = TestCase::Case5;
        let center =
            LonLat::new(1.5 * std::f64::consts::PI, std::f64::consts::PI / 6.0).to_unit_vector();
        assert!((tc.topography_at(center) - 2000.0).abs() < 1e-9);
        // Outside radius pi/9 the mountain vanishes.
        let far = LonLat::new(0.0, -1.0).to_unit_vector();
        assert_eq!(tc.topography_at(far), 0.0);
        // Total height h+b is smooth across the mountain edge.
        let edge = LonLat::new(
            1.5 * std::f64::consts::PI + std::f64::consts::PI / 9.0,
            std::f64::consts::PI / 6.0,
        )
        .to_unit_vector();
        assert!(tc.topography_at(edge).abs() < 1e-9);
    }

    #[test]
    fn case6_velocity_has_wavenumber_4_symmetry() {
        let tc = TestCase::Case6;
        let lat = 0.6;
        for k in 0..4 {
            let lon0 = 0.35;
            let lon1 = lon0 + k as f64 * std::f64::consts::PI / 2.0;
            let p0 = LonLat::new(lon0, lat).to_unit_vector();
            let p1 = LonLat::new(lon1, lat).to_unit_vector();
            let (z0, m0) = (
                tc.velocity_at(p0).dot(east_at(p0)),
                tc.velocity_at(p0).dot(north_at(p0)),
            );
            let (z1, m1) = (
                tc.velocity_at(p1).dot(east_at(p1)),
                tc.velocity_at(p1).dot(north_at(p1)),
            );
            assert!((z0 - z1).abs() < 1e-9);
            assert!((m0 - m1).abs() < 1e-9);
        }
    }

    #[test]
    fn case6_thickness_in_physical_range() {
        let tc = TestCase::Case6;
        for k in 0..400 {
            let lon = k as f64 * 0.0157;
            let lat = ((k * 7) % 400) as f64 / 400.0 * 3.0 - 1.5;
            let h = tc.thickness_at(LonLat::new(lon, lat).to_unit_vector());
            assert!((6000.0..11000.0).contains(&h), "h = {h}");
        }
    }

    #[test]
    fn coriolis_tilt_moves_the_pole() {
        let alpha = 0.7;
        let tc = TestCase::Case2 { alpha };
        // The effective pole is at (lon=0 tilted): f is maximal where
        // sin(lat)cos(a) - cos(lat)cos(lon)sin(a) = 1.
        let pole =
            LonLat::new(std::f64::consts::PI, std::f64::consts::PI / 2.0 - alpha).to_unit_vector();
        assert!((tc.coriolis_at(pole) - 2.0 * OMEGA).abs() < 1e-9);
    }

    #[test]
    fn case3_jet_is_compact_and_balanced() {
        let tc = TestCase::Case3;
        // No flow outside [-pi/6, pi/2]; peak speed inside.
        assert_eq!(case3_u(-0.6), 0.0);
        assert_eq!(case3_u(std::f64::consts::FRAC_PI_2), 0.0);
        let peak = case3_u(0.35);
        assert!(peak > 10.0, "jet too weak: {peak}");
        // Thickness equals the reference value south of the jet and drops
        // monotonically across its northern-hemisphere extent, where
        // f > 0 and geostrophic balance forces dh/dlat < 0. (In the small
        // southern tail of the jet f < 0, so h rises slightly there.)
        let south = LonLat::new(1.0, -1.2).to_unit_vector();
        assert_eq!(tc.thickness_at(south), 3000.0);
        let mut prev = tc.thickness_at(LonLat::new(0.0, 0.0).to_unit_vector());
        for k in 1..15 {
            let lat = k as f64 * 0.1;
            let h = tc.thickness_at(LonLat::new(0.0, lat).to_unit_vector());
            assert!(h <= prev + 1e-9, "h increased across the jet at {lat}");
            prev = h;
        }
    }

    #[test]
    fn case4_anomaly_sits_on_the_background_jet() {
        let tc = TestCase::Case4;
        let center = LonLat::new(0.0, std::f64::consts::FRAC_PI_4).to_unit_vector();
        let dh = tc.thickness_at(center) - tc.background_thickness_at(center);
        assert!((dh + 120.0).abs() < 1e-9, "anomaly depth {dh}");
        // Far from the low the two fields agree.
        let far = LonLat::new(std::f64::consts::PI, -0.8).to_unit_vector();
        assert!((tc.thickness_at(far) - tc.background_thickness_at(far)).abs() < 1e-9);
        assert!(tc.needs_forcing());
        assert!(!TestCase::Case5.needs_forcing());
    }

    #[test]
    fn galewsky_jet_profile_and_bump() {
        let lat0 = std::f64::consts::PI / 7.0;
        let lat1 = std::f64::consts::FRAC_PI_2 - lat0;
        let mid = 0.5 * (lat0 + lat1);
        assert!((galewsky_u(mid) - 80.0).abs() < 1e-9, "jet max at midpoint");
        assert_eq!(galewsky_u(lat0), 0.0);
        assert_eq!(galewsky_u(lat1), 0.0);
        let tc = TestCase::Galewsky;
        // Height drops ~1.4 km across the jet; bump adds ~+100 m near
        // (0, pi/4) relative to the zonally symmetric base at lon = pi.
        let south = tc.thickness_at(LonLat::new(0.5, 0.0).to_unit_vector());
        let north = tc.thickness_at(LonLat::new(0.5, 1.4).to_unit_vector());
        assert!(south - north > 1000.0, "jump {south} -> {north}");
        let at_bump =
            tc.thickness_at(LonLat::new(0.0, std::f64::consts::FRAC_PI_4).to_unit_vector());
        let base = tc.thickness_at(
            LonLat::new(std::f64::consts::PI, std::f64::consts::FRAC_PI_4).to_unit_vector(),
        );
        assert!(at_bump - base > 50.0, "bump missing: {at_bump} vs {base}");
    }

    #[test]
    fn tracer_fields_are_mixing_ratios_in_range() {
        let tc = TestCase::Case5;
        let mesh = mpas_mesh::generate(2, 0);
        let s = tc.initial_state_with_tracers(&mesh, 3);
        assert_eq!(s.tracers.len(), 3);
        for (k, tr) in s.tracers.iter().enumerate() {
            for (i, &hq) in tr.iter().enumerate() {
                let q = hq / s.h[i];
                assert!((0.0..=1.0 + 1e-12).contains(&q), "tracer {k} q = {q}");
            }
        }
        // Tracer 0 is the constant-1 probe: hq == h bitwise at init.
        assert_eq!(s.tracers[0], s.h);
    }

    #[test]
    fn initial_state_samples_consistently() {
        let mesh = mpas_mesh::generate(2, 0);
        let tc = TestCase::Case5;
        let s = tc.initial_state(&mesh);
        assert_eq!(s.h.len(), mesh.n_cells());
        assert_eq!(s.u.len(), mesh.n_edges());
        assert!(s.h.iter().all(|&h| h > 3000.0));
        let b = tc.topography(&mesh);
        assert!(b.iter().any(|&x| x > 1000.0), "mountain missing from mesh");
    }
}
