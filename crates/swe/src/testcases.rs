//! Williamson et al. (1992) standard shallow-water test cases 2, 5 and 6.
//!
//! * **Case 2** — steady-state zonal geostrophic flow (optionally tilted by
//!   `alpha`); the exact solution equals the initial condition, giving
//!   clean error norms.
//! * **Case 5** — zonal flow over an isolated conical mountain; the case
//!   the paper's Fig. 5 validates against (total height `h + b` at day 15).
//! * **Case 6** — Rossby–Haurwitz wavenumber-4 wave.

use crate::state::State;
use mpas_geom::{
    east_at, north_at, to_lonlat, LonLat, Vec3, EARTH_RADIUS, GRAVITY, OMEGA, SECONDS_PER_DAY,
};
use mpas_mesh::Mesh;

/// A Williamson test case: initial condition, topography and Coriolis field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TestCase {
    /// Advection of a cosine bell by solid-body rotation (requires
    /// `ModelConfig::advection_only`); the bell returns to its starting
    /// point after exactly 12 days.
    Case1 {
        /// Tilt of the advecting flow's axis from the planetary axis, radians.
        alpha: f64,
    },
    /// Steady zonal geostrophic flow, rotation axis tilted by `alpha`
    /// radians from the planetary axis.
    Case2 {
        /// Tilt of the flow axis from the planetary axis, radians.
        alpha: f64,
    },
    /// Zonal flow over an isolated mountain (the paper's validation case).
    Case5,
    /// Rossby–Haurwitz wave, wavenumber 4.
    Case6,
}

impl TestCase {
    /// Short identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TestCase::Case1 { .. } => "williamson-1",
            TestCase::Case2 { .. } => "williamson-2",
            TestCase::Case5 => "williamson-5",
            TestCase::Case6 => "williamson-6",
        }
    }

    /// True when the analytic solution is time-independent.
    pub fn is_steady(&self) -> bool {
        matches!(self, TestCase::Case2 { .. })
    }

    /// Analytic velocity vector (tangent to the sphere) at a unit-sphere
    /// point, at t = 0.
    pub fn velocity_at(&self, p: Vec3) -> Vec3 {
        let ll = to_lonlat(p);
        let (lon, lat) = (ll.lon, ll.lat);
        match *self {
            TestCase::Case1 { alpha } | TestCase::Case2 { alpha } => {
                let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
                let uz = u0 * (lat.cos() * alpha.cos() + lon.cos() * lat.sin() * alpha.sin());
                let vm = -u0 * lon.sin() * alpha.sin();
                east_at(p) * uz + north_at(p) * vm
            }
            TestCase::Case5 => {
                let u0 = 20.0;
                east_at(p) * (u0 * lat.cos())
            }
            TestCase::Case6 => {
                let (omega, k, r) = (7.848e-6, 7.848e-6, 4.0);
                let a = EARTH_RADIUS;
                let c = lat.cos();
                let uz = a * omega * c
                    + a * k * c.powf(r - 1.0) * (r * lat.sin().powi(2) - c * c) * (r * lon).cos();
                let vm = -a * k * r * c.powf(r - 1.0) * lat.sin() * (r * lon).sin();
                east_at(p) * uz + north_at(p) * vm
            }
        }
    }

    /// Bottom topography at a unit-sphere point.
    pub fn topography_at(&self, p: Vec3) -> f64 {
        match self {
            TestCase::Case5 => {
                let ll = to_lonlat(p);
                let b0 = 2000.0;
                let big_r = std::f64::consts::PI / 9.0;
                let lon_c = 1.5 * std::f64::consts::PI;
                let lat_c = std::f64::consts::PI / 6.0;
                let mut dlon = (ll.lon - lon_c).abs();
                if dlon > std::f64::consts::PI {
                    dlon = 2.0 * std::f64::consts::PI - dlon;
                }
                let r = big_r.min((dlon.powi(2) + (ll.lat - lat_c).powi(2)).sqrt());
                b0 * (1.0 - r / big_r)
            }
            _ => 0.0,
        }
    }

    /// Analytic fluid thickness `h` (total height minus topography) at a
    /// unit-sphere point, at t = 0.
    pub fn thickness_at(&self, p: Vec3) -> f64 {
        let ll = to_lonlat(p);
        let (lon, lat) = (ll.lon, ll.lat);
        match *self {
            TestCase::Case1 { .. } => {
                // 1000 m background plus a 1000 m cosine bell of radius a/3
                // centered at (3pi/2, 0). The background makes the PV-free
                // advection-only diagnostics trivially well-defined.
                let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
                let r = mpas_geom::arc_length(p.normalized(), center) * EARTH_RADIUS;
                let big_r = EARTH_RADIUS / 3.0;
                let bell = if r < big_r {
                    500.0 * (1.0 + (std::f64::consts::PI * r / big_r).cos())
                } else {
                    0.0
                };
                1000.0 + bell
            }
            TestCase::Case2 { alpha } => {
                let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
                let gh0 = 2.94e4;
                let s = lat.sin() * alpha.cos() - lon.cos() * lat.cos() * alpha.sin();
                let gh = gh0 - (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) * s * s;
                gh / GRAVITY
            }
            TestCase::Case5 => {
                let u0 = 20.0;
                let gh0 = GRAVITY * 5960.0;
                let s = lat.sin();
                let gh = gh0 - (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) * s * s;
                gh / GRAVITY - self.topography_at(p)
            }
            TestCase::Case6 => {
                let (omega, k, r) = (7.848e-6_f64, 7.848e-6_f64, 4.0_f64);
                let a = EARTH_RADIUS;
                let gh0 = GRAVITY * 8000.0;
                let c = lat.cos();
                let c2 = c * c;
                let aa = 0.5 * omega * (2.0 * OMEGA + omega) * c2
                    + 0.25
                        * k
                        * k
                        * c.powf(2.0 * r)
                        * ((r + 1.0) * c2 + (2.0 * r * r - r - 2.0) - 2.0 * r * r / c2);
                let bb = (2.0 * (OMEGA + omega) * k) / ((r + 1.0) * (r + 2.0))
                    * c.powf(r)
                    * ((r * r + 2.0 * r + 2.0) - (r + 1.0).powi(2) * c2);
                let cc = 0.25 * k * k * c.powf(2.0 * r) * ((r + 1.0) * c2 - (r + 2.0));
                let gh = gh0 + a * a * (aa + bb * (r * lon).cos() + cc * (2.0 * r * lon).cos());
                gh / GRAVITY
            }
        }
    }

    /// Coriolis parameter at a unit-sphere point (tilted for Case 2).
    pub fn coriolis_at(&self, p: Vec3) -> f64 {
        let ll = to_lonlat(p);
        match *self {
            TestCase::Case1 { alpha } | TestCase::Case2 { alpha } => {
                2.0 * OMEGA
                    * (ll.lat.sin() * alpha.cos() - ll.lat.cos() * ll.lon.cos() * alpha.sin())
            }
            _ => 2.0 * OMEGA * ll.lat.sin(),
        }
    }

    /// Analytic thickness at time `t` seconds. Equal to the initial field
    /// for steady cases; for Case 1 the bell is rigidly rotated about the
    /// flow axis by the solid-body angle `u0 t / a`.
    pub fn reference_thickness_at(&self, p: Vec3, t: f64) -> f64 {
        match *self {
            TestCase::Case1 { alpha } => {
                let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
                let theta = u0 * t / EARTH_RADIUS;
                let axis = Vec3::new(-alpha.sin(), 0.0, alpha.cos());
                let back = mpas_geom::rotate_about_axis(p, axis, -theta);
                self.thickness_at(back)
            }
            _ => self.thickness_at(p),
        }
    }

    /// Sample the initial prognostic state on a mesh.
    pub fn initial_state(&self, mesh: &Mesh) -> State {
        let h = (0..mesh.n_cells())
            .map(|i| self.thickness_at(mesh.x_cell[i]))
            .collect();
        let u = (0..mesh.n_edges())
            .map(|e| self.velocity_at(mesh.x_edge[e]).dot(mesh.normal_edge[e]))
            .collect();
        State { h, u }
    }

    /// Sample the topography on a mesh.
    pub fn topography(&self, mesh: &Mesh) -> Vec<f64> {
        (0..mesh.n_cells())
            .map(|i| self.topography_at(mesh.x_cell[i]))
            .collect()
    }

    /// Sample the Coriolis parameter at the vorticity points.
    pub fn coriolis_vertex(&self, mesh: &Mesh) -> Vec<f64> {
        (0..mesh.n_vertices())
            .map(|v| self.coriolis_at(mesh.x_vertex[v]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_bell_shape_and_background() {
        let tc = TestCase::Case1 { alpha: 0.0 };
        let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
        assert!((tc.thickness_at(center) - 2000.0).abs() < 1e-9);
        let far = LonLat::new(0.0, 0.8).to_unit_vector();
        assert_eq!(tc.thickness_at(far), 1000.0);
        // Smooth at the bell edge (cosine taper reaches exactly zero).
        let edge_angle = 1.0 / 3.0;
        let edge = LonLat::new(1.5 * std::f64::consts::PI + edge_angle, 0.0).to_unit_vector();
        assert!(tc.thickness_at(edge) - 1000.0 < 1e-6);
    }

    #[test]
    fn case1_reference_rotates_with_the_flow() {
        let tc = TestCase::Case1 { alpha: 0.0 };
        let center = LonLat::new(1.5 * std::f64::consts::PI, 0.0).to_unit_vector();
        // After a quarter period (3 days) the bell peak has moved 90 deg east.
        let t = 3.0 * SECONDS_PER_DAY;
        let new_center = LonLat::new(0.0, 0.0).to_unit_vector();
        assert!(
            (tc.reference_thickness_at(new_center, t) - 2000.0).abs() < 1e-6,
            "peak not at the advected position"
        );
        assert!(tc.reference_thickness_at(center, t) - 1000.0 < 1e-6);
        // Full revolution returns the initial field.
        let t_full = 12.0 * SECONDS_PER_DAY;
        for k in 0..20 {
            let p = LonLat::new(k as f64 * 0.3, (k as f64 * 0.17).sin()).to_unit_vector();
            assert!((tc.reference_thickness_at(p, t_full) - tc.thickness_at(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn case1_tilted_velocity_matches_rotation_axis() {
        let alpha = 0.9;
        let tc = TestCase::Case1 { alpha };
        let axis = Vec3::new(-alpha.sin(), 0.0, alpha.cos());
        let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
        for k in 0..30 {
            let p = LonLat::new(k as f64 * 0.21, (k as f64 * 0.13).sin() * 1.2).to_unit_vector();
            let expect = (axis * u0).cross(p);
            assert!(tc.velocity_at(p).dist(expect) < 1e-9, "point {k}");
        }
    }

    #[test]
    fn case2_velocity_is_zonal_without_tilt() {
        let tc = TestCase::Case2 { alpha: 0.0 };
        let p = LonLat::new(1.0, 0.5).to_unit_vector();
        let v = tc.velocity_at(p);
        // Purely eastward: no component along north.
        assert!(v.dot(north_at(p)).abs() < 1e-9);
        let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS / (12.0 * SECONDS_PER_DAY);
        assert!((v.dot(east_at(p)) - u0 * 0.5f64.cos()).abs() < 1e-9);
    }

    #[test]
    fn case2_thickness_positive_everywhere() {
        let tc = TestCase::Case2 { alpha: 0.3 };
        for k in 0..200 {
            let lon = k as f64 * 0.0314;
            let lat = (k as f64 * 0.017).sin() * 1.5;
            let h = tc.thickness_at(LonLat::new(lon, lat).to_unit_vector());
            assert!(h > 500.0, "h = {h} at ({lon},{lat})");
        }
    }

    #[test]
    fn case5_mountain_peak_and_extent() {
        let tc = TestCase::Case5;
        let center =
            LonLat::new(1.5 * std::f64::consts::PI, std::f64::consts::PI / 6.0).to_unit_vector();
        assert!((tc.topography_at(center) - 2000.0).abs() < 1e-9);
        // Outside radius pi/9 the mountain vanishes.
        let far = LonLat::new(0.0, -1.0).to_unit_vector();
        assert_eq!(tc.topography_at(far), 0.0);
        // Total height h+b is smooth across the mountain edge.
        let edge = LonLat::new(
            1.5 * std::f64::consts::PI + std::f64::consts::PI / 9.0,
            std::f64::consts::PI / 6.0,
        )
        .to_unit_vector();
        assert!(tc.topography_at(edge).abs() < 1e-9);
    }

    #[test]
    fn case6_velocity_has_wavenumber_4_symmetry() {
        let tc = TestCase::Case6;
        let lat = 0.6;
        for k in 0..4 {
            let lon0 = 0.35;
            let lon1 = lon0 + k as f64 * std::f64::consts::PI / 2.0;
            let p0 = LonLat::new(lon0, lat).to_unit_vector();
            let p1 = LonLat::new(lon1, lat).to_unit_vector();
            let (z0, m0) = (
                tc.velocity_at(p0).dot(east_at(p0)),
                tc.velocity_at(p0).dot(north_at(p0)),
            );
            let (z1, m1) = (
                tc.velocity_at(p1).dot(east_at(p1)),
                tc.velocity_at(p1).dot(north_at(p1)),
            );
            assert!((z0 - z1).abs() < 1e-9);
            assert!((m0 - m1).abs() < 1e-9);
        }
    }

    #[test]
    fn case6_thickness_in_physical_range() {
        let tc = TestCase::Case6;
        for k in 0..400 {
            let lon = k as f64 * 0.0157;
            let lat = ((k * 7) % 400) as f64 / 400.0 * 3.0 - 1.5;
            let h = tc.thickness_at(LonLat::new(lon, lat).to_unit_vector());
            assert!((6000.0..11000.0).contains(&h), "h = {h}");
        }
    }

    #[test]
    fn coriolis_tilt_moves_the_pole() {
        let alpha = 0.7;
        let tc = TestCase::Case2 { alpha };
        // The effective pole is at (lon=0 tilted): f is maximal where
        // sin(lat)cos(a) - cos(lat)cos(lon)sin(a) = 1.
        let pole =
            LonLat::new(std::f64::consts::PI, std::f64::consts::PI / 2.0 - alpha).to_unit_vector();
        assert!((tc.coriolis_at(pole) - 2.0 * OMEGA).abs() < 1e-9);
    }

    #[test]
    fn initial_state_samples_consistently() {
        let mesh = mpas_mesh::generate(2, 0);
        let tc = TestCase::Case5;
        let s = tc.initial_state(&mesh);
        assert_eq!(s.h.len(), mesh.n_cells());
        assert_eq!(s.u.len(), mesh.n_edges());
        assert!(s.h.iter().all(|&h| h > 3000.0));
        let b = tc.topography(&mesh);
        assert!(b.iter().any(|&x| x > 1000.0), "mountain missing from mesh");
    }
}
