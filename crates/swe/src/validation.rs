//! Reference-norm validation harness: the scenario catalog and its
//! committed error bands.
//!
//! Every runnable scenario (the six Williamson cases, Galewsky, and the
//! tracer-transport variant of case 5) is described by a [`Scenario`]:
//! which [`TestCase`] it samples, which config switches it needs
//! (advection-only for case 1, tracer count for the tracer scenario), and
//! what kind of reference its error norms are measured against:
//!
//! * **Analytic** — the case has a time-dependent (case 1) or steady
//!   (cases 2, 3) exact solution; the thickness error norm measures true
//!   discretization error and is gated one-sidedly (`≤ committed·(1+tol)`;
//!   smaller is better but still flagged by the perf-gate's two-sided
//!   baseline entries).
//! * **Stored** — no closed-form solution (cases 4, 5, 6, Galewsky,
//!   tracer). The norm measures deviation from the initial state — a
//!   deterministic fingerprint of the evolved flow — and is gated
//!   two-sidedly: a collapse to zero is as suspicious as a blow-up.
//!
//! The committed numbers in [`SPECS`] were harvested from the serial
//! executor at the recorded `(level, days)`; because every executor in
//! this repo is bitwise-identical by construction, the same bands gate all
//! of them. Tolerances are wide enough to absorb cross-platform libm ulp
//! differences (which perturb initial conditions) but tight enough to
//! catch any formulation change.

use crate::config::ModelConfig;
use crate::model::ShallowWaterModel;
use crate::norms::ErrorNorms;
use crate::testcases::TestCase;

/// How a scenario's error norms are referenced and gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reference {
    /// Exact solution exists; one-sided upper gate on the norms.
    Analytic,
    /// Deviation-from-initial-state fingerprint; two-sided gate.
    Stored,
}

/// One catalog entry: everything needed to build and judge a scenario run.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Catalog name (`swe_run --case <name>`, server job `case` field).
    pub name: &'static str,
    /// The initial-condition/forcing recipe.
    pub test_case: TestCase,
    /// Passive tracers advected alongside the flow.
    pub n_tracers: usize,
    /// Hold the velocity field fixed (Williamson case 1).
    pub advection_only: bool,
    /// Reference kind for the norm gate.
    pub reference: Reference,
}

impl Scenario {
    /// The model configuration this scenario requires, on top of defaults.
    pub fn config(&self) -> ModelConfig {
        ModelConfig {
            advection_only: self.advection_only,
            n_tracers: self.n_tracers,
            ..ModelConfig::default()
        }
    }
}

/// The full scenario catalog, in canonical order.
pub const CATALOG: [Scenario; 8] = [
    Scenario {
        name: "williamson-1",
        test_case: TestCase::Case1 { alpha: 0.0 },
        n_tracers: 0,
        advection_only: true,
        reference: Reference::Analytic,
    },
    Scenario {
        name: "williamson-2",
        test_case: TestCase::Case2 { alpha: 0.0 },
        n_tracers: 0,
        advection_only: false,
        reference: Reference::Analytic,
    },
    Scenario {
        name: "williamson-3",
        test_case: TestCase::Case3,
        n_tracers: 0,
        advection_only: false,
        reference: Reference::Analytic,
    },
    Scenario {
        name: "williamson-4",
        test_case: TestCase::Case4,
        n_tracers: 0,
        advection_only: false,
        reference: Reference::Stored,
    },
    Scenario {
        name: "williamson-5",
        test_case: TestCase::Case5,
        n_tracers: 0,
        advection_only: false,
        reference: Reference::Stored,
    },
    Scenario {
        name: "williamson-6",
        test_case: TestCase::Case6,
        n_tracers: 0,
        advection_only: false,
        reference: Reference::Stored,
    },
    Scenario {
        name: "galewsky",
        test_case: TestCase::Galewsky,
        n_tracers: 0,
        advection_only: false,
        reference: Reference::Stored,
    },
    Scenario {
        name: "tracer-case5",
        test_case: TestCase::Case5,
        n_tracers: 2,
        advection_only: false,
        reference: Reference::Stored,
    },
];

/// Look up a scenario by catalog name (also accepts the bare Williamson
/// digit, e.g. `"5"` for `"williamson-5"`).
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    let canonical = match name {
        "1" | "2" | "3" | "4" | "5" | "6" => return scenario(&format!("williamson-{name}")),
        other => other,
    };
    CATALOG.iter().find(|s| s.name == canonical)
}

/// Names of every catalog scenario, canonical order.
pub fn catalog_names() -> Vec<&'static str> {
    CATALOG.iter().map(|s| s.name).collect()
}

/// A committed reference norm at one `(scenario, level)` point.
#[derive(Debug, Clone, Copy)]
pub struct NormSpec {
    /// Catalog name this spec gates.
    pub name: &'static str,
    /// Icosahedral subdivision level of the mesh.
    pub level: u32,
    /// Simulated horizon in days (steps derive from the default dt).
    pub days: f64,
    /// Committed normalized l2 thickness norm at the horizon.
    pub l2: f64,
    /// Committed normalized l∞ thickness norm at the horizon.
    pub linf: f64,
    /// Relative half-width of the acceptance band.
    pub tolerance: f64,
}

/// Per-step relative tracer-mass drift budget (matches the conservation
/// proptest): flux-form T1 conserves to rounding, so `steps × 1e-12` bounds
/// any healthy run with margin.
pub const TRACER_DRIFT_PER_STEP: f64 = 1e-12;

/// Committed reference norms. Harvested from the serial executor
/// (bitwise-identical across executors); see EXPERIMENTS.md §"Scenario
/// catalog" for the harvest command.
pub const SPECS: [NormSpec; 12] = [
    // Level-4 entries: the CI scenario-suite points (1 simulated day,
    // 236 steps at the default dt).
    NormSpec {
        name: "williamson-1",
        level: 4,
        days: 1.0,
        l2: 1.7357e-2,
        linf: 1.1530e-1,
        tolerance: 0.5,
    },
    NormSpec {
        name: "williamson-2",
        level: 4,
        days: 1.0,
        l2: 1.2520e-3,
        linf: 4.6042e-3,
        tolerance: 0.5,
    },
    NormSpec {
        name: "williamson-3",
        level: 4,
        days: 1.0,
        l2: 7.2772e-4,
        linf: 4.4358e-3,
        tolerance: 0.5,
    },
    NormSpec {
        name: "williamson-4",
        level: 4,
        days: 1.0,
        l2: 9.3511e-4,
        linf: 2.1237e-2,
        tolerance: 0.5,
    },
    NormSpec {
        name: "williamson-5",
        level: 4,
        days: 1.0,
        l2: 2.3319e-3,
        linf: 1.8318e-2,
        tolerance: 0.5,
    },
    NormSpec {
        name: "williamson-6",
        level: 4,
        days: 1.0,
        l2: 2.7355e-2,
        linf: 5.4286e-2,
        tolerance: 0.5,
    },
    NormSpec {
        name: "galewsky",
        level: 4,
        days: 1.0,
        l2: 9.8237e-4,
        linf: 9.2073e-3,
        tolerance: 0.5,
    },
    NormSpec {
        name: "tracer-case5",
        level: 4,
        days: 1.0,
        l2: 2.3319e-3,
        linf: 1.8318e-2,
        tolerance: 0.5,
    },
    // Level-5 entries: the golden-norm regression points (0.25 day,
    // 118 steps at the default dt).
    NormSpec {
        name: "williamson-1",
        level: 5,
        days: 0.25,
        l2: 1.6066e-3,
        linf: 1.0854e-2,
        tolerance: 0.4,
    },
    NormSpec {
        name: "williamson-2",
        level: 5,
        days: 0.25,
        l2: 4.5141e-4,
        linf: 1.8254e-3,
        tolerance: 0.4,
    },
    NormSpec {
        name: "williamson-5",
        level: 5,
        days: 0.25,
        l2: 9.5131e-4,
        linf: 5.5487e-3,
        tolerance: 0.4,
    },
    NormSpec {
        name: "galewsky",
        level: 5,
        days: 0.25,
        l2: 4.8106e-4,
        linf: 8.4959e-3,
        tolerance: 0.4,
    },
];

/// Look up the committed norm spec for `(name, level)`.
pub fn spec(name: &str, level: u32) -> Option<&'static NormSpec> {
    let canonical = scenario(name)?.name;
    SPECS
        .iter()
        .find(|s| s.name == canonical && s.level == level)
}

/// Outcome of validating one scenario run against its committed band.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Catalog name.
    pub name: String,
    /// Mesh level the run used.
    pub level: u32,
    /// Steps actually run.
    pub steps: usize,
    /// Measured thickness error norms.
    pub norms: ErrorNorms,
    /// The committed spec the run was judged against.
    pub spec: NormSpec,
    /// Largest relative tracer-mass drift across tracers (0 without).
    pub tracer_drift: f64,
    /// Human-readable failure descriptions (empty = pass).
    pub failures: Vec<String>,
}

impl ValidationReport {
    /// Whether every gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn check_norm(
    what: &str,
    measured: f64,
    committed: f64,
    tolerance: f64,
    reference: Reference,
    failures: &mut Vec<String>,
) {
    let hi = committed * (1.0 + tolerance);
    if !measured.is_finite() || measured > hi {
        failures.push(format!(
            "{what} = {measured:.4e} above committed band (≤ {hi:.4e})"
        ));
        return;
    }
    if reference == Reference::Stored {
        let lo = committed / (1.0 + tolerance);
        if measured < lo {
            failures.push(format!(
                "{what} = {measured:.4e} below committed band (≥ {lo:.4e}) — \
                 reference fingerprint changed"
            ));
        }
    }
}

/// Judge measured norms (and tracer drift) against the committed band for
/// `(name, level)`. Returns `None` when no spec is registered there.
pub fn check(
    name: &str,
    level: u32,
    steps: usize,
    norms: ErrorNorms,
    tracer_drift: f64,
) -> Option<ValidationReport> {
    let sc = scenario(name)?;
    let sp = spec(name, level)?;
    let mut failures = Vec::new();
    check_norm(
        "l2",
        norms.l2,
        sp.l2,
        sp.tolerance,
        sc.reference,
        &mut failures,
    );
    check_norm(
        "linf",
        norms.linf,
        sp.linf,
        sp.tolerance,
        sc.reference,
        &mut failures,
    );
    if sc.n_tracers > 0 {
        let budget = TRACER_DRIFT_PER_STEP * steps.max(1) as f64;
        let drift = tracer_drift.abs();
        // NaN must fail, not slip through a `> budget` comparison.
        if drift.is_nan() || drift > budget {
            failures.push(format!(
                "tracer mass drift {tracer_drift:.3e} exceeds budget {budget:.3e}"
            ));
        }
    }
    Some(ValidationReport {
        name: sc.name.to_string(),
        level,
        steps,
        norms,
        spec: *sp,
        tracer_drift,
        failures,
    })
}

/// Run a scenario on the serial reference model at `level` for the spec's
/// committed horizon and validate it. The workhorse behind
/// `swe_run --validate` and the golden-norm regression tests.
pub fn run_and_validate(name: &str, level: u32) -> Option<ValidationReport> {
    let sc = scenario(name)?;
    let sp = spec(name, level)?;
    let mesh = std::sync::Arc::new(mpas_mesh::generate(level, 0));
    let mut model = ShallowWaterModel::new(mesh, sc.config(), sc.test_case, None);
    let tracer_mass0: Vec<f64> = (0..sc.n_tracers).map(|k| model.total_tracer(k)).collect();
    let steps = model.steps_for_days(sp.days);
    model.run_steps(steps);
    let tracer_drift = (0..sc.n_tracers)
        .map(|k| ((model.total_tracer(k) - tracer_mass0[k]) / tracer_mass0[k]).abs())
        .fold(0.0f64, f64::max);
    check(name, level, steps, model.h_error_norms(), tracer_drift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_resolve_and_are_unique() {
        let names = catalog_names();
        assert_eq!(names.len(), 8);
        for n in &names {
            assert!(scenario(n).is_some(), "{n} missing");
        }
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate catalog names");
        // Digit aliases hit the Williamson entries.
        assert_eq!(scenario("5").unwrap().name, "williamson-5");
        assert!(scenario("7").is_none());
        assert!(scenario("bogus").is_none());
    }

    #[test]
    fn every_scenario_has_a_level4_spec() {
        for sc in &CATALOG {
            assert!(
                spec(sc.name, 4).is_some(),
                "{} has no level-4 spec",
                sc.name
            );
        }
    }

    #[test]
    fn check_rejects_out_of_band_norms() {
        let sp = spec("williamson-5", 4).unwrap();
        let good = ErrorNorms {
            l1: sp.l2,
            l2: sp.l2,
            linf: sp.linf,
        };
        assert!(check("williamson-5", 4, 100, good, 0.0).unwrap().passed());
        let high = ErrorNorms {
            l1: 0.0,
            l2: sp.l2 * 10.0,
            linf: sp.linf,
        };
        assert!(!check("williamson-5", 4, 100, high, 0.0).unwrap().passed());
        // Stored references also reject a collapse to zero.
        let low = ErrorNorms {
            l1: 0.0,
            l2: 0.0,
            linf: 0.0,
        };
        assert!(!check("williamson-5", 4, 100, low, 0.0).unwrap().passed());
        // Analytic references accept better-than-committed norms.
        assert!(check("williamson-2", 4, 100, low, 0.0).unwrap().passed());
    }

    #[test]
    fn tracer_scenario_gates_mass_drift() {
        let sp = spec("tracer-case5", 4).unwrap();
        let norms = ErrorNorms {
            l1: sp.l2,
            l2: sp.l2,
            linf: sp.linf,
        };
        assert!(check("tracer-case5", 4, 100, norms, 5e-10)
            .unwrap()
            .failures
            .iter()
            .any(|f| f.contains("tracer")));
        assert!(check("tracer-case5", 4, 100, norms, 1e-14)
            .unwrap()
            .passed());
    }
}
