//! Single-address-space model facade: the reference ("original CPU code")
//! implementation the paper's hybrid versions are compared against.

use crate::coeffs::KernelCoeffs;
use crate::config::ModelConfig;
use crate::kernels;
use crate::norms::ErrorNorms;
use crate::reconstruct::ReconstructCoeffs;
use crate::rk4::{rk4_step, Rk4Workspace};
use crate::state::{Diagnostics, Reconstruction, State, Tendencies};
use crate::testcases::TestCase;
use mpas_mesh::Mesh;
use mpas_telemetry::Recorder;
use std::sync::Arc;

/// The fixed forcing that holds a test case's background state in discrete
/// equilibrium: `F = −N(background)` where `N` is the model's own tendency
/// operator (same kernels, same fused/seed path, same `dt` for the APVM
/// term). With `F` added to every stage, the unperturbed background is a
/// bitwise fixed point — each stage tendency is `a + (−a) = 0.0` exactly —
/// so only the superposed anomaly evolves. Distributed ranks call this on
/// their local mesh: the analytic background samples identically at the
/// same points and the halo covers the stencil chain, so owned forcing
/// entries match the global computation bit for bit.
pub fn compute_equilibrium_forcing(
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    test_case: &TestCase,
    b: &[f64],
    f_vertex: &[f64],
    dt: f64,
) -> Tendencies {
    let bg = test_case.background_state(mesh);
    let mut diag = Diagnostics::zeros(mesh);
    let mut tend = Tendencies::zeros(mesh);
    let backend = config.kernel_backend;
    kernels::compute_solve_diagnostics_backend(
        backend, mesh, config, kc, &bg.h, &bg.u, f_vertex, dt, &mut diag,
    );
    kernels::compute_tend_backend(backend, mesh, config, kc, &bg.h, &bg.u, b, &diag, &mut tend);
    for x in tend.tend_h.iter_mut().chain(tend.tend_u.iter_mut()) {
        *x = -*x;
    }
    tend
}

/// A complete shallow-water simulation on one mesh.
pub struct ShallowWaterModel {
    /// The mesh being integrated.
    pub mesh: Arc<Mesh>,
    /// Numerical options.
    pub config: ModelConfig,
    /// The Williamson scenario this run was initialized from.
    pub test_case: TestCase,
    /// Prognostic state.
    pub state: State,
    /// Current diagnostics (consistent with `state`).
    pub diag: Diagnostics,
    /// Reconstructed cell-center velocities.
    pub recon: Reconstruction,
    /// Bottom topography at cells.
    pub b: Vec<f64>,
    /// Coriolis parameter at vertices.
    pub f_vertex: Vec<f64>,
    /// Velocity-reconstruction coefficients.
    pub coeffs: ReconstructCoeffs,
    /// Precomputed fused kernel coefficients (used by the fused and simd
    /// backends of `config.kernel_backend`). Shared so multi-tenant
    /// servers can reuse one table across concurrent models on the same
    /// mesh/config.
    pub kernel_coeffs: Arc<KernelCoeffs>,
    /// Fixed forcing tendency for forced cases (Williamson 4): the
    /// discrete negation of the background jet's tendency, computed once
    /// at init so the unperturbed jet is a bitwise equilibrium.
    pub forcing: Option<Tendencies>,
    ws: Rk4Workspace,
    /// Model time in seconds.
    pub time: f64,
    /// Time-step size in seconds.
    pub dt: f64,
    /// Telemetry sink (`swe.model.*` spans and timers); no-op by default.
    recorder: Recorder,
}

impl ShallowWaterModel {
    /// Initialize a model from a test case. `dt = None` picks the
    /// mesh-dependent stable default.
    pub fn new(mesh: Arc<Mesh>, config: ModelConfig, test_case: TestCase, dt: Option<f64>) -> Self {
        Self::new_shared(mesh, config, test_case, dt, None)
    }

    /// Like [`ShallowWaterModel::new`], but reuse an already-built
    /// coefficient table (it must have been built for this exact mesh and
    /// config). `None` builds a fresh table.
    pub fn new_shared(
        mesh: Arc<Mesh>,
        config: ModelConfig,
        test_case: TestCase,
        dt: Option<f64>,
        shared_coeffs: Option<Arc<KernelCoeffs>>,
    ) -> Self {
        let state = test_case.initial_state_with_tracers(&mesh, config.n_tracers);
        let b = test_case.topography(&mesh);
        let f_vertex = test_case.coriolis_vertex(&mesh);
        let coeffs = ReconstructCoeffs::build(&mesh);
        let kernel_coeffs =
            shared_coeffs.unwrap_or_else(|| Arc::new(KernelCoeffs::build(&mesh, &config)));
        let dt = dt.unwrap_or_else(|| ModelConfig::suggested_dt(&mesh));
        let mut diag = Diagnostics::zeros(&mesh);
        kernels::compute_solve_diagnostics_backend(
            config.kernel_backend,
            &mesh,
            &config,
            &kernel_coeffs,
            &state.h,
            &state.u,
            &f_vertex,
            dt,
            &mut diag,
        );
        let mut recon = Reconstruction::zeros(&mesh);
        kernels::mpas_reconstruct(&mesh, &coeffs, &state.u, &mut recon);
        let ws = Rk4Workspace::new(&mesh);
        let forcing = if test_case.needs_forcing() {
            Some(compute_equilibrium_forcing(
                &mesh,
                &config,
                &kernel_coeffs,
                &test_case,
                &b,
                &f_vertex,
                dt,
            ))
        } else {
            None
        };
        ShallowWaterModel {
            ws,
            forcing,
            state,
            diag,
            recon,
            b,
            f_vertex,
            coeffs,
            kernel_coeffs,
            config,
            test_case,
            time: 0.0,
            dt,
            mesh,
            recorder: Recorder::noop(),
        }
    }

    /// Route this model's `swe.model.*` telemetry into `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Route this model's `swe.model.*` telemetry into `rec`.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// Advance one RK-4 step.
    pub fn step(&mut self) {
        let _t = self
            .recorder
            .span_timed("measured", "swe.step", "swe.model.step_seconds");
        rk4_step(
            &self.mesh,
            &self.config,
            &self.coeffs,
            &self.kernel_coeffs,
            &self.f_vertex,
            &self.b,
            self.forcing.as_ref(),
            self.dt,
            &mut self.state,
            &mut self.diag,
            &mut self.recon,
            &mut self.ws,
        );
        self.time += self.dt;
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Change the step size mid-run. The diagnostics (and any forcing) are
    /// refreshed because the APVM upwinding inside `pv_edge` — and hence
    /// the equilibrium forcing derived from it — depends on `dt`.
    pub fn set_dt(&mut self, dt: f64) {
        if dt == self.dt {
            return;
        }
        self.dt = dt;
        self.refresh_diagnostics();
        if self.forcing.is_some() {
            self.forcing = Some(compute_equilibrium_forcing(
                &self.mesh,
                &self.config,
                &self.kernel_coeffs,
                &self.test_case,
                &self.b,
                &self.f_vertex,
                dt,
            ));
        }
    }

    /// Recompute the diagnostics from the current prognostic state (needed
    /// after externally mutating `state` or `dt`).
    pub fn refresh_diagnostics(&mut self) {
        kernels::compute_solve_diagnostics_backend(
            self.config.kernel_backend,
            &self.mesh,
            &self.config,
            &self.kernel_coeffs,
            &self.state.h,
            &self.state.u,
            &self.f_vertex,
            self.dt,
            &mut self.diag,
        );
    }

    /// One CFL-monitored adaptive step: measure the Courant number of the
    /// current state, rescale `dt` toward `cfl_target` when outside the
    /// relative `band` around it (growth/shrink clamped to [½, 2]× per
    /// step), then advance. Returns the Courant number that was measured —
    /// the caller feeds it to the `InvariantMonitor` gauge so a CFL
    /// violation that adaptation cannot hold down still raises an alert.
    pub fn step_adaptive(&mut self, cfl_target: f64, band: f64) -> f64 {
        let c = self.max_courant();
        if c > 0.0 {
            let lo = cfl_target * (1.0 - band);
            let hi = cfl_target * (1.0 + band);
            if c < lo || c > hi {
                let scale = (cfl_target / c).clamp(0.5, 2.0);
                self.set_dt(self.dt * scale);
            }
        }
        self.step();
        c
    }

    /// Number of steps needed to reach `days` of simulated time.
    pub fn steps_for_days(&self, days: f64) -> usize {
        (days * mpas_geom::SECONDS_PER_DAY / self.dt).ceil() as usize
    }

    /// Total fluid mass `∫ h dA` (exactly conserved by the scheme).
    pub fn total_mass(&self) -> f64 {
        (0..self.mesh.n_cells())
            .map(|i| self.state.h[i] * self.mesh.area_cell[i])
            .sum()
    }

    /// Total mass of tracer `k`: `∫ h·q dA` (conserved to rounding by the
    /// flux-form T1 kernel).
    pub fn total_tracer(&self, k: usize) -> f64 {
        (0..self.mesh.n_cells())
            .map(|i| self.state.tracers[k][i] * self.mesh.area_cell[i])
            .sum()
    }

    /// Total energy `∫ [h·K + ½ g ((h+b)² − b²)] dA`.
    pub fn total_energy(&self) -> f64 {
        let g = self.config.gravity;
        (0..self.mesh.n_cells())
            .map(|i| {
                let h = self.state.h[i];
                let b = self.b[i];
                (h * self.diag.ke[i] + 0.5 * g * ((h + b).powi(2) - b * b)) * self.mesh.area_cell[i]
            })
            .sum()
    }

    /// Potential enstrophy `∫ ½ h_v q_v² dA_v`.
    pub fn potential_enstrophy(&self) -> f64 {
        let mesh = &self.mesh;
        (0..mesh.n_vertices())
            .map(|v| {
                let mut hv = 0.0;
                for k in 0..3 {
                    hv += mesh.kite_areas_on_vertex[v][k]
                        * self.state.h[mesh.cells_on_vertex[v][k] as usize];
                }
                hv /= mesh.area_triangle[v];
                0.5 * hv * self.diag.pv_vertex[v].powi(2) * mesh.area_triangle[v]
            })
            .sum()
    }

    /// Thickness error norms against the test case's analytic solution at
    /// the current model time (steady cases compare to the initial field;
    /// Case 1 to the rigidly advected bell).
    pub fn h_error_norms(&self) -> ErrorNorms {
        let reference: Vec<f64> = (0..self.mesh.n_cells())
            .map(|i| {
                self.test_case
                    .reference_thickness_at(self.mesh.x_cell[i], self.time)
            })
            .collect();
        ErrorNorms::compute(&self.state.h, &reference, &self.mesh.area_cell)
    }

    /// Maximum Courant number over edges, using the external gravity-wave
    /// speed `|u| + sqrt(g h_edge)` — the stability monitor for the
    /// explicit RK-4 stepping.
    pub fn max_courant(&self) -> f64 {
        let g = self.config.gravity;
        (0..self.mesh.n_edges())
            .map(|e| {
                let c = self.state.u[e].abs() + (g * self.diag.h_edge[e].max(0.0)).sqrt();
                c * self.dt / self.mesh.dc_edge[e]
            })
            .fold(0.0f64, f64::max)
    }

    /// Total height field `h + b` (what the paper's Fig. 5 plots).
    pub fn total_height(&self) -> Vec<f64> {
        self.state
            .h
            .iter()
            .zip(&self.b)
            .map(|(&h, &b)| h + b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model(tc: TestCase) -> ShallowWaterModel {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        ShallowWaterModel::new(mesh, ModelConfig::default(), tc, None)
    }

    #[test]
    fn mass_is_conserved_to_machine_precision() {
        let mut m = small_model(TestCase::Case5);
        let m0 = m.total_mass();
        m.run_steps(10);
        let m1 = m.total_mass();
        let drift = (m1 - m0) / m0;
        assert!(drift.abs() < 1e-13, "mass drift {drift:e}");
    }

    #[test]
    fn case2_stays_near_steady_state() {
        let mut m = small_model(TestCase::Case2 { alpha: 0.0 });
        m.run_steps(20);
        let norms = m.h_error_norms();
        // Coarse mesh: discretization error dominates, but the state must
        // remain close to the analytic steady flow after 20 steps.
        assert!(norms.l2 < 5e-3, "l2 = {}", norms.l2);
        assert!(norms.linf < 2e-2, "linf = {}", norms.linf);
    }

    #[test]
    fn energy_drift_is_small() {
        let mut m = small_model(TestCase::Case6);
        let e0 = m.total_energy();
        m.run_steps(20);
        let e1 = m.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 1e-6,
            "energy drift {}",
            (e1 - e0) / e0
        );
    }

    #[test]
    fn enstrophy_drift_is_small() {
        let mut m = small_model(TestCase::Case6);
        let s0 = m.potential_enstrophy();
        m.run_steps(20);
        let s1 = m.potential_enstrophy();
        assert!(
            ((s1 - s0) / s0).abs() < 1e-4,
            "enstrophy drift {}",
            (s1 - s0) / s0
        );
    }

    #[test]
    fn case5_total_height_spans_mountain() {
        let m = small_model(TestCase::Case5);
        let th = m.total_height();
        let max = th.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = th.iter().fold(f64::MAX, |a, &b| a.min(b));
        // Analytic range: gh0/g = 5960 m at the equator down to
        // 5960 − (aΩu0 + u0²/2)/g ≈ 4992 m at the poles.
        assert!(max < 6000.0 && min > 4950.0, "range [{min},{max}]");
    }

    #[test]
    fn solution_remains_finite_under_long_run() {
        let mut m = small_model(TestCase::Case5);
        m.run_steps(50);
        assert!(m.state.h.iter().all(|h| h.is_finite() && *h > 0.0));
        assert!(m.state.u.iter().all(|u| u.is_finite() && u.abs() < 300.0));
    }

    #[test]
    fn case4_background_is_a_bitwise_equilibrium() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mut m =
            ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case4, None);
        assert!(m.forcing.is_some());
        // Replace the perturbed initial state with the bare background:
        // under the equilibrium forcing it must not move at all.
        m.state = TestCase::Case4.background_state(&mesh);
        m.refresh_diagnostics();
        let before = m.state.clone();
        m.run_steps(3);
        assert_eq!(m.state.max_abs_diff(&before), 0.0, "background drifted");
    }

    #[test]
    fn case4_anomaly_actually_evolves() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mut m = ShallowWaterModel::new(mesh, ModelConfig::default(), TestCase::Case4, None);
        let before = m.state.clone();
        let mass0 = m.total_mass();
        m.run_steps(5);
        assert!(m.state.max_abs_diff(&before) > 1e-3, "anomaly frozen");
        let drift = (m.total_mass() - mass0) / mass0;
        assert!(drift.abs() < 1e-13, "mass drift {drift:e}");
    }

    #[test]
    fn tracer_mass_is_conserved() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let config = ModelConfig {
            n_tracers: 2,
            ..Default::default()
        };
        let mut m = ShallowWaterModel::new(mesh, config, TestCase::Case5, None);
        let t0: Vec<f64> = (0..2).map(|k| m.total_tracer(k)).collect();
        m.run_steps(10);
        for (k, &mass0) in t0.iter().enumerate() {
            let drift = (m.total_tracer(k) - mass0) / mass0;
            assert!(drift.abs() < 1e-12, "tracer {k} drift {drift:e}");
        }
    }

    #[test]
    fn constant_tracer_tracks_thickness() {
        // Tracer 0 starts as q == 1 (hq == h); advection must keep q ~= 1.
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let config = ModelConfig {
            n_tracers: 1,
            ..Default::default()
        };
        let mut m = ShallowWaterModel::new(mesh, config, TestCase::Case5, None);
        m.run_steps(10);
        for i in 0..m.mesh.n_cells() {
            let q = m.state.tracers[0][i] / m.state.h[i];
            assert!((q - 1.0).abs() < 1e-11, "cell {i}: q = {q}");
        }
    }

    #[test]
    fn adaptive_stepping_holds_the_target_cfl() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mut m = ShallowWaterModel::new(mesh, ModelConfig::default(), TestCase::Case5, None);
        // Start far too timid: dt at a tenth of the stable default.
        let dt0 = m.dt * 0.1;
        m.set_dt(dt0);
        let target = 0.2;
        let mut last = 0.0;
        for _ in 0..12 {
            last = m.step_adaptive(target, 0.1);
        }
        assert!(m.dt > dt0 * 2.0, "dt never grew: {} vs {dt0}", m.dt);
        assert!(
            (last - target).abs() < 0.5 * target,
            "courant {last} far from target"
        );
        assert!(m.state.h.iter().all(|h| h.is_finite() && *h > 0.0));
    }

    #[test]
    fn set_dt_refreshes_the_apvm_diagnostics() {
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        let mut m = ShallowWaterModel::new(mesh, ModelConfig::default(), TestCase::Case5, None);
        let pv_before = m.diag.pv_edge.clone();
        m.set_dt(m.dt * 2.0);
        assert!(m.diag.pv_edge != pv_before, "pv_edge stale after dt change");
    }

    #[test]
    fn steps_for_days_roundtrip() {
        let m = small_model(TestCase::Case5);
        let steps = m.steps_for_days(1.0);
        assert!((steps as f64 * m.dt - 86400.0).abs() < m.dt);
    }
}
