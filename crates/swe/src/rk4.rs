//! The RK-4 time-stepping driver (the paper's Algorithm 1).
//!
//! Classical fourth-order Runge–Kutta in the MPAS formulation: provisional
//! states at `dt/2, dt/2, dt` and quadrature weights `1/6, 1/3, 1/3, 1/6`,
//! with the kernel call sequence exactly as Algorithm 1 lists it (including
//! the branch at the fourth substep where the accumulation precedes the
//! diagnostics and the velocity reconstruction runs).

use crate::coeffs::KernelCoeffs;
use crate::config::ModelConfig;
use crate::kernels;
use crate::reconstruct::ReconstructCoeffs;
use crate::state::{Diagnostics, Reconstruction, State, Tendencies};
use mpas_mesh::Mesh;

/// RK substep coefficients: provisional-state factors (×dt).
pub const RK_SUBSTEP: [f64; 3] = [0.5, 0.5, 1.0];
/// RK quadrature weights (×dt).
pub const RK_WEIGHTS: [f64; 4] = [1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0];

/// Scratch storage reused across steps (no per-step allocation).
#[derive(Debug, Clone)]
pub struct Rk4Workspace {
    /// Provisional substep state.
    pub provis: State,
    /// Stage tendencies.
    pub tend: Tendencies,
    /// Accumulated (quadrature) state.
    pub acc: State,
}

impl Rk4Workspace {
    /// Allocate a workspace for a mesh.
    pub fn new(mesh: &Mesh) -> Self {
        Rk4Workspace {
            provis: State::zeros(mesh),
            tend: Tendencies::zeros(mesh),
            acc: State::zeros(mesh),
        }
    }
}

/// Advance `state` by one RK-4 step of size `dt`.
///
/// On entry `diag` must hold the diagnostics of `state` (as maintained by
/// this function and established once by the model constructor); on exit
/// `state`, `diag` and `recon` all describe the new time level.
///
/// `forcing`, when present, is a fixed tendency added to every stage's
/// `(tend_h, tend_u)` — the forced-case (Williamson 4) equilibrium hold.
/// Tracer-mass fields in `state` are advanced alongside `h` with the T1
/// kernel; the workspace is resized lazily if the tracer count changed.
#[allow(clippy::too_many_arguments)]
pub fn rk4_step(
    mesh: &Mesh,
    config: &ModelConfig,
    coeffs: &ReconstructCoeffs,
    kcoeffs: &KernelCoeffs,
    f_vertex: &[f64],
    b: &[f64],
    forcing: Option<&Tendencies>,
    dt: f64,
    state: &mut State,
    diag: &mut Diagnostics,
    recon: &mut Reconstruction,
    ws: &mut Rk4Workspace,
) {
    if ws.tend.tend_tracers.len() != state.n_tracers() {
        ws.tend.resize_tracers(mesh.n_cells(), state.n_tracers());
    }
    ws.acc.copy_from(state);
    ws.provis.copy_from(state);
    let backend = config.kernel_backend;
    let solve_diag = |h: &[f64], u: &[f64], diag: &mut Diagnostics| {
        kernels::compute_solve_diagnostics_backend(
            backend, mesh, config, kcoeffs, h, u, f_vertex, dt, diag,
        );
    };

    for stage in 0..4 {
        // compute_tend on the provisional state and its diagnostics.
        kernels::compute_tend_backend(
            backend,
            mesh,
            config,
            kcoeffs,
            &ws.provis.h,
            &ws.provis.u,
            b,
            diag,
            &mut ws.tend,
        );
        if !ws.provis.tracers.is_empty() {
            kernels::compute_tend_tracers_backend(
                backend,
                mesh,
                kcoeffs,
                &ws.provis.h,
                &ws.provis.u,
                diag,
                &ws.provis.tracers,
                &mut ws.tend,
            );
        }
        if let Some(f) = forcing {
            kernels::apply_forcing(mesh, f, &mut ws.tend);
        }
        kernels::enforce_boundary_edge(mesh, &mut ws.tend);

        if stage < 3 {
            kernels::compute_next_substep_state(
                mesh,
                state,
                &ws.tend,
                RK_SUBSTEP[stage] * dt,
                &mut ws.provis,
            );
            solve_diag(&ws.provis.h, &ws.provis.u, diag);
            kernels::accumulative_update(mesh, &ws.tend, RK_WEIGHTS[stage] * dt, &mut ws.acc);
        } else {
            kernels::accumulative_update(mesh, &ws.tend, RK_WEIGHTS[stage] * dt, &mut ws.acc);
            state.copy_from(&ws.acc);
            solve_diag(&state.h, &state.u, diag);
            kernels::mpas_reconstruct(mesh, coeffs, &state.u, recon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RK4 on the scalar ODE y' = λy must reproduce the degree-4 Taylor
    /// polynomial of exp(λ dt) exactly — we verify the driver's coefficient
    /// wiring by running the full PDE machinery on a 1-cell-free problem is
    /// impossible, so check the coefficients directly instead.
    #[test]
    fn coefficients_are_classical_rk4() {
        assert_eq!(RK_SUBSTEP, [0.5, 0.5, 1.0]);
        let s: f64 = RK_WEIGHTS.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
        assert_eq!(RK_WEIGHTS[1], RK_WEIGHTS[2]);
        assert_eq!(RK_WEIGHTS[0], RK_WEIGHTS[3]);
        assert!((RK_WEIGHTS[0] - 1.0 / 6.0).abs() < 1e-15);
    }

    /// Scalar convergence check of the same Butcher tableau: integrate
    /// y' = λ y with the (substep, weight) wiring used by `rk4_step` and
    /// confirm 4th-order accuracy.
    #[test]
    fn tableau_is_fourth_order_on_scalar_ode() {
        let lambda = -0.7;
        let integrate = |dt: f64, n: usize| -> f64 {
            let mut y = 1.0f64;
            for _ in 0..n {
                let mut acc = y;
                let mut provis = y;
                for stage in 0..4 {
                    let tend = lambda * provis;
                    if stage < 3 {
                        provis = y + RK_SUBSTEP[stage] * dt * tend;
                    }
                    acc += RK_WEIGHTS[stage] * dt * tend;
                }
                y = acc;
            }
            y
        };
        let exact = (lambda * 1.0f64).exp();
        let e1 = (integrate(0.1, 10) - exact).abs();
        let e2 = (integrate(0.05, 20) - exact).abs();
        let order = (e1 / e2).log2();
        assert!(order > 3.8, "observed order {order}");
    }
}
