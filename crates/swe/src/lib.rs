#![warn(missing_docs)]
//! The MPAS shallow-water model: TRiSK C-grid spatial discretization and
//! RK-4 time stepping on spherical Voronoi meshes.
//!
//! This crate is the numerical substrate the paper parallelizes. It solves
//! the rotating spherical shallow-water equations (the paper's Eq. 1)
//!
//! ```text
//! ∂h/∂t + ∇·(h u)            = 0
//! ∂u/∂t + q (h u)⊥           = −g ∇(h + b) − ∇K
//! ```
//!
//! in the vector-invariant form of Ringler et al. (2011), with the fluid
//! thickness `h` at mass points, the normal velocity `u` at velocity points,
//! and potential vorticity `q` diagnosed at vorticity points.
//!
//! * [`state`] — prognostic/diagnostic field containers.
//! * [`config`] — numerical options (APVM upwinding, del2 dissipation,
//!   thickness-advection order).
//! * [`coeffs`] — precomputed fused kernel coefficients: the per-slot
//!   geometric factors every substep would otherwise re-derive, laid out
//!   flat in CSR order for the [`kernels::fused`] fast path.
//! * [`kernels`] — the six kernels of Algorithm 1 as free functions over
//!   explicit output ranges, one per Table-I pattern instance, so executors
//!   can slice them across devices. Includes the original scatter
//!   (edge-order) forms used as the Fig. 6 baseline.
//! * [`rk4`] — the RK-4 driver (Algorithm 1).
//! * [`layers`] — the k-layer SoA state generalization and the serial
//!   SIMD driver with cache-blocked sweeps (DESIGN.md §14).
//! * [`model`] — a convenient single-address-space model facade.
//! * [`testcases`] — Williamson et al. (1992) test cases 1–6 plus the
//!   Galewsky et al. (2004) barotropic-instability case and passive
//!   tracer initial fields.
//! * [`norms`] — the standard normalized l1/l2/l∞ error norms.
//! * [`validation`] — the named scenario catalog with committed reference
//!   norms (the `swe_run --validate` harness).
//! * [`reconstruct`] — least-squares edge→cell velocity reconstruction.

pub mod checkpoint;
pub mod coeffs;
pub mod config;
pub mod kernels;
pub mod layers;
pub mod model;
pub mod norms;
pub mod reconstruct;
pub mod rk4;
pub mod state;
pub mod testcases;
pub mod timeseries;
pub mod validation;

pub use checkpoint::{load_state, save_state};
pub use coeffs::KernelCoeffs;
pub use config::{KernelBackend, ModelConfig};
pub use layers::{layer_h_scale, LayeredModel, LayeredState};
pub use model::ShallowWaterModel;
pub use norms::ErrorNorms;
pub use reconstruct::ReconstructCoeffs;
pub use rk4::Rk4Workspace;
pub use state::{Diagnostics, Reconstruction, State, Tendencies};
pub use testcases::TestCase;
pub use timeseries::{run_with_history, History};
pub use validation::{Scenario, ValidationReport};
