//! Field containers: prognostic state, diagnostics, tendencies, and the
//! reconstructed cell-center velocities.
//!
//! All fields are flat `Vec<f64>` (structure-of-arrays) indexed by the mesh
//! entity id, the layout the kernels' hot loops expect.

use mpas_mesh::Mesh;

/// Prognostic variables of the shallow-water system.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Fluid thickness at cells (m).
    pub h: Vec<f64>,
    /// Normal velocity at edges (m/s).
    pub u: Vec<f64>,
    /// Passive-tracer mass `h·q` at cells, one vector per tracer. Storing
    /// mass (not mixing ratio) makes the flux-form tendency telescope, so
    /// total tracer content is conserved to rounding like `h` itself.
    pub tracers: Vec<Vec<f64>>,
}

impl State {
    /// Zero-initialized state sized for a mesh (no tracers).
    pub fn zeros(mesh: &Mesh) -> Self {
        Self::zeros_with_tracers(mesh, 0)
    }

    /// Zero-initialized state with `n_tracers` tracer-mass fields.
    pub fn zeros_with_tracers(mesh: &Mesh, n_tracers: usize) -> Self {
        State {
            h: vec![0.0; mesh.n_cells()],
            u: vec![0.0; mesh.n_edges()],
            tracers: vec![vec![0.0; mesh.n_cells()]; n_tracers],
        }
    }

    /// Number of tracer fields carried.
    pub fn n_tracers(&self) -> usize {
        self.tracers.len()
    }

    /// Grow/shrink the tracer block to `n` zeroed fields of `n_cells`.
    pub fn resize_tracers(&mut self, n_cells: usize, n: usize) {
        self.tracers.resize_with(n, || vec![0.0; n_cells]);
        for t in &mut self.tracers {
            t.resize(n_cells, 0.0);
        }
    }

    /// `self = a` (copy without reallocating when shapes already match).
    pub fn copy_from(&mut self, a: &State) {
        self.h.copy_from_slice(&a.h);
        self.u.copy_from_slice(&a.u);
        self.tracers.resize_with(a.tracers.len(), Vec::new);
        for (dst, src) in self.tracers.iter_mut().zip(&a.tracers) {
            dst.resize(src.len(), 0.0);
            dst.copy_from_slice(src);
        }
    }

    /// Largest absolute difference in any field vs another state.
    pub fn max_abs_diff(&self, other: &State) -> f64 {
        fn field_diff(a: &[f64], b: &[f64]) -> f64 {
            a.iter()
                .zip(b)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        }
        let mut d = field_diff(&self.h, &other.h).max(field_diff(&self.u, &other.u));
        for (a, b) in self.tracers.iter().zip(&other.tracers) {
            d = d.max(field_diff(a, b));
        }
        d
    }
}

/// Diagnostic variables recomputed by `compute_solve_diagnostics` (the
/// Table-I intermediates).
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// Thickness at edges.
    pub h_edge: Vec<f64>,
    /// Kinetic energy at cells.
    pub ke: Vec<f64>,
    /// Relative vorticity at vertices.
    pub vorticity: Vec<f64>,
    /// Relative vorticity interpolated to cells.
    pub vorticity_cell: Vec<f64>,
    /// Velocity divergence at cells.
    pub divergence: Vec<f64>,
    /// Potential vorticity at vertices.
    pub pv_vertex: Vec<f64>,
    /// Potential vorticity at cells.
    pub pv_cell: Vec<f64>,
    /// Potential vorticity at edges (APVM upwinded).
    pub pv_edge: Vec<f64>,
    /// Tangential velocity at edges.
    pub v: Vec<f64>,
    /// Second-derivative blend term at the edge's cell-1 side.
    pub d2fdx2_cell1: Vec<f64>,
    /// Second-derivative blend term at the edge's cell-2 side.
    pub d2fdx2_cell2: Vec<f64>,
}

impl Diagnostics {
    /// Zero-initialized diagnostics sized for a mesh.
    pub fn zeros(mesh: &Mesh) -> Self {
        let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
        Diagnostics {
            h_edge: vec![0.0; ne],
            ke: vec![0.0; nc],
            vorticity: vec![0.0; nv],
            vorticity_cell: vec![0.0; nc],
            divergence: vec![0.0; nc],
            pv_vertex: vec![0.0; nv],
            pv_cell: vec![0.0; nc],
            pv_edge: vec![0.0; ne],
            v: vec![0.0; ne],
            d2fdx2_cell1: vec![0.0; ne],
            d2fdx2_cell2: vec![0.0; ne],
        }
    }
}

/// Tendencies produced by `compute_tend`.
#[derive(Debug, Clone)]
pub struct Tendencies {
    /// Thickness tendency at cells.
    pub tend_h: Vec<f64>,
    /// Normal-velocity tendency at edges.
    pub tend_u: Vec<f64>,
    /// Tracer-mass tendencies at cells, one vector per tracer.
    pub tend_tracers: Vec<Vec<f64>>,
}

impl Tendencies {
    /// Zero-initialized tendencies sized for a mesh (no tracers).
    pub fn zeros(mesh: &Mesh) -> Self {
        Self::zeros_with_tracers(mesh, 0)
    }

    /// Zero-initialized tendencies with `n_tracers` tracer fields.
    pub fn zeros_with_tracers(mesh: &Mesh, n_tracers: usize) -> Self {
        Tendencies {
            tend_h: vec![0.0; mesh.n_cells()],
            tend_u: vec![0.0; mesh.n_edges()],
            tend_tracers: vec![vec![0.0; mesh.n_cells()]; n_tracers],
        }
    }

    /// Grow/shrink the tracer block to `n` zeroed fields of `n_cells`.
    pub fn resize_tracers(&mut self, n_cells: usize, n: usize) {
        self.tend_tracers.resize_with(n, || vec![0.0; n_cells]);
        for t in &mut self.tend_tracers {
            t.resize(n_cells, 0.0);
        }
    }
}

/// Output of `mpas_reconstruct`: Cartesian and zonal/meridional velocity at
/// cell centers.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// Cartesian x component at cells.
    pub ux: Vec<f64>,
    /// Cartesian y component at cells.
    pub uy: Vec<f64>,
    /// Cartesian z component at cells.
    pub uz: Vec<f64>,
    /// Zonal (eastward) component at cells.
    pub zonal: Vec<f64>,
    /// Meridional (northward) component at cells.
    pub meridional: Vec<f64>,
}

impl Reconstruction {
    /// Zero-initialized reconstruction sized for a mesh.
    pub fn zeros(mesh: &Mesh) -> Self {
        let nc = mesh.n_cells();
        Reconstruction {
            ux: vec![0.0; nc],
            uy: vec![0.0; nc],
            uz: vec![0.0; nc],
            zonal: vec![0.0; nc],
            meridional: vec![0.0; nc],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_mesh() {
        let mesh = mpas_mesh::generate(2, 0);
        let s = State::zeros(&mesh);
        assert_eq!(s.h.len(), mesh.n_cells());
        assert_eq!(s.u.len(), mesh.n_edges());
        let d = Diagnostics::zeros(&mesh);
        assert_eq!(d.vorticity.len(), mesh.n_vertices());
        assert_eq!(d.pv_edge.len(), mesh.n_edges());
        let r = Reconstruction::zeros(&mesh);
        assert_eq!(r.zonal.len(), mesh.n_cells());
    }

    #[test]
    fn max_abs_diff_and_copy() {
        let mesh = mpas_mesh::generate(1, 0);
        let mut a = State::zeros(&mesh);
        let mut b = State::zeros(&mesh);
        a.h[3] = 2.5;
        a.u[7] = -1.0;
        assert_eq!(a.max_abs_diff(&b), 2.5);
        b.copy_from(&a);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
