//! Range-based pattern-instance operators (gather / regularity-aware form).
//!
//! One function per Table-I instance. **Output convention:** the `out`
//! slice covers exactly the requested range (`out[k - range.start]` is the
//! value at global index `k`); inputs are always full-length arrays indexed
//! globally. Each call therefore touches only its own output chunk — the
//! regularity-aware property (Alg. 3) that lets executors hand disjoint
//! `&mut` chunks of one field to any number of threads or simulated
//! devices with no aliasing.

use crate::config::ModelConfig;
use crate::reconstruct::ReconstructCoeffs;
use mpas_geom::to_zonal_meridional;
use mpas_mesh::Mesh;
use std::ops::Range;

/// A1 — thickness tendency: `tend_h(i) = −(1/A_i) Σ_e s_ie u_e h_edge_e l_e`.
pub fn tend_h(mesh: &Mesh, u: &[f64], h_edge: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let range = mesh.cell_range(i);
        let mut acc = 0.0;
        for slot in range {
            let e = mesh.edges_on_cell[slot] as usize;
            let s = mesh.edge_sign_on_cell[slot] as f64;
            acc += s * u[e] * h_edge[e] * mesh.dv_edge[e];
        }
        out[i - off] = -acc / mesh.area_cell[i];
    }
}

/// T1 — tracer-mass tendency (flux-form advection):
/// `tend_hq(i) = −(1/A_i) Σ_e s_ie u_e h_edge_e q_edge_e l_e` with the
/// centered edge mixing ratio `q_edge = ½(hq₁/h₁ + hq₂/h₂)`.
///
/// The per-edge flux enters its two cells with exactly opposite sign
/// (multiplying by `s = ±1` is exact in IEEE-754), so total tracer mass
/// `Σ A_i hq_i` telescopes to rounding — the same conservation argument as
/// A1. `h` and `hq` are the *same-stage* cell fields that produced
/// `h_edge`.
pub fn tend_tracer(
    mesh: &Mesh,
    u: &[f64],
    h_edge: &[f64],
    h: &[f64],
    hq: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            let s = mesh.edge_sign_on_cell[slot] as f64;
            let [c1, c2] = mesh.cells_on_edge[e];
            let q_edge =
                0.5 * (hq[c1 as usize] / h[c1 as usize] + hq[c2 as usize] / h[c2 as usize]);
            acc += s * u[e] * h_edge[e] * mesh.dv_edge[e] * q_edge;
        }
        out[i - off] = -acc / mesh.area_cell[i];
    }
}

/// B1 — momentum tendency: TRiSK Coriolis/advection flux plus the gradient
/// of the Bernoulli function `K + g (h + b)`.
#[allow(clippy::too_many_arguments)]
pub fn tend_u(
    mesh: &Mesh,
    gravity: f64,
    pv_edge: &[f64],
    u: &[f64],
    h_edge: &[f64],
    ke: &[f64],
    h: &[f64],
    b: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let (c1, c2) = (c1 as usize, c2 as usize);
        let mut q = 0.0;
        for slot in mesh.eoe_range(e) {
            let eoe = mesh.edges_on_edge[slot] as usize;
            let w = mesh.weights_on_edge[slot];
            let workpv = 0.5 * (pv_edge[e] + pv_edge[eoe]);
            q += w * u[eoe] * h_edge[eoe] * workpv;
        }
        let grad = (ke[c2] - ke[c1] + gravity * (h[c2] + b[c2] - h[c1] - b[c1])) / mesh.dc_edge[e];
        out[e - off] = q - grad;
    }
}

/// C1 — del2 momentum dissipation:
/// `tend_u += ν [ (δ div)/dc − (δ ζ)/dv ]` (vector Laplacian in div/curl
/// form on the C-grid). Read-modify-write on `tend_u`.
pub fn tend_u_del2(
    mesh: &Mesh,
    nu: f64,
    divergence: &[f64],
    vorticity: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = (divergence[c2 as usize] - divergence[c1 as usize]) / mesh.dc_edge[e];
        let z = (vorticity[v2 as usize] - vorticity[v1 as usize]) / mesh.dv_edge[e];
        out[e - off] += nu * (d - z);
    }
}

/// C1 (chained) — the vector Laplacian of `u` in div/curl form, the inner
/// stage of the del4 hyperviscosity: `lap_u(e) = (δ div)/dc − (δ ζ)/dv`.
pub fn lap_u(
    mesh: &Mesh,
    divergence: &[f64],
    vorticity: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = (divergence[c2 as usize] - divergence[c1 as usize]) / mesh.dc_edge[e];
        let z = (vorticity[v2 as usize] - vorticity[v1 as usize]) / mesh.dv_edge[e];
        out[e - off] = d - z;
    }
}

/// C1 (chained) — apply the outer del4 stage:
/// `tend_u -= ν₄ [ (δ div_lap)/dc − (δ ζ_lap)/dv ]` where `div_lap`/`ζ_lap`
/// are the divergence and curl of the inner Laplacian. Read-modify-write.
pub fn tend_u_del4(
    mesh: &Mesh,
    nu4: f64,
    div_lap: &[f64],
    vort_lap: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = (div_lap[c2 as usize] - div_lap[c1 as usize]) / mesh.dc_edge[e];
        let z = (vort_lap[v2 as usize] - vort_lap[v1 as usize]) / mesh.dv_edge[e];
        out[e - off] -= nu4 * (d - z);
    }
}

/// X1 — boundary enforcement: zero the tendency on masked edges.
pub fn enforce_boundary(mesh: &Mesh, tend_u: &mut [f64], edges: Range<usize>) {
    let off = edges.start;
    for e in edges {
        if mesh.boundary_edge[e] {
            tend_u[e - off] = 0.0;
        }
    }
}

/// X2/X3 — provisional state: `out = base + coef·tend`.
pub fn axpy(base: &[f64], tend: &[f64], coef: f64, out: &mut [f64], range: Range<usize>) {
    let off = range.start;
    for k in range {
        out[k - off] = base[k] + coef * tend[k];
    }
}

/// X4/X5 — accumulation: `acc += weight·tend`.
pub fn accumulate(tend: &[f64], weight: f64, acc: &mut [f64], range: Range<usize>) {
    let off = range.start;
    for k in range {
        acc[k - off] += weight * tend[k];
    }
}

/// D1/D2 — second-derivative blend terms at each edge's two cells: the
/// finite-volume Laplacian of `h` evaluated at cell 1 and cell 2.
///
/// MPAS fits a quadratic (`deriv_two`); the cell Laplacian gives the same
/// O(dc²) correction on quasi-uniform meshes with a 7-point stencil of the
/// same shape (DESIGN.md §5 documents the substitution).
pub fn d2fdx2(mesh: &Mesh, h: &[f64], out1: &mut [f64], out2: &mut [f64], edges: Range<usize>) {
    let lap = |c: usize| -> f64 {
        let mut acc = 0.0;
        for slot in mesh.cell_range(c) {
            let e = mesh.edges_on_cell[slot] as usize;
            let nb = mesh.cells_on_cell[slot] as usize;
            acc += (h[nb] - h[c]) / mesh.dc_edge[e] * mesh.dv_edge[e];
        }
        acc / mesh.area_cell[c]
    };
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        out1[e - off] = lap(c1 as usize);
        out2[e - off] = lap(c2 as usize);
    }
}

/// H2 — thickness at edges: mid-edge average, optionally blended with the
/// D1/D2 second-derivative terms for higher-order accuracy.
pub fn h_edge(
    mesh: &Mesh,
    config: &ModelConfig,
    h: &[f64],
    d2fdx2_cell1: &[f64],
    d2fdx2_cell2: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    if config.high_order_h_edge {
        let off = edges.start;
        for e in edges {
            let [c1, c2] = mesh.cells_on_edge[e];
            let dc2 = mesh.dc_edge[e] * mesh.dc_edge[e];
            out[e - off] = 0.5 * (h[c1 as usize] + h[c2 as usize])
                - dc2 / 12.0 * 0.5 * (d2fdx2_cell1[e] + d2fdx2_cell2[e]);
        }
    } else {
        let off = edges.start;
        for e in edges {
            let [c1, c2] = mesh.cells_on_edge[e];
            out[e - off] = 0.5 * (h[c1 as usize] + h[c2 as usize]);
        }
    }
}

/// C2 — relative vorticity at vertices: circulation around the dual
/// triangle over its area.
pub fn vorticity(mesh: &Mesh, u: &[f64], out: &mut [f64], vertices: Range<usize>) {
    let off = vertices.start;
    for v in vertices {
        let mut circ = 0.0;
        for k in 0..3 {
            let e = mesh.edges_on_vertex[v][k] as usize;
            circ += mesh.edge_sign_on_vertex[v][k] as f64 * u[e] * mesh.dc_edge[e];
        }
        out[v - off] = circ / mesh.area_triangle[v];
    }
}

/// A2 — kinetic energy at cells: `ke_i = Σ_e ¼ dc_e dv_e u_e² / A_i`.
pub fn ke(mesh: &Mesh, u: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            acc += 0.25 * mesh.dc_edge[e] * mesh.dv_edge[e] * u[e] * u[e];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// B2 — velocity divergence at cells.
pub fn divergence(mesh: &Mesh, u: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            acc += mesh.edge_sign_on_cell[slot] as f64 * u[e] * mesh.dv_edge[e];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// H1 — tangential velocity by the TRiSK reconstruction.
pub fn tangential_velocity(mesh: &Mesh, u: &[f64], out: &mut [f64], edges: Range<usize>) {
    let off = edges.start;
    for e in edges {
        let mut acc = 0.0;
        for slot in mesh.eoe_range(e) {
            acc += mesh.weights_on_edge[slot] * u[mesh.edges_on_edge[slot] as usize];
        }
        out[e - off] = acc;
    }
}

/// A3 — relative vorticity at cells: kite-area average of the vertex
/// vorticity (the same interpolation MPAS uses for `pv_cell`).
pub fn vorticity_cell(mesh: &Mesh, vorticity: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let v = mesh.vertices_on_cell[slot] as usize;
            let kslot = mesh.cells_on_vertex[v]
                .iter()
                .position(|&c| c as usize == i)
                .expect("vertex/cell inconsistency");
            acc += mesh.kite_areas_on_vertex[v][kslot] * vorticity[v];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// E — potential vorticity at vertices: `(f_v + ζ_v) / h_v` with the
/// thickness interpolated by kite areas.
pub fn pv_vertex(
    mesh: &Mesh,
    h: &[f64],
    vorticity: &[f64],
    f_vertex: &[f64],
    out: &mut [f64],
    vertices: Range<usize>,
) {
    let off = vertices.start;
    for v in vertices {
        let mut hv = 0.0;
        for k in 0..3 {
            hv += mesh.kite_areas_on_vertex[v][k] * h[mesh.cells_on_vertex[v][k] as usize];
        }
        hv /= mesh.area_triangle[v];
        out[v - off] = (f_vertex[v] + vorticity[v]) / hv;
    }
}

/// F — potential vorticity at cells: kite-area average of the vertex PV.
pub fn pv_cell(mesh: &Mesh, pv_vertex: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let v = mesh.vertices_on_cell[slot] as usize;
            let kslot = mesh.cells_on_vertex[v]
                .iter()
                .position(|&c| c as usize == i)
                .expect("vertex/cell inconsistency");
            acc += mesh.kite_areas_on_vertex[v][kslot] * pv_vertex[v];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// G — potential vorticity at edges with APVM upwinding:
/// `q_e = ½(q_v1 + q_v2) − ½·apvm·dt·(u ∂q/∂n + v ∂q/∂t)`.
#[allow(clippy::too_many_arguments)]
pub fn pv_edge(
    mesh: &Mesh,
    apvm_factor: f64,
    dt: f64,
    pv_vertex: &[f64],
    pv_cell: &[f64],
    u: &[f64],
    v: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [v1, v2] = mesh.vertices_on_edge[e];
        let [c1, c2] = mesh.cells_on_edge[e];
        let base = 0.5 * (pv_vertex[v1 as usize] + pv_vertex[v2 as usize]);
        let grad_t = (pv_vertex[v2 as usize] - pv_vertex[v1 as usize]) / mesh.dv_edge[e];
        let grad_n = (pv_cell[c2 as usize] - pv_cell[c1 as usize]) / mesh.dc_edge[e];
        out[e - off] = base - apvm_factor * dt * (u[e] * grad_n + v[e] * grad_t);
    }
}

/// A4 — least-squares velocity reconstruction at cell centers.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_xyz(
    mesh: &Mesh,
    coeffs: &ReconstructCoeffs,
    u: &[f64],
    ux: &mut [f64],
    uy: &mut [f64],
    uz: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let mut v = mpas_geom::Vec3::ZERO;
        for slot in mesh.cell_range(i) {
            v += coeffs.coeffs[slot] * u[mesh.edges_on_cell[slot] as usize];
        }
        ux[i - off] = v.x;
        uy[i - off] = v.y;
        uz[i - off] = v.z;
    }
}

/// X6 — rotate the Cartesian reconstruction into zonal/meridional
/// components.
pub fn zonal_meridional(
    mesh: &Mesh,
    ux: &[f64],
    uy: &[f64],
    uz: &[f64],
    zonal: &mut [f64],
    meridional: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let v = mpas_geom::Vec3::new(ux[i], uy[i], uz[i]);
        let (z, m) = to_zonal_meridional(mesh.x_cell[i], v);
        zonal[i - off] = z;
        meridional[i - off] = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_of_discrete_gradient_is_laplacian_sign() {
        // For u = ∇φ with φ = z (height), div u ≈ surface Laplacian of z,
        // which is −2z/R² on the unit sphere scaled — just check sign
        // structure: positive divergence where z < 0, negative where z > 0.
        let mesh = mpas_mesh::generate(3, 0);
        let phi: Vec<f64> = (0..mesh.n_cells())
            .map(|i| mesh.x_cell[i].z * 1e6)
            .collect();
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| {
                let [c1, c2] = mesh.cells_on_edge[e];
                (phi[c2 as usize] - phi[c1 as usize]) / mesh.dc_edge[e]
            })
            .collect();
        let mut div = vec![0.0; mesh.n_cells()];
        divergence(&mesh, &u, &mut div, 0..mesh.n_cells());
        for (i, &d) in div.iter().enumerate() {
            let z = mesh.x_cell[i].z;
            if z > 0.3 {
                assert!(d < 0.0, "cell {i}: div {d} at z {z}");
            }
            if z < -0.3 {
                assert!(d > 0.0, "cell {i}");
            }
        }
    }

    #[test]
    fn vorticity_of_solid_body_rotation_is_uniform() {
        // u = Ω'×r has curl 2Ω' (vertical component 2Ω'·r̂ on the sphere).
        let mesh = mpas_mesh::generate(4, 0);
        let om = 1e-5;
        let omega = mpas_geom::Vec3::Z * om;
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| {
                omega
                    .cross(mesh.x_edge[e] * mesh.sphere_radius)
                    .dot(mesh.normal_edge[e])
            })
            .collect();
        let mut vort = vec![0.0; mesh.n_vertices()];
        vorticity(&mesh, &u, &mut vort, 0..mesh.n_vertices());
        for (v, &z) in vort.iter().enumerate() {
            let expect = 2.0 * om * mesh.x_vertex[v].z;
            assert!(
                (z - expect).abs() < 0.02 * om.abs().max(expect.abs()),
                "vertex {v}: {z} vs {expect}"
            );
        }
    }

    #[test]
    fn vorticity_cell_matches_vertex_vorticity_for_solid_body() {
        let mesh = mpas_mesh::generate(4, 0);
        let om = 1e-5;
        let omega = mpas_geom::Vec3::Z * om;
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| {
                omega
                    .cross(mesh.x_edge[e] * mesh.sphere_radius)
                    .dot(mesh.normal_edge[e])
            })
            .collect();
        let mut vort = vec![0.0; mesh.n_vertices()];
        vorticity(&mesh, &u, &mut vort, 0..mesh.n_vertices());
        let mut vc = vec![0.0; mesh.n_cells()];
        vorticity_cell(&mesh, &vort, &mut vc, 0..mesh.n_cells());
        for (i, &z) in vc.iter().enumerate() {
            let expect = 2.0 * om * mesh.x_cell[i].z;
            // Pentagon cells carry the largest interpolation error.
            assert!((z - expect).abs() < 0.1 * om, "cell {i}: {z} vs {expect}");
        }
    }

    #[test]
    fn pv_vertex_reduces_to_f_over_h_at_rest() {
        let mesh = mpas_mesh::generate(2, 0);
        let h = vec![2000.0; mesh.n_cells()];
        let vort = vec![0.0; mesh.n_vertices()];
        let f: Vec<f64> = (0..mesh.n_vertices())
            .map(|v| 2.0 * mpas_geom::OMEGA * mesh.x_vertex[v].z)
            .collect();
        let mut pv = vec![0.0; mesh.n_vertices()];
        pv_vertex(&mesh, &h, &vort, &f, &mut pv, 0..mesh.n_vertices());
        for v in 0..mesh.n_vertices() {
            assert!((pv[v] - f[v] / 2000.0).abs() < 1e-18);
        }
    }

    #[test]
    fn pv_cell_preserves_constant_fields() {
        // Kite-area weights sum to the cell area, so a constant PV field
        // interpolates to exactly the same constant.
        let mesh = mpas_mesh::generate(3, 0);
        let pv = vec![3.25e-8; mesh.n_vertices()];
        let mut out = vec![0.0; mesh.n_cells()];
        pv_cell(&mesh, &pv, &mut out, 0..mesh.n_cells());
        for &o in &out {
            assert!((o - 3.25e-8).abs() < 1e-14 * 3.25e-8 + 1e-20);
        }
    }

    #[test]
    fn apvm_disabled_gives_plain_average() {
        let mesh = mpas_mesh::generate(2, 0);
        let pv_v: Vec<f64> = (0..mesh.n_vertices()).map(|v| (v as f64).sin()).collect();
        let pv_c = vec![0.0; mesh.n_cells()];
        let u = vec![10.0; mesh.n_edges()];
        let v = vec![5.0; mesh.n_edges()];
        let mut out = vec![0.0; mesh.n_edges()];
        pv_edge(
            &mesh,
            0.0,
            300.0,
            &pv_v,
            &pv_c,
            &u,
            &v,
            &mut out,
            0..mesh.n_edges(),
        );
        for (e, &o) in out.iter().enumerate() {
            let [v1, v2] = mesh.vertices_on_edge[e];
            let expect = 0.5 * (pv_v[v1 as usize] + pv_v[v2 as usize]);
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn range_splitting_is_exact() {
        // Any op computed in two chunks equals the full-range result.
        let mesh = mpas_mesh::generate(2, 0);
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| (e as f64 * 0.31).sin())
            .collect();
        let mut full = vec![0.0; mesh.n_cells()];
        ke(&mesh, &u, &mut full, 0..mesh.n_cells());
        let mut split = vec![0.0; mesh.n_cells()];
        let mid = mesh.n_cells() / 2;
        let n = mesh.n_cells();
        let (lo, hi) = split.split_at_mut(mid);
        ke(&mesh, &u, lo, 0..mid);
        ke(&mesh, &u, hi, mid..n);
        assert_eq!(full, split);
    }
}
