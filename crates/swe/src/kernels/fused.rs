//! Fused-coefficient forms of the Table-I operators.
//!
//! Each function mirrors its namesake in [`super::ops`] — same output-range
//! convention (`out[k - range.start]` is the value at global `k`), same
//! stencil, same results within the rounding contract documented in
//! [`crate::coeffs`] — but reads the precomputed [`KernelCoeffs`] tables
//! instead of re-deriving geometric factors per call. The win is fewer
//! indirect gathers (one contiguous coefficient stream replaces two or
//! three `mesh.*[e]` lookups), no per-slot `position()` search in the
//! kite-area interpolations, and no divisions inside edge loops.
//!
//! Ops with nothing to fuse (H1, E, A4, X1–X6) have no fused form; the
//! drivers in [`crate::kernels`] call the seed versions for those.

use super::ops;
use crate::coeffs::KernelCoeffs;
use crate::config::ModelConfig;
use mpas_mesh::Mesh;
use std::ops::Range;

/// A1 — thickness tendency with the signed face length `s·dv` fused.
pub fn tend_h(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    h_edge: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            acc += kc.flux_div[slot] * u[e] * h_edge[e];
        }
        out[i - off] = -acc / mesh.area_cell[i];
    }
}

/// T1 — tracer-mass tendency with `½·s·dv` fused into one weight.
///
/// The halving is exact, but hoisting it ahead of the `u·h_edge` products
/// reassociates the chain (`s·u·h·dv·½(a+b)` → `(½s·dv)·u·h·(a+b)`), a
/// 1-ulp-class fusion like A1's — inside the documented 1e-12 budget. The
/// `±` antisymmetry of each edge's two contributions is preserved exactly,
/// so conservation matches the seed form.
#[allow(clippy::too_many_arguments)]
pub fn tend_tracer(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    h_edge: &[f64],
    h: &[f64],
    hq: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            let [c1, c2] = mesh.cells_on_edge[e];
            let q2 = hq[c1 as usize] / h[c1 as usize] + hq[c2 as usize] / h[c2 as usize];
            acc += kc.half_flux_div[slot] * u[e] * h_edge[e] * q2;
        }
        out[i - off] = -acc / mesh.area_cell[i];
    }
}

/// B2 — velocity divergence with `s·dv` fused.
pub fn divergence(mesh: &Mesh, kc: &KernelCoeffs, u: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            acc += kc.flux_div[slot] * u[e];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// A2 — kinetic energy with the quadrature weight `¼·dc·dv` fused.
pub fn ke(mesh: &Mesh, kc: &KernelCoeffs, u: &[f64], out: &mut [f64], cells: Range<usize>) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let e = mesh.edges_on_cell[slot] as usize;
            acc += kc.ke_weight[slot] * u[e] * u[e];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// C2 — vertex vorticity with the signed circulation length `s·dc` fused
/// (bit-identical to the seed op: the sign flip is exact and `u·dc`
/// commutes).
pub fn vorticity(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    out: &mut [f64],
    vertices: Range<usize>,
) {
    let off = vertices.start;
    for v in vertices {
        let mut circ = 0.0;
        for k in 0..3 {
            let e = mesh.edges_on_vertex[v][k] as usize;
            circ += kc.vort_sign_dc[v][k] * u[e];
        }
        out[v - off] = circ / mesh.area_triangle[v];
    }
}

/// A3 — cell vorticity via the precomputed per-slot kite area
/// (bit-identical to the seed op; only the 3-way search is eliminated).
pub fn vorticity_cell(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    vorticity: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let v = mesh.vertices_on_cell[slot] as usize;
            acc += kc.kite_cell[slot] * vorticity[v];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// F — cell PV via the precomputed per-slot kite area (bit-identical to the
/// seed op; only the 3-way search is eliminated).
pub fn pv_cell(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    pv_vertex: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    let off = cells.start;
    for i in cells {
        let mut acc = 0.0;
        for slot in mesh.cell_range(i) {
            let v = mesh.vertices_on_cell[slot] as usize;
            acc += kc.kite_cell[slot] * pv_vertex[v];
        }
        out[i - off] = acc / mesh.area_cell[i];
    }
}

/// G — edge PV with the APVM gradients taking `1/dv`, `1/dc` as
/// multiplications.
#[allow(clippy::too_many_arguments)]
pub fn pv_edge(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    apvm_factor: f64,
    dt: f64,
    pv_vertex: &[f64],
    pv_cell: &[f64],
    u: &[f64],
    v: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [v1, v2] = mesh.vertices_on_edge[e];
        let [c1, c2] = mesh.cells_on_edge[e];
        let base = 0.5 * (pv_vertex[v1 as usize] + pv_vertex[v2 as usize]);
        let grad_t = (pv_vertex[v2 as usize] - pv_vertex[v1 as usize]) * kc.inv_dv[e];
        let grad_n = (pv_cell[c2 as usize] - pv_cell[c1 as usize]) * kc.inv_dc[e];
        out[e - off] = base - apvm_factor * dt * (u[e] * grad_n + v[e] * grad_t);
    }
}

/// B1 — momentum tendency with the halved TRiSK weight `½·w` and the
/// Bernoulli gradient's `1/dc` fused.
#[allow(clippy::too_many_arguments)]
pub fn tend_u(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    gravity: f64,
    pv_edge: &[f64],
    u: &[f64],
    h_edge: &[f64],
    ke: &[f64],
    h: &[f64],
    b: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let (c1, c2) = (c1 as usize, c2 as usize);
        let mut q = 0.0;
        for slot in mesh.eoe_range(e) {
            let eoe = mesh.edges_on_edge[slot] as usize;
            q += kc.half_weights[slot] * u[eoe] * h_edge[eoe] * (pv_edge[e] + pv_edge[eoe]);
        }
        let grad = (ke[c2] - ke[c1] + gravity * (h[c2] + b[c2] - h[c1] - b[c1])) * kc.inv_dc[e];
        out[e - off] = q - grad;
    }
}

/// C1 — del2 dissipation with `1/dc`, `1/dv` fused. Read-modify-write.
pub fn tend_u_del2(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    nu: f64,
    divergence: &[f64],
    vorticity: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = (divergence[c2 as usize] - divergence[c1 as usize]) * kc.inv_dc[e];
        let z = (vorticity[v2 as usize] - vorticity[v1 as usize]) * kc.inv_dv[e];
        out[e - off] += nu * (d - z);
    }
}

/// C1 (chained) — inner vector Laplacian with `1/dc`, `1/dv` fused.
pub fn lap_u(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    divergence: &[f64],
    vorticity: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = (divergence[c2 as usize] - divergence[c1 as usize]) * kc.inv_dc[e];
        let z = (vorticity[v2 as usize] - vorticity[v1 as usize]) * kc.inv_dv[e];
        out[e - off] = d - z;
    }
}

/// C1 (chained) — outer del4 stage with `1/dc`, `1/dv` fused.
/// Read-modify-write.
pub fn tend_u_del4(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    nu4: f64,
    div_lap: &[f64],
    vort_lap: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = (div_lap[c2 as usize] - div_lap[c1 as usize]) * kc.inv_dc[e];
        let z = (vort_lap[v2 as usize] - vort_lap[v1 as usize]) * kc.inv_dv[e];
        out[e - off] -= nu4 * (d - z);
    }
}

/// D1/D2 — second-derivative blend terms with the cell-Laplacian flux ratio
/// `dv/dc` fused per slot.
pub fn d2fdx2(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    h: &[f64],
    out1: &mut [f64],
    out2: &mut [f64],
    edges: Range<usize>,
) {
    let lap = |c: usize| -> f64 {
        let mut acc = 0.0;
        for slot in mesh.cell_range(c) {
            let nb = mesh.cells_on_cell[slot] as usize;
            acc += (h[nb] - h[c]) * kc.grad_ratio[slot];
        }
        acc / mesh.area_cell[c]
    };
    let off = edges.start;
    for e in edges {
        let [c1, c2] = mesh.cells_on_edge[e];
        out1[e - off] = lap(c1 as usize);
        out2[e - off] = lap(c2 as usize);
    }
}

/// H2 — thickness at edges; the high-order branch reads the precomputed
/// `dc²/12` (bit-identical to the seed op), the low-order branch is the
/// seed mid-edge average unchanged.
#[allow(clippy::too_many_arguments)]
pub fn h_edge(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    config: &ModelConfig,
    h: &[f64],
    d2fdx2_cell1: &[f64],
    d2fdx2_cell2: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    if config.high_order_h_edge {
        let off = edges.start;
        for e in edges {
            let [c1, c2] = mesh.cells_on_edge[e];
            out[e - off] = 0.5 * (h[c1 as usize] + h[c2 as usize])
                - kc.dc2_12[e] * 0.5 * (d2fdx2_cell1[e] + d2fdx2_cell2[e]);
        }
    } else {
        ops::h_edge(mesh, config, h, d2fdx2_cell1, d2fdx2_cell2, out, edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::KernelCoeffs;

    fn setup() -> (Mesh, KernelCoeffs, Vec<f64>, Vec<f64>) {
        let mesh = mpas_mesh::generate(3, 0);
        let kc = KernelCoeffs::build(&mesh, &ModelConfig::default());
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| (e as f64 * 0.37).sin())
            .collect();
        let h_edge: Vec<f64> = (0..mesh.n_edges())
            .map(|e| 1000.0 + (e as f64 * 0.11).cos())
            .collect();
        (mesh, kc, u, h_edge)
    }

    #[test]
    fn exact_fusions_are_bit_identical() {
        // C2, A3 and F fuse only sign flips and hoisted gathers, so the
        // fused forms must agree with the seed ops bit for bit.
        let (mesh, kc, u, _) = setup();
        let (nv, nc) = (mesh.n_vertices(), mesh.n_cells());
        let mut seed_v = vec![0.0; nv];
        let mut fused_v = vec![0.0; nv];
        ops::vorticity(&mesh, &u, &mut seed_v, 0..nv);
        vorticity(&mesh, &kc, &u, &mut fused_v, 0..nv);
        assert_eq!(seed_v, fused_v);

        let mut seed_c = vec![0.0; nc];
        let mut fused_c = vec![0.0; nc];
        ops::vorticity_cell(&mesh, &seed_v, &mut seed_c, 0..nc);
        vorticity_cell(&mesh, &kc, &seed_v, &mut fused_c, 0..nc);
        assert_eq!(seed_c, fused_c);

        ops::pv_cell(&mesh, &seed_v, &mut seed_c, 0..nc);
        pv_cell(&mesh, &kc, &seed_v, &mut fused_c, 0..nc);
        assert_eq!(seed_c, fused_c);
    }

    #[test]
    fn reassociated_fusions_stay_within_drift_budget() {
        let (mesh, kc, u, h_edge) = setup();
        let nc = mesh.n_cells();
        let mut seed = vec![0.0; nc];
        let mut fused = vec![0.0; nc];
        ops::tend_h(&mesh, &u, &h_edge, &mut seed, 0..nc);
        tend_h(&mesh, &kc, &u, &h_edge, &mut fused, 0..nc);
        for i in 0..nc {
            let scale = seed[i].abs().max(1e-30);
            assert!(
                ((seed[i] - fused[i]) / scale).abs() < 1e-12,
                "cell {i}: {} vs {}",
                seed[i],
                fused[i]
            );
        }
    }

    #[test]
    fn fused_range_splitting_is_exact() {
        // The range convention survives fusion: two chunks equal the full
        // range bit for bit.
        let (mesh, kc, u, _) = setup();
        let nc = mesh.n_cells();
        let mut full = vec![0.0; nc];
        ke(&mesh, &kc, &u, &mut full, 0..nc);
        let mut split = vec![0.0; nc];
        let mid = nc / 2;
        let (lo, hi) = split.split_at_mut(mid);
        ke(&mesh, &kc, &u, lo, 0..mid);
        ke(&mesh, &kc, &u, hi, mid..nc);
        assert_eq!(full, split);
    }
}
