//! The six kernels of Algorithm 1.
//!
//! Each Table-I pattern instance is a free function in [`ops`] taking an
//! explicit output **range**, so the hybrid executors can slice one pattern
//! across devices (the paper's "adjustable part"). The functions here drive
//! the full-range serial composition used by the reference model and by
//! correctness tests.
//!
//! [`scatter`] holds the original edge-order (irregular-reduction) forms of
//! the class-A/C reductions — the Fig. 6 "Baseline"/naive-OpenMP story.
//! [`fused`] holds the precomputed-coefficient fast path driven by
//! [`crate::coeffs::KernelCoeffs`]; the `*_fused` drivers below compose it
//! into the same Algorithm 1 call sequence. [`simd`] is the third tier
//! (DESIGN.md §14): the fused arithmetic replayed per vertical-layer lane
//! with explicit SIMD inner loops — at one layer it is bit-identical to
//! the fused tier, which is how [`dispatch`] can offer it to every
//! executor behind [`crate::config::KernelBackend`].
//!
//! The `*_backend` drivers select a whole kernel sequence by backend; the
//! [`dispatch`] module selects per kernel and per range (what the
//! threaded/hybrid executors slice across workers).

pub mod dispatch;
pub mod fused;
pub mod ops;
pub mod scatter;
pub mod simd;

use crate::coeffs::KernelCoeffs;
use crate::config::{KernelBackend, ModelConfig};
use crate::reconstruct::ReconstructCoeffs;
use crate::state::{Diagnostics, Reconstruction, State, Tendencies};
use mpas_mesh::Mesh;

/// `compute_solve_diagnostics`: refresh every diagnostic field from the
/// prognostic pair `(h, u)`. `dt` enters only through the APVM upwinding of
/// `pv_edge`.
pub fn compute_solve_diagnostics(
    mesh: &Mesh,
    config: &ModelConfig,
    h: &[f64],
    u: &[f64],
    f_vertex: &[f64],
    dt: f64,
    diag: &mut Diagnostics,
) {
    let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
    if config.high_order_h_edge {
        ops::d2fdx2(
            mesh,
            h,
            &mut diag.d2fdx2_cell1,
            &mut diag.d2fdx2_cell2,
            0..ne,
        );
    }
    if config.advection_only {
        // Williamson TC1: only the thickness flux is needed; the PV chain
        // would divide by the (possibly zero) tracer thickness.
        ops::h_edge(
            mesh,
            config,
            h,
            &diag.d2fdx2_cell1,
            &diag.d2fdx2_cell2,
            &mut diag.h_edge,
            0..ne,
        );
        return;
    }
    ops::h_edge(
        mesh,
        config,
        h,
        &diag.d2fdx2_cell1,
        &diag.d2fdx2_cell2,
        &mut diag.h_edge,
        0..ne,
    );
    ops::vorticity(mesh, u, &mut diag.vorticity, 0..nv);
    ops::ke(mesh, u, &mut diag.ke, 0..nc);
    ops::divergence(mesh, u, &mut diag.divergence, 0..nc);
    ops::tangential_velocity(mesh, u, &mut diag.v, 0..ne);
    ops::vorticity_cell(mesh, &diag.vorticity, &mut diag.vorticity_cell, 0..nc);
    ops::pv_vertex(
        mesh,
        h,
        &diag.vorticity,
        f_vertex,
        &mut diag.pv_vertex,
        0..nv,
    );
    ops::pv_cell(mesh, &diag.pv_vertex, &mut diag.pv_cell, 0..nc);
    ops::pv_edge(
        mesh,
        config.apvm_factor,
        dt,
        &diag.pv_vertex,
        &diag.pv_cell,
        u,
        &diag.v,
        &mut diag.pv_edge,
        0..ne,
    );
}

/// [`compute_solve_diagnostics`] on the fused-coefficient fast path: the
/// same kernel sequence with every fusible op reading `kc` (H1 and E have
/// nothing to fuse and run the seed forms).
#[allow(clippy::too_many_arguments)]
pub fn compute_solve_diagnostics_fused(
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    h: &[f64],
    u: &[f64],
    f_vertex: &[f64],
    dt: f64,
    diag: &mut Diagnostics,
) {
    let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
    if config.high_order_h_edge {
        fused::d2fdx2(
            mesh,
            kc,
            h,
            &mut diag.d2fdx2_cell1,
            &mut diag.d2fdx2_cell2,
            0..ne,
        );
    }
    fused::h_edge(
        mesh,
        kc,
        config,
        h,
        &diag.d2fdx2_cell1,
        &diag.d2fdx2_cell2,
        &mut diag.h_edge,
        0..ne,
    );
    if config.advection_only {
        return;
    }
    fused::vorticity(mesh, kc, u, &mut diag.vorticity, 0..nv);
    fused::ke(mesh, kc, u, &mut diag.ke, 0..nc);
    fused::divergence(mesh, kc, u, &mut diag.divergence, 0..nc);
    ops::tangential_velocity(mesh, u, &mut diag.v, 0..ne);
    fused::vorticity_cell(mesh, kc, &diag.vorticity, &mut diag.vorticity_cell, 0..nc);
    ops::pv_vertex(
        mesh,
        h,
        &diag.vorticity,
        f_vertex,
        &mut diag.pv_vertex,
        0..nv,
    );
    fused::pv_cell(mesh, kc, &diag.pv_vertex, &mut diag.pv_cell, 0..nc);
    fused::pv_edge(
        mesh,
        kc,
        config.apvm_factor,
        dt,
        &diag.pv_vertex,
        &diag.pv_cell,
        u,
        &diag.v,
        &mut diag.pv_edge,
        0..ne,
    );
}

/// `compute_tend`: thickness and momentum tendencies from the current
/// provisional state and its diagnostics.
pub fn compute_tend(
    mesh: &Mesh,
    config: &ModelConfig,
    h: &[f64],
    u: &[f64],
    b: &[f64],
    diag: &Diagnostics,
    tend: &mut Tendencies,
) {
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
    ops::tend_h(mesh, u, &diag.h_edge, &mut tend.tend_h, 0..nc);
    if config.advection_only {
        tend.tend_u.fill(0.0);
        return;
    }
    ops::tend_u(
        mesh,
        config.gravity,
        &diag.pv_edge,
        u,
        &diag.h_edge,
        &diag.ke,
        h,
        b,
        &mut tend.tend_u,
        0..ne,
    );
    if config.del2_viscosity != 0.0 {
        ops::tend_u_del2(
            mesh,
            config.del2_viscosity,
            &diag.divergence,
            &diag.vorticity,
            &mut tend.tend_u,
            0..ne,
        );
    }
    if config.del4_viscosity != 0.0 {
        // Chained C1 application: lap(u) from the existing div/vorticity
        // diagnostics, then the divergence/curl of that Laplacian.
        let nv = mesh.n_vertices();
        let mut lap = vec![0.0; ne];
        ops::lap_u(mesh, &diag.divergence, &diag.vorticity, &mut lap, 0..ne);
        let mut div_lap = vec![0.0; nc];
        ops::divergence(mesh, &lap, &mut div_lap, 0..nc);
        let mut vort_lap = vec![0.0; nv];
        ops::vorticity(mesh, &lap, &mut vort_lap, 0..nv);
        ops::tend_u_del4(
            mesh,
            config.del4_viscosity,
            &div_lap,
            &vort_lap,
            &mut tend.tend_u,
            0..ne,
        );
    }
}

/// [`compute_tend`] on the fused-coefficient fast path.
#[allow(clippy::too_many_arguments)]
pub fn compute_tend_fused(
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    h: &[f64],
    u: &[f64],
    b: &[f64],
    diag: &Diagnostics,
    tend: &mut Tendencies,
) {
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
    fused::tend_h(mesh, kc, u, &diag.h_edge, &mut tend.tend_h, 0..nc);
    if config.advection_only {
        tend.tend_u.fill(0.0);
        return;
    }
    fused::tend_u(
        mesh,
        kc,
        config.gravity,
        &diag.pv_edge,
        u,
        &diag.h_edge,
        &diag.ke,
        h,
        b,
        &mut tend.tend_u,
        0..ne,
    );
    if config.del2_viscosity != 0.0 {
        fused::tend_u_del2(
            mesh,
            kc,
            config.del2_viscosity,
            &diag.divergence,
            &diag.vorticity,
            &mut tend.tend_u,
            0..ne,
        );
    }
    if config.del4_viscosity != 0.0 {
        let nv = mesh.n_vertices();
        let mut lap = vec![0.0; ne];
        fused::lap_u(mesh, kc, &diag.divergence, &diag.vorticity, &mut lap, 0..ne);
        let mut div_lap = vec![0.0; nc];
        fused::divergence(mesh, kc, &lap, &mut div_lap, 0..nc);
        let mut vort_lap = vec![0.0; nv];
        fused::vorticity(mesh, kc, &lap, &mut vort_lap, 0..nv);
        fused::tend_u_del4(
            mesh,
            kc,
            config.del4_viscosity,
            &div_lap,
            &vort_lap,
            &mut tend.tend_u,
            0..ne,
        );
    }
}

/// `compute_tend_tracers`: flux-form advection tendency (pattern T1) for
/// every tracer-mass field, from the same-stage `(h, u)` and its `h_edge`.
pub fn compute_tend_tracers(
    mesh: &Mesh,
    h: &[f64],
    u: &[f64],
    diag: &Diagnostics,
    tracers: &[Vec<f64>],
    tend: &mut Tendencies,
) {
    let nc = mesh.n_cells();
    for (hq, out) in tracers.iter().zip(tend.tend_tracers.iter_mut()) {
        ops::tend_tracer(mesh, u, &diag.h_edge, h, hq, out, 0..nc);
    }
}

/// [`compute_tend_tracers`] on the fused-coefficient fast path.
pub fn compute_tend_tracers_fused(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    h: &[f64],
    u: &[f64],
    diag: &Diagnostics,
    tracers: &[Vec<f64>],
    tend: &mut Tendencies,
) {
    let nc = mesh.n_cells();
    for (hq, out) in tracers.iter().zip(tend.tend_tracers.iter_mut()) {
        fused::tend_tracer(mesh, kc, u, &diag.h_edge, h, hq, out, 0..nc);
    }
}

/// [`compute_solve_diagnostics`] on the configured backend: the scalar
/// seed path, the fused-coefficient path, or the simd tier at one layer
/// (bit-identical to fused — DESIGN.md §14).
#[allow(clippy::too_many_arguments)]
pub fn compute_solve_diagnostics_backend(
    backend: KernelBackend,
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    h: &[f64],
    u: &[f64],
    f_vertex: &[f64],
    dt: f64,
    diag: &mut Diagnostics,
) {
    match backend {
        KernelBackend::Scalar => compute_solve_diagnostics(mesh, config, h, u, f_vertex, dt, diag),
        KernelBackend::Fused => {
            compute_solve_diagnostics_fused(mesh, config, kc, h, u, f_vertex, dt, diag)
        }
        KernelBackend::Simd => {
            let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
            if config.high_order_h_edge {
                simd::d2fdx2(
                    mesh,
                    kc,
                    1,
                    h,
                    &mut diag.d2fdx2_cell1,
                    &mut diag.d2fdx2_cell2,
                    0..ne,
                );
            }
            simd::h_edge(
                mesh,
                kc,
                config,
                1,
                h,
                &diag.d2fdx2_cell1,
                &diag.d2fdx2_cell2,
                &mut diag.h_edge,
                0..ne,
            );
            if config.advection_only {
                return;
            }
            // The fused sweeps (C2+E, A2+B2, H1+G) store exactly the bits
            // of the standalone kernels while sharing their gathers.
            simd::vorticity_pv(
                mesh,
                kc,
                1,
                u,
                h,
                f_vertex,
                &mut diag.vorticity,
                &mut diag.pv_vertex,
                0..nv,
            );
            simd::ke_divergence(mesh, kc, 1, u, &mut diag.ke, &mut diag.divergence, 0..nc);
            simd::kite_average(
                mesh,
                kc,
                1,
                &diag.vorticity,
                &mut diag.vorticity_cell,
                0..nc,
            );
            simd::kite_average(mesh, kc, 1, &diag.pv_vertex, &mut diag.pv_cell, 0..nc);
            simd::tangential_pv_edge(
                mesh,
                kc,
                1,
                config.apvm_factor,
                dt,
                &diag.pv_vertex,
                &diag.pv_cell,
                u,
                &mut diag.v,
                &mut diag.pv_edge,
                0..ne,
            );
        }
    }
}

/// [`compute_tend`] on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn compute_tend_backend(
    backend: KernelBackend,
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    h: &[f64],
    u: &[f64],
    b: &[f64],
    diag: &Diagnostics,
    tend: &mut Tendencies,
) {
    match backend {
        KernelBackend::Scalar => compute_tend(mesh, config, h, u, b, diag, tend),
        KernelBackend::Fused => compute_tend_fused(mesh, config, kc, h, u, b, diag, tend),
        KernelBackend::Simd => {
            let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
            simd::tend_h(mesh, kc, 1, u, &diag.h_edge, &mut tend.tend_h, 0..nc);
            if config.advection_only {
                tend.tend_u.fill(0.0);
                return;
            }
            simd::tend_u(
                mesh,
                kc,
                1,
                config.gravity,
                &diag.pv_edge,
                u,
                &diag.h_edge,
                &diag.ke,
                h,
                b,
                &mut tend.tend_u,
                0..ne,
            );
            if config.del2_viscosity != 0.0 {
                simd::tend_u_del2(
                    mesh,
                    kc,
                    1,
                    config.del2_viscosity,
                    &diag.divergence,
                    &diag.vorticity,
                    &mut tend.tend_u,
                    0..ne,
                );
            }
            if config.del4_viscosity != 0.0 {
                let nv = mesh.n_vertices();
                let mut lap = vec![0.0; ne];
                simd::lap_u(
                    mesh,
                    kc,
                    1,
                    &diag.divergence,
                    &diag.vorticity,
                    &mut lap,
                    0..ne,
                );
                let mut div_lap = vec![0.0; nc];
                simd::divergence(mesh, kc, 1, &lap, &mut div_lap, 0..nc);
                let mut vort_lap = vec![0.0; nv];
                simd::vorticity(mesh, kc, 1, &lap, &mut vort_lap, 0..nv);
                simd::tend_u_del4(
                    mesh,
                    kc,
                    1,
                    config.del4_viscosity,
                    &div_lap,
                    &vort_lap,
                    &mut tend.tend_u,
                    0..ne,
                );
            }
        }
    }
}

/// [`compute_tend_tracers`] on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn compute_tend_tracers_backend(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    h: &[f64],
    u: &[f64],
    diag: &Diagnostics,
    tracers: &[Vec<f64>],
    tend: &mut Tendencies,
) {
    match backend {
        KernelBackend::Scalar => compute_tend_tracers(mesh, h, u, diag, tracers, tend),
        KernelBackend::Fused => compute_tend_tracers_fused(mesh, kc, h, u, diag, tracers, tend),
        KernelBackend::Simd => {
            let nc = mesh.n_cells();
            for (hq, out) in tracers.iter().zip(tend.tend_tracers.iter_mut()) {
                simd::tend_tracer(mesh, kc, 1, u, &diag.h_edge, h, hq, out, 0..nc);
            }
        }
    }
}

/// `apply_forcing`: add a fixed forcing tendency to the stage tendencies
/// (`tend += 1.0·f`, pattern F1). Element-wise with an exact weight, so any
/// chunking of the output range reproduces the same bits.
pub fn apply_forcing(mesh: &Mesh, forcing: &Tendencies, tend: &mut Tendencies) {
    ops::accumulate(&forcing.tend_h, 1.0, &mut tend.tend_h, 0..mesh.n_cells());
    ops::accumulate(&forcing.tend_u, 1.0, &mut tend.tend_u, 0..mesh.n_edges());
}

/// `enforce_boundary_edge`: zero the velocity tendency on boundary edges
/// (a no-op on the full sphere, kept for kernel-set fidelity).
pub fn enforce_boundary_edge(mesh: &Mesh, tend: &mut Tendencies) {
    ops::enforce_boundary(mesh, &mut tend.tend_u, 0..mesh.n_edges());
}

/// `compute_next_substep_state`: `provis = base + coef * tend`.
pub fn compute_next_substep_state(
    mesh: &Mesh,
    base: &State,
    tend: &Tendencies,
    coef: f64,
    provis: &mut State,
) {
    ops::axpy(
        &base.h,
        &tend.tend_h,
        coef,
        &mut provis.h,
        0..mesh.n_cells(),
    );
    ops::axpy(
        &base.u,
        &tend.tend_u,
        coef,
        &mut provis.u,
        0..mesh.n_edges(),
    );
    let nc = mesh.n_cells();
    for ((b, t), p) in base
        .tracers
        .iter()
        .zip(&tend.tend_tracers)
        .zip(provis.tracers.iter_mut())
    {
        ops::axpy(b, t, coef, p, 0..nc);
    }
}

/// `accumulative_update`: `acc += weight * tend` (the RK quadrature).
pub fn accumulative_update(mesh: &Mesh, tend: &Tendencies, weight: f64, acc: &mut State) {
    ops::accumulate(&tend.tend_h, weight, &mut acc.h, 0..mesh.n_cells());
    ops::accumulate(&tend.tend_u, weight, &mut acc.u, 0..mesh.n_edges());
    let nc = mesh.n_cells();
    for (t, a) in tend.tend_tracers.iter().zip(acc.tracers.iter_mut()) {
        ops::accumulate(t, weight, a, 0..nc);
    }
}

/// `mpas_reconstruct`: cell-center velocity vectors and their
/// zonal/meridional decomposition.
pub fn mpas_reconstruct(
    mesh: &Mesh,
    coeffs: &ReconstructCoeffs,
    u: &[f64],
    recon: &mut Reconstruction,
) {
    let nc = mesh.n_cells();
    ops::reconstruct_xyz(
        mesh,
        coeffs,
        u,
        &mut recon.ux,
        &mut recon.uy,
        &mut recon.uz,
        0..nc,
    );
    ops::zonal_meridional(
        mesh,
        &recon.ux,
        &recon.uy,
        &recon.uz,
        &mut recon.zonal,
        &mut recon.meridional,
        0..nc,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mesh, ModelConfig, Vec<f64>) {
        let mesh = mpas_mesh::generate(3, 0);
        let config = ModelConfig::default();
        let f_vertex: Vec<f64> = (0..mesh.n_vertices())
            .map(|v| 2.0 * mpas_geom::OMEGA * mesh.x_vertex[v].z)
            .collect();
        (mesh, config, f_vertex)
    }

    #[test]
    fn mass_tendency_integrates_to_zero() {
        // ∮ tend_h dA = 0 exactly (flux telescoping): discrete conservation.
        let (mesh, config, f_vertex) = setup();
        let h: Vec<f64> = (0..mesh.n_cells())
            .map(|i| 1000.0 + (i as f64).sin())
            .collect();
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| (e as f64 * 0.1).cos())
            .collect();
        let b = vec![0.0; mesh.n_cells()];
        let mut diag = Diagnostics::zeros(&mesh);
        compute_solve_diagnostics(&mesh, &config, &h, &u, &f_vertex, 100.0, &mut diag);
        let mut tend = Tendencies::zeros(&mesh);
        compute_tend(&mesh, &config, &h, &u, &b, &diag, &mut tend);
        let total: f64 = (0..mesh.n_cells())
            .map(|i| tend.tend_h[i] * mesh.area_cell[i])
            .sum();
        let scale: f64 = (0..mesh.n_cells())
            .map(|i| tend.tend_h[i].abs() * mesh.area_cell[i])
            .sum();
        assert!(total.abs() < 1e-12 * scale.max(1.0), "total {total}");
    }

    #[test]
    fn curl_of_discrete_gradient_vanishes() {
        // u_e = (φ(c2) − φ(c1))/dc is a discrete gradient; its circulation
        // around every dual triangle telescopes to exactly zero.
        let (mesh, _config, _f) = setup();
        let phi: Vec<f64> = (0..mesh.n_cells())
            .map(|i| (mesh.x_cell[i].z * 3.0).sin() * 1e5)
            .collect();
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| {
                let [c1, c2] = mesh.cells_on_edge[e];
                (phi[c2 as usize] - phi[c1 as usize]) / mesh.dc_edge[e]
            })
            .collect();
        let mut vort = vec![0.0; mesh.n_vertices()];
        ops::vorticity(&mesh, &u, &mut vort, 0..mesh.n_vertices());
        let worst = vort.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        // Scale: |u|/dv ~ 1e-1; exact cancellation leaves rounding only.
        assert!(worst < 1e-12, "worst vorticity {worst}");
    }

    #[test]
    fn ke_is_nonnegative_and_zero_for_rest() {
        let (mesh, _c, _f) = setup();
        let mut ke = vec![0.0; mesh.n_cells()];
        let u0 = vec![0.0; mesh.n_edges()];
        ops::ke(&mesh, &u0, &mut ke, 0..mesh.n_cells());
        assert!(ke.iter().all(|&k| k == 0.0));
        let u: Vec<f64> = (0..mesh.n_edges()).map(|e| (e as f64).sin()).collect();
        ops::ke(&mesh, &u, &mut ke, 0..mesh.n_cells());
        assert!(ke.iter().all(|&k| k >= 0.0));
        assert!(ke.iter().any(|&k| k > 0.0));
    }

    #[test]
    fn state_at_rest_stays_at_rest_without_topography() {
        // h = const, u = 0: all tendencies must vanish (well-balanced).
        let (mesh, config, f_vertex) = setup();
        let h = vec![1000.0; mesh.n_cells()];
        let u = vec![0.0; mesh.n_edges()];
        let b = vec![0.0; mesh.n_cells()];
        let mut diag = Diagnostics::zeros(&mesh);
        compute_solve_diagnostics(&mesh, &config, &h, &u, &f_vertex, 100.0, &mut diag);
        let mut tend = Tendencies::zeros(&mesh);
        compute_tend(&mesh, &config, &h, &u, &b, &diag, &mut tend);
        let wh = tend.tend_h.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let wu = tend.tend_u.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(wh == 0.0, "tend_h {wh}");
        assert!(wu < 1e-10, "tend_u {wu}");
    }

    #[test]
    fn lake_at_rest_is_balanced_with_topography() {
        // h + b = const with u = 0: the pressure gradient of h balances b.
        let (mesh, config, f_vertex) = setup();
        let b: Vec<f64> = (0..mesh.n_cells())
            .map(|i| 200.0 * (1.0 + mesh.x_cell[i].z))
            .collect();
        let h: Vec<f64> = b.iter().map(|&bi| 1000.0 - bi).collect();
        let u = vec![0.0; mesh.n_edges()];
        let mut diag = Diagnostics::zeros(&mesh);
        compute_solve_diagnostics(&mesh, &config, &h, &u, &f_vertex, 100.0, &mut diag);
        let mut tend = Tendencies::zeros(&mesh);
        compute_tend(&mesh, &config, &h, &u, &b, &diag, &mut tend);
        let wu = tend.tend_u.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(wu < 1e-9, "tend_u {wu}");
    }

    #[test]
    fn high_order_h_edge_close_to_midpoint_average_on_smooth_field() {
        let (mesh, _c, _f) = setup();
        let mut config = ModelConfig::default();
        let h: Vec<f64> = (0..mesh.n_cells())
            .map(|i| 5000.0 + 100.0 * mesh.x_cell[i].z)
            .collect();
        let u = vec![0.0; mesh.n_edges()];
        let f_vertex = vec![0.0; mesh.n_vertices()];
        let mut d2 = Diagnostics::zeros(&mesh);
        config.high_order_h_edge = true;
        compute_solve_diagnostics(&mesh, &config, &h, &u, &f_vertex, 1.0, &mut d2);
        let mut d1 = Diagnostics::zeros(&mesh);
        config.high_order_h_edge = false;
        compute_solve_diagnostics(&mesh, &config, &h, &u, &f_vertex, 1.0, &mut d1);
        for e in 0..mesh.n_edges() {
            let rel = (d2.h_edge[e] - d1.h_edge[e]).abs() / d1.h_edge[e];
            assert!(rel < 1e-3, "edge {e} rel {rel}");
        }
        // And they are not identical (the correction really fires).
        assert!(d1.h_edge != d2.h_edge);
    }

    #[test]
    fn enforce_boundary_zeroes_masked_edges() {
        let (mut mesh, _c, _f) = setup();
        mesh.boundary_edge[3] = true;
        mesh.boundary_edge[17] = true;
        let mut tend = Tendencies::zeros(&mesh);
        tend.tend_u.fill(1.0);
        enforce_boundary_edge(&mesh, &mut tend);
        assert_eq!(tend.tend_u[3], 0.0);
        assert_eq!(tend.tend_u[17], 0.0);
        assert_eq!(tend.tend_u[4], 1.0);
    }
}
