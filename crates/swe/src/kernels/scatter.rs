//! Original MPAS-style scatter (edge-order / vertex-order) forms of the
//! irregular reductions (the paper's Algorithm 2).
//!
//! These loops traverse the mesh in *input* order and scatter `±` updates
//! into *output* entities, so they race under naive thread parallelism —
//! they exist as the Fig. 6 "Baseline" and to property-test the
//! regularity-aware refactorings in [`super::ops`] against.

use mpas_mesh::Mesh;

/// A1 in scatter form: accumulate thickness fluxes edge-by-edge.
pub fn tend_h_scatter(mesh: &Mesh, u: &[f64], h_edge: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for (e, &ue) in u.iter().enumerate() {
        let [c1, c2] = mesh.cells_on_edge[e];
        let flux = ue * h_edge[e] * mesh.dv_edge[e];
        out[c1 as usize] -= flux; // outward from c1 ⇒ mass loss
        out[c2 as usize] += flux;
    }
    for (o, a) in out.iter_mut().zip(&mesh.area_cell) {
        *o /= a;
    }
}

/// A2 in scatter form: kinetic energy accumulated edge-by-edge.
pub fn ke_scatter(mesh: &Mesh, u: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for (e, &ue) in u.iter().enumerate() {
        let [c1, c2] = mesh.cells_on_edge[e];
        let contrib = 0.25 * mesh.dc_edge[e] * mesh.dv_edge[e] * ue * ue;
        out[c1 as usize] += contrib;
        out[c2 as usize] += contrib;
    }
    for (o, a) in out.iter_mut().zip(&mesh.area_cell) {
        *o /= a;
    }
}

/// B2 in scatter form: divergence accumulated edge-by-edge.
pub fn divergence_scatter(mesh: &Mesh, u: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for (e, &ue) in u.iter().enumerate() {
        let [c1, c2] = mesh.cells_on_edge[e];
        let flux = ue * mesh.dv_edge[e];
        out[c1 as usize] += flux;
        out[c2 as usize] -= flux;
    }
    for (o, a) in out.iter_mut().zip(&mesh.area_cell) {
        *o /= a;
    }
}

/// C2 in scatter form: circulation accumulated edge-by-edge into the two
/// adjacent vertices.
pub fn vorticity_scatter(mesh: &Mesh, u: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for (e, &ue) in u.iter().enumerate() {
        let [v1, v2] = mesh.vertices_on_edge[e];
        let circ = ue * mesh.dc_edge[e];
        // The dual edge (+n̂ direction) runs CCW around exactly one of the
        // two adjacent vertices; find the slot signs from the vertex tables.
        for &v in &[v1, v2] {
            let v = v as usize;
            for k in 0..3 {
                if mesh.edges_on_vertex[v][k] as usize == e {
                    out[v] += mesh.edge_sign_on_vertex[v][k] as f64 * circ;
                }
            }
        }
    }
    for (o, a) in out.iter_mut().zip(&mesh.area_triangle) {
        *o /= a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ops;

    fn setup() -> (Mesh, Vec<f64>, Vec<f64>) {
        let mesh = mpas_mesh::generate(3, 0);
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| (e as f64 * 0.17).sin() * 8.0)
            .collect();
        let h_edge: Vec<f64> = (0..mesh.n_edges())
            .map(|e| 1000.0 + (e as f64 * 0.05).cos() * 50.0)
            .collect();
        (mesh, u, h_edge)
    }

    #[test]
    fn tend_h_scatter_matches_gather() {
        let (mesh, u, h_edge) = setup();
        let mut a = vec![0.0; mesh.n_cells()];
        let mut b = vec![0.0; mesh.n_cells()];
        tend_h_scatter(&mesh, &u, &h_edge, &mut a);
        ops::tend_h(&mesh, &u, &h_edge, &mut b, 0..mesh.n_cells());
        for i in 0..mesh.n_cells() {
            assert!((a[i] - b[i]).abs() < 1e-9, "cell {i}: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn ke_scatter_matches_gather() {
        let (mesh, u, _) = setup();
        let mut a = vec![0.0; mesh.n_cells()];
        let mut b = vec![0.0; mesh.n_cells()];
        ke_scatter(&mesh, &u, &mut a);
        ops::ke(&mesh, &u, &mut b, 0..mesh.n_cells());
        for i in 0..mesh.n_cells() {
            assert!((a[i] - b[i]).abs() < 1e-9 * a[i].abs().max(1.0));
        }
    }

    #[test]
    fn divergence_scatter_matches_gather() {
        let (mesh, u, _) = setup();
        let mut a = vec![0.0; mesh.n_cells()];
        let mut b = vec![0.0; mesh.n_cells()];
        divergence_scatter(&mesh, &u, &mut a);
        ops::divergence(&mesh, &u, &mut b, 0..mesh.n_cells());
        for i in 0..mesh.n_cells() {
            assert!((a[i] - b[i]).abs() < 1e-12 * a[i].abs().max(1e-6));
        }
    }

    #[test]
    fn vorticity_scatter_matches_gather() {
        let (mesh, u, _) = setup();
        let mut a = vec![0.0; mesh.n_vertices()];
        let mut b = vec![0.0; mesh.n_vertices()];
        vorticity_scatter(&mesh, &u, &mut a);
        ops::vorticity(&mesh, &u, &mut b, 0..mesh.n_vertices());
        for v in 0..mesh.n_vertices() {
            assert!((a[v] - b[v]).abs() < 1e-12 * a[v].abs().max(1e-12));
        }
    }
}
