//! Vertical-batching SIMD forms of the Table-I operators (DESIGN.md §14).
//!
//! Each function mirrors its namesake in [`super::fused`] but operates on
//! **layered** fields: `k` independent vertical layers interleaved as
//! contiguous lanes per entity, `field[entity * k + lane]`. One gathered
//! stencil index (`edges_on_cell[slot]`, `cells_on_edge[e]`, ...) is then
//! amortized across all `k` lanes, and the lane loop is a unit-stride
//! inner loop a vector unit can chew through.
//!
//! **Bitwise contract.** Every lane evaluates *exactly* the fused-tier
//! expression for that layer: same association, same operation sequence,
//! and only `mul/add/sub/div/xor`-class vector instructions (never FMA,
//! which contracts two roundings into one and would change results). A
//! `k = 1` layered field *is* a flat field, so the simd tier at one layer
//! is bit-identical to the fused tier — the equivalence suite asserts
//! equality, not a tolerance band. Reductions keep the fused slot order
//! per lane, so nothing here reorders arithmetic; the documented
//! 1-ulp/1e-13 band of DESIGN.md §9 is inherited unchanged from the
//! fused coefficients themselves.
//!
//! **Two implementations per kernel, selected at runtime:**
//!
//! * an AVX2 path (`std::arch` x86_64 intrinsics behind
//!   `#[target_feature]`, 4-lane `_mm256` chunks plus a scalar lane
//!   tail), taken when [`avx2_available`] and not overridden;
//! * a scalar-batch fallback (plain lane loops over fixed 4-lane chunks,
//!   auto-vectorizable, builds on stable Rust and every architecture).
//!
//! Setting the environment variable `MPAS_SIMD_FORCE_SCALAR` (to anything
//! but `0`) pins every dispatch to the scalar-batch path — CI runs the
//! same simulation both ways and asserts bitwise-identical results.
//!
//! [`block_ranges`] tiles a sweep's index space into cache-sized blocks;
//! with the SFC ordering from `mpas_mesh::reorder` renumbering entities
//! along a space-filling curve, iterating cell blocks in index order *is*
//! tiling the curve, so a block's gathered edge/vertex neighborhoods stay
//! L2-resident across the kernels of a substep.

use crate::coeffs::KernelCoeffs;
use crate::config::ModelConfig;
use mpas_mesh::Mesh;
use std::ops::Range;
use std::sync::OnceLock;

/// Which inner-loop implementation a simd-tier kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Scalar-batch lane loops (auto-vectorizable, every architecture).
    Batch,
    /// Explicit AVX2 intrinsics (x86_64 with runtime-detected AVX2).
    Avx2,
}

impl SimdMode {
    /// Lowercase label for telemetry and logs.
    pub fn name(&self) -> &'static str {
        match self {
            SimdMode::Batch => "batch",
            SimdMode::Avx2 => "avx2",
        }
    }
}

/// Whether the host CPU offers AVX2 (always `false` off x86_64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether `MPAS_SIMD_FORCE_SCALAR` pins dispatch to the scalar-batch
/// path (read once; set it before the first kernel call).
pub fn forced_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var_os("MPAS_SIMD_FORCE_SCALAR").is_some_and(|v| v != "0"))
}

/// The mode runtime dispatch selects: AVX2 when detected and not
/// overridden, scalar-batch otherwise.
pub fn active_mode() -> SimdMode {
    if avx2_available() && !forced_scalar() {
        SimdMode::Avx2
    } else {
        SimdMode::Batch
    }
}

/// True iff the explicit-intrinsics path is active (telemetry label).
pub fn simd_active() -> bool {
    active_mode() == SimdMode::Avx2
}

/// Tile `0..n` into consecutive blocks of at most `block` entities
/// (`block` is clamped to ≥ 1; the last block may be short). Every index
/// appears in exactly one block, in order — so a blocked sweep visits the
/// same entities in the same order as an unblocked one.
pub fn block_ranges(n: usize, block: usize) -> impl Iterator<Item = Range<usize>> {
    let b = block.max(1);
    (0..n.div_ceil(b)).map(move |i| (i * b)..((i * b + b).min(n)))
}

/// An L2-sized default cell-block length for a sweep touching `streams`
/// layered f64 fields at `k` lanes per cell (≈256 KiB of L2 kept for the
/// block's working set, clamped to a sane range).
pub fn default_cell_block(k: usize, streams: usize) -> usize {
    const L2_BYTES: usize = 256 * 1024;
    (L2_BYTES / (8 * k.max(1) * streams.max(1))).clamp(64, 1 << 20)
}

// ---------------------------------------------------------------------
// Dispatchers: one public pair per kernel. `<op>` picks the active mode;
// `<op>_with` pins a mode explicitly (the equivalence tests compare the
// two paths directly through it). A pinned `Avx2` silently falls back to
// `Batch` when the CPU lacks AVX2, keeping the API safe.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($(#[$doc:meta])* $name:ident, $with:ident ($($arg:ident : $ty:ty),* $(,)?)) => {
        $(#[$doc])*
        #[allow(clippy::too_many_arguments)]
        pub fn $name($($arg: $ty),*) {
            $with(active_mode(), $($arg),*)
        }

        /// Same kernel with the implementation pinned explicitly (falls
        /// back to [`SimdMode::Batch`] when AVX2 is pinned but the CPU
        /// lacks it, keeping the call safe everywhere).
        #[allow(clippy::too_many_arguments)]
        pub fn $with(mode: SimdMode, $($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if mode == SimdMode::Avx2 && avx2_available() {
                // SAFETY: AVX2 presence was just verified at runtime.
                unsafe { avx2::$name($($arg),*) };
                return;
            }
            let _ = mode;
            batch::$name($($arg),*)
        }
    };
}

dispatch! {
    /// A1 — layered thickness tendency (fused `s·dv` weights).
    tend_h, tend_h_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], h_edge: &[f64], out: &mut [f64], cells: Range<usize>,
    )
}

dispatch! {
    /// T1 — layered tracer-mass tendency (fused `½·s·dv` weights).
    tend_tracer, tend_tracer_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], h_edge: &[f64], h: &[f64], hq: &[f64],
        out: &mut [f64], cells: Range<usize>,
    )
}

dispatch! {
    /// B2 — layered velocity divergence (fused `s·dv` weights).
    divergence, divergence_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], out: &mut [f64], cells: Range<usize>,
    )
}

dispatch! {
    /// A2 — layered kinetic energy (fused `¼·dc·dv` weights).
    ke, ke_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], out: &mut [f64], cells: Range<usize>,
    )
}

dispatch! {
    /// A2+B2 fused — one gather of `u` over `edges_on_cell` feeds both
    /// the kinetic-energy and the divergence accumulator; each sum keeps
    /// its standalone term order, so both outputs are bitwise-equal to
    /// the separate sweeps while the edge velocities are read once.
    ke_divergence, ke_divergence_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], ke_out: &mut [f64], div_out: &mut [f64], cells: Range<usize>,
    )
}

dispatch! {
    /// C2 — layered vertex vorticity (fused `s·dc` circulation lengths).
    vorticity, vorticity_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], out: &mut [f64], vertices: Range<usize>,
    )
}

dispatch! {
    /// C2+E fused — the vertex sweep computes circulation vorticity and
    /// immediately forms `(f + ζ)/h_v` from the value still in register,
    /// skipping the standalone E kernel's reload of the vorticity array.
    vorticity_pv, vorticity_pv_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        u: &[f64], h: &[f64], f_vertex: &[f64],
        vort_out: &mut [f64], pv_out: &mut [f64], vertices: Range<usize>,
    )
}

dispatch! {
    /// A3/F — layered kite-area average of a vertex field onto cells
    /// (`vorticity_cell` and `pv_cell` share this exact stencil).
    kite_average, kite_average_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        vertex_field: &[f64], out: &mut [f64], cells: Range<usize>,
    )
}

dispatch! {
    /// E — layered vertex potential vorticity (`(f + ζ)/h_v`; never
    /// fused, so the lanes replay the seed arithmetic).
    pv_vertex, pv_vertex_with(
        mesh: &Mesh, k: usize,
        h: &[f64], vorticity: &[f64], f_vertex: &[f64],
        out: &mut [f64], vertices: Range<usize>,
    )
}

dispatch! {
    /// G — layered edge PV with APVM upwinding (fused reciprocals).
    pv_edge, pv_edge_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        apvm_factor: f64, dt: f64,
        pv_vertex: &[f64], pv_cell: &[f64], u: &[f64], v: &[f64],
        out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// B1 — layered momentum tendency (fused `½·w` and `1/dc`); `b` is
    /// the single-layer bottom topography, broadcast across lanes.
    tend_u, tend_u_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        gravity: f64, pv_edge: &[f64], u: &[f64], h_edge: &[f64],
        ke: &[f64], h: &[f64], b: &[f64],
        out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// C1 — layered del2 dissipation (read-modify-write on `out`).
    tend_u_del2, tend_u_del2_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        nu: f64, divergence: &[f64], vorticity: &[f64],
        out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// C1 (chained) — layered inner vector Laplacian.
    lap_u, lap_u_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        divergence: &[f64], vorticity: &[f64],
        out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// C1 (chained) — layered outer del4 stage (read-modify-write).
    tend_u_del4, tend_u_del4_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        nu4: f64, div_lap: &[f64], vort_lap: &[f64],
        out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// D1/D2 — layered second-derivative blend terms (fused `dv/dc`).
    d2fdx2, d2fdx2_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        h: &[f64], out1: &mut [f64], out2: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// H2 — layered thickness at edges (high-order blend via `dc²/12`
    /// when configured, plain mid-edge average otherwise).
    h_edge, h_edge_with(
        mesh: &Mesh, kc: &KernelCoeffs, config: &ModelConfig, k: usize,
        h: &[f64], d2fdx2_cell1: &[f64], d2fdx2_cell2: &[f64],
        out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// H1 — layered tangential velocity (TRiSK reconstruction; never
    /// fused, so the lanes replay the seed arithmetic).
    tangential_velocity, tangential_velocity_with(
        mesh: &Mesh, k: usize,
        u: &[f64], out: &mut [f64], edges: Range<usize>,
    )
}

dispatch! {
    /// H1+G fused — the edge sweep reconstructs the tangential velocity
    /// and feeds it straight into the APVM upwinding term, storing both
    /// fields in one pass over the edges. `pv_vertex` and `pv_cell` must
    /// already be complete (the sweep reads vertex/cell neighbours).
    tangential_pv_edge, tangential_pv_edge_with(
        mesh: &Mesh, kc: &KernelCoeffs, k: usize,
        apvm_factor: f64, dt: f64,
        pv_vertex: &[f64], pv_cell: &[f64], u: &[f64],
        v_out: &mut [f64], pv_edge_out: &mut [f64], edges: Range<usize>,
    )
}

// ---------------------------------------------------------------------
// Layered pointwise utilities (X1–X5). These have no gather to amortize
// and trivially auto-vectorize, so one plain implementation suffices.
// ---------------------------------------------------------------------

/// X2/X3 — layered provisional state: `out = base + coef·tend` over the
/// entity range (all `k` lanes of each entity).
pub fn axpy(k: usize, base: &[f64], tend: &[f64], coef: f64, out: &mut [f64], range: Range<usize>) {
    let off = range.start * k;
    for x in (range.start * k)..(range.end * k) {
        out[x - off] = base[x] + coef * tend[x];
    }
}

/// X4/X5 — layered accumulation: `acc += weight·tend`.
pub fn accumulate(k: usize, tend: &[f64], weight: f64, acc: &mut [f64], range: Range<usize>) {
    let off = range.start * k;
    for x in (range.start * k)..(range.end * k) {
        acc[x - off] += weight * tend[x];
    }
}

/// X2+X4 fused — one pass over `tend` feeds both the provisional state
/// (`out = base + coef·tend`) and the RK accumulator (`acc += weight·tend`).
/// Each output computes exactly the expression of its standalone form, so
/// the fusion only halves the tendency reads, never the bits.
#[allow(clippy::too_many_arguments)]
pub fn axpy_accumulate(
    k: usize,
    base: &[f64],
    tend: &[f64],
    coef: f64,
    weight: f64,
    out: &mut [f64],
    acc: &mut [f64],
    range: Range<usize>,
) {
    let off = range.start * k;
    for x in (range.start * k)..(range.end * k) {
        let t = tend[x];
        out[x - off] = base[x] + coef * t;
        acc[x - off] += weight * t;
    }
}

/// X1 — zero all lanes of masked boundary edges.
pub fn enforce_boundary(mesh: &Mesh, k: usize, tend_u: &mut [f64], edges: Range<usize>) {
    let off = edges.start;
    for e in edges {
        if mesh.boundary_edge[e] {
            tend_u[(e - off) * k..(e - off) * k + k].fill(0.0);
        }
    }
}

// ---------------------------------------------------------------------
// Per-lane scalar forms. Each is exactly the fused-tier expression with
// `e` → `e*k + l` on layered fields; both implementations' lane tails
// call these, so AVX2 chunks, batch chunks and tails cannot diverge.
// ---------------------------------------------------------------------

#[inline(always)]
fn tend_h_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    i: usize,
    l: usize,
    u: &[f64],
    he: &[f64],
) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.cell_range(i) {
        let e = mesh.edges_on_cell[slot] as usize;
        acc += kc.flux_div[slot] * u[e * k + l] * he[e * k + l];
    }
    -acc / mesh.area_cell[i]
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tend_tracer_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    i: usize,
    l: usize,
    u: &[f64],
    he: &[f64],
    h: &[f64],
    hq: &[f64],
) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.cell_range(i) {
        let e = mesh.edges_on_cell[slot] as usize;
        let [c1, c2] = mesh.cells_on_edge[e];
        let (c1, c2) = (c1 as usize * k + l, c2 as usize * k + l);
        let q2 = hq[c1] / h[c1] + hq[c2] / h[c2];
        acc += kc.half_flux_div[slot] * u[e * k + l] * he[e * k + l] * q2;
    }
    -acc / mesh.area_cell[i]
}

#[inline(always)]
fn divergence_lane(mesh: &Mesh, kc: &KernelCoeffs, k: usize, i: usize, l: usize, u: &[f64]) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.cell_range(i) {
        let e = mesh.edges_on_cell[slot] as usize;
        acc += kc.flux_div[slot] * u[e * k + l];
    }
    acc / mesh.area_cell[i]
}

#[inline(always)]
fn ke_lane(mesh: &Mesh, kc: &KernelCoeffs, k: usize, i: usize, l: usize, u: &[f64]) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.cell_range(i) {
        let e = mesh.edges_on_cell[slot] as usize;
        acc += kc.ke_weight[slot] * u[e * k + l] * u[e * k + l];
    }
    acc / mesh.area_cell[i]
}

/// One shared gather of `u` over `edges_on_cell` feeding both the A2 and
/// B2 accumulators. Each sum adds the same terms in the same order as its
/// standalone kernel, so the pair is bitwise-equal to two separate sweeps.
#[inline(always)]
fn ke_divergence_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    i: usize,
    l: usize,
    u: &[f64],
) -> (f64, f64) {
    let mut ke = 0.0;
    let mut div = 0.0;
    for slot in mesh.cell_range(i) {
        let e = mesh.edges_on_cell[slot] as usize;
        let uv = u[e * k + l];
        ke += kc.ke_weight[slot] * uv * uv;
        div += kc.flux_div[slot] * uv;
    }
    (ke / mesh.area_cell[i], div / mesh.area_cell[i])
}

#[inline(always)]
fn vorticity_lane(mesh: &Mesh, kc: &KernelCoeffs, k: usize, v: usize, l: usize, u: &[f64]) -> f64 {
    let mut circ = 0.0;
    for j in 0..3 {
        let e = mesh.edges_on_vertex[v][j] as usize;
        circ += kc.vort_sign_dc[v][j] * u[e * k + l];
    }
    circ / mesh.area_triangle[v]
}

#[inline(always)]
fn kite_average_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    i: usize,
    l: usize,
    vf: &[f64],
) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.cell_range(i) {
        let v = mesh.vertices_on_cell[slot] as usize;
        acc += kc.kite_cell[slot] * vf[v * k + l];
    }
    acc / mesh.area_cell[i]
}

#[inline(always)]
fn pv_vertex_lane(
    mesh: &Mesh,
    k: usize,
    v: usize,
    l: usize,
    h: &[f64],
    vorticity: &[f64],
    f_vertex: &[f64],
) -> f64 {
    pv_from_vort_lane(mesh, k, v, l, h, f_vertex, vorticity[v * k + l])
}

/// `pv_vertex` with the vorticity value already in hand — the fused
/// `vorticity_pv` sweep feeds the register it just computed, which holds
/// the exact bits the standalone kernel would reload from memory.
#[inline(always)]
fn pv_from_vort_lane(
    mesh: &Mesh,
    k: usize,
    v: usize,
    l: usize,
    h: &[f64],
    f_vertex: &[f64],
    vort: f64,
) -> f64 {
    let mut hv = 0.0;
    for j in 0..3 {
        hv += mesh.kite_areas_on_vertex[v][j] * h[mesh.cells_on_vertex[v][j] as usize * k + l];
    }
    hv /= mesh.area_triangle[v];
    (f_vertex[v] + vort) / hv
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pv_edge_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    e: usize,
    l: usize,
    apvm_factor: f64,
    dt: f64,
    pv_v: &[f64],
    pv_c: &[f64],
    u: &[f64],
    v: &[f64],
) -> f64 {
    pv_edge_from_v_lane(
        mesh,
        kc,
        k,
        e,
        l,
        apvm_factor,
        dt,
        pv_v,
        pv_c,
        u,
        v[e * k + l],
    )
}

/// `pv_edge` with the tangential velocity already in hand — the fused
/// `tangential_pv_edge` sweep feeds the value it just reconstructed.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pv_edge_from_v_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    e: usize,
    l: usize,
    apvm_factor: f64,
    dt: f64,
    pv_v: &[f64],
    pv_c: &[f64],
    u: &[f64],
    tv: f64,
) -> f64 {
    let [v1, v2] = mesh.vertices_on_edge[e];
    let [c1, c2] = mesh.cells_on_edge[e];
    let (v1, v2) = (v1 as usize * k + l, v2 as usize * k + l);
    let (c1, c2) = (c1 as usize * k + l, c2 as usize * k + l);
    let base = 0.5 * (pv_v[v1] + pv_v[v2]);
    let grad_t = (pv_v[v2] - pv_v[v1]) * kc.inv_dv[e];
    let grad_n = (pv_c[c2] - pv_c[c1]) * kc.inv_dc[e];
    base - apvm_factor * dt * (u[e * k + l] * grad_n + tv * grad_t)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tend_u_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    e: usize,
    l: usize,
    gravity: f64,
    pv_e: &[f64],
    u: &[f64],
    he: &[f64],
    ke: &[f64],
    h: &[f64],
    b: &[f64],
) -> f64 {
    let [c1, c2] = mesh.cells_on_edge[e];
    let (c1, c2) = (c1 as usize, c2 as usize);
    let mut q = 0.0;
    for slot in mesh.eoe_range(e) {
        let eoe = mesh.edges_on_edge[slot] as usize;
        q += kc.half_weights[slot]
            * u[eoe * k + l]
            * he[eoe * k + l]
            * (pv_e[e * k + l] + pv_e[eoe * k + l]);
    }
    let grad = (ke[c2 * k + l] - ke[c1 * k + l]
        + gravity * (h[c2 * k + l] + b[c2] - h[c1 * k + l] - b[c1]))
        * kc.inv_dc[e];
    q - grad
}

/// The shared `d − z` core of the C1 family: normal divergence gradient
/// minus tangential vorticity gradient at one edge lane.
#[inline(always)]
fn del_core_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    e: usize,
    l: usize,
    div: &[f64],
    vort: &[f64],
) -> f64 {
    let [c1, c2] = mesh.cells_on_edge[e];
    let [v1, v2] = mesh.vertices_on_edge[e];
    let d = (div[c2 as usize * k + l] - div[c1 as usize * k + l]) * kc.inv_dc[e];
    let z = (vort[v2 as usize * k + l] - vort[v1 as usize * k + l]) * kc.inv_dv[e];
    d - z
}

#[inline(always)]
fn d2fdx2_cell_lane(
    mesh: &Mesh,
    kc: &KernelCoeffs,
    k: usize,
    c: usize,
    l: usize,
    h: &[f64],
) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.cell_range(c) {
        let nb = mesh.cells_on_cell[slot] as usize;
        acc += (h[nb * k + l] - h[c * k + l]) * kc.grad_ratio[slot];
    }
    acc / mesh.area_cell[c]
}

#[inline(always)]
fn tangential_velocity_lane(mesh: &Mesh, k: usize, e: usize, l: usize, u: &[f64]) -> f64 {
    let mut acc = 0.0;
    for slot in mesh.eoe_range(e) {
        acc += mesh.weights_on_edge[slot] * u[mesh.edges_on_edge[slot] as usize * k + l];
    }
    acc
}

// ---------------------------------------------------------------------
// Scalar-batch implementations: fixed 4-lane chunks (auto-vectorizable)
// plus a per-lane tail through the shared lane forms.
// ---------------------------------------------------------------------

mod batch {
    use super::*;

    /// Run `lane(l)` for every lane of one entity: 4-lane chunks the
    /// optimizer can vectorize, then the tail lanes.
    #[inline(always)]
    fn lanes(k: usize, mut lane: impl FnMut(usize)) {
        let mut l = 0;
        while l + 4 <= k {
            lane(l);
            lane(l + 1);
            lane(l + 2);
            lane(l + 3);
            l += 4;
        }
        while l < k {
            lane(l);
            l += 1;
        }
    }

    pub(super) fn tend_h(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        h_edge: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            lanes(k, |l| {
                out[ob + l] = tend_h_lane(mesh, kc, k, i, l, u, h_edge)
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn tend_tracer(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        h_edge: &[f64],
        h: &[f64],
        hq: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            lanes(k, |l| {
                out[ob + l] = tend_tracer_lane(mesh, kc, k, i, l, u, h_edge, h, hq)
            });
        }
    }

    pub(super) fn divergence(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            lanes(k, |l| out[ob + l] = divergence_lane(mesh, kc, k, i, l, u));
        }
    }

    pub(super) fn ke(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            lanes(k, |l| out[ob + l] = ke_lane(mesh, kc, k, i, l, u));
        }
    }

    pub(super) fn ke_divergence(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        ke_out: &mut [f64],
        div_out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            lanes(k, |l| {
                let (ke, div) = ke_divergence_lane(mesh, kc, k, i, l, u);
                ke_out[ob + l] = ke;
                div_out[ob + l] = div;
            });
        }
    }

    pub(super) fn vorticity(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        vertices: Range<usize>,
    ) {
        let off = vertices.start;
        for v in vertices {
            let ob = (v - off) * k;
            lanes(k, |l| out[ob + l] = vorticity_lane(mesh, kc, k, v, l, u));
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn vorticity_pv(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        h: &[f64],
        f_vertex: &[f64],
        vort_out: &mut [f64],
        pv_out: &mut [f64],
        vertices: Range<usize>,
    ) {
        let off = vertices.start;
        for v in vertices {
            let ob = (v - off) * k;
            lanes(k, |l| {
                let z = vorticity_lane(mesh, kc, k, v, l, u);
                vort_out[ob + l] = z;
                pv_out[ob + l] = pv_from_vort_lane(mesh, k, v, l, h, f_vertex, z);
            });
        }
    }

    pub(super) fn kite_average(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        vertex_field: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            lanes(k, |l| {
                out[ob + l] = kite_average_lane(mesh, kc, k, i, l, vertex_field)
            });
        }
    }

    pub(super) fn pv_vertex(
        mesh: &Mesh,
        k: usize,
        h: &[f64],
        vorticity: &[f64],
        f_vertex: &[f64],
        out: &mut [f64],
        vertices: Range<usize>,
    ) {
        let off = vertices.start;
        for v in vertices {
            let ob = (v - off) * k;
            lanes(k, |l| {
                out[ob + l] = pv_vertex_lane(mesh, k, v, l, h, vorticity, f_vertex)
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn pv_edge(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        apvm_factor: f64,
        dt: f64,
        pv_vertex: &[f64],
        pv_cell: &[f64],
        u: &[f64],
        v: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                out[ob + l] =
                    pv_edge_lane(mesh, kc, k, e, l, apvm_factor, dt, pv_vertex, pv_cell, u, v)
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn tend_u(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        gravity: f64,
        pv_edge: &[f64],
        u: &[f64],
        h_edge: &[f64],
        ke: &[f64],
        h: &[f64],
        b: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                out[ob + l] = tend_u_lane(mesh, kc, k, e, l, gravity, pv_edge, u, h_edge, ke, h, b)
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn tend_u_del2(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        nu: f64,
        divergence: &[f64],
        vorticity: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                out[ob + l] += nu * del_core_lane(mesh, kc, k, e, l, divergence, vorticity)
            });
        }
    }

    pub(super) fn lap_u(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        divergence: &[f64],
        vorticity: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                out[ob + l] = del_core_lane(mesh, kc, k, e, l, divergence, vorticity)
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn tend_u_del4(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        nu4: f64,
        div_lap: &[f64],
        vort_lap: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                out[ob + l] -= nu4 * del_core_lane(mesh, kc, k, e, l, div_lap, vort_lap)
            });
        }
    }

    pub(super) fn d2fdx2(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        h: &[f64],
        out1: &mut [f64],
        out2: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let [c1, c2] = mesh.cells_on_edge[e];
            let ob = (e - off) * k;
            lanes(k, |l| {
                out1[ob + l] = d2fdx2_cell_lane(mesh, kc, k, c1 as usize, l, h);
            });
            lanes(k, |l| {
                out2[ob + l] = d2fdx2_cell_lane(mesh, kc, k, c2 as usize, l, h);
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn h_edge(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        config: &ModelConfig,
        k: usize,
        h: &[f64],
        d2fdx2_cell1: &[f64],
        d2fdx2_cell2: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        if config.high_order_h_edge {
            for e in edges {
                let [c1, c2] = mesh.cells_on_edge[e];
                let (c1, c2) = (c1 as usize, c2 as usize);
                let ob = (e - off) * k;
                let eb = e * k;
                lanes(k, |l| {
                    out[ob + l] = 0.5 * (h[c1 * k + l] + h[c2 * k + l])
                        - kc.dc2_12[e] * 0.5 * (d2fdx2_cell1[eb + l] + d2fdx2_cell2[eb + l]);
                });
            }
        } else {
            for e in edges {
                let [c1, c2] = mesh.cells_on_edge[e];
                let (c1, c2) = (c1 as usize, c2 as usize);
                let ob = (e - off) * k;
                lanes(k, |l| out[ob + l] = 0.5 * (h[c1 * k + l] + h[c2 * k + l]));
            }
        }
    }

    pub(super) fn tangential_velocity(
        mesh: &Mesh,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                out[ob + l] = tangential_velocity_lane(mesh, k, e, l, u)
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn tangential_pv_edge(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        apvm_factor: f64,
        dt: f64,
        pv_vertex: &[f64],
        pv_cell: &[f64],
        u: &[f64],
        v_out: &mut [f64],
        pv_edge_out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            lanes(k, |l| {
                let tv = tangential_velocity_lane(mesh, k, e, l, u);
                v_out[ob + l] = tv;
                pv_edge_out[ob + l] = pv_edge_from_v_lane(
                    mesh,
                    kc,
                    k,
                    e,
                    l,
                    apvm_factor,
                    dt,
                    pv_vertex,
                    pv_cell,
                    u,
                    tv,
                );
            });
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 implementations: 4-lane `_mm256` chunks, scalar lane tails via
// the shared lane forms. No FMA anywhere — `mul`/`add`/`sub`/`div` only,
// so every lane rounds exactly like the scalar expression.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// Exact sign flip (`xor` with the sign-bit mask) — matches scalar
    /// unary negation bitwise, unlike `0.0 - x`.
    #[inline(always)]
    unsafe fn neg(x: __m256d) -> __m256d {
        _mm256_xor_pd(x, _mm256_set1_pd(-0.0))
    }

    #[inline(always)]
    unsafe fn ld(s: &[f64], idx: usize) -> __m256d {
        debug_assert!(idx + 4 <= s.len());
        _mm256_loadu_pd(s.as_ptr().add(idx))
    }

    #[inline(always)]
    unsafe fn st(s: &mut [f64], idx: usize, v: __m256d) {
        debug_assert!(idx + 4 <= s.len());
        _mm256_storeu_pd(s.as_mut_ptr().add(idx), v)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tend_h(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        h_edge: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            let area = _mm256_set1_pd(mesh.area_cell[i]);
            let mut l = 0;
            while l + 4 <= k {
                let mut acc = _mm256_setzero_pd();
                for slot in mesh.cell_range(i) {
                    let e = mesh.edges_on_cell[slot] as usize;
                    let c = _mm256_set1_pd(kc.flux_div[slot]);
                    let t =
                        _mm256_mul_pd(_mm256_mul_pd(c, ld(u, e * k + l)), ld(h_edge, e * k + l));
                    acc = _mm256_add_pd(acc, t);
                }
                st(out, ob + l, _mm256_div_pd(neg(acc), area));
                l += 4;
            }
            while l < k {
                out[ob + l] = tend_h_lane(mesh, kc, k, i, l, u, h_edge);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tend_tracer(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        h_edge: &[f64],
        h: &[f64],
        hq: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            let area = _mm256_set1_pd(mesh.area_cell[i]);
            let mut l = 0;
            while l + 4 <= k {
                let mut acc = _mm256_setzero_pd();
                for slot in mesh.cell_range(i) {
                    let e = mesh.edges_on_cell[slot] as usize;
                    let [c1, c2] = mesh.cells_on_edge[e];
                    let (c1, c2) = (c1 as usize * k + l, c2 as usize * k + l);
                    let q2 = _mm256_add_pd(
                        _mm256_div_pd(ld(hq, c1), ld(h, c1)),
                        _mm256_div_pd(ld(hq, c2), ld(h, c2)),
                    );
                    let c = _mm256_set1_pd(kc.half_flux_div[slot]);
                    let t = _mm256_mul_pd(
                        _mm256_mul_pd(_mm256_mul_pd(c, ld(u, e * k + l)), ld(h_edge, e * k + l)),
                        q2,
                    );
                    acc = _mm256_add_pd(acc, t);
                }
                st(out, ob + l, _mm256_div_pd(neg(acc), area));
                l += 4;
            }
            while l < k {
                out[ob + l] = tend_tracer_lane(mesh, kc, k, i, l, u, h_edge, h, hq);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn divergence(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            let area = _mm256_set1_pd(mesh.area_cell[i]);
            let mut l = 0;
            while l + 4 <= k {
                let mut acc = _mm256_setzero_pd();
                for slot in mesh.cell_range(i) {
                    let e = mesh.edges_on_cell[slot] as usize;
                    let c = _mm256_set1_pd(kc.flux_div[slot]);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(c, ld(u, e * k + l)));
                }
                st(out, ob + l, _mm256_div_pd(acc, area));
                l += 4;
            }
            while l < k {
                out[ob + l] = divergence_lane(mesh, kc, k, i, l, u);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ke(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            let area = _mm256_set1_pd(mesh.area_cell[i]);
            let mut l = 0;
            while l + 4 <= k {
                let mut acc = _mm256_setzero_pd();
                for slot in mesh.cell_range(i) {
                    let e = mesh.edges_on_cell[slot] as usize;
                    let c = _mm256_set1_pd(kc.ke_weight[slot]);
                    let uv = ld(u, e * k + l);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(c, uv), uv));
                }
                st(out, ob + l, _mm256_div_pd(acc, area));
                l += 4;
            }
            while l < k {
                out[ob + l] = ke_lane(mesh, kc, k, i, l, u);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ke_divergence(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        ke_out: &mut [f64],
        div_out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            let area = _mm256_set1_pd(mesh.area_cell[i]);
            let mut l = 0;
            while l + 4 <= k {
                let mut ke = _mm256_setzero_pd();
                let mut div = _mm256_setzero_pd();
                for slot in mesh.cell_range(i) {
                    let e = mesh.edges_on_cell[slot] as usize;
                    let uv = ld(u, e * k + l);
                    let kw = _mm256_set1_pd(kc.ke_weight[slot]);
                    let fd = _mm256_set1_pd(kc.flux_div[slot]);
                    ke = _mm256_add_pd(ke, _mm256_mul_pd(_mm256_mul_pd(kw, uv), uv));
                    div = _mm256_add_pd(div, _mm256_mul_pd(fd, uv));
                }
                st(ke_out, ob + l, _mm256_div_pd(ke, area));
                st(div_out, ob + l, _mm256_div_pd(div, area));
                l += 4;
            }
            while l < k {
                let (ke, div) = ke_divergence_lane(mesh, kc, k, i, l, u);
                ke_out[ob + l] = ke;
                div_out[ob + l] = div;
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vorticity(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        vertices: Range<usize>,
    ) {
        let off = vertices.start;
        for v in vertices {
            let ob = (v - off) * k;
            let area = _mm256_set1_pd(mesh.area_triangle[v]);
            let mut l = 0;
            while l + 4 <= k {
                let mut circ = _mm256_setzero_pd();
                for j in 0..3 {
                    let e = mesh.edges_on_vertex[v][j] as usize;
                    let c = _mm256_set1_pd(kc.vort_sign_dc[v][j]);
                    circ = _mm256_add_pd(circ, _mm256_mul_pd(c, ld(u, e * k + l)));
                }
                st(out, ob + l, _mm256_div_pd(circ, area));
                l += 4;
            }
            while l < k {
                out[ob + l] = vorticity_lane(mesh, kc, k, v, l, u);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn vorticity_pv(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        u: &[f64],
        h: &[f64],
        f_vertex: &[f64],
        vort_out: &mut [f64],
        pv_out: &mut [f64],
        vertices: Range<usize>,
    ) {
        let off = vertices.start;
        for v in vertices {
            let ob = (v - off) * k;
            let area = _mm256_set1_pd(mesh.area_triangle[v]);
            let fv = _mm256_set1_pd(f_vertex[v]);
            let mut l = 0;
            while l + 4 <= k {
                let mut circ = _mm256_setzero_pd();
                let mut hv = _mm256_setzero_pd();
                for j in 0..3 {
                    let e = mesh.edges_on_vertex[v][j] as usize;
                    let c = mesh.cells_on_vertex[v][j] as usize;
                    let sd = _mm256_set1_pd(kc.vort_sign_dc[v][j]);
                    let w = _mm256_set1_pd(mesh.kite_areas_on_vertex[v][j]);
                    circ = _mm256_add_pd(circ, _mm256_mul_pd(sd, ld(u, e * k + l)));
                    hv = _mm256_add_pd(hv, _mm256_mul_pd(w, ld(h, c * k + l)));
                }
                let z = _mm256_div_pd(circ, area);
                st(vort_out, ob + l, z);
                hv = _mm256_div_pd(hv, area);
                st(pv_out, ob + l, _mm256_div_pd(_mm256_add_pd(fv, z), hv));
                l += 4;
            }
            while l < k {
                let z = vorticity_lane(mesh, kc, k, v, l, u);
                vort_out[ob + l] = z;
                pv_out[ob + l] = pv_from_vort_lane(mesh, k, v, l, h, f_vertex, z);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn kite_average(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        vertex_field: &[f64],
        out: &mut [f64],
        cells: Range<usize>,
    ) {
        let off = cells.start;
        for i in cells {
            let ob = (i - off) * k;
            let area = _mm256_set1_pd(mesh.area_cell[i]);
            let mut l = 0;
            while l + 4 <= k {
                let mut acc = _mm256_setzero_pd();
                for slot in mesh.cell_range(i) {
                    let v = mesh.vertices_on_cell[slot] as usize;
                    let c = _mm256_set1_pd(kc.kite_cell[slot]);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(c, ld(vertex_field, v * k + l)));
                }
                st(out, ob + l, _mm256_div_pd(acc, area));
                l += 4;
            }
            while l < k {
                out[ob + l] = kite_average_lane(mesh, kc, k, i, l, vertex_field);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pv_vertex(
        mesh: &Mesh,
        k: usize,
        h: &[f64],
        vorticity: &[f64],
        f_vertex: &[f64],
        out: &mut [f64],
        vertices: Range<usize>,
    ) {
        let off = vertices.start;
        for v in vertices {
            let ob = (v - off) * k;
            let area = _mm256_set1_pd(mesh.area_triangle[v]);
            let fv = _mm256_set1_pd(f_vertex[v]);
            let mut l = 0;
            while l + 4 <= k {
                let mut hv = _mm256_setzero_pd();
                for j in 0..3 {
                    let c = mesh.cells_on_vertex[v][j] as usize;
                    let w = _mm256_set1_pd(mesh.kite_areas_on_vertex[v][j]);
                    hv = _mm256_add_pd(hv, _mm256_mul_pd(w, ld(h, c * k + l)));
                }
                hv = _mm256_div_pd(hv, area);
                let num = _mm256_add_pd(fv, ld(vorticity, v * k + l));
                st(out, ob + l, _mm256_div_pd(num, hv));
                l += 4;
            }
            while l < k {
                out[ob + l] = pv_vertex_lane(mesh, k, v, l, h, vorticity, f_vertex);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn pv_edge(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        apvm_factor: f64,
        dt: f64,
        pv_vertex: &[f64],
        pv_cell: &[f64],
        u: &[f64],
        v: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        let half = _mm256_set1_pd(0.5);
        let adt = _mm256_set1_pd(apvm_factor * dt);
        for e in edges {
            let [v1, v2] = mesh.vertices_on_edge[e];
            let [c1, c2] = mesh.cells_on_edge[e];
            let (v1b, v2b) = (v1 as usize * k, v2 as usize * k);
            let (c1b, c2b) = (c1 as usize * k, c2 as usize * k);
            let ob = (e - off) * k;
            let idv = _mm256_set1_pd(kc.inv_dv[e]);
            let idc = _mm256_set1_pd(kc.inv_dc[e]);
            let mut l = 0;
            while l + 4 <= k {
                let p1 = ld(pv_vertex, v1b + l);
                let p2 = ld(pv_vertex, v2b + l);
                let base = _mm256_mul_pd(half, _mm256_add_pd(p1, p2));
                let grad_t = _mm256_mul_pd(_mm256_sub_pd(p2, p1), idv);
                let grad_n = _mm256_mul_pd(
                    _mm256_sub_pd(ld(pv_cell, c2b + l), ld(pv_cell, c1b + l)),
                    idc,
                );
                let upwind = _mm256_add_pd(
                    _mm256_mul_pd(ld(u, e * k + l), grad_n),
                    _mm256_mul_pd(ld(v, e * k + l), grad_t),
                );
                st(out, ob + l, _mm256_sub_pd(base, _mm256_mul_pd(adt, upwind)));
                l += 4;
            }
            while l < k {
                out[ob + l] =
                    pv_edge_lane(mesh, kc, k, e, l, apvm_factor, dt, pv_vertex, pv_cell, u, v);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tend_u(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        gravity: f64,
        pv_edge: &[f64],
        u: &[f64],
        h_edge: &[f64],
        ke: &[f64],
        h: &[f64],
        b: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        let g = _mm256_set1_pd(gravity);
        for e in edges {
            let [c1, c2] = mesh.cells_on_edge[e];
            let (c1, c2) = (c1 as usize, c2 as usize);
            let ob = (e - off) * k;
            let idc = _mm256_set1_pd(kc.inv_dc[e]);
            let b1 = _mm256_set1_pd(b[c1]);
            let b2 = _mm256_set1_pd(b[c2]);
            let mut l = 0;
            while l + 4 <= k {
                let pe = ld(pv_edge, e * k + l);
                let mut q = _mm256_setzero_pd();
                for slot in mesh.eoe_range(e) {
                    let eoe = mesh.edges_on_edge[slot] as usize;
                    let w = _mm256_set1_pd(kc.half_weights[slot]);
                    let t = _mm256_mul_pd(
                        _mm256_mul_pd(
                            _mm256_mul_pd(w, ld(u, eoe * k + l)),
                            ld(h_edge, eoe * k + l),
                        ),
                        _mm256_add_pd(pe, ld(pv_edge, eoe * k + l)),
                    );
                    q = _mm256_add_pd(q, t);
                }
                // (ke2 − ke1 + g·(h2 + b2 − h1 − b1)) · 1/dc, replaying
                // the scalar association term by term.
                let hb = _mm256_sub_pd(
                    _mm256_sub_pd(_mm256_add_pd(ld(h, c2 * k + l), b2), ld(h, c1 * k + l)),
                    b1,
                );
                let grad = _mm256_mul_pd(
                    _mm256_add_pd(
                        _mm256_sub_pd(ld(ke, c2 * k + l), ld(ke, c1 * k + l)),
                        _mm256_mul_pd(g, hb),
                    ),
                    idc,
                );
                st(out, ob + l, _mm256_sub_pd(q, grad));
                l += 4;
            }
            while l < k {
                out[ob + l] = tend_u_lane(mesh, kc, k, e, l, gravity, pv_edge, u, h_edge, ke, h, b);
                l += 1;
            }
        }
    }

    /// Vector `d − z` core of the C1 family at lanes `l..l+4` of edge `e`.
    #[inline(always)]
    unsafe fn del_core(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        e: usize,
        l: usize,
        div: &[f64],
        vort: &[f64],
    ) -> __m256d {
        let [c1, c2] = mesh.cells_on_edge[e];
        let [v1, v2] = mesh.vertices_on_edge[e];
        let d = _mm256_mul_pd(
            _mm256_sub_pd(ld(div, c2 as usize * k + l), ld(div, c1 as usize * k + l)),
            _mm256_set1_pd(kc.inv_dc[e]),
        );
        let z = _mm256_mul_pd(
            _mm256_sub_pd(ld(vort, v2 as usize * k + l), ld(vort, v1 as usize * k + l)),
            _mm256_set1_pd(kc.inv_dv[e]),
        );
        _mm256_sub_pd(d, z)
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tend_u_del2(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        nu: f64,
        divergence: &[f64],
        vorticity: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        let nuv = _mm256_set1_pd(nu);
        for e in edges {
            let ob = (e - off) * k;
            let mut l = 0;
            while l + 4 <= k {
                let core = del_core(mesh, kc, k, e, l, divergence, vorticity);
                let cur = ld(out, ob + l);
                st(out, ob + l, _mm256_add_pd(cur, _mm256_mul_pd(nuv, core)));
                l += 4;
            }
            while l < k {
                out[ob + l] += nu * del_core_lane(mesh, kc, k, e, l, divergence, vorticity);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lap_u(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        divergence: &[f64],
        vorticity: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            let mut l = 0;
            while l + 4 <= k {
                let core = del_core(mesh, kc, k, e, l, divergence, vorticity);
                st(out, ob + l, core);
                l += 4;
            }
            while l < k {
                out[ob + l] = del_core_lane(mesh, kc, k, e, l, divergence, vorticity);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tend_u_del4(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        nu4: f64,
        div_lap: &[f64],
        vort_lap: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        let nuv = _mm256_set1_pd(nu4);
        for e in edges {
            let ob = (e - off) * k;
            let mut l = 0;
            while l + 4 <= k {
                let core = del_core(mesh, kc, k, e, l, div_lap, vort_lap);
                let cur = ld(out, ob + l);
                st(out, ob + l, _mm256_sub_pd(cur, _mm256_mul_pd(nuv, core)));
                l += 4;
            }
            while l < k {
                out[ob + l] -= nu4 * del_core_lane(mesh, kc, k, e, l, div_lap, vort_lap);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn d2fdx2(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        h: &[f64],
        out1: &mut [f64],
        out2: &mut [f64],
        edges: Range<usize>,
    ) {
        #[inline(always)]
        unsafe fn lap(
            mesh: &Mesh,
            kc: &KernelCoeffs,
            k: usize,
            c: usize,
            l: usize,
            h: &[f64],
        ) -> __m256d {
            let mut acc = _mm256_setzero_pd();
            let hc = ld(h, c * k + l);
            for slot in mesh.cell_range(c) {
                let nb = mesh.cells_on_cell[slot] as usize;
                let g = _mm256_set1_pd(kc.grad_ratio[slot]);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_sub_pd(ld(h, nb * k + l), hc), g));
            }
            _mm256_div_pd(acc, _mm256_set1_pd(mesh.area_cell[c]))
        }
        let off = edges.start;
        for e in edges {
            let [c1, c2] = mesh.cells_on_edge[e];
            let ob = (e - off) * k;
            let mut l = 0;
            while l + 4 <= k {
                st(out1, ob + l, lap(mesh, kc, k, c1 as usize, l, h));
                st(out2, ob + l, lap(mesh, kc, k, c2 as usize, l, h));
                l += 4;
            }
            while l < k {
                out1[ob + l] = d2fdx2_cell_lane(mesh, kc, k, c1 as usize, l, h);
                out2[ob + l] = d2fdx2_cell_lane(mesh, kc, k, c2 as usize, l, h);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn h_edge(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        config: &ModelConfig,
        k: usize,
        h: &[f64],
        d2fdx2_cell1: &[f64],
        d2fdx2_cell2: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        let half = _mm256_set1_pd(0.5);
        if config.high_order_h_edge {
            for e in edges {
                let [c1, c2] = mesh.cells_on_edge[e];
                let (c1b, c2b) = (c1 as usize * k, c2 as usize * k);
                let ob = (e - off) * k;
                let eb = e * k;
                let blend = _mm256_set1_pd(kc.dc2_12[e] * 0.5);
                let mut l = 0;
                while l + 4 <= k {
                    let avg = _mm256_mul_pd(half, _mm256_add_pd(ld(h, c1b + l), ld(h, c2b + l)));
                    let d2 = _mm256_add_pd(ld(d2fdx2_cell1, eb + l), ld(d2fdx2_cell2, eb + l));
                    st(out, ob + l, _mm256_sub_pd(avg, _mm256_mul_pd(blend, d2)));
                    l += 4;
                }
                while l < k {
                    out[ob + l] = 0.5 * (h[c1b + l] + h[c2b + l])
                        - kc.dc2_12[e] * 0.5 * (d2fdx2_cell1[eb + l] + d2fdx2_cell2[eb + l]);
                    l += 1;
                }
            }
        } else {
            for e in edges {
                let [c1, c2] = mesh.cells_on_edge[e];
                let (c1b, c2b) = (c1 as usize * k, c2 as usize * k);
                let ob = (e - off) * k;
                let mut l = 0;
                while l + 4 <= k {
                    let avg = _mm256_mul_pd(half, _mm256_add_pd(ld(h, c1b + l), ld(h, c2b + l)));
                    st(out, ob + l, avg);
                    l += 4;
                }
                while l < k {
                    out[ob + l] = 0.5 * (h[c1b + l] + h[c2b + l]);
                    l += 1;
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tangential_velocity(
        mesh: &Mesh,
        k: usize,
        u: &[f64],
        out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        for e in edges {
            let ob = (e - off) * k;
            let mut l = 0;
            while l + 4 <= k {
                let mut acc = _mm256_setzero_pd();
                for slot in mesh.eoe_range(e) {
                    let eoe = mesh.edges_on_edge[slot] as usize;
                    let w = _mm256_set1_pd(mesh.weights_on_edge[slot]);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(w, ld(u, eoe * k + l)));
                }
                st(out, ob + l, acc);
                l += 4;
            }
            while l < k {
                out[ob + l] = tangential_velocity_lane(mesh, k, e, l, u);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tangential_pv_edge(
        mesh: &Mesh,
        kc: &KernelCoeffs,
        k: usize,
        apvm_factor: f64,
        dt: f64,
        pv_vertex: &[f64],
        pv_cell: &[f64],
        u: &[f64],
        v_out: &mut [f64],
        pv_edge_out: &mut [f64],
        edges: Range<usize>,
    ) {
        let off = edges.start;
        let half = _mm256_set1_pd(0.5);
        let adt = _mm256_set1_pd(apvm_factor * dt);
        for e in edges {
            let [v1, v2] = mesh.vertices_on_edge[e];
            let [c1, c2] = mesh.cells_on_edge[e];
            let (v1b, v2b) = (v1 as usize * k, v2 as usize * k);
            let (c1b, c2b) = (c1 as usize * k, c2 as usize * k);
            let ob = (e - off) * k;
            let idv = _mm256_set1_pd(kc.inv_dv[e]);
            let idc = _mm256_set1_pd(kc.inv_dc[e]);
            let mut l = 0;
            while l + 4 <= k {
                let mut tv = _mm256_setzero_pd();
                for slot in mesh.eoe_range(e) {
                    let eoe = mesh.edges_on_edge[slot] as usize;
                    let w = _mm256_set1_pd(mesh.weights_on_edge[slot]);
                    tv = _mm256_add_pd(tv, _mm256_mul_pd(w, ld(u, eoe * k + l)));
                }
                st(v_out, ob + l, tv);
                let p1 = ld(pv_vertex, v1b + l);
                let p2 = ld(pv_vertex, v2b + l);
                let base = _mm256_mul_pd(half, _mm256_add_pd(p1, p2));
                let grad_t = _mm256_mul_pd(_mm256_sub_pd(p2, p1), idv);
                let grad_n = _mm256_mul_pd(
                    _mm256_sub_pd(ld(pv_cell, c2b + l), ld(pv_cell, c1b + l)),
                    idc,
                );
                let upwind = _mm256_add_pd(
                    _mm256_mul_pd(ld(u, e * k + l), grad_n),
                    _mm256_mul_pd(tv, grad_t),
                );
                st(
                    pv_edge_out,
                    ob + l,
                    _mm256_sub_pd(base, _mm256_mul_pd(adt, upwind)),
                );
                l += 4;
            }
            while l < k {
                let tv = tangential_velocity_lane(mesh, k, e, l, u);
                v_out[ob + l] = tv;
                pv_edge_out[ob + l] = pv_edge_from_v_lane(
                    mesh,
                    kc,
                    k,
                    e,
                    l,
                    apvm_factor,
                    dt,
                    pv_vertex,
                    pv_cell,
                    u,
                    tv,
                );
                l += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::fused;

    fn setup(k: usize) -> (Mesh, KernelCoeffs, Vec<f64>, Vec<f64>) {
        let mesh = mpas_mesh::generate(3, 0);
        let config = ModelConfig {
            n_tracers: 1,
            high_order_h_edge: true,
            ..Default::default()
        };
        let kc = KernelCoeffs::build(&mesh, &config);
        let u: Vec<f64> = (0..mesh.n_edges() * k)
            .map(|x| (x as f64 * 0.37).sin())
            .collect();
        let h_edge: Vec<f64> = (0..mesh.n_edges() * k)
            .map(|x| 1000.0 + (x as f64 * 0.11).cos())
            .collect();
        (mesh, kc, u, h_edge)
    }

    #[test]
    fn k1_matches_fused_bitwise() {
        // At one layer the layered arrays ARE flat arrays, so the simd
        // tier must reproduce the fused tier bit for bit in both modes.
        let (mesh, kc, u, he) = setup(1);
        let nc = mesh.n_cells();
        let mut want = vec![0.0; nc];
        fused::tend_h(&mesh, &kc, &u, &he, &mut want, 0..nc);
        for mode in [SimdMode::Batch, SimdMode::Avx2] {
            let mut got = vec![0.0; nc];
            tend_h_with(mode, &mesh, &kc, 1, &u, &he, &mut got, 0..nc);
            assert_eq!(want, got, "mode {:?}", mode);
        }
        let mut want_ke = vec![0.0; nc];
        fused::ke(&mesh, &kc, &u, &mut want_ke, 0..nc);
        let mut got_ke = vec![0.0; nc];
        ke(&mesh, &kc, 1, &u, &mut got_ke, 0..nc);
        assert_eq!(want_ke, got_ke);
    }

    #[test]
    fn avx2_matches_batch_bitwise_across_k() {
        // The no-FMA AVX2 chunks must agree with the scalar-batch lanes
        // exactly, including the ragged tail (k = 7 exercises 4 + 3).
        for k in [1usize, 4, 7] {
            let (mesh, kc, u, he) = setup(k);
            let nc = mesh.n_cells();
            let ne = mesh.n_edges();
            let mut a = vec![0.0; nc * k];
            let mut b = vec![0.0; nc * k];
            tend_h_with(SimdMode::Batch, &mesh, &kc, k, &u, &he, &mut a, 0..nc);
            tend_h_with(SimdMode::Avx2, &mesh, &kc, k, &u, &he, &mut b, 0..nc);
            assert_eq!(a, b, "tend_h k={k}");
            let mut ta = vec![0.0; ne * k];
            let mut tb = vec![0.0; ne * k];
            tangential_velocity_with(SimdMode::Batch, &mesh, k, &u, &mut ta, 0..ne);
            tangential_velocity_with(SimdMode::Avx2, &mesh, k, &u, &mut tb, 0..ne);
            assert_eq!(ta, tb, "tangential k={k}");
        }
    }

    #[test]
    fn per_lane_matches_fused_per_layer() {
        // Extract one lane of a k=4 layered run; it must equal a flat
        // fused run over that layer's fields bitwise.
        let k = 4;
        let (mesh, kc, u, he) = setup(k);
        let nc = mesh.n_cells();
        let mut layered = vec![0.0; nc * k];
        tend_h(&mesh, &kc, k, &u, &he, &mut layered, 0..nc);
        for l in 0..k {
            let ul: Vec<f64> = (0..mesh.n_edges()).map(|e| u[e * k + l]).collect();
            let hel: Vec<f64> = (0..mesh.n_edges()).map(|e| he[e * k + l]).collect();
            let mut flat = vec![0.0; nc];
            fused::tend_h(&mesh, &kc, &ul, &hel, &mut flat, 0..nc);
            for i in 0..nc {
                assert_eq!(layered[i * k + l], flat[i], "lane {l} cell {i}");
            }
        }
    }

    #[test]
    fn fused_sweeps_match_their_unfused_pairs_bitwise() {
        // The A2+B2, C2+E and H1+G fused sweeps must store exactly the
        // bits of the standalone kernels, in both modes, tails included.
        for k in [1usize, 4, 7] {
            let (mesh, kc, u, he) = setup(k);
            let nc = mesh.n_cells();
            let ne = mesh.n_edges();
            let nv = mesh.n_vertices();
            let h: Vec<f64> = he[..nc * k].to_vec();
            let f_vertex: Vec<f64> = (0..nv).map(|v| 1e-4 + v as f64 * 1e-9).collect();

            let mut want_ke = vec![0.0; nc * k];
            let mut want_div = vec![0.0; nc * k];
            ke(&mesh, &kc, k, &u, &mut want_ke, 0..nc);
            divergence(&mesh, &kc, k, &u, &mut want_div, 0..nc);
            let mut want_vort = vec![0.0; nv * k];
            vorticity(&mesh, &kc, k, &u, &mut want_vort, 0..nv);
            let mut want_pv = vec![0.0; nv * k];
            pv_vertex(&mesh, k, &h, &want_vort, &f_vertex, &mut want_pv, 0..nv);
            let mut want_pvc = vec![0.0; nc * k];
            kite_average(&mesh, &kc, k, &want_pv, &mut want_pvc, 0..nc);
            let mut want_v = vec![0.0; ne * k];
            tangential_velocity(&mesh, k, &u, &mut want_v, 0..ne);
            let mut want_pve = vec![0.0; ne * k];
            pv_edge(
                &mesh,
                &kc,
                k,
                0.5,
                100.0,
                &want_pv,
                &want_pvc,
                &u,
                &want_v,
                &mut want_pve,
                0..ne,
            );

            for mode in [SimdMode::Batch, SimdMode::Avx2] {
                let mut got_ke = vec![0.0; nc * k];
                let mut got_div = vec![0.0; nc * k];
                ke_divergence_with(mode, &mesh, &kc, k, &u, &mut got_ke, &mut got_div, 0..nc);
                assert_eq!(want_ke, got_ke, "ke k={k} {mode:?}");
                assert_eq!(want_div, got_div, "divergence k={k} {mode:?}");

                let mut got_vort = vec![0.0; nv * k];
                let mut got_pv = vec![0.0; nv * k];
                vorticity_pv_with(
                    mode,
                    &mesh,
                    &kc,
                    k,
                    &u,
                    &h,
                    &f_vertex,
                    &mut got_vort,
                    &mut got_pv,
                    0..nv,
                );
                assert_eq!(want_vort, got_vort, "vorticity k={k} {mode:?}");
                assert_eq!(want_pv, got_pv, "pv_vertex k={k} {mode:?}");

                let mut got_v = vec![0.0; ne * k];
                let mut got_pve = vec![0.0; ne * k];
                tangential_pv_edge_with(
                    mode,
                    &mesh,
                    &kc,
                    k,
                    0.5,
                    100.0,
                    &want_pv,
                    &want_pvc,
                    &u,
                    &mut got_v,
                    &mut got_pve,
                    0..ne,
                );
                assert_eq!(want_v, got_v, "tangential k={k} {mode:?}");
                assert_eq!(want_pve, got_pve, "pv_edge k={k} {mode:?}");
            }
        }
    }

    #[test]
    fn axpy_accumulate_matches_separate_passes() {
        let n = 257;
        let base: Vec<f64> = (0..n).map(|x| (x as f64 * 0.7).sin()).collect();
        let tend: Vec<f64> = (0..n).map(|x| (x as f64 * 0.3).cos()).collect();
        let (coef, weight) = (0.5 * 91.0, 91.0 / 6.0);
        let mut want_out = vec![0.0; n];
        let mut want_acc: Vec<f64> = base.iter().map(|b| b * 1.25).collect();
        axpy(1, &base, &tend, coef, &mut want_out, 0..n);
        accumulate(1, &tend, weight, &mut want_acc, 0..n);
        let mut got_out = vec![0.0; n];
        let mut got_acc: Vec<f64> = base.iter().map(|b| b * 1.25).collect();
        axpy_accumulate(
            1,
            &base,
            &tend,
            coef,
            weight,
            &mut got_out,
            &mut got_acc,
            0..n,
        );
        assert_eq!(want_out, got_out);
        assert_eq!(want_acc, got_acc);
    }

    #[test]
    fn block_ranges_tile_exactly() {
        for (n, b) in [(10, 3), (10, 1), (10, 10), (10, 100), (0, 4), (7, 7)] {
            let mut seen = vec![0usize; n];
            let mut last_end = 0;
            for r in block_ranges(n, b) {
                assert_eq!(r.start, last_end, "blocks must be consecutive");
                last_end = r.end;
                for i in r {
                    seen[i] += 1;
                }
            }
            assert_eq!(last_end, n);
            assert!(seen.iter().all(|&c| c == 1), "n={n} b={b}: {seen:?}");
        }
    }

    #[test]
    fn blocked_sweep_is_bitwise_identical() {
        let k = 4;
        let (mesh, kc, u, he) = setup(k);
        let nc = mesh.n_cells();
        let mut full = vec![0.0; nc * k];
        tend_h(&mesh, &kc, k, &u, &he, &mut full, 0..nc);
        for block in [1usize, 5, 64, nc, nc + 13] {
            let mut tiled = vec![0.0; nc * k];
            for r in block_ranges(nc, block) {
                let (s, e) = (r.start, r.end);
                tend_h(&mesh, &kc, k, &u, &he, &mut tiled[s * k..e * k], r);
            }
            assert_eq!(full, tiled, "block={block}");
        }
    }

    #[test]
    fn default_cell_block_is_sane() {
        assert!(default_cell_block(1, 4) >= 64);
        assert!(default_cell_block(4, 8) >= 64);
        assert!(default_cell_block(1000, 1000) >= 64);
        assert!(default_cell_block(1, 1) <= 1 << 20);
    }
}
