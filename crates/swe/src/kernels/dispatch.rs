//! Per-kernel backend selection for the range-sliced executors.
//!
//! The threaded and hybrid executors carve each Table-I pattern into
//! disjoint output ranges; every worker then needs "this kernel, on this
//! range, on the configured backend". Each function here is that one
//! decision: [`KernelBackend::Scalar`] runs the seed form in
//! [`super::ops`], [`KernelBackend::Fused`] the coefficient fast path in
//! [`super::fused`], and [`KernelBackend::Simd`] the vertical-batching
//! tier in [`super::simd`] at `k = 1` — which is bit-identical to the
//! fused tier (DESIGN.md §14), so cross-executor equivalence holds per
//! backend without re-proving anything per executor.
//!
//! Kernels with nothing to fuse (H1 tangential velocity, E vertex PV)
//! share one arithmetic across all three backends; they are dispatched
//! here anyway so a backend sweep exercises every kernel's simd entry
//! point.

use super::{fused, ops, simd};
use crate::coeffs::KernelCoeffs;
use crate::config::{KernelBackend, ModelConfig};
use mpas_mesh::Mesh;
use std::ops::Range;

/// A1 — thickness tendency on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn tend_h(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    h_edge: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::tend_h(mesh, u, h_edge, out, cells),
        KernelBackend::Fused => fused::tend_h(mesh, kc, u, h_edge, out, cells),
        KernelBackend::Simd => simd::tend_h(mesh, kc, 1, u, h_edge, out, cells),
    }
}

/// T1 — tracer-mass tendency on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn tend_tracer(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    h_edge: &[f64],
    h: &[f64],
    hq: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::tend_tracer(mesh, u, h_edge, h, hq, out, cells),
        KernelBackend::Fused => fused::tend_tracer(mesh, kc, u, h_edge, h, hq, out, cells),
        KernelBackend::Simd => simd::tend_tracer(mesh, kc, 1, u, h_edge, h, hq, out, cells),
    }
}

/// B2 — velocity divergence on the configured backend.
pub fn divergence(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::divergence(mesh, u, out, cells),
        KernelBackend::Fused => fused::divergence(mesh, kc, u, out, cells),
        KernelBackend::Simd => simd::divergence(mesh, kc, 1, u, out, cells),
    }
}

/// A2 — kinetic energy on the configured backend.
pub fn ke(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::ke(mesh, u, out, cells),
        KernelBackend::Fused => fused::ke(mesh, kc, u, out, cells),
        KernelBackend::Simd => simd::ke(mesh, kc, 1, u, out, cells),
    }
}

/// C2 — vertex vorticity on the configured backend.
pub fn vorticity(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    u: &[f64],
    out: &mut [f64],
    vertices: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::vorticity(mesh, u, out, vertices),
        KernelBackend::Fused => fused::vorticity(mesh, kc, u, out, vertices),
        KernelBackend::Simd => simd::vorticity(mesh, kc, 1, u, out, vertices),
    }
}

/// A3 — kite-area average of vertex vorticity on the configured backend.
pub fn vorticity_cell(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    vorticity: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::vorticity_cell(mesh, vorticity, out, cells),
        KernelBackend::Fused => fused::vorticity_cell(mesh, kc, vorticity, out, cells),
        KernelBackend::Simd => simd::kite_average(mesh, kc, 1, vorticity, out, cells),
    }
}

/// F — kite-area average of vertex PV on the configured backend.
pub fn pv_cell(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    pv_vertex: &[f64],
    out: &mut [f64],
    cells: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::pv_cell(mesh, pv_vertex, out, cells),
        KernelBackend::Fused => fused::pv_cell(mesh, kc, pv_vertex, out, cells),
        KernelBackend::Simd => simd::kite_average(mesh, kc, 1, pv_vertex, out, cells),
    }
}

/// E — vertex potential vorticity (never fused; the scalar and fused
/// backends share the seed form).
#[allow(clippy::too_many_arguments)]
pub fn pv_vertex(
    backend: KernelBackend,
    mesh: &Mesh,
    h: &[f64],
    vorticity: &[f64],
    f_vertex: &[f64],
    out: &mut [f64],
    vertices: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar | KernelBackend::Fused => {
            ops::pv_vertex(mesh, h, vorticity, f_vertex, out, vertices)
        }
        KernelBackend::Simd => simd::pv_vertex(mesh, 1, h, vorticity, f_vertex, out, vertices),
    }
}

/// G — edge PV with APVM upwinding on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn pv_edge(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    apvm_factor: f64,
    dt: f64,
    pv_vertex: &[f64],
    pv_cell: &[f64],
    u: &[f64],
    v: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => {
            ops::pv_edge(mesh, apvm_factor, dt, pv_vertex, pv_cell, u, v, out, edges)
        }
        KernelBackend::Fused => fused::pv_edge(
            mesh,
            kc,
            apvm_factor,
            dt,
            pv_vertex,
            pv_cell,
            u,
            v,
            out,
            edges,
        ),
        KernelBackend::Simd => simd::pv_edge(
            mesh,
            kc,
            1,
            apvm_factor,
            dt,
            pv_vertex,
            pv_cell,
            u,
            v,
            out,
            edges,
        ),
    }
}

/// B1 — momentum tendency on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn tend_u(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    gravity: f64,
    pv_edge: &[f64],
    u: &[f64],
    h_edge: &[f64],
    ke: &[f64],
    h: &[f64],
    b: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => {
            ops::tend_u(mesh, gravity, pv_edge, u, h_edge, ke, h, b, out, edges)
        }
        KernelBackend::Fused => {
            fused::tend_u(mesh, kc, gravity, pv_edge, u, h_edge, ke, h, b, out, edges)
        }
        KernelBackend::Simd => simd::tend_u(
            mesh, kc, 1, gravity, pv_edge, u, h_edge, ke, h, b, out, edges,
        ),
    }
}

/// C1 — del2 dissipation (read-modify-write) on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn tend_u_del2(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    nu: f64,
    divergence: &[f64],
    vorticity: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::tend_u_del2(mesh, nu, divergence, vorticity, out, edges),
        KernelBackend::Fused => fused::tend_u_del2(mesh, kc, nu, divergence, vorticity, out, edges),
        KernelBackend::Simd => {
            simd::tend_u_del2(mesh, kc, 1, nu, divergence, vorticity, out, edges)
        }
    }
}

/// C1 (chained) — inner vector Laplacian on the configured backend.
pub fn lap_u(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    divergence: &[f64],
    vorticity: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::lap_u(mesh, divergence, vorticity, out, edges),
        KernelBackend::Fused => fused::lap_u(mesh, kc, divergence, vorticity, out, edges),
        KernelBackend::Simd => simd::lap_u(mesh, kc, 1, divergence, vorticity, out, edges),
    }
}

/// C1 (chained) — outer del4 stage (read-modify-write) on the configured
/// backend.
#[allow(clippy::too_many_arguments)]
pub fn tend_u_del4(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    nu4: f64,
    div_lap: &[f64],
    vort_lap: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::tend_u_del4(mesh, nu4, div_lap, vort_lap, out, edges),
        KernelBackend::Fused => fused::tend_u_del4(mesh, kc, nu4, div_lap, vort_lap, out, edges),
        KernelBackend::Simd => simd::tend_u_del4(mesh, kc, 1, nu4, div_lap, vort_lap, out, edges),
    }
}

/// D1/D2 — second-derivative blend terms on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn d2fdx2(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    h: &[f64],
    out1: &mut [f64],
    out2: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => ops::d2fdx2(mesh, h, out1, out2, edges),
        KernelBackend::Fused => fused::d2fdx2(mesh, kc, h, out1, out2, edges),
        KernelBackend::Simd => simd::d2fdx2(mesh, kc, 1, h, out1, out2, edges),
    }
}

/// H2 — thickness at edges on the configured backend.
#[allow(clippy::too_many_arguments)]
pub fn h_edge(
    backend: KernelBackend,
    mesh: &Mesh,
    kc: &KernelCoeffs,
    config: &ModelConfig,
    h: &[f64],
    d2fdx2_cell1: &[f64],
    d2fdx2_cell2: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar => {
            ops::h_edge(mesh, config, h, d2fdx2_cell1, d2fdx2_cell2, out, edges)
        }
        KernelBackend::Fused => {
            fused::h_edge(mesh, kc, config, h, d2fdx2_cell1, d2fdx2_cell2, out, edges)
        }
        KernelBackend::Simd => simd::h_edge(
            mesh,
            kc,
            config,
            1,
            h,
            d2fdx2_cell1,
            d2fdx2_cell2,
            out,
            edges,
        ),
    }
}

/// H1 — tangential velocity (never fused; the scalar and fused backends
/// share the seed form).
pub fn tangential_velocity(
    backend: KernelBackend,
    mesh: &Mesh,
    u: &[f64],
    out: &mut [f64],
    edges: Range<usize>,
) {
    match backend {
        KernelBackend::Scalar | KernelBackend::Fused => {
            ops::tangential_velocity(mesh, u, out, edges)
        }
        KernelBackend::Simd => simd::tangential_velocity(mesh, 1, u, out, edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_and_simd_agree_bitwise_per_kernel() {
        // The k=1 simd tier must be indistinguishable from the fused tier
        // through the dispatch layer — this is what lets every executor
        // offer the simd backend without per-executor proofs.
        let mesh = mpas_mesh::generate(3, 0);
        let config = ModelConfig {
            high_order_h_edge: true,
            ..Default::default()
        };
        let kc = KernelCoeffs::build(&mesh, &config);
        let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
        let u: Vec<f64> = (0..ne).map(|e| (e as f64 * 0.13).sin()).collect();
        let h: Vec<f64> = (0..nc).map(|i| 900.0 + (i as f64 * 0.7).cos()).collect();

        let mut a = vec![0.0; nv];
        let mut b = vec![0.0; nv];
        vorticity(KernelBackend::Fused, &mesh, &kc, &u, &mut a, 0..nv);
        vorticity(KernelBackend::Simd, &mesh, &kc, &u, &mut b, 0..nv);
        assert_eq!(a, b);

        let mut ca = vec![0.0; nc];
        let mut cb = vec![0.0; nc];
        vorticity_cell(KernelBackend::Fused, &mesh, &kc, &a, &mut ca, 0..nc);
        vorticity_cell(KernelBackend::Simd, &mesh, &kc, &b, &mut cb, 0..nc);
        assert_eq!(ca, cb);

        let mut d1a = vec![0.0; ne];
        let mut d2a = vec![0.0; ne];
        let mut d1b = vec![0.0; ne];
        let mut d2b = vec![0.0; ne];
        d2fdx2(
            KernelBackend::Fused,
            &mesh,
            &kc,
            &h,
            &mut d1a,
            &mut d2a,
            0..ne,
        );
        d2fdx2(
            KernelBackend::Simd,
            &mesh,
            &kc,
            &h,
            &mut d1b,
            &mut d2b,
            0..ne,
        );
        let mut ha = vec![0.0; ne];
        let mut hb = vec![0.0; ne];
        h_edge(
            KernelBackend::Fused,
            &mesh,
            &kc,
            &config,
            &h,
            &d1a,
            &d2a,
            &mut ha,
            0..ne,
        );
        h_edge(
            KernelBackend::Simd,
            &mesh,
            &kc,
            &config,
            &h,
            &d1b,
            &d2b,
            &mut hb,
            0..ne,
        );
        assert_eq!(ha, hb);
    }

    #[test]
    fn unfused_kernels_identical_across_all_backends() {
        // H1/E have nothing to fuse: all three backends replay the seed
        // arithmetic and must agree exactly.
        let mesh = mpas_mesh::generate(3, 0);
        let config = ModelConfig::default();
        let kc = KernelCoeffs::build(&mesh, &config);
        let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
        let u: Vec<f64> = (0..ne).map(|e| (e as f64 * 0.29).cos()).collect();
        let h: Vec<f64> = (0..nc).map(|i| 1000.0 + (i as f64).sin()).collect();
        let f_vertex = vec![1e-4; nv];
        let mut vort = vec![0.0; nv];
        vorticity(KernelBackend::Fused, &mesh, &kc, &u, &mut vort, 0..nv);

        let mut outs: Vec<Vec<f64>> = Vec::new();
        for backend in KernelBackend::ALL {
            let mut tv = vec![0.0; ne];
            tangential_velocity(backend, &mesh, &u, &mut tv, 0..ne);
            let mut pv = vec![0.0; nv];
            pv_vertex(backend, &mesh, &h, &vort, &f_vertex, &mut pv, 0..nv);
            tv.extend(pv);
            outs.push(tv);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }
}
