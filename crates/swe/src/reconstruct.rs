//! Edge→cell velocity reconstruction (`mpas_reconstruct`, pattern A4).
//!
//! MPAS uses radial basis functions; we use the simpler constrained
//! least-squares fit with the same stencil shape: at each cell, find the
//! tangent-plane vector `V` minimizing `Σ_e (V·n̂_e − u_e)²` over the cell's
//! edges, subject to `V·r̂ = 0`. The normal equations give a 3×3 system
//! whose inverse is mesh-only, so we precompute per-edge coefficient
//! vectors `c_e = M⁻¹ n̂_e`; at run time `V = Σ_e c_e u_e` — a class-A
//! cell←edges reduction, exactly the pattern shape of Table I's A4.
//!
//! The fit reproduces any uniform tangent flow exactly (unit-tested), which
//! is all the O(h) accuracy the diagnostic output needs.

use mpas_geom::Vec3;
use mpas_mesh::Mesh;

/// Precomputed reconstruction coefficients, CSR-parallel to
/// `mesh.edges_on_cell`.
#[derive(Debug, Clone)]
pub struct ReconstructCoeffs {
    /// One coefficient vector per (cell, edge-slot).
    pub coeffs: Vec<Vec3>,
}

impl ReconstructCoeffs {
    /// Build the per-cell least-squares operators.
    pub fn build(mesh: &Mesh) -> Self {
        let mut coeffs = vec![Vec3::ZERO; mesh.edges_on_cell.len()];
        for i in 0..mesh.n_cells() {
            // Phantom fringe cells of a LocalMesh have empty edge rows;
            // they are never reconstructed.
            if mesh.cell_range(i).is_empty() {
                continue;
            }
            let r = mesh.x_cell[i].normalized();
            // Project each edge normal into the cell's tangent plane; with
            // M = Σ ñ ñᵀ + r̂ r̂ᵀ block-diagonal in the tangent/radial split,
            // the reconstruction is then exactly tangent to the sphere.
            let project = |n: mpas_geom::Vec3| n - r * n.dot(r);
            let mut m = [[0.0f64; 3]; 3];
            let range = mesh.cell_range(i);
            for &e in &mesh.edges_on_cell[range.clone()] {
                let n = project(mesh.normal_edge[e as usize]);
                accumulate_dyad(&mut m, n);
            }
            accumulate_dyad(&mut m, r);
            let minv = invert3(&m);
            for slot in range {
                let n = project(mesh.normal_edge[mesh.edges_on_cell[slot] as usize]);
                coeffs[slot] = mat_vec(&minv, n);
            }
        }
        ReconstructCoeffs { coeffs }
    }
}

fn accumulate_dyad(m: &mut [[f64; 3]; 3], v: Vec3) {
    let a = [v.x, v.y, v.z];
    for r in 0..3 {
        for c in 0..3 {
            m[r][c] += a[r] * a[c];
        }
    }
}

fn mat_vec(m: &[[f64; 3]; 3], v: Vec3) -> Vec3 {
    Vec3::new(
        m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
        m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
        m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
    )
}

/// Inverse of a 3×3 matrix by cofactor expansion.
///
/// # Panics
/// Panics if the matrix is singular (cannot happen for a cell with ≥2
/// non-parallel edge normals plus the radial dyad).
#[allow(clippy::needless_range_loop)]
fn invert3(m: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    assert!(det.abs() > 1e-30, "singular reconstruction matrix");
    let inv_det = 1.0 / det;
    let mut out = [[0.0f64; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            let (r1, r2) = ((r + 1) % 3, (r + 2) % 3);
            let (c1, c2) = ((c + 1) % 3, (c + 2) % 3);
            // Transposed cofactor (adjugate).
            out[c][r] = (m[r1][c1] * m[r2][c2] - m[r1][c2] * m[r2][c1]) * inv_det;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn invert3_roundtrip() {
        let m = [[2.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 1.5]];
        let inv = invert3(&m);
        for r in 0..3 {
            for c in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += m[r][k] * inv[k][c];
                }
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-12, "({r},{c}) = {acc}");
            }
        }
    }

    #[test]
    fn reconstruction_exact_for_solid_body_rotation() {
        let mesh = mpas_mesh::generate(3, 0);
        let rc = ReconstructCoeffs::build(&mesh);
        let omega = Vec3::new(0.1, 0.2, 1.0) * 1e-5;
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| {
                omega
                    .cross(mesh.x_edge[e] * mesh.sphere_radius)
                    .dot(mesh.normal_edge[e])
            })
            .collect();
        for i in 0..mesh.n_cells() {
            let mut v = Vec3::ZERO;
            for (slot, &e) in mesh.edges_on_cell[mesh.cell_range(i)].iter().enumerate() {
                v += rc.coeffs[mesh.cell_range(i).start + slot] * u[e as usize];
            }
            let exact_full = omega.cross(mesh.x_cell[i] * mesh.sphere_radius);
            // The exact solid-body velocity is already tangent; the edge
            // normals differ slightly from the cell tangent plane, so allow
            // a small mesh-scale error.
            let err = (v - exact_full).norm();
            let scale = exact_full.norm().max(1e-12);
            assert!(err / scale < 0.02, "cell {i}: rel err {}", err / scale);
        }
    }

    #[test]
    fn reconstruction_is_tangent_to_sphere() {
        let mesh = mpas_mesh::generate(2, 0);
        let rc = ReconstructCoeffs::build(&mesh);
        let u: Vec<f64> = (0..mesh.n_edges())
            .map(|e| (e as f64 * 0.13).sin())
            .collect();
        for i in 0..mesh.n_cells() {
            let mut v = Vec3::ZERO;
            let range = mesh.cell_range(i);
            for (k, slot) in range.clone().enumerate() {
                let e = mesh.edges_on_cell[range.start + k] as usize;
                v += rc.coeffs[slot] * u[e];
            }
            let radial = v.dot(mesh.x_cell[i].normalized()).abs();
            assert!(radial < 1e-9 * v.norm().max(1.0), "cell {i}");
        }
    }
}
