//! Checkpoint/restart of the prognostic state.
//!
//! MPAS's finalization phase writes the computation results back to disk
//! (§II.B); this module provides the equivalent: a compact binary snapshot
//! of `(time, h, u, tracers)` that restarts a run bit-for-bit (restart
//! equivalence is asserted by integration tests — the result of `run(5);
//! save; load; run(5)` equals `run(10)` exactly, since RK4 carries no
//! other state between steps).
//!
//! Three on-disk formats are understood:
//!
//! * `MPASSTA3` (written for layered runs) — `time, n_layers, n_h, n_u,
//!   n_tracers`, then the lane-interleaved layered f64 payloads of `h`
//!   (`n_h` = cells·k), `u` and each tracer-mass field, little-endian.
//! * `MPASSTA2` (written for single-layer runs) — `time, n_h, n_u,
//!   n_tracers`, then the raw little-endian f64 payload of `h`, `u` and
//!   each tracer-mass field.
//! * `MPASSTA1` (read-only, pre-tracer) — same layout without the tracer
//!   count/payload; loads as a zero-tracer state.

use crate::layers::LayeredState;
use crate::state::State;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"MPASSTA1";
const MAGIC_V2: &[u8; 8] = b"MPASSTA2";
const MAGIC_V3: &[u8; 8] = b"MPASSTA3";

fn write_f64s(w: &mut impl Write, xs: &[f64]) -> io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64s(r: &mut impl Read, n: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f64::from_le_bytes(b));
    }
    Ok(out)
}

/// Write a state snapshot (current `MPASSTA2` format).
pub fn save_state(state: &State, time: f64, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC_V2)?;
    w.write_all(&time.to_le_bytes())?;
    w.write_all(&(state.h.len() as u64).to_le_bytes())?;
    w.write_all(&(state.u.len() as u64).to_le_bytes())?;
    w.write_all(&(state.tracers.len() as u64).to_le_bytes())?;
    write_f64s(&mut w, &state.h)?;
    write_f64s(&mut w, &state.u)?;
    for tr in &state.tracers {
        write_f64s(&mut w, tr)?;
    }
    w.flush()
}

/// Read a snapshot written by [`save_state`] (either format generation).
/// Returns `(state, time)`; v1 files come back with no tracers.
pub fn load_state(path: impl AsRef<Path>) -> io::Result<(State, f64)> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let has_tracers = match &magic {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an MPASSTA1/MPASSTA2 state file",
            ))
        }
    };
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let time = f64::from_le_bytes(b);
    let nh = read_u64(&mut r)? as usize;
    let nu = read_u64(&mut r)? as usize;
    let nt = if has_tracers {
        read_u64(&mut r)? as usize
    } else {
        0
    };
    let h = read_f64s(&mut r, nh)?;
    let u = read_f64s(&mut r, nu)?;
    let mut tracers = Vec::with_capacity(nt);
    for _ in 0..nt {
        tracers.push(read_f64s(&mut r, nh)?);
    }
    Ok((State { h, u, tracers }, time))
}

/// Write a layered snapshot (`MPASSTA3`). The lane-interleaved payloads
/// are written verbatim, so the round trip is bitwise for every layer.
pub fn save_layered_state(
    state: &LayeredState,
    time: f64,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC_V3)?;
    w.write_all(&time.to_le_bytes())?;
    w.write_all(&(state.n_layers as u64).to_le_bytes())?;
    w.write_all(&(state.h.len() as u64).to_le_bytes())?;
    w.write_all(&(state.u.len() as u64).to_le_bytes())?;
    w.write_all(&(state.tracers.len() as u64).to_le_bytes())?;
    write_f64s(&mut w, &state.h)?;
    write_f64s(&mut w, &state.u)?;
    for tr in &state.tracers {
        write_f64s(&mut w, tr)?;
    }
    w.flush()
}

/// Read a layered snapshot written by [`save_layered_state`]. Returns
/// `(state, time)`.
pub fn load_layered_state(path: impl AsRef<Path>) -> io::Result<(LayeredState, f64)> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC_V3 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an MPASSTA3 layered state file",
        ));
    }
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let time = f64::from_le_bytes(b);
    let n_layers = read_u64(&mut r)? as usize;
    if n_layers == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "layered checkpoint declares zero layers",
        ));
    }
    let nh = read_u64(&mut r)? as usize;
    let nu = read_u64(&mut r)? as usize;
    let nt = read_u64(&mut r)? as usize;
    if !nh.is_multiple_of(n_layers) || !nu.is_multiple_of(n_layers) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "layered checkpoint payload is not a multiple of n_layers",
        ));
    }
    let h = read_f64s(&mut r, nh)?;
    let u = read_f64s(&mut r, nu)?;
    let mut tracers = Vec::with_capacity(nt);
    for _ in 0..nt {
        tracers.push(read_f64s(&mut r, nh)?);
    }
    Ok((
        LayeredState {
            n_layers,
            h,
            u,
            tracers,
        },
        time,
    ))
}

impl crate::layers::LayeredModel {
    /// Write the layered state and model time to a checkpoint file.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> io::Result<()> {
        save_layered_state(&self.state, self.time, path)
    }

    /// Restore the layered state and time from an `MPASSTA3` checkpoint.
    /// Layer count, mesh sizes and tracer count are all verified; the
    /// layered diagnostics and the cached layer-0 view are rebuilt so the
    /// next step proceeds exactly as if the run had never stopped.
    pub fn load_checkpoint(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let (state, time) = load_layered_state(path)?;
        let k = self.n_layers();
        if state.n_layers != k {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint carries {} layer(s), model expects {k}",
                    state.n_layers
                ),
            ));
        }
        if state.h.len() != self.mesh.n_cells() * k || state.u.len() != self.mesh.n_edges() * k {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint size does not match the mesh",
            ));
        }
        if state.n_tracers() != self.config.n_tracers {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint carries {} tracer(s), model expects {}",
                    state.n_tracers(),
                    self.config.n_tracers
                ),
            ));
        }
        self.state = state;
        self.time = time;
        self.refresh_after_restore();
        Ok(())
    }
}

impl crate::model::ShallowWaterModel {
    /// Write the current state and model time to a checkpoint file.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> io::Result<()> {
        save_state(&self.state, self.time, path)
    }

    /// Restore state and time from a checkpoint (mesh/test case must match
    /// the one the checkpoint was written with; sizes are verified, and the
    /// tracer count must match the model's configuration). Diagnostics are
    /// recomputed so the next step proceeds exactly as if the run had never
    /// stopped.
    pub fn load_checkpoint(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let (state, time) = load_state(path)?;
        if state.h.len() != self.mesh.n_cells() || state.u.len() != self.mesh.n_edges() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint size does not match the mesh",
            ));
        }
        if state.n_tracers() != self.config.n_tracers {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint carries {} tracer(s), model expects {}",
                    state.n_tracers(),
                    self.config.n_tracers
                ),
            ));
        }
        self.state = state;
        self.time = time;
        self.refresh_diagnostics();
        crate::kernels::mpas_reconstruct(&self.mesh, &self.coeffs, &self.state.u, &mut self.recon);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::ShallowWaterModel;
    use crate::testcases::TestCase;
    use std::sync::Arc;

    #[test]
    fn snapshot_roundtrip_with_tracers() {
        let state = State {
            h: vec![1.5, 2.5, -3.25],
            u: vec![0.125, 9.75],
            tracers: vec![vec![0.5, 0.25, 4.0], vec![-1.0, 2.0, 0.0]],
        };
        let path = std::env::temp_dir().join("mpas_state_roundtrip.bin");
        save_state(&state, 1234.5, &path).unwrap();
        let (back, t) = load_state(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, state);
        assert_eq!(t, 1234.5);
    }

    #[test]
    fn v1_files_still_load_without_tracers() {
        // Hand-write the legacy layout: magic, time, n_h, n_u, payload.
        let path = std::env::temp_dir().join("mpas_state_v1.bin");
        let mut w = BufWriter::new(std::fs::File::create(&path).unwrap());
        w.write_all(MAGIC_V1).unwrap();
        w.write_all(&42.0f64.to_le_bytes()).unwrap();
        w.write_all(&2u64.to_le_bytes()).unwrap();
        w.write_all(&1u64.to_le_bytes()).unwrap();
        write_f64s(&mut w, &[7.0, 8.0]).unwrap();
        write_f64s(&mut w, &[9.0]).unwrap();
        w.flush().unwrap();
        drop(w);
        let (back, t) = load_state(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, 42.0);
        assert_eq!(back.h, vec![7.0, 8.0]);
        assert_eq!(back.u, vec![9.0]);
        assert!(back.tracers.is_empty());
    }

    #[test]
    fn restart_is_bitwise_exact() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let cfg = ModelConfig::default();
        let tc = TestCase::Case5;
        let path = std::env::temp_dir().join("mpas_restart_test.bin");

        let mut straight = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        straight.run_steps(10);

        let mut resumed = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        resumed.run_steps(5);
        resumed.save_checkpoint(&path).unwrap();
        // A fresh model (even advanced elsewhere) restores exactly.
        let mut fresh = ShallowWaterModel::new(mesh, cfg, tc, None);
        fresh.run_steps(2);
        fresh.load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        fresh.run_steps(5);

        assert_eq!(straight.state.max_abs_diff(&fresh.state), 0.0);
        assert_eq!(straight.time, fresh.time);
    }

    #[test]
    fn restart_round_trips_tracer_fields_bitwise() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let cfg = ModelConfig {
            n_tracers: 2,
            ..Default::default()
        };
        let tc = TestCase::Case5;
        let path = std::env::temp_dir().join("mpas_restart_tracers.bin");

        let mut straight = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        straight.run_steps(8);

        let mut resumed = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        resumed.run_steps(3);
        resumed.save_checkpoint(&path).unwrap();
        let mut fresh = ShallowWaterModel::new(mesh, cfg, tc, None);
        fresh.load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        fresh.run_steps(5);

        assert_eq!(straight.state.n_tracers(), 2);
        assert_eq!(fresh.state.n_tracers(), 2);
        assert_eq!(straight.state.max_abs_diff(&fresh.state), 0.0);
    }

    fn layered_cfg(k: usize, n_tracers: usize) -> ModelConfig {
        ModelConfig {
            kernel_backend: crate::config::KernelBackend::Simd,
            n_layers: k,
            n_tracers,
            ..Default::default()
        }
    }

    #[test]
    fn layered_restart_is_bitwise_exact_including_tracers() {
        use crate::layers::LayeredModel;
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let cfg = layered_cfg(3, 2);
        let tc = TestCase::Case5;
        let path = std::env::temp_dir().join("mpas_layered_restart.bin");

        let mut straight = LayeredModel::new(mesh.clone(), cfg, tc, None);
        straight.run_steps(6);

        let mut resumed = LayeredModel::new(mesh.clone(), cfg, tc, None);
        resumed.run_steps(3);
        resumed.save_checkpoint(&path).unwrap();
        let mut fresh = LayeredModel::new(mesh, cfg, tc, None);
        fresh.run_steps(1);
        fresh.load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        fresh.run_steps(3);

        // Every lane of every field — including both tracer fields — must
        // round-trip bit for bit (compare the layered hash AND the raw
        // payloads so a hash collision can't mask a diff).
        assert_eq!(straight.state, fresh.state);
        assert_eq!(straight.state.state_hash(), fresh.state.state_hash());
        assert_eq!(straight.time, fresh.time);
    }

    #[test]
    fn layered_checkpoint_layer_count_mismatch_is_rejected() {
        use crate::layers::LayeredModel;
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        let tc = TestCase::Case5;
        let path = std::env::temp_dir().join("mpas_layered_kmismatch.bin");
        let m = LayeredModel::new(mesh.clone(), layered_cfg(4, 0), tc, None);
        m.save_checkpoint(&path).unwrap();
        let mut other = LayeredModel::new(mesh, layered_cfg(2, 0), tc, None);
        let err = other.load_checkpoint(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn layered_loader_rejects_flat_files_and_vice_versa() {
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        let tc = TestCase::Case5;
        let flat_path = std::env::temp_dir().join("mpas_flat_for_layered.bin");
        let m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), tc, None);
        m.save_checkpoint(&flat_path).unwrap();
        assert!(load_layered_state(&flat_path).is_err());
        std::fs::remove_file(&flat_path).ok();

        let layered_path = std::env::temp_dir().join("mpas_layered_for_flat.bin");
        let lm = crate::layers::LayeredModel::new(mesh, layered_cfg(2, 0), tc, None);
        lm.save_checkpoint(&layered_path).unwrap();
        assert!(load_state(&layered_path).is_err());
        std::fs::remove_file(&layered_path).ok();
    }

    #[test]
    fn tracer_count_mismatch_is_rejected() {
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        let tc = TestCase::Case5;
        let with = ModelConfig {
            n_tracers: 1,
            ..Default::default()
        };
        let path = std::env::temp_dir().join("mpas_restart_tracer_mismatch.bin");
        let m = ShallowWaterModel::new(mesh.clone(), with, tc, None);
        m.save_checkpoint(&path).unwrap();
        let mut without = ShallowWaterModel::new(mesh, ModelConfig::default(), tc, None);
        let err = without.load_checkpoint(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let mesh_small = Arc::new(mpas_mesh::generate(2, 0));
        let mesh_big = Arc::new(mpas_mesh::generate(3, 0));
        let cfg = ModelConfig::default();
        let tc = TestCase::Case2 { alpha: 0.0 };
        let path = std::env::temp_dir().join("mpas_restart_mismatch.bin");
        let small = ShallowWaterModel::new(mesh_small, cfg, tc, None);
        small.save_checkpoint(&path).unwrap();
        let mut big = ShallowWaterModel::new(mesh_big, cfg, tc, None);
        let err = big.load_checkpoint(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
