//! Checkpoint/restart of the prognostic state.
//!
//! MPAS's finalization phase writes the computation results back to disk
//! (§II.B); this module provides the equivalent: a compact binary snapshot
//! of `(time, h, u)` that restarts a run bit-for-bit (restart equivalence
//! is asserted by integration tests — the result of `run(5); save; load;
//! run(5)` equals `run(10)` exactly, since RK4 carries no other state
//! between steps).

use crate::state::State;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MPASSTA1";

/// Write a state snapshot.
pub fn save_state(state: &State, time: f64, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&time.to_le_bytes())?;
    w.write_all(&(state.h.len() as u64).to_le_bytes())?;
    w.write_all(&(state.u.len() as u64).to_le_bytes())?;
    for &x in &state.h {
        w.write_all(&x.to_le_bytes())?;
    }
    for &x in &state.u {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()
}

/// Read a snapshot written by [`save_state`]. Returns `(state, time)`.
pub fn load_state(path: impl AsRef<Path>) -> io::Result<(State, f64)> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an MPASSTA1 state file",
        ));
    }
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    let time = f64::from_le_bytes(b);
    r.read_exact(&mut b)?;
    let nh = u64::from_le_bytes(b) as usize;
    r.read_exact(&mut b)?;
    let nu = u64::from_le_bytes(b) as usize;
    let mut read_f64s = |n: usize| -> io::Result<Vec<f64>> {
        let mut out = Vec::with_capacity(n);
        let mut b = [0u8; 8];
        for _ in 0..n {
            r.read_exact(&mut b)?;
            out.push(f64::from_le_bytes(b));
        }
        Ok(out)
    };
    let h = read_f64s(nh)?;
    let u = read_f64s(nu)?;
    Ok((State { h, u }, time))
}

impl crate::model::ShallowWaterModel {
    /// Write the current state and model time to a checkpoint file.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> io::Result<()> {
        save_state(&self.state, self.time, path)
    }

    /// Restore state and time from a checkpoint (mesh/test case must match
    /// the one the checkpoint was written with; sizes are verified).
    /// Diagnostics are recomputed so the next step proceeds exactly as if
    /// the run had never stopped.
    pub fn load_checkpoint(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let (state, time) = load_state(path)?;
        if state.h.len() != self.mesh.n_cells() || state.u.len() != self.mesh.n_edges() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint size does not match the mesh",
            ));
        }
        self.state = state;
        self.time = time;
        if self.config.fused_coeffs {
            crate::kernels::compute_solve_diagnostics_fused(
                &self.mesh,
                &self.config,
                &self.kernel_coeffs,
                &self.state.h,
                &self.state.u,
                &self.f_vertex,
                self.dt,
                &mut self.diag,
            );
        } else {
            crate::kernels::compute_solve_diagnostics(
                &self.mesh,
                &self.config,
                &self.state.h,
                &self.state.u,
                &self.f_vertex,
                self.dt,
                &mut self.diag,
            );
        }
        crate::kernels::mpas_reconstruct(&self.mesh, &self.coeffs, &self.state.u, &mut self.recon);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::ShallowWaterModel;
    use crate::testcases::TestCase;
    use std::sync::Arc;

    #[test]
    fn snapshot_roundtrip() {
        let state = State {
            h: vec![1.5, 2.5, -3.25],
            u: vec![0.125, 9.75],
        };
        let path = std::env::temp_dir().join("mpas_state_roundtrip.bin");
        save_state(&state, 1234.5, &path).unwrap();
        let (back, t) = load_state(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, state);
        assert_eq!(t, 1234.5);
    }

    #[test]
    fn restart_is_bitwise_exact() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let cfg = ModelConfig::default();
        let tc = TestCase::Case5;
        let path = std::env::temp_dir().join("mpas_restart_test.bin");

        let mut straight = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        straight.run_steps(10);

        let mut resumed = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        resumed.run_steps(5);
        resumed.save_checkpoint(&path).unwrap();
        // A fresh model (even advanced elsewhere) restores exactly.
        let mut fresh = ShallowWaterModel::new(mesh, cfg, tc, None);
        fresh.run_steps(2);
        fresh.load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        fresh.run_steps(5);

        assert_eq!(straight.state.max_abs_diff(&fresh.state), 0.0);
        assert_eq!(straight.time, fresh.time);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let mesh_small = Arc::new(mpas_mesh::generate(2, 0));
        let mesh_big = Arc::new(mpas_mesh::generate(3, 0));
        let cfg = ModelConfig::default();
        let tc = TestCase::Case2 { alpha: 0.0 };
        let path = std::env::temp_dir().join("mpas_restart_mismatch.bin");
        let small = ShallowWaterModel::new(mesh_small, cfg, tc, None);
        small.save_checkpoint(&path).unwrap();
        let mut big = ShallowWaterModel::new(mesh_big, cfg, tc, None);
        let err = big.load_checkpoint(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
