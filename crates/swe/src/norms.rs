//! Williamson et al. (1992) normalized error norms.
//!
//! `l1 = I(|x − x_ref|) / I(|x_ref|)`, `l2` with squares, `linf` with
//! maxima, where `I` is the area-weighted surface integral.

/// Normalized l1 / l2 / l∞ error norms of a field against a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorNorms {
    /// Area-weighted mean absolute error, normalized.
    pub l1: f64,
    /// Area-weighted RMS error, normalized.
    pub l2: f64,
    /// Maximum absolute error, normalized.
    pub linf: f64,
}

impl ErrorNorms {
    /// Compute the norms. `weights` are cell areas (or any positive
    /// quadrature weights).
    pub fn compute(x: &[f64], x_ref: &[f64], weights: &[f64]) -> Self {
        assert_eq!(x.len(), x_ref.len());
        assert_eq!(x.len(), weights.len());
        let mut n1 = 0.0;
        let mut d1 = 0.0;
        let mut n2 = 0.0;
        let mut d2 = 0.0;
        let mut ninf: f64 = 0.0;
        let mut dinf: f64 = 0.0;
        for k in 0..x.len() {
            let w = weights[k];
            let err = (x[k] - x_ref[k]).abs();
            let refv = x_ref[k].abs();
            n1 += w * err;
            d1 += w * refv;
            n2 += w * err * err;
            d2 += w * refv * refv;
            ninf = ninf.max(err);
            dinf = dinf.max(refv);
        }
        ErrorNorms {
            l1: n1 / d1.max(f64::MIN_POSITIVE),
            l2: (n2 / d2.max(f64::MIN_POSITIVE)).sqrt(),
            linf: ninf / dinf.max(f64::MIN_POSITIVE),
        }
    }
}

impl std::fmt::Display for ErrorNorms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "l1={:.3e} l2={:.3e} linf={:.3e}",
            self.l1, self.l2, self.linf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_gives_zero_norms() {
        let x = vec![1.0, 2.0, 3.0];
        let w = vec![1.0, 1.0, 1.0];
        let n = ErrorNorms::compute(&x, &x, &w);
        assert_eq!(n.l1, 0.0);
        assert_eq!(n.l2, 0.0);
        assert_eq!(n.linf, 0.0);
    }

    #[test]
    fn uniform_relative_error() {
        // x = (1+ε) x_ref everywhere ⇒ every norm equals ε.
        let x_ref = vec![2.0, 5.0, 1.0, 7.0];
        let eps = 0.01;
        let x: Vec<f64> = x_ref.iter().map(|&v| v * (1.0 + eps)).collect();
        let w = vec![0.3, 1.2, 0.7, 2.0];
        let n = ErrorNorms::compute(&x, &x_ref, &w);
        assert!((n.l1 - eps).abs() < 1e-12);
        assert!((n.l2 - eps).abs() < 1e-12);
        assert!((n.linf - eps).abs() < 1e-12);
    }

    #[test]
    fn linf_ignores_weights() {
        let x_ref = vec![1.0, 1.0];
        let x = vec![1.0, 2.0];
        let a = ErrorNorms::compute(&x, &x_ref, &[1.0, 1.0]);
        let b = ErrorNorms::compute(&x, &x_ref, &[1.0, 1000.0]);
        assert_eq!(a.linf, b.linf);
        assert!(a.l1 < b.l1);
    }
}
