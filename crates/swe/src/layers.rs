//! Multi-layer state and the vertical-batching SIMD driver (DESIGN.md §14).
//!
//! [`LayeredState`] generalizes [`State`] to `k` independent vertical
//! layers stored structure-of-arrays with **layer-major contiguous lanes
//! per entity**: `h[cell * k + lane]`, `u[edge * k + lane]`. One gathered
//! stencil index then feeds all `k` lanes — exactly the amortization the
//! [`crate::kernels::simd`] tier exploits — and extracting lane `l` with a
//! stride-`k` copy recovers a flat [`State`].
//!
//! The layers are `k` *independent* shallow-water instances sharing one
//! mesh, topography, Coriolis field and `dt`. Layer 0 carries the
//! unperturbed test case (validation applies to it unchanged); layer
//! `l > 0` starts from the same state with `h` and the tracer masses
//! scaled by [`layer_h_scale`], so the lanes decorrelate without changing
//! any per-lane arithmetic. Because every simd kernel evaluates the fused
//! expression per lane, **layer 0 of a `k`-layer run is bitwise identical
//! to a single-layer fused run**, and layer `l` is bitwise identical to a
//! flat run started from the scaled state — properties the equivalence
//! suite asserts with `==`, not tolerances.
//!
//! [`LayeredModel`] mirrors the RK-4 driver of [`crate::rk4`] stage for
//! stage (same substep factors, same quadrature weights, same kernel call
//! order, same forcing and boundary hooks) with every sweep cache-blocked
//! through [`crate::kernels::simd::block_ranges`]: with the SFC mesh
//! ordering, consecutive index blocks tile the space-filling curve, so a
//! block's gathered neighborhoods stay L2-resident across the kernels of
//! a substep. Cell-center velocity reconstruction is a single-layer
//! diagnostic product and is not computed per layer.

use crate::coeffs::KernelCoeffs;
use crate::config::ModelConfig;
use crate::kernels::simd;
use crate::model::compute_equilibrium_forcing;
use crate::norms::ErrorNorms;
use crate::rk4::{RK_SUBSTEP, RK_WEIGHTS};
use crate::state::{Diagnostics, State};
use crate::testcases::TestCase;
use mpas_mesh::Mesh;
use mpas_telemetry::digest::Fnv1a;
use mpas_telemetry::Recorder;
use std::sync::Arc;

/// Thickness/tracer scale factor of layer `l`: layer 0 is the unperturbed
/// test case, deeper layers are progressively (and deterministically)
/// perturbed so the lanes carry distinct data.
pub fn layer_h_scale(l: usize) -> f64 {
    1.0 + 1e-3 * l as f64
}

/// Copy lane `l` of a layered field into a flat one.
fn take_lane(src: &[f64], k: usize, l: usize, dst: &mut [f64]) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = src[i * k + l];
    }
}

/// Prognostic fields of `k` vertical layers, lanes contiguous per entity.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredState {
    /// Number of vertical layers (lanes per entity).
    pub n_layers: usize,
    /// Fluid thickness, `n_cells · k`, indexed `cell * k + lane`.
    pub h: Vec<f64>,
    /// Normal velocity, `n_edges · k`, indexed `edge * k + lane`.
    pub u: Vec<f64>,
    /// Tracer mass `h·q`, one `n_cells · k` vector per tracer.
    pub tracers: Vec<Vec<f64>>,
}

impl LayeredState {
    /// Zero-initialized layered state.
    pub fn zeros(mesh: &Mesh, k: usize, n_tracers: usize) -> Self {
        LayeredState {
            n_layers: k,
            h: vec![0.0; mesh.n_cells() * k],
            u: vec![0.0; mesh.n_edges() * k],
            tracers: vec![vec![0.0; mesh.n_cells() * k]; n_tracers],
        }
    }

    /// Broadcast a flat state across `k` layers, scaling `h` and the
    /// tracer masses of layer `l` by [`layer_h_scale`]`(l)` (velocity is
    /// shared unscaled). Layer 0 reproduces `flat` exactly.
    pub fn broadcast(mesh: &Mesh, flat: &State, k: usize) -> Self {
        let mut s = Self::zeros(mesh, k, flat.n_tracers());
        for i in 0..mesh.n_cells() {
            for l in 0..k {
                s.h[i * k + l] = flat.h[i] * layer_h_scale(l);
            }
        }
        for e in 0..mesh.n_edges() {
            for l in 0..k {
                s.u[e * k + l] = flat.u[e];
            }
        }
        for (dst, src) in s.tracers.iter_mut().zip(&flat.tracers) {
            for i in 0..mesh.n_cells() {
                for l in 0..k {
                    dst[i * k + l] = src[i] * layer_h_scale(l);
                }
            }
        }
        s
    }

    /// Extract lane `l` as a flat [`State`] (stride-`k` copies).
    pub fn extract_layer(&self, mesh: &Mesh, l: usize) -> State {
        let k = self.n_layers;
        assert!(l < k, "layer {l} out of {k}");
        let mut flat = State::zeros_with_tracers(mesh, self.tracers.len());
        take_lane(&self.h, k, l, &mut flat.h);
        take_lane(&self.u, k, l, &mut flat.u);
        for (dst, src) in flat.tracers.iter_mut().zip(&self.tracers) {
            take_lane(src, k, l, dst);
        }
        flat
    }

    /// Number of tracer fields carried.
    pub fn n_tracers(&self) -> usize {
        self.tracers.len()
    }

    /// `self = a` without reallocating when shapes match.
    pub fn copy_from(&mut self, a: &LayeredState) {
        self.n_layers = a.n_layers;
        self.h.copy_from_slice(&a.h);
        self.u.copy_from_slice(&a.u);
        self.tracers.resize_with(a.tracers.len(), Vec::new);
        for (dst, src) in self.tracers.iter_mut().zip(&a.tracers) {
            dst.resize(src.len(), 0.0);
            dst.copy_from_slice(src);
        }
    }

    /// FNV-1a digest over every lane of every field (bitwise, layer-major
    /// per entity — the layered analogue of `state_hash`).
    pub fn state_hash(&self) -> u64 {
        let mut d = Fnv1a::new();
        d.write_f64_slice(&self.h);
        d.write_f64_slice(&self.u);
        for t in &self.tracers {
            d.write_f64_slice(t);
        }
        d.finish()
    }
}

/// Diagnostics of `k` layers (the Table-I intermediates, lane-interleaved
/// like [`LayeredState`]).
#[derive(Debug, Clone)]
pub struct LayeredDiagnostics {
    /// Thickness at edges.
    pub h_edge: Vec<f64>,
    /// Kinetic energy at cells.
    pub ke: Vec<f64>,
    /// Relative vorticity at vertices.
    pub vorticity: Vec<f64>,
    /// Relative vorticity interpolated to cells.
    pub vorticity_cell: Vec<f64>,
    /// Velocity divergence at cells.
    pub divergence: Vec<f64>,
    /// Potential vorticity at vertices.
    pub pv_vertex: Vec<f64>,
    /// Potential vorticity at cells.
    pub pv_cell: Vec<f64>,
    /// Potential vorticity at edges (APVM upwinded).
    pub pv_edge: Vec<f64>,
    /// Tangential velocity at edges.
    pub v: Vec<f64>,
    /// Second-derivative blend term at the edge's cell-1 side.
    pub d2fdx2_cell1: Vec<f64>,
    /// Second-derivative blend term at the edge's cell-2 side.
    pub d2fdx2_cell2: Vec<f64>,
}

impl LayeredDiagnostics {
    /// Zero-initialized layered diagnostics.
    pub fn zeros(mesh: &Mesh, k: usize) -> Self {
        let (nc, ne, nv) = (
            mesh.n_cells() * k,
            mesh.n_edges() * k,
            mesh.n_vertices() * k,
        );
        LayeredDiagnostics {
            h_edge: vec![0.0; ne],
            ke: vec![0.0; nc],
            vorticity: vec![0.0; nv],
            vorticity_cell: vec![0.0; nc],
            divergence: vec![0.0; nc],
            pv_vertex: vec![0.0; nv],
            pv_cell: vec![0.0; nc],
            pv_edge: vec![0.0; ne],
            v: vec![0.0; ne],
            d2fdx2_cell1: vec![0.0; ne],
            d2fdx2_cell2: vec![0.0; ne],
        }
    }

    /// Extract lane `l` as a flat [`Diagnostics`].
    pub fn extract_layer(&self, mesh: &Mesh, k: usize, l: usize, out: &mut Diagnostics) {
        take_lane(&self.h_edge, k, l, &mut out.h_edge);
        take_lane(&self.ke, k, l, &mut out.ke);
        take_lane(&self.vorticity, k, l, &mut out.vorticity);
        take_lane(&self.vorticity_cell, k, l, &mut out.vorticity_cell);
        take_lane(&self.divergence, k, l, &mut out.divergence);
        take_lane(&self.pv_vertex, k, l, &mut out.pv_vertex);
        take_lane(&self.pv_cell, k, l, &mut out.pv_cell);
        take_lane(&self.pv_edge, k, l, &mut out.pv_edge);
        take_lane(&self.v, k, l, &mut out.v);
        take_lane(&self.d2fdx2_cell1, k, l, &mut out.d2fdx2_cell1);
        take_lane(&self.d2fdx2_cell2, k, l, &mut out.d2fdx2_cell2);
        let _ = mesh;
    }
}

/// Tendencies of `k` layers.
#[derive(Debug, Clone)]
pub struct LayeredTendencies {
    /// Thickness tendency at cells.
    pub tend_h: Vec<f64>,
    /// Normal-velocity tendency at edges.
    pub tend_u: Vec<f64>,
    /// Tracer-mass tendencies at cells, one vector per tracer.
    pub tend_tracers: Vec<Vec<f64>>,
}

impl LayeredTendencies {
    /// Zero-initialized layered tendencies.
    pub fn zeros(mesh: &Mesh, k: usize, n_tracers: usize) -> Self {
        LayeredTendencies {
            tend_h: vec![0.0; mesh.n_cells() * k],
            tend_u: vec![0.0; mesh.n_edges() * k],
            tend_tracers: vec![vec![0.0; mesh.n_cells() * k]; n_tracers],
        }
    }
}

struct LayeredWorkspace {
    provis: LayeredState,
    tend: LayeredTendencies,
    acc: LayeredState,
}

/// A `k`-layer shallow-water simulation advanced by the simd kernel tier
/// with cache-blocked sweeps. Serial by construction (the threaded and
/// hybrid executors take the simd backend at one layer through
/// [`crate::kernels::dispatch`]).
pub struct LayeredModel {
    /// The mesh being integrated.
    pub mesh: Arc<Mesh>,
    /// Numerical options (`config.n_layers` is this model's `k`).
    pub config: ModelConfig,
    /// The Williamson scenario layer 0 was initialized from.
    pub test_case: TestCase,
    /// Layered prognostic state.
    pub state: LayeredState,
    /// Layered diagnostics (consistent with `state`).
    pub diag: LayeredDiagnostics,
    /// Bottom topography at cells (single-layer, broadcast across lanes).
    pub b: Vec<f64>,
    /// Coriolis parameter at vertices (single-layer).
    pub f_vertex: Vec<f64>,
    /// Fused kernel coefficients the simd lanes read.
    pub kernel_coeffs: Arc<KernelCoeffs>,
    /// Fixed forcing for forced cases, broadcast across lanes.
    forcing: Option<LayeredTendencies>,
    ws: LayeredWorkspace,
    /// Model time in seconds.
    pub time: f64,
    /// Time-step size in seconds.
    pub dt: f64,
    /// Cache-tile length in entities for blocked sweeps.
    cell_block: usize,
    recorder: Recorder,
    layer0: State,
    layer0_diag: Diagnostics,
}

impl LayeredModel {
    /// Initialize a `config.n_layers`-layer model from a test case.
    /// `dt = None` picks the mesh-dependent stable default.
    pub fn new(mesh: Arc<Mesh>, config: ModelConfig, test_case: TestCase, dt: Option<f64>) -> Self {
        Self::new_shared(mesh, config, test_case, dt, None)
    }

    /// Like [`LayeredModel::new`], but reuse an already-built coefficient
    /// table (must match this exact mesh and config).
    pub fn new_shared(
        mesh: Arc<Mesh>,
        config: ModelConfig,
        test_case: TestCase,
        dt: Option<f64>,
        shared_coeffs: Option<Arc<KernelCoeffs>>,
    ) -> Self {
        let k = config.n_layers;
        assert!(k >= 1, "n_layers must be at least 1");
        let flat = test_case.initial_state_with_tracers(&mesh, config.n_tracers);
        let state = LayeredState::broadcast(&mesh, &flat, k);
        let b = test_case.topography(&mesh);
        let f_vertex = test_case.coriolis_vertex(&mesh);
        let kernel_coeffs =
            shared_coeffs.unwrap_or_else(|| Arc::new(KernelCoeffs::build(&mesh, &config)));
        let dt = dt.unwrap_or_else(|| ModelConfig::suggested_dt(&mesh));
        let cell_block = simd::default_cell_block(k, 4);
        let mut diag = LayeredDiagnostics::zeros(&mesh, k);
        solve_diagnostics_layered(
            &mesh,
            &config,
            &kernel_coeffs,
            k,
            cell_block,
            &state.h,
            &state.u,
            &f_vertex,
            dt,
            &mut diag,
            &Recorder::noop(),
        );
        let forcing = if test_case.needs_forcing() {
            let flat_f = compute_equilibrium_forcing(
                &mesh,
                &config,
                &kernel_coeffs,
                &test_case,
                &b,
                &f_vertex,
                dt,
            );
            let mut lf = LayeredTendencies::zeros(&mesh, k, 0);
            for i in 0..mesh.n_cells() {
                for l in 0..k {
                    lf.tend_h[i * k + l] = flat_f.tend_h[i];
                }
            }
            for e in 0..mesh.n_edges() {
                for l in 0..k {
                    lf.tend_u[e * k + l] = flat_f.tend_u[e];
                }
            }
            Some(lf)
        } else {
            None
        };
        let ws = LayeredWorkspace {
            provis: state.clone(),
            tend: LayeredTendencies::zeros(&mesh, k, state.n_tracers()),
            acc: state.clone(),
        };
        let mut m = LayeredModel {
            layer0: State::zeros_with_tracers(&mesh, state.n_tracers()),
            layer0_diag: Diagnostics::zeros(&mesh),
            state,
            diag,
            b,
            f_vertex,
            kernel_coeffs,
            forcing,
            ws,
            time: 0.0,
            dt,
            cell_block,
            recorder: Recorder::noop(),
            config,
            test_case,
            mesh,
        };
        m.refresh_layer0();
        m
    }

    /// Route this model's `swe.layered.*` / `swe.simd.kernel.*` telemetry
    /// into `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Route this model's telemetry into `rec`.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// Number of vertical layers.
    pub fn n_layers(&self) -> usize {
        self.state.n_layers
    }

    /// Override the cache-tile length (entities per block) for the
    /// blocked sweeps. Any positive value produces bitwise-identical
    /// results; this only moves the L2 working-set boundary.
    pub fn set_cell_block(&mut self, block: usize) {
        self.cell_block = block.max(1);
    }

    /// The cache-tile length currently in use.
    pub fn cell_block(&self) -> usize {
        self.cell_block
    }

    /// Cached flat view of layer 0 (refreshed after every step).
    pub fn layer0(&self) -> &State {
        &self.layer0
    }

    /// Cached flat diagnostics of layer 0.
    pub fn layer0_diag(&self) -> &Diagnostics {
        &self.layer0_diag
    }

    /// Extract any layer as a flat [`State`].
    pub fn extract_layer(&self, l: usize) -> State {
        self.state.extract_layer(&self.mesh, l)
    }

    /// Advance one RK-4 step (all layers).
    pub fn step(&mut self) {
        {
            let _t = self
                .recorder
                .span_timed("measured", "swe.step", "swe.layered.step_seconds");
            self.step_inner();
        }
        self.refresh_layer0();
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn step_inner(&mut self) {
        let mesh = &self.mesh;
        let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
        let k = self.state.n_layers;
        let kc = &self.kernel_coeffs;
        let block = self.cell_block;
        let dt = self.dt;
        self.ws.acc.copy_from(&self.state);
        self.ws.provis.copy_from(&self.state);

        for stage in 0..4 {
            compute_tend_layered(
                mesh,
                &self.config,
                kc,
                k,
                block,
                &self.ws.provis.h,
                &self.ws.provis.u,
                &self.b,
                &self.diag,
                &mut self.ws.tend,
                &self.recorder,
            );
            if !self.ws.provis.tracers.is_empty() {
                let _t = self.recorder.time("swe.simd.kernel.tend_tracer.seconds");
                for (hq, out) in self
                    .ws
                    .provis
                    .tracers
                    .iter()
                    .zip(self.ws.tend.tend_tracers.iter_mut())
                {
                    for r in simd::block_ranges(nc, block) {
                        let (s, e) = (r.start * k, r.end * k);
                        simd::tend_tracer(
                            mesh,
                            kc,
                            k,
                            &self.ws.provis.u,
                            &self.diag.h_edge,
                            &self.ws.provis.h,
                            hq,
                            &mut out[s..e],
                            r,
                        );
                    }
                }
            }
            if let Some(f) = &self.forcing {
                simd::accumulate(k, &f.tend_h, 1.0, &mut self.ws.tend.tend_h, 0..nc);
                simd::accumulate(k, &f.tend_u, 1.0, &mut self.ws.tend.tend_u, 0..ne);
            }
            simd::enforce_boundary(mesh, k, &mut self.ws.tend.tend_u, 0..ne);

            if stage < 3 {
                // One fused pass over the tendencies feeds both the next
                // provisional state and the RK accumulator (X2+X4).
                advance_layered(
                    k,
                    nc,
                    ne,
                    &self.state,
                    &self.ws.tend,
                    RK_SUBSTEP[stage] * dt,
                    RK_WEIGHTS[stage] * dt,
                    &mut self.ws.provis,
                    &mut self.ws.acc,
                );
                solve_diagnostics_layered(
                    mesh,
                    &self.config,
                    kc,
                    k,
                    block,
                    &self.ws.provis.h,
                    &self.ws.provis.u,
                    &self.f_vertex,
                    dt,
                    &mut self.diag,
                    &self.recorder,
                );
            } else {
                accumulate_layered(
                    k,
                    nc,
                    ne,
                    &self.ws.tend,
                    RK_WEIGHTS[stage] * dt,
                    &mut self.ws.acc,
                );
                // The accumulator holds the final state; swap it in
                // instead of copying it (the next step rebuilds `acc`).
                std::mem::swap(&mut self.state, &mut self.ws.acc);
                solve_diagnostics_layered(
                    mesh,
                    &self.config,
                    kc,
                    k,
                    block,
                    &self.state.h,
                    &self.state.u,
                    &self.f_vertex,
                    dt,
                    &mut self.diag,
                    &self.recorder,
                );
            }
        }
        self.time += dt;
    }

    /// Recompute the layered diagnostics and the cached layer-0 view from
    /// the current state (used after a checkpoint restore).
    pub(crate) fn refresh_after_restore(&mut self) {
        solve_diagnostics_layered(
            &self.mesh,
            &self.config,
            &self.kernel_coeffs,
            self.state.n_layers,
            self.cell_block,
            &self.state.h,
            &self.state.u,
            &self.f_vertex,
            self.dt,
            &mut self.diag,
            &Recorder::noop(),
        );
        self.refresh_layer0();
    }

    fn refresh_layer0(&mut self) {
        let k = self.state.n_layers;
        take_lane(&self.state.h, k, 0, &mut self.layer0.h);
        take_lane(&self.state.u, k, 0, &mut self.layer0.u);
        self.layer0
            .resize_tracers(self.mesh.n_cells(), self.state.n_tracers());
        for (dst, src) in self.layer0.tracers.iter_mut().zip(&self.state.tracers) {
            take_lane(src, k, 0, dst);
        }
        self.diag
            .extract_layer(&self.mesh, k, 0, &mut self.layer0_diag);
    }

    /// Number of steps needed to reach `days` of simulated time.
    pub fn steps_for_days(&self, days: f64) -> usize {
        (days * mpas_geom::SECONDS_PER_DAY / self.dt).ceil() as usize
    }

    /// Total fluid mass `∫ h dA` of one layer.
    pub fn total_mass_layer(&self, l: usize) -> f64 {
        let k = self.state.n_layers;
        (0..self.mesh.n_cells())
            .map(|i| self.state.h[i * k + l] * self.mesh.area_cell[i])
            .sum()
    }

    /// Total fluid mass of layer 0 (the validated lane).
    pub fn total_mass(&self) -> f64 {
        self.total_mass_layer(0)
    }

    /// Total mass of tracer `t` in layer 0.
    pub fn total_tracer(&self, t: usize) -> f64 {
        (0..self.mesh.n_cells())
            .map(|i| self.layer0.tracers[t][i] * self.mesh.area_cell[i])
            .sum()
    }

    /// Layer-0 thickness error norms against the test case's analytic
    /// solution at the current model time.
    pub fn h_error_norms(&self) -> ErrorNorms {
        let reference: Vec<f64> = (0..self.mesh.n_cells())
            .map(|i| {
                self.test_case
                    .reference_thickness_at(self.mesh.x_cell[i], self.time)
            })
            .collect();
        ErrorNorms::compute(&self.layer0.h, &reference, &self.mesh.area_cell)
    }

    /// Layer-0 maximum Courant number over edges.
    pub fn max_courant(&self) -> f64 {
        let g = self.config.gravity;
        (0..self.mesh.n_edges())
            .map(|e| {
                let c = self.layer0.u[e].abs() + (g * self.layer0_diag.h_edge[e].max(0.0)).sqrt();
                c * self.dt / self.mesh.dc_edge[e]
            })
            .fold(0.0f64, f64::max)
    }

    /// FNV-1a digest over every lane of the layered state.
    pub fn state_hash(&self) -> u64 {
        self.state.state_hash()
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_diagnostics_layered(
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    k: usize,
    block: usize,
    h: &[f64],
    u: &[f64],
    f_vertex: &[f64],
    dt: f64,
    diag: &mut LayeredDiagnostics,
    rec: &Recorder,
) {
    let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_vertices());
    if config.high_order_h_edge {
        let _t = rec.time("swe.simd.kernel.d2fdx2.seconds");
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::d2fdx2(
                mesh,
                kc,
                k,
                h,
                &mut diag.d2fdx2_cell1[s..e],
                &mut diag.d2fdx2_cell2[s..e],
                r,
            );
        }
    }
    {
        let _t = rec.time("swe.simd.kernel.h_edge.seconds");
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::h_edge(
                mesh,
                kc,
                config,
                k,
                h,
                &diag.d2fdx2_cell1,
                &diag.d2fdx2_cell2,
                &mut diag.h_edge[s..e],
                r,
            );
        }
    }
    if config.advection_only {
        return;
    }
    // The C2+E fused vertex sweep fills `vorticity` and `pv_vertex` in one
    // pass; both consumers (`vorticity_cell`, `pv_cell`) follow.
    {
        let _t = rec.time("swe.simd.kernel.vorticity_pv.seconds");
        for r in simd::block_ranges(nv, block) {
            let (s, e) = (r.start * k, r.end * k);
            let (vort, pv) = (&mut diag.vorticity, &mut diag.pv_vertex);
            simd::vorticity_pv(
                mesh,
                kc,
                k,
                u,
                h,
                f_vertex,
                &mut vort[s..e],
                &mut pv[s..e],
                r,
            );
        }
    }
    {
        let _t = rec.time("swe.simd.kernel.ke_divergence.seconds");
        for r in simd::block_ranges(nc, block) {
            let (s, e) = (r.start * k, r.end * k);
            let (ke, div) = (&mut diag.ke, &mut diag.divergence);
            simd::ke_divergence(mesh, kc, k, u, &mut ke[s..e], &mut div[s..e], r);
        }
    }
    {
        let _t = rec.time("swe.simd.kernel.vorticity_cell.seconds");
        for r in simd::block_ranges(nc, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::kite_average(
                mesh,
                kc,
                k,
                &diag.vorticity,
                &mut diag.vorticity_cell[s..e],
                r,
            );
        }
    }
    {
        let _t = rec.time("swe.simd.kernel.pv_cell.seconds");
        for r in simd::block_ranges(nc, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::kite_average(mesh, kc, k, &diag.pv_vertex, &mut diag.pv_cell[s..e], r);
        }
    }
    // The H1+G fused edge sweep reconstructs the tangential velocity and
    // feeds it straight into the APVM term (pv_vertex/pv_cell are done).
    {
        let _t = rec.time("swe.simd.kernel.tangential_pv_edge.seconds");
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            let (v, pe) = (&mut diag.v, &mut diag.pv_edge);
            simd::tangential_pv_edge(
                mesh,
                kc,
                k,
                config.apvm_factor,
                dt,
                &diag.pv_vertex,
                &diag.pv_cell,
                u,
                &mut v[s..e],
                &mut pe[s..e],
                r,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn compute_tend_layered(
    mesh: &Mesh,
    config: &ModelConfig,
    kc: &KernelCoeffs,
    k: usize,
    block: usize,
    h: &[f64],
    u: &[f64],
    b: &[f64],
    diag: &LayeredDiagnostics,
    tend: &mut LayeredTendencies,
    rec: &Recorder,
) {
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
    {
        let _t = rec.time("swe.simd.kernel.tend_h.seconds");
        for r in simd::block_ranges(nc, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::tend_h(mesh, kc, k, u, &diag.h_edge, &mut tend.tend_h[s..e], r);
        }
    }
    if config.advection_only {
        tend.tend_u.fill(0.0);
        return;
    }
    {
        let _t = rec.time("swe.simd.kernel.tend_u.seconds");
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::tend_u(
                mesh,
                kc,
                k,
                config.gravity,
                &diag.pv_edge,
                u,
                &diag.h_edge,
                &diag.ke,
                h,
                b,
                &mut tend.tend_u[s..e],
                r,
            );
        }
    }
    if config.del2_viscosity != 0.0 {
        let _t = rec.time("swe.simd.kernel.tend_u_del2.seconds");
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::tend_u_del2(
                mesh,
                kc,
                k,
                config.del2_viscosity,
                &diag.divergence,
                &diag.vorticity,
                &mut tend.tend_u[s..e],
                r,
            );
        }
    }
    if config.del4_viscosity != 0.0 {
        let _t = rec.time("swe.simd.kernel.tend_u_del4.seconds");
        let nv = mesh.n_vertices();
        let mut lap = vec![0.0; ne * k];
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::lap_u(
                mesh,
                kc,
                k,
                &diag.divergence,
                &diag.vorticity,
                &mut lap[s..e],
                r,
            );
        }
        let mut div_lap = vec![0.0; nc * k];
        for r in simd::block_ranges(nc, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::divergence(mesh, kc, k, &lap, &mut div_lap[s..e], r);
        }
        let mut vort_lap = vec![0.0; nv * k];
        for r in simd::block_ranges(nv, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::vorticity(mesh, kc, k, &lap, &mut vort_lap[s..e], r);
        }
        for r in simd::block_ranges(ne, block) {
            let (s, e) = (r.start * k, r.end * k);
            simd::tend_u_del4(
                mesh,
                kc,
                k,
                config.del4_viscosity,
                &div_lap,
                &vort_lap,
                &mut tend.tend_u[s..e],
                r,
            );
        }
    }
}

/// Fused X2+X4: `provis = base + coef·tend` and `acc += weight·tend` in
/// one pass over the tendency arrays (each output keeps its standalone
/// expression, so the fusion is bitwise-invisible).
#[allow(clippy::too_many_arguments)]
fn advance_layered(
    k: usize,
    nc: usize,
    ne: usize,
    base: &LayeredState,
    tend: &LayeredTendencies,
    coef: f64,
    weight: f64,
    provis: &mut LayeredState,
    acc: &mut LayeredState,
) {
    simd::axpy_accumulate(
        k,
        &base.h,
        &tend.tend_h,
        coef,
        weight,
        &mut provis.h,
        &mut acc.h,
        0..nc,
    );
    simd::axpy_accumulate(
        k,
        &base.u,
        &tend.tend_u,
        coef,
        weight,
        &mut provis.u,
        &mut acc.u,
        0..ne,
    );
    for (((b, t), p), a) in base
        .tracers
        .iter()
        .zip(&tend.tend_tracers)
        .zip(provis.tracers.iter_mut())
        .zip(acc.tracers.iter_mut())
    {
        simd::axpy_accumulate(k, b, t, coef, weight, p, a, 0..nc);
    }
}

fn accumulate_layered(
    k: usize,
    nc: usize,
    ne: usize,
    tend: &LayeredTendencies,
    weight: f64,
    acc: &mut LayeredState,
) {
    simd::accumulate(k, &tend.tend_h, weight, &mut acc.h, 0..nc);
    simd::accumulate(k, &tend.tend_u, weight, &mut acc.u, 0..ne);
    for (t, a) in tend.tend_tracers.iter().zip(acc.tracers.iter_mut()) {
        simd::accumulate(k, t, weight, a, 0..nc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelBackend;
    use crate::model::ShallowWaterModel;

    fn simd_config(n_layers: usize, n_tracers: usize) -> ModelConfig {
        ModelConfig {
            kernel_backend: KernelBackend::Simd,
            n_layers,
            n_tracers,
            ..Default::default()
        }
    }

    #[test]
    fn broadcast_extract_roundtrip() {
        let mesh = mpas_mesh::generate(2, 0);
        let flat = TestCase::Case5.initial_state_with_tracers(&mesh, 1);
        let layered = LayeredState::broadcast(&mesh, &flat, 3);
        // Layer 0 is the unperturbed state, bit for bit.
        assert_eq!(layered.extract_layer(&mesh, 0), flat);
        // Layer 2 carries scaled thickness with shared velocity.
        let l2 = layered.extract_layer(&mesh, 2);
        assert_eq!(l2.u, flat.u);
        assert_eq!(l2.h[5], flat.h[5] * layer_h_scale(2));
        assert_ne!(layered.state_hash(), 0);
    }

    #[test]
    fn layer0_matches_single_layer_fused_run_bitwise() {
        // The central §14 claim: every lane replays the fused arithmetic,
        // so layer 0 of a k-layer run IS the single-layer fused run.
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        for tc in [TestCase::Case5, TestCase::Case4] {
            let mut flat = ShallowWaterModel::new(
                mesh.clone(),
                ModelConfig {
                    n_tracers: 1,
                    ..Default::default()
                },
                tc,
                None,
            );
            let mut layered = LayeredModel::new(mesh.clone(), simd_config(4, 1), tc, None);
            flat.run_steps(3);
            layered.run_steps(3);
            assert_eq!(
                layered.layer0().max_abs_diff(&flat.state),
                0.0,
                "{tc:?}: layer 0 diverged from the fused run"
            );
        }
    }

    #[test]
    fn deeper_layers_match_flat_runs_from_scaled_states() {
        // Layer l>0 is bitwise a flat fused run started from the scaled
        // initial state (same broadcast forcing, same dt).
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let k = 3;
        let mut layered = LayeredModel::new(mesh.clone(), simd_config(k, 0), TestCase::Case5, None);
        layered.run_steps(2);
        for l in 1..k {
            let mut flat =
                ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case5, None);
            for h in flat.state.h.iter_mut() {
                *h *= layer_h_scale(l);
            }
            flat.refresh_diagnostics();
            flat.run_steps(2);
            assert_eq!(
                layered.extract_layer(l).max_abs_diff(&flat.state),
                0.0,
                "layer {l} diverged"
            );
        }
    }

    #[test]
    fn cache_block_size_does_not_change_bits() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mut reference =
            LayeredModel::new(mesh.clone(), simd_config(4, 1), TestCase::Case6, None);
        reference.run_steps(2);
        for block in [1usize, 7, 100, usize::MAX / 2] {
            let mut m = LayeredModel::new(mesh.clone(), simd_config(4, 1), TestCase::Case6, None);
            m.set_cell_block(block);
            m.run_steps(2);
            assert_eq!(m.state, reference.state, "block {block} changed bits");
        }
    }

    #[test]
    fn all_layers_conserve_mass() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let k = 4;
        let mut m = LayeredModel::new(mesh, simd_config(k, 0), TestCase::Case5, None);
        let m0: Vec<f64> = (0..k).map(|l| m.total_mass_layer(l)).collect();
        m.run_steps(8);
        for (l, &before) in m0.iter().enumerate() {
            let drift = (m.total_mass_layer(l) - before) / before;
            assert!(drift.abs() < 1e-13, "layer {l} mass drift {drift:e}");
        }
        // Scaled layers really carry distinct mass.
        assert!(m0[1] > m0[0]);
    }

    #[test]
    fn forced_case_background_stays_fixed_across_layer0() {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let mut m = LayeredModel::new(mesh.clone(), simd_config(2, 0), TestCase::Case4, None);
        // Replace every lane of the layered state with the bare background.
        let bg = TestCase::Case4.background_state(&mesh);
        m.state = LayeredState::broadcast(&mesh, &bg, 2);
        // Re-derive diagnostics for the replaced state (lane 0 only is the
        // true equilibrium; lane 1 is scaled and may drift).
        solve_diagnostics_layered(
            &m.mesh.clone(),
            &m.config.clone(),
            &m.kernel_coeffs.clone(),
            2,
            m.cell_block(),
            &m.state.h.clone(),
            &m.state.u.clone(),
            &m.f_vertex.clone(),
            m.dt,
            &mut m.diag,
            &Recorder::noop(),
        );
        let before = m.state.extract_layer(&m.mesh, 0);
        m.run_steps(2);
        assert_eq!(m.layer0().max_abs_diff(&before), 0.0, "background drifted");
    }

    #[test]
    fn per_kernel_telemetry_spans_land() {
        let rec = Recorder::new();
        let mesh = Arc::new(mpas_mesh::generate(2, 0));
        let mut m = LayeredModel::new(mesh, simd_config(2, 1), TestCase::Case5, None)
            .with_recorder(rec.clone());
        m.run_steps(1);
        let snap = rec.snapshot();
        for kernel in [
            "tend_h",
            "tend_u",
            "h_edge",
            "vorticity_pv",
            "ke_divergence",
            "tangential_pv_edge",
            "tend_tracer",
        ] {
            let name = format!("swe.simd.kernel.{kernel}.seconds");
            let h = snap.histogram(&name).unwrap_or_else(|| panic!("{name}"));
            assert!(h.count > 0, "{name} empty");
        }
        assert!(snap.histogram("swe.layered.step_seconds").is_some());
    }
}
