//! Scalar-diagnostics time series: the record a climate modeler watches
//! during a run (mass, energy, enstrophy, Courant number, error norms),
//! with CSV export.

use crate::model::ShallowWaterModel;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// One sampled row of scalar diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Model time, seconds.
    pub time: f64,
    /// Total fluid mass, kg/m³-normalized volume.
    pub mass: f64,
    /// Total energy.
    pub energy: f64,
    /// Potential enstrophy.
    pub enstrophy: f64,
    /// Maximum Courant number.
    pub courant: f64,
    /// l2 thickness error vs the analytic reference (NaN if unavailable).
    pub h_l2: f64,
}

/// A growing record of [`Sample`]s.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The samples, in sampling order.
    pub samples: Vec<Sample>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample the model's current scalar diagnostics.
    pub fn record(&mut self, model: &ShallowWaterModel) {
        self.samples.push(Sample {
            time: model.time,
            mass: model.total_mass(),
            energy: model.total_energy(),
            enstrophy: model.potential_enstrophy(),
            courant: model.max_courant(),
            h_l2: model.h_error_norms().l2,
        });
    }

    /// Relative drift of a quantity between the first and last samples.
    pub fn drift(&self, get: impl Fn(&Sample) -> f64) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => (get(b) - get(a)) / get(a),
            _ => 0.0,
        }
    }

    /// Write the history as CSV.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "time_s,mass,energy,enstrophy,max_courant,h_l2")?;
        for s in &self.samples {
            writeln!(
                w,
                "{},{},{},{},{},{}",
                s.time, s.mass, s.energy, s.enstrophy, s.courant, s.h_l2
            )?;
        }
        w.flush()
    }
}

/// Run `n_steps`, sampling every `every` steps (and at start/end).
/// Convenience driver for examples and the CLI.
pub fn run_with_history(model: &mut ShallowWaterModel, n_steps: usize, every: usize) -> History {
    let mut h = History::new();
    h.record(model);
    let every = every.max(1);
    let mut done = 0;
    while done < n_steps {
        let chunk = every.min(n_steps - done);
        model.run_steps(chunk);
        done += chunk;
        h.record(model);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::testcases::TestCase;
    use std::sync::Arc;

    fn model() -> ShallowWaterModel {
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        ShallowWaterModel::new(mesh, ModelConfig::default(), TestCase::Case5, None)
    }

    #[test]
    fn history_samples_at_requested_cadence() {
        let mut m = model();
        let h = run_with_history(&mut m, 10, 3);
        // start + ceil(10/3) samples = 1 + 4.
        assert_eq!(h.samples.len(), 5);
        assert_eq!(h.samples[0].time, 0.0);
        assert!((h.samples.last().unwrap().time - 10.0 * m.dt).abs() < 1e-9);
        // Times strictly increase.
        for w in h.samples.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn drift_reports_machine_precision_mass() {
        let mut m = model();
        let h = run_with_history(&mut m, 8, 2);
        assert!(h.drift(|s| s.mass).abs() < 1e-13);
        assert!(h.drift(|s| s.energy).abs() < 1e-6);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut m = model();
        let h = run_with_history(&mut m, 4, 2);
        let path = std::env::temp_dir().join("mpas_history_test.csv");
        h.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time_s,mass,energy,enstrophy,max_courant,h_l2");
        assert_eq!(lines.len(), 1 + h.samples.len());
        // Every data row parses back to six floats.
        for row in &lines[1..] {
            let fields: Vec<f64> = row.split(',').map(|f| f.parse().unwrap()).collect();
            assert_eq!(fields.len(), 6);
        }
    }

    #[test]
    fn courant_stays_stable_through_history() {
        let mut m = model();
        let h = run_with_history(&mut m, 10, 5);
        for s in &h.samples {
            assert!(s.courant > 0.0 && s.courant < 1.0, "courant {}", s.courant);
        }
    }
}
