//! Great-circle metric, spherical areas, and spherical interpolation.
//!
//! All functions assume their arguments lie on (or are projected onto) the
//! **unit** sphere; multiply lengths by `R` and areas by `R^2` to dimensionalize.

use crate::Vec3;

/// Great-circle (geodesic) arc length between two unit vectors, in radians.
///
/// Uses `atan2(|a x b|, a . b)`, which is accurate for both nearly-parallel
/// and nearly-antipodal points (unlike `acos` of the dot product).
#[inline]
pub fn arc_length(a: Vec3, b: Vec3) -> f64 {
    a.cross(b).norm().atan2(a.dot(b))
}

/// Midpoint of the shorter great-circle arc between two unit vectors.
///
/// # Panics
/// Debug-panics for antipodal points, where the midpoint is undefined.
#[inline]
pub fn arc_midpoint(a: Vec3, b: Vec3) -> Vec3 {
    (a + b).normalized()
}

/// Spherical linear interpolation along the shorter arc; `t=0` gives `a`,
/// `t=1` gives `b`. Falls back to normalized lerp for tiny separations.
pub fn slerp(a: Vec3, b: Vec3, t: f64) -> Vec3 {
    let theta = arc_length(a, b);
    if theta < 1e-12 {
        return a.lerp(b, t).normalized();
    }
    let s = theta.sin();
    (a * ((1.0 - t) * theta).sin() / s + b * (t * theta).sin() / s).normalized()
}

/// Signed spherical area of triangle `(a, b, c)` on the unit sphere.
///
/// Positive when the vertices wind counterclockwise as seen from outside the
/// sphere. Uses Eriksson's solid-angle formula
/// `tan(E/2) = a.(b x c) / (1 + a.b + b.c + c.a)`, which is robust for the
/// small, well-shaped triangles arising from mesh subdivision.
pub fn spherical_triangle_area_signed(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    let num = a.dot(b.cross(c));
    let den = 1.0 + a.dot(b) + b.dot(c) + c.dot(a);
    2.0 * num.atan2(den)
}

/// Unsigned spherical triangle area on the unit sphere.
#[inline]
pub fn spherical_triangle_area(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    spherical_triangle_area_signed(a, b, c).abs()
}

/// Spherical area of a simple polygon given by vertices in order
/// (either orientation), on the unit sphere.
///
/// The polygon is fanned from its (normalized) centroid so that concave or
/// slightly non-planar rings are handled consistently; Voronoi cells on a
/// CVT mesh are convex, making the fan exact.
pub fn spherical_polygon_area(verts: &[Vec3]) -> f64 {
    assert!(verts.len() >= 3, "polygon needs at least 3 vertices");
    let centroid: Vec3 = verts.iter().copied().sum::<Vec3>().normalized();
    let mut area = 0.0;
    for i in 0..verts.len() {
        let j = (i + 1) % verts.len();
        area += spherical_triangle_area_signed(centroid, verts[i], verts[j]);
    }
    area.abs()
}

/// Circumcenter of the spherical triangle `(a, b, c)`: the point equidistant
/// from all three vertices, chosen on the same side as the triangle's
/// orientation normal. This is the Voronoi-vertex generator used for the
/// Delaunay-dual construction.
pub fn spherical_circumcenter(a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    let n = (b - a).cross(c - a);
    debug_assert!(n.norm() > 0.0, "degenerate (collinear) triangle");
    let cc = n.normalized();
    // Orient toward the triangle itself (same hemisphere as the centroid).
    if cc.dot(a + b + c) < 0.0 {
        -cc
    } else {
        cc
    }
}

/// Spherical centroid (center of mass projected to the sphere) of a spherical
/// polygon, computed by fanning into triangles from the vertex average and
/// weighting flat-triangle centroids by spherical triangle areas.
///
/// This is the fixed-point map of Lloyd's algorithm for spherical CVTs: a
/// mesh is *centroidal* when every generator equals the centroid of its cell.
pub fn spherical_polygon_centroid(verts: &[Vec3]) -> Vec3 {
    assert!(verts.len() >= 3);
    let anchor: Vec3 = verts.iter().copied().sum::<Vec3>().normalized();
    let mut acc = Vec3::ZERO;
    for i in 0..verts.len() {
        let j = (i + 1) % verts.len();
        let w = spherical_triangle_area(anchor, verts[i], verts[j]);
        let tri_centroid = (anchor + verts[i] + verts[j]) / 3.0;
        acc += tri_centroid * w;
    }
    acc.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const OCTANT: [Vec3; 3] = [Vec3::X, Vec3::Y, Vec3::Z];

    #[test]
    fn arc_length_quarter_circle() {
        assert!((arc_length(Vec3::X, Vec3::Y) - PI / 2.0).abs() < 1e-14);
    }

    #[test]
    fn arc_length_tiny_separation_is_accurate() {
        let a = Vec3::X;
        let b = Vec3::new(1.0, 1e-8, 0.0).normalized();
        let d = arc_length(a, b);
        assert!((d - 1e-8).abs() < 1e-16, "got {d}");
    }

    #[test]
    fn arc_length_near_antipodal() {
        let a = Vec3::X;
        let b = Vec3::new(-1.0, 1e-8, 0.0).normalized();
        assert!((arc_length(a, b) - (PI - 1e-8)).abs() < 1e-12);
    }

    #[test]
    fn octant_area() {
        let [a, b, c] = OCTANT;
        assert!((spherical_triangle_area(a, b, c) - PI / 2.0).abs() < 1e-13);
        // Signed area flips with orientation.
        assert!((spherical_triangle_area_signed(a, c, b) + PI / 2.0).abs() < 1e-13);
    }

    #[test]
    fn hemisphere_polygon_area() {
        // Equatorial square -> covers... a band? Use 4 equatorial points:
        // polygon with vertices on the equator fanned from its centroid is
        // degenerate; instead test a polar cap quadrilateral.
        let lat = 0.7_f64;
        let ring: Vec<Vec3> = (0..32)
            .map(|k| {
                let lon = 2.0 * PI * k as f64 / 32.0;
                Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
            })
            .collect();
        // Exact polar-cap area: 2*pi*(1 - sin(lat)); the 32-gon slightly less.
        let cap = 2.0 * PI * (1.0 - lat.sin());
        let poly = spherical_polygon_area(&ring);
        assert!(poly < cap && poly > 0.99 * cap, "poly={poly} cap={cap}");
    }

    #[test]
    fn circumcenter_equidistant() {
        let a = Vec3::new(1.0, 0.1, 0.0).normalized();
        let b = Vec3::new(0.9, 0.4, 0.2).normalized();
        let c = Vec3::new(0.95, 0.0, 0.3).normalized();
        let cc = spherical_circumcenter(a, b, c);
        let (da, db, dc) = (arc_length(cc, a), arc_length(cc, b), arc_length(cc, c));
        assert!((da - db).abs() < 1e-12 && (db - dc).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_is_near_triangle() {
        let a = Vec3::new(1.0, 0.01, 0.0).normalized();
        let b = Vec3::new(1.0, 0.0, 0.01).normalized();
        let c = Vec3::new(1.0, -0.01, -0.01).normalized();
        let cc = spherical_circumcenter(a, b, c);
        assert!(
            cc.dot(a) > 0.9,
            "circumcenter flipped to the far hemisphere"
        );
    }

    #[test]
    fn centroid_of_symmetric_polygon_is_center() {
        let lat = 1.2_f64;
        let ring: Vec<Vec3> = (0..6)
            .map(|k| {
                let lon = 2.0 * PI * k as f64 / 6.0;
                Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
            })
            .collect();
        let c = spherical_polygon_centroid(&ring);
        assert!(c.dist(Vec3::Z) < 1e-12);
    }

    #[test]
    fn slerp_stays_on_sphere_and_hits_endpoints() {
        let a = Vec3::new(1.0, 0.2, -0.1).normalized();
        let b = Vec3::new(-0.2, 1.0, 0.4).normalized();
        assert!(slerp(a, b, 0.0).dist(a) < 1e-12);
        assert!(slerp(a, b, 1.0).dist(b) < 1e-12);
        for k in 0..=10 {
            let p = slerp(a, b, k as f64 / 10.0);
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
        // Midpoint of slerp equals arc midpoint.
        assert!(slerp(a, b, 0.5).dist(arc_midpoint(a, b)) < 1e-12);
    }
}
