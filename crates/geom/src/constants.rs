//! Physical constants used throughout the model, matching the values in the
//! MPAS shallow-water core and the Williamson et al. (1992) test suite.

/// Mean Earth radius `a` in meters (the MPAS `sphere_radius` default).
pub const EARTH_RADIUS: f64 = 6.371_22e6;

/// Earth's angular rotation rate `Omega` in rad/s.
pub const OMEGA: f64 = 7.292e-5;

/// Gravitational acceleration `g` in m/s^2 (Williamson standard value).
pub const GRAVITY: f64 = 9.806_16;

/// Seconds per day, used when reporting simulated time in days.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_in_expected_ranges() {
        assert!((6.3e6..6.4e6).contains(&EARTH_RADIUS));
        assert!((7.2e-5..7.3e-5).contains(&OMEGA));
        assert!((9.7..9.9).contains(&GRAVITY));
        assert_eq!(SECONDS_PER_DAY, 24.0 * 3600.0);
    }
}
