//! Longitude/latitude coordinates and local tangent bases.
//!
//! Longitude is in `[0, 2*pi)`, latitude in `[-pi/2, pi/2]`, following the
//! MPAS mesh-file convention.

use crate::Vec3;

/// A (longitude, latitude) pair in radians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LonLat {
    /// Longitude in radians, `[0, 2π)`.
    pub lon: f64,
    /// Latitude in radians, `[-π/2, π/2]`.
    pub lat: f64,
}

impl LonLat {
    /// Construct from radians, normalizing longitude into `[0, 2*pi)`.
    pub fn new(lon: f64, lat: f64) -> Self {
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut lon = lon % two_pi;
        if lon < 0.0 {
            lon += two_pi;
        }
        LonLat { lon, lat }
    }

    /// Unit-sphere Cartesian position.
    pub fn to_unit_vector(self) -> Vec3 {
        Vec3::new(
            self.lat.cos() * self.lon.cos(),
            self.lat.cos() * self.lon.sin(),
            self.lat.sin(),
        )
    }
}

/// Convert a (not necessarily unit) Cartesian position to lon/lat.
pub fn to_lonlat(p: Vec3) -> LonLat {
    let r = p.norm();
    debug_assert!(r > 0.0);
    LonLat::new(p.y.atan2(p.x), (p.z / r).clamp(-1.0, 1.0).asin())
}

/// Local eastward unit vector at `p` (tangent to the latitude circle).
///
/// At the exact poles (where longitude is degenerate) the limit along the
/// `lon = 0` meridian is used, matching the MPAS convention for polar
/// points: `east = ŷ` at both poles.
pub fn east_at(p: Vec3) -> Vec3 {
    let e = Vec3::Z.cross(p);
    if e.norm() < 1e-12 {
        return Vec3::Y;
    }
    e.normalized()
}

/// Local northward unit vector at `p` (tangent, toward the north pole).
///
/// Uses the same `lon = 0` limit at the poles: `north = ∓x̂` at the
/// north/south pole respectively.
pub fn north_at(p: Vec3) -> Vec3 {
    let p = p.normalized();
    let e = Vec3::Z.cross(p);
    if e.norm() < 1e-12 {
        return Vec3::new(-p.z.signum(), 0.0, 0.0);
    }
    p.cross(e).normalized()
}

/// Decompose a Cartesian tangent vector at `p` into (zonal, meridional)
/// components. This is the `uReconstructZonal/Meridional` rotation of the
/// MPAS `mpas_reconstruct` kernel.
pub fn to_zonal_meridional(p: Vec3, v: Vec3) -> (f64, f64) {
    (v.dot(east_at(p)), v.dot(north_at(p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn roundtrip_lonlat_cartesian() {
        for &(lon, lat) in &[(0.0, 0.0), (1.0, 0.5), (3.5, -1.2), (6.0, 1.5)] {
            let ll = LonLat::new(lon, lat);
            let back = to_lonlat(ll.to_unit_vector());
            assert!((back.lon - ll.lon).abs() < 1e-12, "{lon} {lat}");
            assert!((back.lat - ll.lat).abs() < 1e-12);
        }
    }

    #[test]
    fn lon_normalization() {
        let ll = LonLat::new(-PI / 2.0, 0.0);
        assert!((ll.lon - 1.5 * PI).abs() < 1e-12);
    }

    #[test]
    fn east_north_orthonormal_tangent_frame() {
        let p = LonLat::new(1.1, 0.4).to_unit_vector();
        let e = east_at(p);
        let n = north_at(p);
        assert!(e.dot(p).abs() < 1e-12);
        assert!(n.dot(p).abs() < 1e-12);
        assert!(e.dot(n).abs() < 1e-12);
        assert!((e.norm() - 1.0).abs() < 1e-12);
        assert!((n.norm() - 1.0).abs() < 1e-12);
        // Right-handed: east x north = up.
        assert!(e.cross(n).dist(p) < 1e-12);
    }

    #[test]
    fn east_points_along_increasing_longitude() {
        let p = LonLat::new(0.0, 0.0).to_unit_vector(); // (1,0,0)
        assert!(east_at(p).dist(Vec3::Y) < 1e-12);
        assert!(north_at(p).dist(Vec3::Z) < 1e-12);
    }

    #[test]
    fn zonal_meridional_decomposition() {
        let p = LonLat::new(0.7, -0.3).to_unit_vector();
        let v = east_at(p) * 3.0 + north_at(p) * (-2.0);
        let (u, w) = to_zonal_meridional(p, v);
        assert!((u - 3.0).abs() < 1e-12);
        assert!((w + 2.0).abs() < 1e-12);
    }
}
