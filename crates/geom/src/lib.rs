#![warn(missing_docs)]
//! Spherical geometry substrate for the MPAS shallow-water reproduction.
//!
//! Everything in this crate operates on the unit sphere or a sphere of
//! configurable radius. The MPAS horizontal mesh lives on the sphere, so all
//! distances are great-circle arc lengths and all areas are spherical
//! (geodesic) polygon areas. The crate is dependency-light and fully
//! deterministic; it is the foundation for `mpas-mesh`.
//!
//! # Quick example
//! ```
//! use mpas_geom::{Vec3, arc_length, spherical_triangle_area};
//! let a = Vec3::new(1.0, 0.0, 0.0);
//! let b = Vec3::new(0.0, 1.0, 0.0);
//! let c = Vec3::new(0.0, 0.0, 1.0);
//! // One octant of the unit sphere: area 4*pi/8, sides pi/2.
//! assert!((spherical_triangle_area(a, b, c) - std::f64::consts::PI / 2.0).abs() < 1e-12);
//! assert!((arc_length(a, b) - std::f64::consts::PI / 2.0).abs() < 1e-12);
//! ```

mod constants;
mod lonlat;
mod rotation;
mod sphere;
mod vec3;

pub use constants::*;
pub use lonlat::*;
pub use rotation::*;
pub use sphere::*;
pub use vec3::Vec3;
