//! Rotations about arbitrary axes (Rodrigues' formula).
//!
//! Used by the Williamson test cases, which allow the flow axis to be tilted
//! with respect to the rotation axis by an angle `alpha`.

use crate::Vec3;

/// Rotate `v` by angle `theta` (radians, right-hand rule) about the unit
/// vector `axis`.
pub fn rotate_about_axis(v: Vec3, axis: Vec3, theta: f64) -> Vec3 {
    let k = axis.normalized();
    let (s, c) = theta.sin_cos();
    v * c + k.cross(v) * s + k * (k.dot(v) * (1.0 - c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn rotation_preserves_norm_and_axis() {
        let v = Vec3::new(0.3, -0.4, 0.87).normalized();
        let axis = Vec3::new(1.0, 1.0, 0.0);
        let r = rotate_about_axis(v, axis, 0.83);
        assert!((r.norm() - v.norm()).abs() < 1e-14);
        let a = rotate_about_axis(axis, axis, 1.0);
        assert!(a.dist(axis) < 1e-14);
    }

    #[test]
    fn quarter_turn_about_z() {
        let r = rotate_about_axis(Vec3::X, Vec3::Z, PI / 2.0);
        assert!(r.dist(Vec3::Y) < 1e-15);
    }

    #[test]
    fn full_turn_is_identity() {
        let v = Vec3::new(0.1, 0.2, 0.3);
        let r = rotate_about_axis(v, Vec3::new(0.5, -0.5, 1.0), 2.0 * PI);
        assert!(r.dist(v) < 1e-14);
    }

    #[test]
    fn composition_of_rotations() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let ax = Vec3::new(0.0, 1.0, 0.3);
        let r1 = rotate_about_axis(rotate_about_axis(v, ax, 0.4), ax, 0.6);
        let r2 = rotate_about_axis(v, ax, 1.0);
        assert!(r1.dist(r2) < 1e-13);
    }
}
