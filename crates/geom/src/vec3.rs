//! A minimal 3-component double-precision vector.
//!
//! `Vec3` is `Copy`, 24 bytes, and deliberately free of SIMD tricks: the hot
//! loops of the model operate on flat `f64` arrays (structure-of-arrays), so
//! `Vec3` only appears in mesh construction and per-cell reconstruction where
//! clarity beats micro-optimization.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector in Cartesian coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +z (the rotation axis of the model sphere).
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics in debug builds if the vector is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Chord (straight-line) distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Component-wise linear interpolation `(1-t)*self + t*o`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + o * t
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(2.0 * a, a * 2.0);
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
        // Lagrange identity: |a x b|^2 = |a|^2 |b|^2 - (a.b)^2
        let lhs = c.norm2();
        let rhs = a.norm2() * b.norm2() - a.dot(b).powi(2);
        assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
    }

    #[test]
    fn unit_vectors_form_right_handed_basis() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 2.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(0.5, 1.0, 0.0));
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::X, Vec3::Y, Vec3::Z];
        let s: Vec3 = vs.into_iter().sum();
        assert_eq!(s, Vec3::new(1.0, 1.0, 1.0));
    }
}
