//! Property-based tests for the spherical geometry substrate.

use mpas_geom::*;
use proptest::prelude::*;

fn unit_vec() -> impl Strategy<Value = Vec3> {
    // Sample via lon/lat away from the exact poles to keep east/north defined.
    (0.0..std::f64::consts::TAU, -1.5..1.5f64)
        .prop_map(|(lon, lat)| LonLat::new(lon, lat).to_unit_vector())
}

proptest! {
    #[test]
    fn triangle_inequality_on_sphere(a in unit_vec(), b in unit_vec(), c in unit_vec()) {
        let ab = arc_length(a, b);
        let bc = arc_length(b, c);
        let ac = arc_length(a, c);
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn arc_length_symmetric_and_bounded(a in unit_vec(), b in unit_vec()) {
        let d1 = arc_length(a, b);
        let d2 = arc_length(b, a);
        prop_assert!((d1 - d2).abs() < 1e-14);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d1));
    }

    #[test]
    fn rotation_preserves_pairwise_angles(a in unit_vec(), b in unit_vec(),
                                          axis in unit_vec(), theta in -6.0..6.0f64) {
        let ra = rotate_about_axis(a, axis, theta);
        let rb = rotate_about_axis(b, axis, theta);
        prop_assert!((arc_length(a, b) - arc_length(ra, rb)).abs() < 1e-10);
    }

    #[test]
    fn triangle_area_respects_girard_bounds(a in unit_vec(), b in unit_vec(), c in unit_vec()) {
        let area = spherical_triangle_area(a, b, c);
        // Any spherical triangle has area in [0, 2*pi).
        prop_assert!((0.0..std::f64::consts::TAU).contains(&area));
    }

    #[test]
    fn triangle_fan_consistency(a in unit_vec(), b in unit_vec(), c in unit_vec()) {
        // Splitting (a,b,c) at the arc-midpoint of (a,b) preserves signed area.
        let area = spherical_triangle_area_signed(a, b, c);
        if (a + b).norm() > 1e-6 {
            let m = arc_midpoint(a, b);
            let split = spherical_triangle_area_signed(a, m, c)
                + spherical_triangle_area_signed(m, b, c);
            prop_assert!((area - split).abs() < 1e-10, "area={area} split={split}");
        }
    }

    #[test]
    fn zonal_meridional_recomposes(p in unit_vec(), u in -5.0..5.0f64, v in -5.0..5.0f64) {
        let vec = east_at(p) * u + north_at(p) * v;
        let (zu, zv) = to_zonal_meridional(p, vec);
        prop_assert!((zu - u).abs() < 1e-10);
        prop_assert!((zv - v).abs() < 1e-10);
    }

    #[test]
    fn slerp_monotone_along_arc(a in unit_vec(), b in unit_vec(), t in 0.0..1.0f64) {
        prop_assume!(arc_length(a, b) > 1e-6 && arc_length(a, b) < 3.0);
        let p = slerp(a, b, t);
        let d_total = arc_length(a, b);
        prop_assert!((arc_length(a, p) - t * d_total).abs() < 1e-9);
    }
}
