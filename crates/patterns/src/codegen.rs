//! Pattern-to-code generation — the paper's future-work direction
//! ("leveraging automatic code generation techniques for the ease of
//! implementation and optimization", §VI).
//!
//! Given a [`PatternInstance`] and a per-point expression, this module
//! emits the regularity-aware (Alg. 3) Rust loop for the pattern's shape:
//! the same loop skeletons hand-written in `mpas-swe::kernels::ops`,
//! including the range-slicing contract the hybrid executors rely on.
//! The generated text is verified structurally by tests and, for one
//! golden case, against the hand-written `ke` kernel line-for-line in
//! spirit (same traversal, same neighborhood arrays).

use crate::dataflow::PatternInstance;
use crate::pattern::{MeshLocation, PatternClass};
use std::fmt::Write as _;

/// How the generated loop traverses the neighborhood of one output point.
struct Shape {
    /// Loop-variable name of the output entity.
    out_var: &'static str,
    /// Range-length expression for the output space.
    out_space: &'static str,
    /// Inner-loop header lines (neighborhood traversal).
    inner: &'static str,
}

fn shape_of(class: PatternClass, out: MeshLocation) -> Shape {
    use MeshLocation::*;
    match (class, out) {
        (PatternClass::Local, Cell) => Shape {
            out_var: "i",
            out_space: "mesh.n_cells()",
            inner: "",
        },
        (PatternClass::Local, Edge) => Shape {
            out_var: "e",
            out_space: "mesh.n_edges()",
            inner: "",
        },
        (_, Cell) => Shape {
            out_var: "i",
            out_space: "mesh.n_cells()",
            inner: "        for slot in mesh.cell_range(i) {\n            let e = mesh.edges_on_cell[slot] as usize;\n",
        },
        (_, Edge) => Shape {
            out_var: "e",
            out_space: "mesh.n_edges()",
            inner: "        for slot in mesh.eoe_range(e) {\n            let eoe = mesh.edges_on_edge[slot] as usize;\n",
        },
        (_, Vertex) => Shape {
            out_var: "v",
            out_space: "mesh.n_vertices()",
            inner: "        for k in 0..3 {\n            let e = mesh.edges_on_vertex[v][k] as usize;\n",
        },
    }
}

/// Emit the gather-form Rust function for a pattern instance.
///
/// `accum_expr` is the per-neighbor contribution (stencil classes) or the
/// per-point expression (Local class), in terms of the variables the inner
/// loop binds (`slot`, `e`, `eoe`, `k`, the output loop variable, and any
/// input slices named like the instance's inputs, lower-cased).
pub fn generate_gather_fn(instance: &PatternInstance, accum_expr: &str) -> String {
    let out_loc = instance.outputs[0].location();
    let shape = shape_of(instance.class, out_loc);
    let fn_name = format!("pattern_{}", instance.name.to_lowercase());
    let inputs: Vec<String> = instance
        .inputs
        .iter()
        .map(|v| format!("{v:?}").to_lowercase())
        .collect();

    let mut s = String::new();
    writeln!(
        s,
        "/// Generated from Table-I instance {} (class {:?}, kernel {:?}).",
        instance.name, instance.class, instance.kernel
    )
    .unwrap();
    writeln!(s, "/// Output convention: `out` covers exactly `range`.").unwrap();
    write!(s, "pub fn {fn_name}(\n    mesh: &Mesh,\n").unwrap();
    for i in &inputs {
        writeln!(s, "    {i}: &[f64],").unwrap();
    }
    writeln!(s, "    out: &mut [f64],").unwrap();
    writeln!(s, "    range: std::ops::Range<usize>,").unwrap();
    writeln!(s, ") {{").unwrap();
    writeln!(s, "    debug_assert!(range.end <= {});", shape.out_space).unwrap();
    writeln!(s, "    let off = range.start;").unwrap();
    writeln!(s, "    for {} in range {{", shape.out_var).unwrap();
    if shape.inner.is_empty() {
        writeln!(s, "        out[{} - off] = {};", shape.out_var, accum_expr).unwrap();
    } else {
        writeln!(s, "        let mut acc = 0.0;").unwrap();
        s.push_str(shape.inner);
        writeln!(s, "            acc += {accum_expr};").unwrap();
        writeln!(s, "        }}").unwrap();
        writeln!(s, "        out[{} - off] = acc;", shape.out_var).unwrap();
    }
    writeln!(s, "    }}").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Emit the full gather-form module for every Table-I stencil instance
/// (Local instances excluded: their expressions are caller-specific).
pub fn generate_stencil_module() -> String {
    let mut s = String::from(
        "//! AUTO-GENERATED pattern kernels (see `mpas_patterns::codegen`).\n\
         use mpas_mesh::Mesh;\n\n",
    );
    for inst in crate::dataflow::table_i() {
        if inst.class == PatternClass::Local {
            continue;
        }
        s.push_str(&generate_gather_fn(&inst, "/* per-neighbor term */ 0.0"));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::table_i;

    fn instance(name: &str) -> PatternInstance {
        table_i().into_iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn generated_ke_matches_handwritten_structure() {
        let code = generate_gather_fn(
            &instance("A2"),
            "0.25 * mesh.dc_edge[e] * mesh.dv_edge[e] * provisu[e] * provisu[e]",
        );
        // Same traversal as ops::ke: cell loop, cell_range, edges_on_cell.
        assert!(code.contains("pub fn pattern_a2("));
        assert!(code.contains("for i in range {"));
        assert!(code.contains("mesh.cell_range(i)"));
        assert!(code.contains("mesh.edges_on_cell[slot]"));
        assert!(code.contains("out[i - off] = acc;"));
        assert!(code.contains("provisu: &[f64],"));
    }

    #[test]
    fn edge_space_patterns_use_eoe_traversal() {
        let code = generate_gather_fn(&instance("H1"), "w * u[eoe]");
        assert!(code.contains("mesh.eoe_range(e)"));
        assert!(code.contains("mesh.edges_on_edge[slot]"));
        assert!(code.contains("for e in range {"));
    }

    #[test]
    fn vertex_space_patterns_use_fixed_degree_loop() {
        let code = generate_gather_fn(&instance("C2"), "sign * u[e]");
        assert!(code.contains("for k in 0..3 {"));
        assert!(code.contains("mesh.edges_on_vertex[v][k]"));
    }

    #[test]
    fn local_patterns_have_no_inner_loop() {
        let code = generate_gather_fn(&instance("X4"), "h[i] + w * tendh[i]");
        assert!(!code.contains("acc"));
        assert!(code.contains("out[i - off] = h[i] + w * tendh[i];"));
    }

    #[test]
    fn module_covers_all_stencil_instances() {
        let module = generate_stencil_module();
        for inst in table_i() {
            if inst.class == PatternClass::Local {
                assert!(!module.contains(&format!("pattern_{}(", inst.name.to_lowercase())));
            } else {
                assert!(
                    module.contains(&format!("pub fn pattern_{}(", inst.name.to_lowercase())),
                    "{} missing",
                    inst.name
                );
            }
        }
        // Balanced braces: the module parses as a brace tree.
        assert_eq!(module.matches('{').count(), module.matches('}').count());
    }

    #[test]
    fn generated_code_respects_range_convention() {
        // Every generated function subtracts the range offset on writes —
        // the splitting contract the executors rely on.
        let module = generate_stencil_module();
        let fns = module.matches("pub fn pattern_").count();
        let offsets = module.matches("let off = range.start;").count();
        assert_eq!(fns, offsets);
    }
}
